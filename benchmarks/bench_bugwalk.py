"""Extension: per-bug error attribution (Section 3.4 quantified).

The paper narrates which microbenchmark exposed which sim-initial bug;
this bench injects each bug alone and measures its isolated
contribution to microbenchmark error — the "debugging story" of
Section 3.4 as a reproducible experiment.

Runs a seven-microbenchmark subset of the most diagnostic workloads by
default; REPRO_FULL=1 uses all 21.
"""

from conftest import full_scale

from repro.validation.experiments import bug_walk
from repro.workloads.suite import micro_names

_SUBSET = ("C-Ca", "C-Cb", "C-R", "C-S1", "E-DM1", "M-D", "M-L2")


def test_bug_walk(benchmark, harness):
    names = micro_names() if full_scale() else list(_SUBSET)
    result = benchmark.pedantic(
        bug_walk, args=(harness, names), rounds=1, iterations=1
    )
    print()
    print(result.render())

    # --- Shape assertions ------------------------------------------------
    # The late-branch-recovery bug (the missing slot-stage adder) is
    # the paper's largest single error source (C-C errors beyond
    # -100%): it must dominate the walk.
    worst = max(result.mean_error, key=result.mean_error.get)
    assert result.mean_error["late_branch_recovery"] >= (
        0.5 * result.mean_error[worst]
    )
    assert result.mean_error["late_branch_recovery"] > (
        3 * result.baseline_error
    )
    # The generic-FU bug shows up strongly (E-DM1 +85.7%).
    assert result.mean_error["wrong_fu_mix"] > result.baseline_error + 3
    # The jmp undercharge perturbs the switch benchmarks.
    assert result.mean_error["jmp_undercharge"] > result.baseline_error
    # Every injected bug leaves the simulator at least as wrong as the
    # validated baseline (they are bugs, not features).
    for bug, error in result.mean_error.items():
        assert error >= result.baseline_error - 1.0, bug
