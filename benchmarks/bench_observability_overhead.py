"""Observability overhead: disabled instrumentation must be ~free.

The instrumentation layer's contract (docs/OBSERVABILITY.md) is that
the hot timing loop pays one pointer check per instruction when
observability is off.  This bench measures three harness
configurations over the same cached traces:

* **baseline** — no instrumentation argument at all;
* **disabled** — ``Instrumentation.disabled()`` threaded through the
  harness (the observer resolves to ``None`` inside the engine);
* **enabled** — CPI stacks + metrics registry + a bounded tracer;
* **profiled** — the hot-path profiler's phase laps + component wraps.

and asserts the disabled mode stays within 5% of baseline.  (Cell
telemetry — the getrusage pair — is always on and thus part of
*baseline*; what this bench gates is the opt-in machinery.)  Timing is
per (mode, workload) cell: rounds are interleaved with the mode order
rotated each round so machine drift hits every mode alike, the best
observation per cell is kept, and per-mode cell minima are summed.
The enabled-mode dilation is reported for information — it buys the
CPI stack and the trace, and is allowed to cost real time.
"""

import time

from repro.core.simalpha import SimAlpha
from repro.obs import Instrumentation
from repro.reporting.tables import render_table
from repro.validation.harness import Harness

#: Workloads spanning the three microbenchmark families.
WORKLOADS = ("C-S1", "E-D3", "M-D")
ROUNDS = 7


def _time_cell(harness, instrumentation, workload) -> float:
    started = time.perf_counter()
    harness.run_one(SimAlpha, workload, instrumentation=instrumentation)
    return time.perf_counter() - started


def test_disabled_observability_overhead(harness):
    # Warm the trace cache so no configuration pays the functional run.
    for workload in WORKLOADS:
        harness.workloads.trace(workload)

    modes = {
        "baseline (no instrumentation)": lambda: None,
        "disabled Instrumentation": Instrumentation.disabled,
        "enabled (stacks+metrics+trace)": lambda: Instrumentation(
            trace=True, trace_capacity=4096
        ),
        "profiled (laps+components)": lambda: Instrumentation(
            profile=True
        ),
    }
    names = list(modes)
    cell_best = {
        (name, workload): float("inf")
        for name in modes for workload in WORKLOADS
    }
    for round_index in range(ROUNDS):
        # Rotate the order each round so slow-start / thermal drift is
        # not systematically charged to one mode.
        for offset in range(len(names)):
            name = names[(round_index + offset) % len(names)]
            make = modes[name]
            for workload in WORKLOADS:
                cell_best[name, workload] = min(
                    cell_best[name, workload],
                    _time_cell(harness, make(), workload),
                )
    best = {
        name: sum(cell_best[name, workload] for workload in WORKLOADS)
        for name in modes
    }

    baseline = best["baseline (no instrumentation)"]
    disabled = best["disabled Instrumentation"]
    enabled = best["enabled (stacks+metrics+trace)"]
    profiled = best["profiled (laps+components)"]
    rows = [
        (name, seconds * 1e3, seconds / baseline)
        for name, seconds in best.items()
    ]
    print()
    print(render_table(
        ["mode", "best ms", "vs baseline"],
        rows,
        title=f"Observability overhead ({'+'.join(WORKLOADS)}, "
              f"per-cell min of {ROUNDS})",
        precision=3,
    ))
    overhead = disabled / baseline - 1.0
    print(f"\ndisabled-mode overhead: {overhead * 100:+.2f}% "
          f"(budget +5%); enabled-mode: "
          f"{(enabled / baseline - 1.0) * 100:+.1f}%; "
          f"profiled-mode: "
          f"{(profiled / baseline - 1.0) * 100:+.1f}%")

    # The contract: opting out of observability costs <5% wall time.
    assert disabled <= baseline * 1.05
