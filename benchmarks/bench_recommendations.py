"""Section 7 recommendations as experiments.

The paper's closing recommendations — common baselines, consistent
parameters, quantified stability — each measured with this package:

* the ISCA-27 "five gcc IPCs from 0.9 to 3.5" spread is reproduced by
  running one benchmark under five plausible research-group simulators;
* an optimization's reported benefit is shown to move with ad-hoc
  (uncalibrated) DRAM parameter choices;
* Table 5's rows are condensed into stability scores.
"""

from repro.validation.experiments import table5_stability
from repro.validation.recommendations import (
    baseline_spread,
    parameter_sensitivity,
    stability_score,
)


def test_common_baselines_spread(benchmark, harness):
    result = benchmark.pedantic(
        baseline_spread, args=(harness, "gcc95"), rounds=1, iterations=1
    )
    print()
    print(result.render())
    print(f"spread ratio: {result.spread_ratio:.2f}x "
          f"(paper observed ~3.9x across ISCA-27 studies)")
    # The phenomenon: the same benchmark spans a multi-x IPC range.
    assert result.spread_ratio > 2.5


def test_consistent_parameters(benchmark, harness):
    result = benchmark.pedantic(
        parameter_sensitivity, args=(harness,), rounds=1, iterations=1
    )
    print()
    print(result.render())
    low, high = result.benefit_range
    print(f"reported benefit ranges from {low:.2f}% to {high:.2f}% "
          f"depending on the ad-hoc background")
    # The same optimization reports visibly different benefits.
    assert high - low > 0.1


def test_quantified_stability(benchmark, harness):
    names = ["gzip", "eon", "mesa", "art"]
    result = benchmark.pedantic(
        table5_stability, args=(harness, names, ["addr", "stwt"]),
        rounds=1, iterations=1,
    )
    print()
    for optimization, per_config in result.improvements.items():
        score = stability_score(per_config)
        print(f"  {optimization:22s} stability score {score:.2f} "
              f"(0 = perfectly stable)")
    # The L1-latency optimization is the paper's stable example.
    l1 = stability_score(result.improvements["l1_latency_3_to_1"])
    assert l1 < 3.0
