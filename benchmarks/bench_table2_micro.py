"""Table 2: microbenchmark validation.

Runs the 21 microbenchmarks on the reference machine (DCPI-measured),
sim-initial, sim-alpha, and sim-outorder, and prints our errors beside
the paper's.  The shape assertions encode the paper's headline:
sim-initial is wildly wrong (74.7% mean), the validated sim-alpha is
within a few percent (2.0%), and sim-outorder diverges in between
(19.5%), optimistic on the control microbenchmarks.
"""

from repro.reporting.paper_data import (
    TABLE2_INITIAL_ERROR,
    TABLE2_MEAN_ERRORS,
    TABLE2_NATIVE_IPC,
    TABLE2_VALIDATED_ERROR,
)
from repro.reporting.tables import render_table
from repro.validation.experiments import table2_micro


def test_table2_micro(benchmark, harness):
    result = benchmark.pedantic(
        table2_micro, args=(harness,), rounds=1, iterations=1
    )
    print()
    print(result.render())
    # The DRAM-layer kernels (M-ROW, M-BANK) are this reproduction's
    # additions; the paper publishes numbers for the original 21 only.
    comparison = [
        (row.benchmark,
         TABLE2_NATIVE_IPC[row.benchmark], row.native_ipc,
         TABLE2_INITIAL_ERROR[row.benchmark], row.initial_error,
         TABLE2_VALIDATED_ERROR[row.benchmark], row.alpha_error)
        for row in result.rows
        if row.benchmark in TABLE2_NATIVE_IPC
    ]
    print()
    print(render_table(
        ["benchmark", "paper nIPC", "our nIPC", "paper init%",
         "our init%", "paper alpha%", "our alpha%"],
        comparison,
        title="Table 2 shape comparison (paper vs measured)",
    ))
    print(f"\nmean |error|: paper {TABLE2_MEAN_ERRORS} vs measured "
          f"initial={result.mean_initial_error:.1f} "
          f"alpha={result.mean_alpha_error:.1f} "
          f"outorder={result.mean_outorder_diff:.1f}")

    # --- Shape assertions ------------------------------------------------
    # Validated simulator: small mean error (paper: 2.0%).
    assert result.mean_alpha_error < 6.0
    # sim-initial: an order of magnitude worse (paper: 74.7%).
    assert result.mean_initial_error > 5 * result.mean_alpha_error
    # sim-outorder sits in between (paper: 19.5%).
    assert result.mean_outorder_diff > 2 * result.mean_alpha_error
    # The C-C/C-R front-end benchmarks drive sim-initial's error and
    # are strongly *under*-estimated (negative), as in the paper.
    assert result.row("C-Ca").initial_error < -40
    assert result.row("C-Cb").initial_error < -40
    # E-DM1 is strongly *over*-estimated by sim-initial (paper +85.7%).
    assert result.row("E-DM1").initial_error > 50
    # sim-outorder beats the native machine on the C-C control codes.
    assert result.row("C-Ca").outorder_diff > 10
