"""The parallel cached execution engine: pool speedup and warm-cache
replay.

Two claims are measured:

* fanning a 4-simulator x 6-microbenchmark grid over ``jobs=4`` worker
  processes beats the serial engine by >= 2x (the cells here are
  sleep-bound stand-ins with a fixed per-cell cost, so the ratio
  measures pool overlap rather than this host's core count);
* re-running a real-simulator grid against a populated cache is >= 90%
  hits and reproduces the cold grid's ``to_json`` byte-for-byte.
"""

import time
from dataclasses import dataclass

from repro.core.siminitial import make_sim_initial
from repro.core.simalpha import SimAlpha
from repro.core.simstripped import make_sim_stripped
from repro.exec.cache import ResultCache
from repro.exec.engine import ExperimentEngine
from repro.exec.spec import RunOptions
from repro.result import RunStats, SimResult
from repro.simulators.refmachine import make_native_machine

MICROS = ["C-Ca", "C-R", "C-S1", "E-I", "E-D3", "M-D"]

#: Fixed wall-clock cost of one sleep-bound cell (seconds).
CELL_SECONDS = 0.15


@dataclass(frozen=True)
class SleepConfig:
    name: str
    seconds: float = CELL_SECONDS


class SleepSim:
    """A fake simulator whose only cost is a fixed sleep, so the
    serial/parallel ratio isolates the pool's overlap."""

    def __init__(self, config: SleepConfig):
        self.config = config

    @property
    def name(self) -> str:
        return self.config.name

    def run_trace(self, trace, workload: str) -> SimResult:
        time.sleep(self.config.seconds)
        instructions = len(trace)
        return SimResult(
            simulator=self.name,
            workload=workload,
            cycles=2.0 * instructions,
            instructions=instructions,
            stats=RunStats(),
        )


def sleep_factory(name: str):
    config = SleepConfig(name=name)
    return lambda: SleepSim(config)


def test_pool_speedup_at_jobs_4(harness):
    factories = [sleep_factory(f"sleep-{index}") for index in range(4)]

    started = time.perf_counter()
    serial = ExperimentEngine(harness.workloads).run_grid(factories, MICROS)
    serial_s = time.perf_counter() - started

    started = time.perf_counter()
    parallel = ExperimentEngine(harness.workloads, RunOptions(jobs=4)).run_grid(
        factories, MICROS
    )
    parallel_s = time.perf_counter() - started

    speedup = serial_s / parallel_s
    cells = len(factories) * len(MICROS)
    print(f"\n{cells} cells x {CELL_SECONDS:.2f}s: "
          f"serial {serial_s:.2f}s, jobs=4 {parallel_s:.2f}s "
          f"-> {speedup:.1f}x")

    assert serial.failures == [] and parallel.failures == []
    assert speedup >= 2.0
    # The pool preserves serial grid order and contents exactly.
    assert parallel.to_json(canonical=True) == serial.to_json(canonical=True)


def test_warm_cache_replays_byte_identically(harness, tmp_path):
    factories = [
        make_native_machine, make_sim_initial, SimAlpha, make_sim_stripped
    ]
    cache = ResultCache(tmp_path / "cells")
    cells = len(factories) * len(MICROS)

    started = time.perf_counter()
    cold = ExperimentEngine(
        harness.workloads, RunOptions(cache=cache)
    ).run_grid(
        factories, MICROS
    )
    cold_s = time.perf_counter() - started
    assert cache.misses == cells and cache.stores == cells

    hits_before = cache.hits
    started = time.perf_counter()
    warm = ExperimentEngine(
        harness.workloads, RunOptions(jobs=4, cache=cache)
    ).run_grid(
        factories, MICROS
    )
    warm_s = time.perf_counter() - started

    hit_rate = (cache.hits - hits_before) / cells
    print(f"\ncold {cold_s:.2f}s -> warm {warm_s:.2f}s "
          f"({hit_rate:.0%} hits, {cache.stores} entries stored)")

    assert warm.failures == []
    assert hit_rate >= 0.90
    # Hits return the stored results verbatim, so even the volatile
    # provenance fields replay: plain to_json is byte-identical.
    assert warm.to_json() == cold.to_json()
