"""Table 5: stability of optimizations across simulator configurations.

Applies three optimizations (1-cycle L1, 128KB L1, doubled rename
registers) to thirteen configurations: sim-alpha, sim-alpha minus each
feature, sim-stripped, and the modified sim-outorder.  The paper's
point: the sim-alpha family is *stable* (about a percentage point of
spread), while the cache-latency optimization helps sim-stripped
nearly twice as much and everything helps sim-outorder less.

Runs a reduced configuration set by default; REPRO_FULL=1 for all 13.
"""

from conftest import full_scale

from repro.reporting.paper_data import TABLE5
from repro.validation.experiments import table5_stability
from repro.workloads.suite import spec2000_names

_FEATURE_SUBSET = ("addr", "luse", "spec", "stwt")
_BENCH_SUBSET = ("gzip", "vpr", "eon", "mesa", "art", "parser")


def test_table5_stability(benchmark, harness):
    if full_scale():
        names, features = spec2000_names(), None
    else:
        names, features = list(_BENCH_SUBSET), list(_FEATURE_SUBSET)
    result = benchmark.pedantic(
        table5_stability, args=(harness, names, features),
        rounds=1, iterations=1,
    )
    print()
    print(result.render())
    print("\npaper Table 5 (percent improvement):")
    for optimization, per_config in TABLE5.items():
        print(f"  {optimization}: {per_config}")

    l1 = result.improvements["l1_latency_3_to_1"]
    size = result.improvements["l1_size_64_to_128"]
    regs = result.improvements["regs_40_to_80"]

    # --- Shape assertions ------------------------------------------------
    # The latency optimization is the biggest lever (paper ~5.5%).
    assert l1["sim-alpha"] > size["sim-alpha"]
    assert l1["sim-alpha"] > regs["sim-alpha"]
    assert l1["sim-alpha"] > 0.5
    # It is n/a under the no-luse configuration (as the paper marks).
    assert l1["luse"] != l1["luse"]  # NaN
    # sim-stripped benefits from the 1-cycle cache at least on par with
    # the validated family.  (The paper found nearly 2x — 9.85 vs ~5.5;
    # our stripped configuration is replay-trap dominated, which
    # dilutes the cache-latency share, so we assert parity rather than
    # dominance.  See EXPERIMENTS.md.)
    alpha_family = [v for k, v in l1.items()
                    if k not in ("sim-stripped", "sim-outorder") and v == v]
    assert l1["sim-stripped"] > 0.75 * max(alpha_family)
    # The L1-size optimization helps the abstract sim-outorder least
    # (paper: 0.66 vs ~2 for the family).
    assert size["sim-outorder"] < size["sim-alpha"]
    # All optimizations are non-regressions on the baseline.
    assert size["sim-alpha"] > -0.5
    assert regs["sim-alpha"] > -0.5
    # Stability: the sim-alpha family stays within a few points.
    spread = max(alpha_family) - min(alpha_family)
    assert spread < 5.0
