"""Section 4.2: DRAM calibration sweep.

Sweeps SDRAM parameters (RAS/CAS/precharge/controller, open vs closed
page) for sim-alpha against the native machine's M-M / STREAM /
lmbench measurements, exactly the paper's memory-approximation
procedure.  The paper's winner: open page, RAS=2, CAS=4, precharge=2,
controller=2, with single-digit residuals on M-M and stream.

The default sweep covers a 24-configuration neighbourhood including
the paper's winner; REPRO_FULL=1 runs the full 216-point grid.
"""

from conftest import full_scale

from repro.dram.config import DS10L_CALIBRATED, parameter_grid
from repro.reporting.paper_data import CALIBRATION_TARGETS
from repro.validation.calibrate import calibrate_dram


def _configs():
    if full_scale():
        return list(parameter_grid())
    # A neighbourhood around the paper's winner.  RAS/CAS below the
    # physical values the paper swept are excluded: an aliased
    # closed-page point with RAS+CAS == the open-page CAS would be
    # timing-indistinguishable on row hits and trivially win.
    return list(parameter_grid(
        ras_values=(2, 3),
        cas_values=(4, 5),
        precharge_values=(2, 3),
        controller_values=(2, 4),
        policies=("open", "closed"),
    ))


def test_dram_calibration(benchmark, harness):
    configs = _configs()
    assert DS10L_CALIBRATED in configs
    result = benchmark.pedantic(
        calibrate_dram, args=(harness, configs), rounds=1, iterations=1
    )
    print()
    print(result.render(top=8))
    print(f"\npaper winner/residuals: {CALIBRATION_TARGETS}")
    print(f"our best: {result.best} (mean |%diff| {result.best_error:.1f})")
    print(f"our residuals: { {k: round(v, 1) for k, v in result.residuals().items()} }")

    # --- Shape assertions ------------------------------------------------
    # The best configuration is an open-page one, as the paper found.
    assert result.best.page_policy == "open"
    # The paper's exact winner is competitive: within 2 points of the
    # best mean error in the sweep.
    paper_rank = next(
        error for config, error, _ in result.ranking
        if config == DS10L_CALIBRATED
    )
    assert paper_rank <= result.best_error + 2.0
    # Residual error after calibration is small but nonzero, like the
    # paper's 2.8 / -6.5 / 13 percent.
    assert result.best_error < 20.0
