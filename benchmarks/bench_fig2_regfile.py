"""Figure 2: register file sensitivity.

Re-runs the Cruz et al. register-file study (1-cycle full bypass,
2-cycle full bypass, 2-cycle partial bypass) on an idealized 8-way
simulator and on sim-alpha configured alike, over the SPEC95 proxies.

The paper's conclusion, which this bench asserts: the performance loss
from partial bypassing that motivated the original study is large on
the abstract 8-way machine but largely *absent* on the validated
machine — "the Alpha microarchitecture is limited by other overheads"
— and the two simulators' absolute IPCs differ strikingly.
"""

from repro.reporting.paper_data import FIGURE2_CRUZ_IPC
from repro.reporting.tables import render_table
from repro.validation.experiments import figure2_regfile


def test_figure2_regfile(benchmark, harness):
    result = benchmark.pedantic(
        figure2_regfile, args=(harness,), rounds=1, iterations=1
    )
    print()
    print(result.render())
    print()
    print(result.render_bars(benchmarks=result.benchmarks[:4]))
    comparison = []
    for bench in result.benchmarks:
        paper = FIGURE2_CRUZ_IPC.get(bench)
        ours = result.ipcs["8-way"][bench]
        alpha = result.ipcs["sim-alpha"][bench]
        comparison.append(
            (bench, paper[0] if paper else None, ours[0],
             paper[2] if paper else None, ours[2], alpha[0], alpha[2])
        )
    print()
    print(render_table(
        ["benchmark", "Cruz 1f", "ours 1f", "Cruz 2p", "ours 2p",
         "alpha 1f", "alpha 2p"],
        comparison,
        title="Figure 2 shape comparison (paper bars vs measured)",
    ))
    print(f"\nbypass loss (2-cycle full -> partial): "
          f"8-way {result.bypass_loss('8-way'):.1f}%  "
          f"sim-alpha {result.bypass_loss('sim-alpha'):.1f}%")

    # --- Shape assertions ------------------------------------------------
    # The 8-way simulator produces strikingly higher absolute IPCs.
    hm8 = result.harmonic_means("8-way")
    hma = result.harmonic_means("sim-alpha")
    assert hm8[0] > 1.5 * hma[0]
    # Partial bypass hurts the 8-way machine substantially...
    assert result.bypass_loss("8-way") < -5.0
    # ...and sim-alpha far less: the motivating loss "does not exist".
    assert result.bypass_loss("sim-alpha") > result.bypass_loss("8-way") + 3.0
    # The 2-cycle full-bypass config costs the 8-way machine little
    # (the bars in Figure 2 are nearly equal for configs 1 and 2).
    loss_12 = (hm8[1] - hm8[0]) / hm8[0] * 100
    assert loss_12 > -8.0
