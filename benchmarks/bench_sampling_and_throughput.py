"""Extension benches: the DCPI sampling-interval trade-off (Section
2.3) and raw engine throughput (how fast the timing models replay
instructions — the practical cost of the methodology)."""

from repro.core.simalpha import SimAlpha
from repro.simulators.eightway import EightWaySim
from repro.simulators.simoutorder import SimOutOrder
from repro.validation.experiments import sampling_interval_study


def test_sampling_interval_study(benchmark):
    result = benchmark.pedantic(
        sampling_interval_study, rounds=1, iterations=1
    )
    print()
    print(result.render())
    # The paper chose 40K cycles as the best dilation/quantisation
    # trade-off; our model reproduces that sweet spot.
    assert result.best_interval() == 40_000
    dilations = [row[1] for row in result.rows]
    quantisations = [row[2] for row in result.rows]
    assert dilations == sorted(dilations, reverse=True)
    assert quantisations == sorted(quantisations)


def test_engine_throughput_simalpha(benchmark, harness):
    trace = harness.workloads.trace("gzip")

    def run():
        return SimAlpha().run_trace(trace, "gzip")

    result = benchmark(run)
    assert result.instructions == len(trace)


def test_engine_throughput_simoutorder(benchmark, harness):
    trace = harness.workloads.trace("gzip")

    def run():
        return SimOutOrder().run_trace(trace, "gzip")

    result = benchmark(run)
    assert result.instructions == len(trace)


def test_engine_throughput_eightway(benchmark, harness):
    trace = harness.workloads.trace("gzip")

    def run():
        return EightWaySim().run_trace(trace, "gzip")

    result = benchmark(run)
    assert result.instructions == len(trace)
