"""Table 3: macrobenchmark validation.

Runs the ten SPEC2000 proxies across the reference machine, sim-alpha,
sim-stripped, and sim-outorder.  The paper's shape: sim-alpha mostly
*under*-estimates (mean 18%), with `art` the lone positive outlier;
sim-stripped under-estimates everywhere (mean 40%); sim-outorder
*over*-estimates essentially everywhere (mean 37%).
"""

from repro.reporting.paper_data import TABLE3, TABLE3_MEANS
from repro.reporting.tables import render_table
from repro.validation.experiments import table3_macro


def test_table3_macro(benchmark, harness):
    result = benchmark.pedantic(
        table3_macro, args=(harness,), rounds=1, iterations=1
    )
    print()
    print(result.render())
    comparison = [
        (row.benchmark,
         TABLE3[row.benchmark][0], row.native_ipc,
         TABLE3[row.benchmark][1], row.alpha_error,
         TABLE3[row.benchmark][2], row.stripped_diff,
         TABLE3[row.benchmark][3], row.outorder_diff)
        for row in result.rows
    ]
    print()
    print(render_table(
        ["benchmark", "pIPC", "ours", "p.alpha%", "ours", "p.strip%",
         "ours", "p.out%", "ours"],
        comparison,
        title="Table 3 shape comparison (paper vs measured)",
    ))
    print(f"\npaper aggregates: {TABLE3_MEANS}")
    print(f"measured: alpha mean|err| {result.alpha_mean_error:.1f}  "
          f"stripped {result.stripped_mean_diff:.1f}  "
          f"outorder {result.outorder_mean_diff:.1f}")

    # --- Shape assertions ------------------------------------------------
    negatives = sum(1 for r in result.rows if r.alpha_error < 0)
    assert negatives >= 8, "sim-alpha should under-estimate nearly everywhere"
    assert result.row("art").alpha_error > 0, "art is the positive outlier"
    assert result.row("mesa").alpha_error < -8, "mesa strongly under-estimated"
    # sim-stripped: consistently below the native machine.
    stripped_negative = sum(1 for r in result.rows if r.stripped_diff < 0)
    assert stripped_negative >= 8
    assert result.stripped_mean_diff > result.alpha_mean_error
    # sim-outorder: optimistic essentially everywhere.
    outorder_positive = sum(1 for r in result.rows if r.outorder_diff > 0)
    assert outorder_positive >= 8
    # lucas shows the smallest simulator disagreement family-wide
    # (paper: -14.7 / -10.0 / +11.5) — check it is not an extreme.
    assert abs(result.row("lucas").outorder_diff) < result.outorder_mean_diff * 2
