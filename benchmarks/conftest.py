"""Shared fixtures for the experiment benches.

One :class:`~repro.validation.harness.Harness` (and so one set of
functional traces) is shared across all benches in a session.  Set
``REPRO_FULL=1`` to run the heavy sweeps (Tables 4/5, calibration, bug
walk) at full paper scale instead of the representative subsets.
"""

import os

import pytest

from repro.validation.harness import Harness

__all__ = ["full_scale"]


def full_scale() -> bool:
    """Whether to run sweeps at full paper scale."""
    return os.environ.get("REPRO_FULL", "") not in ("", "0")


@pytest.fixture(scope="session")
def harness() -> Harness:
    return Harness()
