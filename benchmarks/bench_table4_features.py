"""Table 4: effect of individual low-level features on performance.

Removes each of the ten features from sim-alpha one at a time over the
macrobenchmarks.  The paper's headline: four features matter most —
the jump adder (-7.8%), speculative predictor update (-5.9%), load-use
speculation (-5.8%), and store-wait bits (-4.3%) — while removing the
constraining features (maps/slot/trap) *gains* a little.

Runs a six-benchmark subset by default; set REPRO_FULL=1 for all ten.
"""

from conftest import full_scale

from repro.reporting.paper_data import TABLE4
from repro.reporting.tables import render_table
from repro.validation.experiments import table4_features
from repro.workloads.suite import spec2000_names

_SUBSET = ("gzip", "vpr", "eon", "mesa", "art", "parser")


def test_table4_features(benchmark, harness):
    names = spec2000_names() if full_scale() else list(_SUBSET)
    result = benchmark.pedantic(
        table4_features, args=(harness, names), rounds=1, iterations=1
    )
    print()
    print(result.render())
    comparison = [
        (column.feature, TABLE4[column.feature][1], column.mean_change,
         TABLE4[column.feature][2], column.stddev)
        for column in result.columns
    ]
    print()
    print(render_table(
        ["feature", "paper %chg", "ours", "paper std", "ours"],
        comparison,
        title="Table 4 shape comparison (paper vs measured)",
    ))

    # --- Shape assertions ------------------------------------------------
    # The jump adder is the single most valuable feature (paper -7.8%).
    addr = result.column("addr").mean_change
    assert addr < -3.0
    assert addr == min(c.mean_change for c in result.columns)
    # Store-wait and speculative update are major contributors.
    assert result.column("stwt").mean_change < -2.0
    assert result.column("spec").mean_change < -1.0
    # The small features stay small (paper: |x| < 1%).
    for feature in ("eret", "vbuf", "pref"):
        assert abs(result.column(feature).mean_change) < 2.0
    # Removing mbox traps helps (a constraining feature; paper +0.31,
    # and our trap sources are stronger on the art-style proxies).
    assert result.column("trap").mean_change > 0.0
    # Variability across benchmarks is real (paper: all stddevs >= 1%).
    assert result.column("addr").stddev > 1.0
