"""Table 1: instruction latencies.

Regenerates the paper's latency table by measuring dependent-issue
spacing per instruction class on sim-alpha and checking it against the
configured (published) values.
"""

from repro.reporting.paper_data import TABLE1_LATENCIES
from repro.validation.experiments import table1_latencies


def test_table1_latencies(benchmark):
    result = benchmark.pedantic(table1_latencies, rounds=1, iterations=1)
    print()
    print(result.render())
    print(f"paper Table 1 reference: {TABLE1_LATENCIES}")
    # The simulator must execute each class at exactly its configured
    # latency — this is the paper's most basic validation.
    assert result.max_deviation() < 0.15
