"""Integrity overhead: disabled sanitizers must be ~free.

The integrity layer's contract (docs/ROBUSTNESS.md) is that a harness
with sanitizers *disabled* — the default — pays one None check per
integration point and nothing per instruction.  This bench measures
three harness configurations over the same cached traces:

* **baseline** — a plain harness, no integrity arguments at all;
* **disabled** — ``Sanitizers.disabled()`` threaded through the
  harness (every run_sanitizer call returns ``None``);
* **enabled** — sanitizers armed with the default window, plus the
  per-run audit.

and asserts the disabled mode stays within 5% of baseline.  Timing
follows the observability bench: rounds are interleaved with the mode
order rotated each round so machine drift hits every mode alike, the
best observation per (mode, workload) cell is kept, and per-mode cell
minima are summed.  The enabled-mode dilation is reported for
information — it buys per-window invariant checks and the post-run
audit, and is allowed to cost real time.
"""

import time

from repro.core.simalpha import SimAlpha
from repro.integrity import Sanitizers
from repro.reporting.tables import render_table
from repro.validation.harness import Harness

#: Workloads spanning the three microbenchmark families.
WORKLOADS = ("C-S1", "E-D3", "M-D")
ROUNDS = 7


def _time_cell(harness, workload) -> float:
    started = time.perf_counter()
    harness.run_one(SimAlpha, workload)
    return time.perf_counter() - started


def test_disabled_integrity_overhead(harness):
    # Warm the trace cache so no configuration pays the functional run.
    for workload in WORKLOADS:
        harness.workloads.trace(workload)
    workloads = harness.workloads

    modes = {
        "baseline (no integrity)": lambda: Harness(workloads),
        "disabled Sanitizers": lambda: Harness(
            workloads, sanitizers=Sanitizers.disabled()
        ),
        "enabled (window checks + audit)": lambda: Harness(
            workloads, sanitizers=Sanitizers()
        ),
    }
    names = list(modes)
    cell_best = {
        (name, workload): float("inf")
        for name in modes for workload in WORKLOADS
    }
    for round_index in range(ROUNDS):
        # Rotate the order each round so slow-start / thermal drift is
        # not systematically charged to one mode.
        for offset in range(len(names)):
            name = names[(round_index + offset) % len(names)]
            bench_harness = modes[name]()
            for workload in WORKLOADS:
                cell_best[name, workload] = min(
                    cell_best[name, workload],
                    _time_cell(bench_harness, workload),
                )
    best = {
        name: sum(cell_best[name, workload] for workload in WORKLOADS)
        for name in modes
    }

    baseline = best["baseline (no integrity)"]
    disabled = best["disabled Sanitizers"]
    enabled = best["enabled (window checks + audit)"]
    rows = [
        (name, seconds * 1e3, seconds / baseline)
        for name, seconds in best.items()
    ]
    print()
    print(render_table(
        ["mode", "best ms", "vs baseline"],
        rows,
        title=f"Integrity overhead ({'+'.join(WORKLOADS)}, "
              f"per-cell min of {ROUNDS})",
        precision=3,
    ))
    overhead = disabled / baseline - 1.0
    print(f"\ndisabled-mode overhead: {overhead * 100:+.2f}% "
          f"(budget +5%); enabled-mode: "
          f"{(enabled / baseline - 1.0) * 100:+.1f}%")

    # The contract: opting out of integrity checking costs <5% wall time.
    assert disabled <= baseline * 1.05
