"""Extension: warm-up / measurement-length study.

The paper runs everything to completion and iterates microbenchmarks
"for numerous iterations" precisely because short measurements carry
cold-start bias.  This bench quantifies that: windowed IPC until
steady state, and the CPI error a truncated measurement would inject
— connecting measurement length to the paper's error budget.
"""

from repro.validation.warmup import warmup_study


def test_warmup_profiles(benchmark, harness):
    def run():
        return {
            workload: warmup_study(workload, harness=harness,
                                   window_size=4096)
            for workload in ("gzip", "mesa", "C-Ca")
        }

    profiles = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for workload, profile in profiles.items():
        settled = profile.settled_instructions
        one_window_error = profile.truncation_error(1)
        print(f"{workload:6s} steady IPC {profile.steady_ipc:5.2f}  "
              f"settles after {settled} instructions  "
              f"1-window truncation error {one_window_error:+.1f}%")

    for workload, profile in profiles.items():
        # Cold start biases a short measurement low...
        assert profile.window_ipcs[0] < profile.steady_ipc, workload
        # ...and every workload settles inside its trace.
        assert profile.settled_window is not None, workload
    # Truncation error at one window is material (> 2%) somewhere —
    # the reason validation runs must be long.
    worst = max(abs(p.truncation_error(1)) for p in profiles.values())
    assert worst > 2.0
