"""Ablations over the memory-side modelling choices (DESIGN.md §5).

Quantifies the error budget of our NativeMachine construction: each
DS-10L effect enabled alone, the page-mapping policy sweep (the
paper's Section 4 irreducible error source), and victim-buffer sizing.
"""

from repro.validation.ablations import (
    ablate_native_effects,
    paging_policy_study,
    victim_buffer_sweep,
)


def test_native_effect_ablation(benchmark, harness):
    result = benchmark.pedantic(
        ablate_native_effects, args=(harness,), rounds=1, iterations=1
    )
    print()
    print(result.render())
    contribution = result.contribution
    # Slowing effects (the native machine pays these).
    assert contribution["pal_tlb_misses"] <= 0.5
    assert contribution["store_port_contention"] <= 0.5
    # Speeding effects (the native machine benefits from these).
    assert contribution["controller_page_opt"] >= -0.5
    assert contribution["split_memory_bus"] >= -0.5
    # The combination is what defines the macro error gap: nonzero.
    assert abs(result.combined) > 0.5


def test_paging_policy_study(benchmark, harness):
    result = benchmark.pedantic(
        paging_policy_study, args=(harness,), rounds=1, iterations=1
    )
    print()
    print(result.render())
    # The policies genuinely move memory-bound performance — the
    # paper's point that unknown page mappings are irreducible error.
    hms = [result.hm(policy) for policy in result.ipcs]
    spread = (max(hms) - min(hms)) / min(hms) * 100
    print(f"paging-policy spread: {spread:.1f}% of HM IPC")
    assert spread >= 0.0
    assert len(result.ipcs) == 3


def test_victim_buffer_sweep(benchmark, harness):
    result = benchmark.pedantic(
        victim_buffer_sweep, args=(harness,), rounds=1, iterations=1
    )
    print()
    print(result.render())
    by_size = {entries: gain for entries, _, gain in result.rows}
    # The buffer helps conflict-prone codes, monotonically-ish in size.
    assert by_size[8] >= by_size[2] - 0.3
    assert by_size[32] >= by_size[8] - 0.3
    assert by_size[8] >= -0.1
