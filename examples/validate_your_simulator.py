#!/usr/bin/env python3
"""Apply the paper's validation methodology to *your* simulator.

Scenario: you built a research simulator by taking a validated model
and simplifying the parts you believed didn't matter — no load-use
speculation, no I-cache prefetch, a single flat cluster.  This script
walks the paper's methodology to find out what those choices cost:

1. run the microbenchmark suite against the reference machine,
2. localise which *pipeline behaviours* the errors point at,
3. check whether a conclusion you might publish (an optimization's
   benefit) would survive on a validated simulator — the paper's
   "stability" question.

Run:
    python examples/validate_your_simulator.py
"""

from dataclasses import replace

from repro import FeatureSet, MachineConfig, NativeMachine, SimAlpha
from repro.memory.cache import CacheConfig
from repro.validation import Harness, percent_change, percent_error_cpi

#: "Your" simulator: a typical academic level of detail.
MY_FEATURES = FeatureSet().without("luse").without("pref").without("slot")


def my_simulator(name: str = "my-sim", **memory_changes) -> SimAlpha:
    config = MachineConfig(name=name, features=MY_FEATURES)
    if memory_changes:
        config = replace(
            config, memory=replace(config.memory, **memory_changes)
        )
    return SimAlpha(config)


def main() -> None:
    harness = Harness()

    # Step 1: microbenchmark validation (paper Section 3).
    print("Step 1: microbenchmark error vs the reference machine")
    suite = ["C-Ca", "C-S1", "E-I", "E-D3", "M-I", "M-D", "M-IP"]
    errors = {}
    for name in suite:
        reference = harness.run_one(NativeMachine, name)
        mine = harness.run_one(my_simulator, name)
        errors[name] = percent_error_cpi(mine.cpi, reference.cpi)
        print(f"  {name:6s} reference IPC {reference.ipc:5.2f}   "
              f"my-sim IPC {mine.ipc:5.2f}   error {errors[name]:+6.1f}%")

    # Step 2: the suite localises the damage (paper Section 3.4 style).
    print("\nStep 2: what the error pattern says")
    if errors["M-D"] < -5:
        print("  M-D (load-to-use chain) underestimates: your consumers")
        print("  wait for the tag check -> you removed load-use speculation.")
    if errors["M-IP"] < -5:
        print("  M-IP (I-cache-flushing loop) underestimates: sequential")
        print("  refills stall -> you removed I-cache prefetch.")

    # Step 3: stability of a conclusion (paper Section 5.3).
    print("\nStep 3: would your published speedup survive validation?")
    print("  optimization under study: 1-cycle L1 D-cache (vs 3)")
    macro = ["gzip", "eon", "mesa"]

    def hm_speedup(factory_base, factory_fast):
        base = [harness.run_one(factory_base, n).ipc for n in macro]
        fast = [harness.run_one(factory_fast, n).ipc for n in macro]
        base_hm = len(base) / sum(1 / v for v in base)
        fast_hm = len(fast) / sum(1 / v for v in fast)
        return percent_change(fast_hm, base_hm)

    mine = hm_speedup(
        my_simulator, lambda: my_simulator("my-sim-fast", l1d_load_to_use=1)
    )
    validated = hm_speedup(
        SimAlpha,
        lambda: SimAlpha(replace(
            MachineConfig(name="alpha-fast"),
            memory=replace(MachineConfig().memory, l1d_load_to_use=1),
        )),
    )
    print(f"  speedup on my-sim      : {mine:+.2f}%")
    print(f"  speedup on sim-alpha   : {validated:+.2f}%")
    if mine > validated + 1:
        print("  -> your simulator OVERSTATES the benefit: without")
        print("     load-use speculation every hit already pays 2 extra")
        print("     cycles, so cutting the latency looks better than it")
        print("     is on a machine that hides it (the paper's Table 5")
        print("     found exactly this: 9.85% on sim-stripped vs ~5.5%).")
    else:
        print("  -> the conclusion is stable across the two simulators.")


if __name__ == "__main__":
    main()
