#!/usr/bin/env python3
"""Replay the paper's Section 3.4 debugging sessions with `diagnose`.

The authors spent the heart of the paper hunting sim-initial's bugs by
comparing event counts against the reference machine, benchmark by
benchmark.  `repro.validation.diagnose` mechanises that loop; this
example reruns three of the paper's debugging stories.

Run:
    python examples/debug_a_simulator.py
"""

from repro import make_sim_with_bugs
from repro.simulators.refmachine import make_native_machine
from repro.validation import Harness
from repro.validation.diagnose import diagnose

#: (story, microbenchmark, injected bug) — each pairs a Section 3.4
#: anecdote with the workload that exposed it.
SESSIONS = [
    ("'an unusually high number of load traps ... masked out the "
     "lower three bits of the addresses'",
     "M-I", "masked_load_trap_addresses"),
    ("'the add throughput was only 2 ... two multipliers and two "
     "adders as the four execution pipes'",
     "E-DM1", "wrong_fu_mix"),
    ("'sim-initial waited until after the execute stage to discover "
     "a line misprediction'",
     "C-Ca", "late_branch_recovery"),
]


def main() -> None:
    harness = Harness()
    reference_machine = make_native_machine()

    for story, workload, bug in SESSIONS:
        print("=" * 72)
        print(f"paper: {story}")
        print(f"injected bug: {bug}\n")
        trace = harness.workloads.trace(workload)
        reference = reference_machine.run_trace(trace, workload)
        buggy = make_sim_with_bugs(bug).run_trace(trace, workload)
        print(diagnose(buggy, reference).render())
        print()


if __name__ == "__main__":
    main()
