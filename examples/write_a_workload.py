#!/usr/bin/env python3
"""Write your own microbenchmark in assembly and time it everywhere.

The paper's methodology lives and dies by targeted microbenchmarks;
this example shows the two ways to write one — the text assembler and
the ProgramBuilder API — and runs the result across the simulator
family.

Run:
    python examples/write_a_workload.py
"""

from repro import (
    NativeMachine,
    SimAlpha,
    SimOutOrder,
    make_sim_initial,
    make_sim_stripped,
)
from repro.functional import run_program
from repro.isa import Opcode, ProgramBuilder, assemble

#: A store-to-load microbenchmark in text assembly: every iteration
#: stores to a slot and immediately reloads it — store-wait predictor
#: and replay-trap behaviour in six instructions.
STORE_LOAD_KERNEL = """
    .word slot 0
    lda   r9, =slot
    lda   r1, #0
loop:
    addq  r3, r3, #1
    stq   r3, 0(r9)
    ldq   r4, 0(r9)
    addq  r1, r1, #1
    cmplt r2, r1, #2000
    bne   r2, loop
    halt
"""


def builder_variant() -> "Program":
    """The same kernel via the ProgramBuilder API, with the load hoisted
    away from the store so no conflict exists (a control)."""
    b = ProgramBuilder("no-conflict")
    slot_a = b.alloc_words([0])
    slot_b = b.alloc_words([0])
    b.load_imm("r9", slot_a)
    b.load_imm("r10", slot_b)
    b.load_imm("r1", 0)
    b.label("loop")
    b.emit(Opcode.ADDQ, dest="r3", srcs=("r3",), imm=1)
    b.emit(Opcode.STQ, srcs=("r3",), base="r9", disp=0)
    b.emit(Opcode.LDQ, dest="r4", base="r10", disp=0)  # different slot
    b.emit(Opcode.ADDQ, dest="r1", srcs=("r1",), imm=1)
    b.emit(Opcode.CMPLT, dest="r2", srcs=("r1",), imm=2000)
    b.branch(Opcode.BNE, "r2", "loop")
    b.halt()
    return b.build()


def main() -> None:
    conflict = assemble(STORE_LOAD_KERNEL, name="store-load")
    conflict.name = "store-load"
    control = builder_variant()

    simulators = [
        NativeMachine(),
        SimAlpha(),
        make_sim_initial(),
        make_sim_stripped(),
        SimOutOrder(),
    ]

    for program in (conflict, control):
        trace = run_program(program)
        print(f"\n{program.name} ({len(trace)} instructions):")
        for simulator in simulators:
            result = simulator.run_trace(trace, program.name)
            extras = ""
            if result.stats.store_replay_traps:
                extras = (f"  [{result.stats.store_replay_traps} store "
                          f"replay traps, "
                          f"{result.stats.store_wait_holds} holds]")
            print(f"  {result.simulator:14s} IPC {result.ipc:5.2f}{extras}")

    print(
        "\nThe conflicting kernel exposes the store-wait machinery on"
        "\nthe validated simulators; the stripped one just eats traps."
    )


if __name__ == "__main__":
    main()
