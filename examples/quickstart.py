#!/usr/bin/env python3
"""Quickstart: measure a simulator's experimental error.

The paper's core loop in twenty lines: pick a workload, run it on the
reference machine (measured DCPI-style), run it on the simulator you
are evaluating, and report the CPI error — then do it again with a
known-buggy simulator to see what unvalidated infrastructure costs.

Run:
    python examples/quickstart.py
"""

from repro import NativeMachine, SimAlpha, make_sim_initial
from repro.functional import run_program
from repro.validation import percent_error_cpi
from repro.workloads import build_microbenchmark


def main() -> None:
    # The paper's C-R microbenchmark: 500-deep recursion in a loop,
    # stressing the return address stack and the store-wait predictor.
    program = build_microbenchmark("C-R")
    trace = run_program(program)
    print(f"workload: {program.name} "
          f"({len(trace)} dynamic instructions)\n")

    # Reference: the DS-10L stand-in, measured with sampled counters.
    reference = NativeMachine().run_trace(trace, program.name)
    print(f"reference machine : IPC {reference.ipc:.2f}")

    # The validated simulator tracks it closely...
    validated = SimAlpha().run_trace(trace, program.name)
    error = percent_error_cpi(validated.cpi, reference.cpi)
    print(f"sim-alpha         : IPC {validated.ipc:.2f}  "
          f"error {error:+.1f}%")

    # ...the pre-validation simulator does not (paper: -198% on C-R).
    initial = make_sim_initial().run_trace(trace, program.name)
    error = percent_error_cpi(initial.cpi, reference.cpi)
    print(f"sim-initial       : IPC {initial.ipc:.2f}  "
          f"error {error:+.1f}%")

    print("\nEvent counts from the validated run:")
    stats = validated.stats
    print(f"  branch mispredicts : {stats.branch_mispredicts}")
    print(f"  RAS mispredicts    : {stats.ras_mispredicts}")
    print(f"  store replay traps : {stats.store_replay_traps}")
    print(f"  store-wait holds   : {stats.store_wait_holds}")


if __name__ == "__main__":
    main()
