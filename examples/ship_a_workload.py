#!/usr/bin/env python3
"""Ship a workload: binary images, digests, and checkpoints.

The paper's reproducibility recommendation asks researchers to publish
enough for others to re-run their studies.  This example shows the
infrastructure for that: serialise a workload to a binary image whose
content digest identifies it exactly, reload and replay it bit-
identically, and snapshot architectural state for fast-forwarded
timing runs.

Run:
    python examples/ship_a_workload.py
"""

import tempfile
from pathlib import Path

from repro import SimAlpha
from repro.functional import FunctionalMachine, run_program
from repro.functional.checkpoint import load_checkpoint, save_checkpoint
from repro.isa import load_program, program_digest, save_program
from repro.workloads import bubble_sort


def main() -> None:
    program = bubble_sort(size=40)
    workdir = Path(tempfile.mkdtemp(prefix="repro-ship-"))

    # 1. Serialise: the digest is the workload's identity.
    image = workdir / "bsort.img"
    digest = save_program(program, image)
    print(f"wrote {image.name}: {image.stat().st_size} bytes")
    print(f"content digest: {digest[:16]}...")

    # 2. Reload and verify bit-identical timing.
    reloaded = load_program(image)
    assert program_digest(reloaded) == digest
    original = SimAlpha().run_trace(run_program(program), program.name)
    replayed = SimAlpha().run_trace(run_program(reloaded), reloaded.name)
    print(f"original run : {original.cycles:.0f} cycles")
    print(f"replayed run : {replayed.cycles:.0f} cycles "
          f"({'identical' if original.cycles == replayed.cycles else 'DIFFER'})")

    # 3. Checkpoint the architectural result.
    machine = FunctionalMachine(reloaded)
    machine.run()
    checkpoint = workdir / "bsort.ckpt.json"
    save_checkpoint(machine.state, checkpoint)
    restored = load_checkpoint(checkpoint)
    values = [restored.memory.load_word(reloaded.data and
                                        min(reloaded.data) + 8 * i)
              for i in range(5)]
    print(f"checkpointed sorted prefix: {values}")
    print(f"artifacts in {workdir}")


if __name__ == "__main__":
    main()
