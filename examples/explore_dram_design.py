#!/usr/bin/env python3
"""Explore the DRAM design space with the Section 4.2 machinery.

The paper calibrated RAS/CAS/precharge/controller latency and the page
policy against M-M, STREAM, and lmbench.  This example uses the same
harness to answer a *design* question instead: how much does the page
policy matter per workload class, and where does the open-page policy
stop paying?

Run:
    python examples/explore_dram_design.py
"""

from dataclasses import replace

from repro.dram import DramConfig
from repro.reporting import render_table
from repro.validation import Harness
from repro.validation.calibrate import sim_alpha_with_dram


def main() -> None:
    harness = Harness()
    harness.workloads.register_calibration()

    workloads = [
        ("stream-copy", "sequential bandwidth"),
        ("stream-triad", "3-array bandwidth"),
        ("lmbench-memory", "dependent latency"),
        ("M-M", "row-hostile latency"),
    ]

    policies = {
        "open": DramConfig(page_policy="open"),
        "closed": DramConfig(page_policy="closed"),
        "open, slow CAS": DramConfig(page_policy="open", cas_cycles=6),
        "closed, fast RAS": DramConfig(page_policy="closed", ras_cycles=1),
    }

    rows = []
    cycles = {}
    for label, config in policies.items():
        row = [label]
        for name, _ in workloads:
            result = harness.run_one(
                lambda c=config, l=label: sim_alpha_with_dram(c, l), name
            )
            cycles[(label, name)] = result.cycles
            row.append(result.ipc)
        rows.append(row)

    print(render_table(
        ["DRAM policy"] + [name for name, _ in workloads],
        rows,
        title="IPC by DRAM configuration and workload",
    ))

    print("\nRelative cost of the closed-page policy per workload:")
    for name, description in workloads:
        open_cycles = cycles[("open", name)]
        closed_cycles = cycles[("closed", name)]
        delta = (closed_cycles - open_cycles) / open_cycles * 100
        print(f"  {name:16s} ({description:22s}): {delta:+6.1f}% cycles")

    print(
        "\nStreaming kernels reuse open rows, so the closed-page policy"
        "\ncosts them the most; the row-hostile M-M chase barely cares —"
        "\nwhich is why the paper needed all three workload classes to"
        "\npin the parameters down."
    )


if __name__ == "__main__":
    main()
