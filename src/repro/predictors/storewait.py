"""Store-wait predictor.

Paper Section 2.1: "a store-wait predictor, which is a 1024x1 bit table
that speculates whether a load should be issued if there are earlier,
unresolved stores that may share the same address as the load."

A load whose bit is set waits for all older stores to resolve before
issuing.  A load whose bit is clear issues eagerly; if an older store
to the same address then completes after the load, the load (and
everything younger) must be replayed — a *store replay trap*, which on
the 21264 flushes the pipeline.  The bit is set when a load causes such
a trap, and the whole table is cleared periodically so stale bits do
not permanently serialise loads.

The paper found that leaving this predictor out of sim-initial caused a
"precipitous" error on C-R, whose call frames produce many store→load
pairs to the same stack slots.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.predictors.tournament import PredictorStats

__all__ = ["StoreWaitConfig", "StoreWaitPredictor"]


@dataclass
class StoreWaitConfig:
    entries: int = 1024
    #: The table is flash-cleared every this many *cycles* on the real
    #: hardware; our trace-driven models clear on a retired-instruction
    #: cadence instead, which tracks cycles to within the IPC.
    clear_interval: int = 16384


class StoreWaitPredictor:
    """1024x1-bit wait table, indexed by load PC."""

    def __init__(self, config: StoreWaitConfig | None = None):
        self.config = config or StoreWaitConfig()
        if self.config.entries & (self.config.entries - 1):
            raise ValueError("store-wait entries must be a power of two")
        self._mask = self.config.entries - 1
        self._bits = bytearray(self.config.entries)
        self._since_clear = 0
        self.stats = PredictorStats()

    def _index(self, pc: int) -> int:
        return (pc >> 2) & self._mask

    def should_wait(self, pc: int) -> bool:
        """Whether the load at ``pc`` must wait for older stores."""
        self.stats.lookups += 1
        return bool(self._bits[self._index(pc)])

    def record_trap(self, pc: int) -> None:
        """The load at ``pc`` caused a store replay trap: set its bit."""
        self.stats.mispredictions += 1
        self._bits[self._index(pc)] = 1

    def tick(self, retired: int = 1) -> None:
        """Advance the periodic clear timer by ``retired`` instructions."""
        self._since_clear += retired
        if self._since_clear >= self.config.clear_interval:
            self._since_clear = 0
            for i in range(len(self._bits)):
                self._bits[i] = 0


#: Declarative profiler hooks (see :mod:`repro.obs.profiler`).
PROFILE_COMPONENTS = {
    "StoreWaitPredictor": {
        "should_wait": "issue/store-wait",
        "record_trap": "mem/store-wait",
        "tick": "retire/store-wait",
    },
}
