"""The 21264 line predictor.

The fetch stage does not wait for branch resolution — or even for
branch *prediction* — to choose the next fetch address.  A line
predictor, indexed by the current fetch octaword, directly predicts the
next octaword to fetch (an I-cache set pointer plus the offset of an
octaword within the line).  The slot-stage branch predictor can
*override* the line prediction for conditional/unconditional branches
(not jumps) when it predicts taken, can compute the target early (the
undocumented adder between fetch and slot — the paper's ``addr``
feature), and disagrees with the line prediction.

Initialisation matters: the paper reports choosing the initialisation
bits (``01``) that minimised error.  We expose that as ``init_mode``:
``"sequential"`` primes every entry to predict fall-through (the
behaviour the 01 encoding selects for never-seen lines), while
``"zero"`` predicts octaword zero until trained — the naive choice that
inflates cold-start mispredictions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.predictors.tournament import PredictorStats

__all__ = ["LinePredictorConfig", "LinePredictor"]

_OCTAWORD = 16


@dataclass
class LinePredictorConfig:
    entries: int = 1024
    init_mode: str = "sequential"  # "sequential" or "zero"
    #: Like the branch history, the line predictor is trained
    #: speculatively and repaired on mispredictions; non-speculative
    #: update (paper `spec` feature off) delays training.
    speculative_update: bool = True
    update_delay: int = 4


class LinePredictor:
    """Predicts the next fetch octaword from the current one."""

    def __init__(self, config: LinePredictorConfig | None = None):
        self.config = config or LinePredictorConfig()
        if self.config.init_mode not in ("sequential", "zero"):
            raise ValueError(
                f"unknown init_mode {self.config.init_mode!r}"
            )
        if self.config.entries & (self.config.entries - 1):
            raise ValueError("line predictor entries must be a power of two")
        self._mask = self.config.entries - 1
        self._table: dict[int, int] = {}
        self._pending: list[tuple[int, int]] = []
        self.stats = PredictorStats()

    def _index(self, octaword: int) -> int:
        return (octaword // _OCTAWORD) & self._mask

    def predict(self, octaword: int) -> int:
        """Predicted next fetch octaword after fetching ``octaword``."""
        index = self._index(octaword)
        if index in self._table:
            return self._table[index]
        if self.config.init_mode == "sequential":
            return octaword + _OCTAWORD
        return 0

    def predict_and_train(self, octaword: int, actual_next: int) -> int:
        """Predict the successor of ``octaword``; train toward truth.

        Returns the prediction made before training.  ``actual_next``
        must already be octaword aligned.
        """
        prediction = self.predict(octaword)
        self.stats.lookups += 1
        if prediction != actual_next:
            self.stats.mispredictions += 1
        index = self._index(octaword)
        if self.config.speculative_update:
            self._table[index] = actual_next
        else:
            # Training only lands `update_delay` fetches later; a tight
            # loop re-queries the entry before the update arrives.
            self._pending.append((index, actual_next))
            if len(self._pending) > self.config.update_delay:
                settled_index, settled_next = self._pending.pop(0)
                self._table[settled_index] = settled_next
        return prediction


#: Declarative profiler hooks (see :mod:`repro.obs.profiler`).  The
#: line predictor is also consulted from control resolution; its
#: exclusive time is pooled under the fetch phase, where most calls
#: originate.
PROFILE_COMPONENTS = {
    "LinePredictor": {
        "predict_and_train": "fetch/line-pred",
    },
}
