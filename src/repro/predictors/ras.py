"""Return address stack (RAS).

The 21264 pushes return addresses speculatively at fetch and repairs
the stack on mis-speculation recovery; the paper identified the lack of
speculative RAS update as a major source of the C-R (deep recursion)
error in sim-initial.  As with the branch history, a speculatively
maintained and repaired stack is architecturally correct in a
trace-driven replay; a retire-time-updated stack lags the fetch stream,
so returns that fetch before their call's push lands mispredict.  We
model the non-speculative case by delaying push/pop effects through a
queue of ``update_delay`` control-flow operations.

The stack is *circular*, like the hardware: overflow overwrites the
oldest entry and underflow reads stale slots rather than failing.  This
matters for the C-R microbenchmark — a 1,000-level self-recursion
overflows any 32-entry stack, but every frame's return address is the
same instruction, so the stale wrapped entries still predict correctly
(and the real machine indeed sustains a high IPC on C-R).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional, Tuple

from repro.predictors.tournament import PredictorStats

__all__ = ["RasConfig", "ReturnAddressStack"]


@dataclass
class RasConfig:
    depth: int = 32
    speculative_update: bool = True
    update_delay: int = 4


class ReturnAddressStack:
    """A circular return-address stack with optional delayed update."""

    def __init__(self, config: RasConfig | None = None):
        self.config = config or RasConfig()
        if self.config.depth < 1:
            raise ValueError("RAS depth must be positive")
        self._slots: list[Optional[int]] = [None] * self.config.depth
        self._top = 0  # index of the next push slot
        # Pending (op, value) effects not yet visible to predictions
        # when updates are non-speculative.  op is "push" or "pop".
        self._pending: Deque[Tuple[str, Optional[int]]] = deque()
        self.stats = PredictorStats()

    @property
    def top_value(self) -> Optional[int]:
        """Current top-of-stack prediction (stale slots included)."""
        return self._slots[(self._top - 1) % self.config.depth]

    def _apply(self, op: str, value: Optional[int]) -> None:
        if op == "push":
            self._slots[self._top] = value
            self._top = (self._top + 1) % self.config.depth
        else:
            self._top = (self._top - 1) % self.config.depth

    def _enqueue(self, op: str, value: Optional[int] = None) -> None:
        if self.config.speculative_update:
            self._apply(op, value)
            return
        self._pending.append((op, value))
        while len(self._pending) > self.config.update_delay:
            settled_op, settled_value = self._pending.popleft()
            self._apply(settled_op, settled_value)

    def push(self, return_pc: int) -> None:
        """Record a call: its return PC becomes the top prediction."""
        self._enqueue("push", return_pc)

    def predict_and_pop(self, actual_return_pc: int) -> bool:
        """Predict the target of a return; returns True if correct.

        ``actual_return_pc`` is the architecturally correct target, used
        both to score the prediction and (implicitly) to repair the
        stack — a trace replay never follows the wrong path.
        """
        self.stats.lookups += 1
        correct = self.top_value == actual_return_pc
        if not correct:
            self.stats.mispredictions += 1
        self._enqueue("pop")
        return correct


#: Declarative profiler hooks (see :mod:`repro.obs.profiler`).
PROFILE_COMPONENTS = {
    "ReturnAddressStack": {
        "push": "control/ras",
        "predict_and_pop": "control/ras",
    },
}
