"""The 21264 tournament branch predictor (local / global / choice).

Paper Section 2.1: the local predictor holds 1024 10-bit local
histories indexing a 1024-entry table of 3-bit counters; the global
predictor indexes a 4K-entry table of 2-bit counters with a 12-bit
global history; the choice predictor picks local vs. global per branch
from a 4K-entry table of 2-bit counters indexed by PC.

Speculative history update (the paper's ``spec`` feature) matters: the
21264 updates the global history shift register *speculatively* at
prediction time and repairs it on mis-speculation recovery.  Because
our timing models replay an in-order trace with known outcomes, a
speculatively maintained (and repaired) history is always the
architecturally correct history at prediction time.  A *non*-
speculative implementation only shifts outcomes in at retirement, so
predictions are made with a history that is missing the last few
in-flight branches.  We model that directly: with ``speculative_update
= False``, lookups use the history as of ``update_delay`` branches ago.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.predictors.saturating import CounterTable

__all__ = ["TournamentConfig", "TournamentPredictor", "PredictorStats"]


@dataclass
class TournamentConfig:
    """Sizing of the three component predictors (defaults = 21264)."""

    local_histories: int = 1024
    local_history_bits: int = 10
    local_counters: int = 1024
    local_counter_bits: int = 3
    global_history_bits: int = 12
    global_counters: int = 4096
    global_counter_bits: int = 2
    choice_counters: int = 4096
    choice_counter_bits: int = 2
    speculative_update: bool = True
    #: Branches typically unresolved in flight when histories are only
    #: updated at retirement.  Only used when speculative_update=False.
    update_delay: int = 6


@dataclass
class PredictorStats:
    lookups: int = 0
    mispredictions: int = 0

    @property
    def accuracy(self) -> float:
        if self.lookups == 0:
            return 1.0
        return 1.0 - self.mispredictions / self.lookups

    def reset(self) -> None:
        self.lookups = 0
        self.mispredictions = 0


class TournamentPredictor:
    """Predicts conditional-branch directions; trained on true outcomes."""

    def __init__(self, config: TournamentConfig | None = None):
        self.config = config or TournamentConfig()
        cfg = self.config
        self._local_history = [0] * cfg.local_histories
        self._local_hist_mask = (1 << cfg.local_history_bits) - 1
        self._local_index_mask = cfg.local_histories - 1
        self._local = CounterTable(
            cfg.local_counters, cfg.local_counter_bits,
            initial=(1 << cfg.local_counter_bits) // 2,
        )
        self._global = CounterTable(
            cfg.global_counters, cfg.global_counter_bits,
            initial=(1 << cfg.global_counter_bits) // 2,
        )
        self._choice = CounterTable(
            cfg.choice_counters, cfg.choice_counter_bits,
            initial=(1 << cfg.choice_counter_bits) // 2,
        )
        self._ghist_mask = (1 << cfg.global_history_bits) - 1
        self._ghist = 0
        # The histories visible to a non-speculative design lag the
        # true ones by the branches still in flight: outcomes pass
        # through a fixed-length queue before being applied.  The local
        # histories lag the same way (the 21264 updates them in the
        # fetch stage, speculatively).
        self._retired_ghist = 0
        self._pending: deque[bool] = deque()
        self._pending_local: deque = deque()  # (local index, outcome)
        self.stats = PredictorStats()

    # ------------------------------------------------------------------

    def _effective_ghist(self) -> int:
        """History visible at prediction time."""
        if self.config.speculative_update:
            return self._ghist
        return self._retired_ghist

    def predict(self, pc: int) -> bool:
        """Predicted direction for the branch at ``pc`` (no training)."""
        lidx = (pc >> 2) & self._local_index_mask
        lhist = self._local_history[lidx]
        local_taken = self._local.predict_taken(lhist)
        ghist = self._effective_ghist()
        global_taken = self._global.predict_taken(ghist)
        use_global = self._choice.predict_taken(pc >> 2)
        return global_taken if use_global else local_taken

    def predict_and_train(self, pc: int, taken: bool) -> bool:
        """Predict, record stats, and train with the true outcome.

        Returns the prediction made *before* training.
        """
        cfg = self.config
        lidx = (pc >> 2) & self._local_index_mask
        lhist = self._local_history[lidx]
        local_taken = self._local.predict_taken(lhist)
        ghist = self._effective_ghist()
        global_taken = self._global.predict_taken(ghist)
        use_global = self._choice.predict_taken(pc >> 2)
        prediction = global_taken if use_global else local_taken

        self.stats.lookups += 1
        if prediction != taken:
            self.stats.mispredictions += 1

        # Train the components.  The choice predictor only trains when
        # the components disagree, toward whichever was right.
        if local_taken != global_taken:
            self._choice.update(pc >> 2, global_taken == taken)
        self._local.update(lhist, taken)
        # The global table trains with the history used for prediction
        # under the real (speculative) scheme; a non-speculative design
        # trains at retire with the retired history, which matches what
        # the delayed lookups will see.
        train_hist = self._ghist if cfg.speculative_update else ghist
        self._global.update(train_hist, taken)

        # Advance histories with the true outcome.
        if cfg.speculative_update:
            self._local_history[lidx] = (
                ((lhist << 1) | int(taken)) & self._local_hist_mask
            )
        else:
            self._pending_local.append((lidx, taken))
            while len(self._pending_local) > cfg.update_delay:
                settled_lidx, settled_taken = self._pending_local.popleft()
                history = self._local_history[settled_lidx]
                self._local_history[settled_lidx] = (
                    ((history << 1) | int(settled_taken))
                    & self._local_hist_mask
                )
        self._ghist = ((self._ghist << 1) | int(taken)) & self._ghist_mask
        if not cfg.speculative_update:
            self._pending.append(taken)
            while len(self._pending) > cfg.update_delay:
                retired = self._pending.popleft()
                self._retired_ghist = (
                    ((self._retired_ghist << 1) | int(retired))
                    & self._ghist_mask
                )
        return prediction


#: Declarative profiler hooks (see :mod:`repro.obs.profiler`).
PROFILE_COMPONENTS = {
    "TournamentPredictor": {
        "predict_and_train": "control/bpred",
    },
}
