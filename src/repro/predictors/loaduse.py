"""Load-use (load hit/miss) predictor.

Paper Section 2.1: the issue stage uses "a load-use predictor, which is
a four-bit counter that speculates whether a load instruction will hit
in the level-one data cache."  When the counter predicts *hit*,
consumers of the load are issued speculatively assuming the three-cycle
hit latency; if the load actually misses, the instructions issued in
the two preceding cycles are squashed and re-issued (a mini replay).
When it predicts *miss*, consumers wait for the tag check, adding two
cycles even to loads that hit.

The real counter saturates up on hits and is decremented by two on each
mis-speculation, hence the asymmetry below.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.predictors.saturating import SaturatingCounter
from repro.predictors.tournament import PredictorStats

__all__ = ["LoadUseConfig", "LoadUsePredictor"]


@dataclass
class LoadUseConfig:
    bits: int = 4
    #: Recovery cost visible to the load's consumers when a predicted
    #: hit actually misses: the squashed instructions re-issue shortly
    #: after the fill, one cycle behind where a conservative schedule
    #: would have put them.  (The squash mostly wastes issue slots; the
    #: data itself is no later than the miss latency.)
    squash_cycles: int = 1
    #: Extra load-to-use cycles when issuing conservatively (waiting for
    #: the tag check before waking consumers).
    conservative_cycles: int = 2


class LoadUsePredictor:
    """A single global saturating counter predicting L1 D-cache hits."""

    def __init__(self, config: LoadUseConfig | None = None):
        self.config = config or LoadUseConfig()
        # Start saturated: loads are presumed to hit until proven otherwise.
        self._counter = SaturatingCounter(
            self.config.bits, initial=(1 << self.config.bits) - 1
        )
        self.stats = PredictorStats()

    @property
    def value(self) -> int:
        return self._counter.value

    def predicts_hit(self) -> bool:
        return self._counter.msb

    def predict_and_train(self, hit: bool) -> bool:
        """Record a load outcome; returns the pre-update prediction."""
        prediction = self.predicts_hit()
        self.stats.lookups += 1
        if prediction != hit:
            self.stats.mispredictions += 1
        if hit:
            self._counter.increment(1)
        else:
            self._counter.decrement(2)
        return prediction


#: Declarative profiler hooks (see :mod:`repro.obs.profiler`).
PROFILE_COMPONENTS = {
    "LoadUsePredictor": {
        "predict_and_train": "mem/load-use-pred",
    },
}
