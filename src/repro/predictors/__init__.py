"""The seven 21264 predictors plus the SimpleScalar-style BTB/2-level.

The 21264 "relies heavily on control and dependence speculation, using
five distinct predictors to keep the instruction pipe as full as
possible" in its front end (line, way, local, global, choice), plus two
more in the issue stage (load-use and store-wait).
"""

from repro.predictors.btb import BranchTargetBuffer, BtbConfig
from repro.predictors.line import LinePredictor, LinePredictorConfig
from repro.predictors.loaduse import LoadUseConfig, LoadUsePredictor
from repro.predictors.ras import RasConfig, ReturnAddressStack
from repro.predictors.saturating import CounterTable, SaturatingCounter
from repro.predictors.storewait import StoreWaitConfig, StoreWaitPredictor
from repro.predictors.tournament import (
    PredictorStats,
    TournamentConfig,
    TournamentPredictor,
)
from repro.predictors.twolevel import TwoLevelConfig, TwoLevelPredictor
from repro.predictors.way import WayPredictor, WayPredictorConfig

__all__ = [
    "BranchTargetBuffer",
    "BtbConfig",
    "LinePredictor",
    "LinePredictorConfig",
    "LoadUseConfig",
    "LoadUsePredictor",
    "RasConfig",
    "ReturnAddressStack",
    "CounterTable",
    "SaturatingCounter",
    "StoreWaitConfig",
    "StoreWaitPredictor",
    "PredictorStats",
    "TournamentConfig",
    "TournamentPredictor",
    "TwoLevelConfig",
    "TwoLevelPredictor",
    "WayPredictor",
    "WayPredictorConfig",
]
