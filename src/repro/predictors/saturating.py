"""Saturating counters and counter tables.

Every predictor in the 21264 front end is built from saturating
counters: the local predictor uses 3-bit counters, the global and
choice predictors 2-bit counters, and the issue stage's load-use
predictor a single 4-bit counter.
"""

from __future__ import annotations

from typing import List

__all__ = ["SaturatingCounter", "CounterTable"]


class SaturatingCounter:
    """An n-bit up/down saturating counter."""

    __slots__ = ("bits", "maximum", "value")

    def __init__(self, bits: int, initial: int = 0):
        if bits < 1:
            raise ValueError("counter needs at least one bit")
        self.bits = bits
        self.maximum = (1 << bits) - 1
        if not 0 <= initial <= self.maximum:
            raise ValueError(
                f"initial value {initial} out of range for {bits}-bit counter"
            )
        self.value = initial

    def increment(self, amount: int = 1) -> int:
        self.value = min(self.maximum, self.value + amount)
        return self.value

    def decrement(self, amount: int = 1) -> int:
        self.value = max(0, self.value - amount)
        return self.value

    @property
    def msb(self) -> bool:
        """The counter's most significant bit (the usual predict bit)."""
        return self.value > self.maximum // 2

    def __repr__(self) -> str:
        return f"SaturatingCounter(bits={self.bits}, value={self.value})"


class CounterTable:
    """A direct-mapped table of n-bit saturating counters.

    Stored as a flat list of ints for speed; the index mask is applied
    internally so callers can pass raw hash values.
    """

    __slots__ = ("bits", "maximum", "mask", "table")

    def __init__(self, entries: int, bits: int, initial: int = 0):
        if entries <= 0 or entries & (entries - 1):
            raise ValueError(f"table entries must be a power of two: {entries}")
        self.bits = bits
        self.maximum = (1 << bits) - 1
        if not 0 <= initial <= self.maximum:
            raise ValueError("initial value out of counter range")
        self.mask = entries - 1
        self.table: List[int] = [initial] * entries

    def __len__(self) -> int:
        return len(self.table)

    def read(self, index: int) -> int:
        return self.table[index & self.mask]

    def predict_taken(self, index: int) -> bool:
        """MSB of the indexed counter."""
        return self.table[index & self.mask] > self.maximum // 2

    def update(self, index: int, taken: bool, *, step: int = 1) -> None:
        """Train the indexed counter toward ``taken``."""
        i = index & self.mask
        value = self.table[i]
        if taken:
            self.table[i] = min(self.maximum, value + step)
        else:
            self.table[i] = max(0, value - step)
