"""Branch target buffer (used by the sim-outorder model).

SimpleScalar's front end predicts branch *targets* with a BTB rather
than a line predictor — the paper calls out the resulting "more
accurate target prediction (BTB instead of a line predictor)" as one
reason sim-outorder outruns the real machine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.predictors.tournament import PredictorStats

__all__ = ["BtbConfig", "BranchTargetBuffer"]


@dataclass
class BtbConfig:
    sets: int = 512
    ways: int = 4


class BranchTargetBuffer:
    """A set-associative tagged target buffer with LRU replacement."""

    def __init__(self, config: BtbConfig | None = None):
        self.config = config or BtbConfig()
        if self.config.sets & (self.config.sets - 1):
            raise ValueError("BTB sets must be a power of two")
        # Each set holds [(tag, target)], most recently used last.
        self._sets: List[List[Tuple[int, int]]] = [
            [] for _ in range(self.config.sets)
        ]
        self.stats = PredictorStats()

    def _locate(self, pc: int) -> Tuple[int, int]:
        word = pc >> 2
        return word & (self.config.sets - 1), word >> self.config.sets.bit_length() - 1

    def lookup(self, pc: int) -> Optional[int]:
        """Predicted target for the control instruction at ``pc``."""
        index, tag = self._locate(pc)
        entries = self._sets[index]
        for i, (entry_tag, target) in enumerate(entries):
            if entry_tag == tag:
                entries.append(entries.pop(i))  # refresh LRU position
                return target
        return None

    def lookup_and_train(self, pc: int, actual_target: int) -> Optional[int]:
        """Look up a target prediction, then install the true target."""
        prediction = self.lookup(pc)
        self.stats.lookups += 1
        if prediction != actual_target:
            self.stats.mispredictions += 1
        self.install(pc, actual_target)
        return prediction

    def install(self, pc: int, target: int) -> None:
        index, tag = self._locate(pc)
        entries = self._sets[index]
        for i, (entry_tag, _) in enumerate(entries):
            if entry_tag == tag:
                entries.pop(i)
                break
        entries.append((tag, target))
        if len(entries) > self.config.ways:
            entries.pop(0)
