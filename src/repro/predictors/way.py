"""The 21264 I-cache way predictor.

The two-way set-associative I-cache is accessed as if direct mapped
using a predicted way; a way misprediction costs a two-cycle bubble
(and retraining).  The paper found `eon`'s unusually high way-
misprediction rate exposed a modelling bug — sim-initial charged an
*extra* cycle for every way-predictor access; that bug lives in
:mod:`repro.core.bugs`, not here.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.predictors.tournament import PredictorStats

__all__ = ["WayPredictorConfig", "WayPredictor"]

_OCTAWORD = 16


@dataclass
class WayPredictorConfig:
    entries: int = 1024
    ways: int = 2


class WayPredictor:
    """Predicts which I-cache way the next fetch will hit in."""

    def __init__(self, config: WayPredictorConfig | None = None):
        self.config = config or WayPredictorConfig()
        if self.config.entries & (self.config.entries - 1):
            raise ValueError("way predictor entries must be a power of two")
        self._mask = self.config.entries - 1
        self._table: dict[int, int] = {}
        self.stats = PredictorStats()

    def _index(self, octaword: int) -> int:
        return (octaword // _OCTAWORD) & self._mask

    def predict(self, octaword: int) -> int:
        """Predicted way for the fetch of ``octaword`` (0 when cold)."""
        return self._table.get(self._index(octaword), 0)

    def predict_and_train(self, octaword: int, actual_way: int) -> int:
        """Predict the way and retrain with the way actually hit."""
        if not 0 <= actual_way < self.config.ways:
            raise ValueError(f"way {actual_way} out of range")
        prediction = self.predict(octaword)
        self.stats.lookups += 1
        if prediction != actual_way:
            self.stats.mispredictions += 1
        self._table[self._index(octaword)] = actual_way
        return prediction


#: Declarative profiler hooks (see :mod:`repro.obs.profiler`).
PROFILE_COMPONENTS = {
    "WayPredictor": {
        "predict_and_train": "fetch/way-pred",
    },
}
