"""Two-level adaptive branch predictor (sim-outorder's default).

The paper configures sim-outorder with "the 2-level adaptive branch
predictor along with the BTB [containing] a similar quantity of state
to the Alpha's tournament and line predictors."  SimpleScalar's 2-level
predictor XORs (or concatenates) a global history with the branch PC to
index a pattern table of 2-bit counters; the gshare-style XOR variant
is implemented here.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.predictors.saturating import CounterTable
from repro.predictors.tournament import PredictorStats

__all__ = ["TwoLevelConfig", "TwoLevelPredictor"]


@dataclass
class TwoLevelConfig:
    history_bits: int = 12
    pattern_entries: int = 4096
    counter_bits: int = 2
    xor_pc: bool = True


class TwoLevelPredictor:
    """gshare-style two-level adaptive direction predictor."""

    def __init__(self, config: TwoLevelConfig | None = None):
        self.config = config or TwoLevelConfig()
        self._table = CounterTable(
            self.config.pattern_entries,
            self.config.counter_bits,
            initial=(1 << self.config.counter_bits) // 2,
        )
        self._hist_mask = (1 << self.config.history_bits) - 1
        self._history = 0
        self.stats = PredictorStats()

    def _index(self, pc: int) -> int:
        if self.config.xor_pc:
            return (pc >> 2) ^ self._history
        return ((pc >> 2) << self.config.history_bits) | self._history

    def predict(self, pc: int) -> bool:
        return self._table.predict_taken(self._index(pc))

    def predict_and_train(self, pc: int, taken: bool) -> bool:
        """Predict the branch at ``pc``; train with the true outcome."""
        index = self._index(pc)
        prediction = self._table.predict_taken(index)
        self.stats.lookups += 1
        if prediction != taken:
            self.stats.mispredictions += 1
        self._table.update(index, taken)
        self._history = ((self._history << 1) | int(taken)) & self._hist_mask
        return prediction
