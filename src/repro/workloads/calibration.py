"""Memory-calibration workloads: STREAM and lmbench kernels.

Paper Section 4.2 tunes the DRAM parameters (RAS, CAS, precharge,
controller latency, page policy) to minimise error across three
memory-specific benchmarks: the M-M microbenchmark (back-to-back
latency), McCalpin's STREAM (sustained bandwidth for copy / scale /
add / triad), and lmbench (mean load latency at each level of the
hierarchy).  These are those kernels, rewritten in our ISA.
"""

from __future__ import annotations

from typing import Dict, List

from repro.isa.instructions import Opcode
from repro.isa.program import Program, ProgramBuilder
from repro.workloads.micro.memory import build_chain, memory_memory

__all__ = [
    "stream_kernel",
    "stream_suite",
    "lmbench_latency",
    "calibration_suite",
    "STREAM_KERNELS",
]

STREAM_KERNELS = ("copy", "scale", "add", "triad")


def stream_kernel(
    kernel: str, *, elements: int = 4096, passes: int = 1
) -> Program:
    """One STREAM kernel over arrays big enough to defeat the L2.

    ``elements`` 8-byte words per array (three arrays live at once,
    so even the default 4096 x 8B x 3 = 96KB working set overflows the
    64KB L1), accessed with the classic unit-stride stream pattern.

      copy:  c[i] = a[i]
      scale: b[i] = q * c[i]
      add:   c[i] = a[i] + b[i]
      triad: a[i] = b[i] + q * c[i]
    """
    if kernel not in STREAM_KERNELS:
        raise ValueError(
            f"unknown STREAM kernel {kernel!r}; expected {STREAM_KERNELS}"
        )
    b = ProgramBuilder(f"stream-{kernel}")
    bytes_per = elements * 8
    a = b.alloc(bytes_per, align=64)
    bb = b.alloc(bytes_per, align=64)
    c = b.alloc(bytes_per, align=64)

    b.load_imm("r1", 0)
    b.load_imm("r2", elements * passes)
    b.load_imm("r9", a)
    b.load_imm("r10", bb)
    b.load_imm("r11", c)
    b.load_imm("r20", 0)  # byte offset within the arrays
    b.load_imm("r21", bytes_per - 8)
    b.align_octaword()
    b.label("loop")
    b.emit(Opcode.ADDQ, dest="r13", srcs=("r9", "r20"))   # &a[i]
    b.emit(Opcode.ADDQ, dest="r14", srcs=("r10", "r20"))  # &b[i]
    b.emit(Opcode.ADDQ, dest="r15", srcs=("r11", "r20"))  # &c[i]
    if kernel == "copy":
        b.emit(Opcode.LDQ, dest="r4", base="r13", disp=0)
        b.emit(Opcode.STQ, srcs=("r4",), base="r15", disp=0)
    elif kernel == "scale":
        b.emit(Opcode.LDQ, dest="r4", base="r15", disp=0)
        b.emit(Opcode.SLL, dest="r4", srcs=("r4",), imm=1)  # q = 2
        b.emit(Opcode.STQ, srcs=("r4",), base="r14", disp=0)
    elif kernel == "add":
        b.emit(Opcode.LDQ, dest="r4", base="r13", disp=0)
        b.emit(Opcode.LDQ, dest="r5", base="r14", disp=0)
        b.emit(Opcode.ADDQ, dest="r4", srcs=("r4", "r5"))
        b.emit(Opcode.STQ, srcs=("r4",), base="r15", disp=0)
    else:  # triad
        b.emit(Opcode.LDQ, dest="r4", base="r14", disp=0)
        b.emit(Opcode.LDQ, dest="r5", base="r15", disp=0)
        b.emit(Opcode.SLL, dest="r5", srcs=("r5",), imm=1)
        b.emit(Opcode.ADDQ, dest="r4", srcs=("r4", "r5"))
        b.emit(Opcode.STQ, srcs=("r4",), base="r13", disp=0)
    # Advance the offset, wrapping at the end of the arrays.
    b.emit(Opcode.LDA, dest="r20", srcs=("r20",), imm=8)
    b.emit(Opcode.CMPLE, dest="r4", srcs=("r20", "r21"))
    b.emit(Opcode.CMOVEQ, dest="r20", srcs=("r4", "r31"))
    b.emit(Opcode.ADDQ, dest="r1", srcs=("r1",), imm=1)
    b.emit(Opcode.CMPLT, dest="r4", srcs=("r1", "r2"))
    b.branch(Opcode.BNE, "r4", "loop")
    b.halt()
    return b.build()


def stream_suite(**kwargs) -> List[Program]:
    """All four STREAM kernels."""
    return [stream_kernel(k, **kwargs) for k in STREAM_KERNELS]


def lmbench_latency(
    *, level: str = "memory", traversals: int | None = None
) -> Program:
    """lmbench-style load-latency probe at one hierarchy level.

    lmbench walks a pointer chain sized to sit at a chosen level and
    reports the mean latency per load.  Levels: "l1" (16KB), "l2"
    (256KB), "memory" (6MB, row-hostile stride).
    """
    geometries = {
        "l1": (256, 64, 30),
        "l2": (2048, 128, 4),
        "memory": (4096, 1472, 2),
    }
    if level not in geometries:
        raise ValueError(
            f"unknown lmbench level {level!r}; expected {sorted(geometries)}"
        )
    nodes, stride, default_traversals = geometries[level]
    reps = traversals if traversals is not None else default_traversals
    b = ProgramBuilder(f"lmbench-{level}")
    head = build_chain(b, nodes, stride)
    b.load_imm("r1", 0)
    b.load_imm("r2", nodes * reps)
    b.load_imm("r9", head)
    b.align_octaword()
    b.label("loop")
    b.emit(Opcode.LDQ, dest="r9", base="r9", disp=0)
    b.emit(Opcode.ADDQ, dest="r1", srcs=("r1",), imm=1)
    b.emit(Opcode.CMPLT, dest="r4", srcs=("r1", "r2"))
    b.branch(Opcode.BNE, "r4", "loop")
    b.halt()
    return b.build()


def calibration_suite() -> Dict[str, Program]:
    """The Section 4.2 workload set: M-M, STREAM, and lmbench."""
    programs: Dict[str, Program] = {"M-M": memory_memory()}
    for kernel in STREAM_KERNELS:
        program = stream_kernel(kernel)
        programs[program.name] = program
    for level in ("l1", "l2", "memory"):
        program = lmbench_latency(level=level)
        programs[program.name] = program
    return programs
