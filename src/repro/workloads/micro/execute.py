"""Execution-core microbenchmarks: E-I, E-F, E-Dn, E-DM1.

Paper Section 3.2:

* **E-I** — adds the index variable to eight independent, register-
  allocated integers, twenty times each, within a loop.  No memory
  operations, control hazards, or data dependences: close to the ideal
  4.0 IPC.
* **E-F** — the same computation on floating-point variables (the
  single FP add pipe limits throughput to ~1 per cycle).
* **E-Dn** — ``n`` dependent chains of register-allocated integer
  additions; each instruction depends on the instruction ``n``
  positions earlier, so IPC tracks ``n`` until structural limits bind.
* **E-DM1** — E-D1 with multiplies instead of adds: one long dependent
  multiply chain, IPC ~= 1/7 (the 21264 integer-multiply latency).
"""

from __future__ import annotations

from repro.isa.instructions import Opcode
from repro.isa.program import Program, ProgramBuilder

__all__ = [
    "execute_independent",
    "execute_float_independent",
    "execute_dependent",
    "execute_dependent_multiply",
]

_ACCUMULATORS = ("r3", "r4", "r5", "r6", "r7", "r8", "r9", "r10")


def execute_independent(*, iterations: int = 300, unroll: int = 20) -> Program:
    """E-I: eight independent integer adds, ``unroll`` times per loop."""
    b = ProgramBuilder("E-I")
    b.load_imm("r1", 0)
    b.load_imm("r2", iterations)
    b.align_octaword()
    b.label("loop")
    for _ in range(unroll):
        for reg in _ACCUMULATORS:
            b.emit(Opcode.ADDQ, dest=reg, srcs=(reg, "r1"))
    b.emit(Opcode.ADDQ, dest="r1", srcs=("r1",), imm=1)
    b.emit(Opcode.CMPLT, dest="r11", srcs=("r1", "r2"))
    b.branch(Opcode.BNE, "r11", "loop")
    b.unop(1)  # keep the loop body a whole number of octawords
    b.halt()
    return b.build()


def execute_float_independent(*, iterations: int = 300, unroll: int = 20) -> Program:
    """E-F: the E-I computation on floating-point registers."""
    fp_accumulators = ("f3", "f4", "f5", "f6", "f7", "f8", "f9", "f10")
    b = ProgramBuilder("E-F")
    b.load_imm("r1", 0)
    b.load_imm("r2", iterations)
    b.align_octaword()
    b.label("loop")
    for _ in range(unroll):
        for reg in fp_accumulators:
            b.emit(Opcode.ADDT, dest=reg, srcs=(reg, "f1"))
    b.emit(Opcode.ADDQ, dest="r1", srcs=("r1",), imm=1)
    b.emit(Opcode.CMPLT, dest="r11", srcs=("r1", "r2"))
    b.branch(Opcode.BNE, "r11", "loop")
    b.unop(1)
    b.halt()
    return b.build()


def execute_dependent(
    n: int, *, iterations: int = 400, body: int = 96
) -> Program:
    """E-Dn: ``n`` interleaved dependent chains of integer adds.

    Instruction ``i`` in the body adds into accumulator ``i % n``, so
    it depends on the instruction ``n`` positions earlier.
    """
    if not 1 <= n <= len(_ACCUMULATORS):
        raise ValueError(f"n must be in 1..{len(_ACCUMULATORS)}")
    b = ProgramBuilder(f"E-D{n}")
    b.load_imm("r1", 0)
    b.load_imm("r2", iterations)
    b.align_octaword()
    b.label("loop")
    for i in range(body):
        reg = _ACCUMULATORS[i % n]
        b.emit(Opcode.ADDQ, dest=reg, srcs=(reg,), imm=1)
    b.emit(Opcode.ADDQ, dest="r1", srcs=("r1",), imm=1)
    b.emit(Opcode.CMPLT, dest="r11", srcs=("r1", "r2"))
    b.branch(Opcode.BNE, "r11", "loop")
    b.unop(1)
    b.halt()
    return b.build()


def execute_dependent_multiply(*, iterations: int = 120, body: int = 48) -> Program:
    """E-DM1: a single dependent chain of integer multiplies."""
    b = ProgramBuilder("E-DM1")
    b.load_imm("r1", 0)
    b.load_imm("r2", iterations)
    b.load_imm("r3", 1)
    b.align_octaword()
    b.label("loop")
    for _ in range(body):
        b.emit(Opcode.MULQ, dest="r3", srcs=("r3",), imm=1)
    b.emit(Opcode.ADDQ, dest="r1", srcs=("r1",), imm=1)
    b.emit(Opcode.CMPLT, dest="r11", srcs=("r1", "r2"))
    b.branch(Opcode.BNE, "r11", "loop")
    b.unop(1)
    b.halt()
    return b.build()
