"""Front-end (control) microbenchmarks: C-Ca, C-Cb, C-R, C-Sn, C-O.

Paper Section 3.1.  These stress the 21264's five front-end predictors:

* **C-C** — a simple if-then-else in a loop, alternating between taking
  and not taking the conditional branch.  Two compiler versions padded
  the code differently with unops, training the line predictor on
  different branches; we reproduce both layouts as C-Ca and C-Cb.
* **C-R** — a 1,000-level deep recursive call inside an outer loop
  (subroutine calls, ``bsr``, the return address stack, and — through
  the call frames — the store-wait predictor).
* **C-Sn** — a 10-way switch statement driven through an indirect
  ``jmp``, where each case runs ``n`` consecutive iterations before
  moving to the next case (line-predictor/indirect-target stress; C-S1
  mispredicts the jump on every iteration).
* **C-O** — a hybrid: an if-then-else whose if-clause executes C-S2 and
  else-clause executes C-S3.
"""

from __future__ import annotations

from repro.isa.instructions import Opcode
from repro.isa.program import Program, ProgramBuilder

__all__ = [
    "control_conditional",
    "control_recursive",
    "control_switch",
    "control_complex",
]


def control_conditional(
    *, iterations: int = 3000, variant: str = "a"
) -> Program:
    """C-Ca / C-Cb: alternating if-then-else.

    ``variant`` selects the compiler layout: "a" (Compaq C V6.3-025)
    aligns the else-branch onto a fresh octaword; "b" (DEC C V5.9-008)
    pads so the join point shares an octaword with the branch.  The
    alternation itself is perfectly predictable by the local predictor;
    the measured differences come from line-predictor training.
    """
    if variant not in ("a", "b"):
        raise ValueError(f"C-C variant must be 'a' or 'b', got {variant!r}")
    b = ProgramBuilder(f"C-C{variant}")
    b.load_imm("r1", 0)            # i
    b.load_imm("r2", iterations)   # bound
    b.load_imm("r3", 0)            # then-counter
    b.load_imm("r4", 0)            # else-counter
    b.align_octaword()
    b.label("loop")
    # cond = i & 1; alternates every iteration.  The octaword holding
    # the beq fills exactly, so its successor alternates between the
    # fall-through octaword and the else octaword — the line-predictor
    # stress the paper's C-C exists to create.
    b.emit(Opcode.AND, dest="r5", srcs=("r1",), imm=1)
    b.branch(Opcode.BEQ, "r5", "else_part")
    b.emit(Opcode.ADDQ, dest="r3", srcs=("r3",), imm=1)
    b.emit(Opcode.ADDQ, dest="r3", srcs=("r3", "r1"))
    # Compaq C (variant a) pads the else branch onto its own fresh
    # octaword; DEC C (variant b) packs it right behind the br, so the
    # beq's two successors share an octaword and a *different* branch
    # (the br/join pair) trains the line predictor instead.
    b.jump("join")
    if variant == "a":
        b.align_octaword()
    else:
        b.unop(1)
    b.label("else_part")
    b.emit(Opcode.ADDQ, dest="r4", srcs=("r4",), imm=1)
    b.emit(Opcode.ADDQ, dest="r4", srcs=("r4", "r1"))
    if variant == "a":
        b.align_octaword()
    b.label("join")
    b.emit(Opcode.ADDQ, dest="r1", srcs=("r1",), imm=1)
    b.emit(Opcode.CMPLT, dest="r6", srcs=("r1", "r2"))
    b.branch(Opcode.BNE, "r6", "loop")
    b.halt()
    return b.build()


def control_recursive(*, depth: int = 500, outer: int = 12) -> Program:
    """C-R: deep recursion within an outer loop.

    Each level saves the return address and an argument on the stack,
    recurses until the argument reaches zero, then unwinds — exercising
    ``bsr``/``ret``, the RAS to full depth, and stack stores followed
    closely by loads (store-wait predictor food).
    """
    b = ProgramBuilder("C-R")
    b.load_imm("r1", 0)        # outer i
    b.load_imm("r2", outer)
    b.align_octaword()
    b.label("outer_loop")
    b.load_imm("r16", depth)   # argument: recursion depth
    b.call("recurse")
    b.emit(Opcode.ADDQ, dest="r1", srcs=("r1",), imm=1)
    b.emit(Opcode.CMPLT, dest="r3", srcs=("r1", "r2"))
    b.branch(Opcode.BNE, "r3", "outer_loop")
    b.halt()

    b.align_octaword()
    b.label("recurse")
    # Prologue: push RA and the argument.
    b.emit(Opcode.LDA, dest="r30", srcs=("r30",), imm=-16)
    b.emit(Opcode.STQ, srcs=("r26",), base="r30", disp=0)
    b.emit(Opcode.STQ, srcs=("r16",), base="r30", disp=8)
    b.branch(Opcode.BEQ, "r16", "base_case")
    b.emit(Opcode.SUBQ, dest="r16", srcs=("r16",), imm=1)
    b.call("recurse")
    b.label("base_case")
    # Epilogue: pop, accumulate, return.
    b.emit(Opcode.LDQ, dest="r16", base="r30", disp=8)
    b.emit(Opcode.LDQ, dest="r26", base="r30", disp=0)
    b.emit(Opcode.ADDQ, dest="r17", srcs=("r17", "r16"))
    b.emit(Opcode.LDA, dest="r30", srcs=("r30",), imm=16)
    b.ret()
    return b.build()


def control_switch(n: int, *, iterations: int = 2500, cases: int = 10) -> Program:
    """C-Sn: a ``cases``-way switch through an indirect jump.

    Case ``k`` is selected for ``n`` consecutive iterations before
    moving on, so the indirect target changes every ``n`` iterations:
    C-S1 changes target every time (a line-predictor miss per loop),
    C-S3 only every third time.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    b = ProgramBuilder(f"C-S{n}")
    table = b.alloc_words([0] * cases)
    b.load_imm("r1", 0)            # iteration counter
    b.load_imm("r2", iterations)
    b.load_imm("r7", 0)            # case index
    b.load_imm("r8", 0)            # repeats of current case
    b.load_imm("r9", table)
    b.align_octaword()
    b.label("loop")
    # target = table[case]; jmp target
    b.emit(Opcode.SLL, dest="r10", srcs=("r7",), imm=3)
    b.emit(Opcode.ADDQ, dest="r10", srcs=("r10", "r9"))
    b.emit(Opcode.LDQ, dest="r11", base="r10", disp=0)
    b.jmp_indirect("r11")
    case_labels = []
    for k in range(cases):
        label = f"case{k}"
        case_labels.append(label)
        b.align_octaword()
        b.label(label)
        b.emit(Opcode.ADDQ, dest="r12", srcs=("r12",), imm=k + 1)
        b.emit(Opcode.XOR, dest="r13", srcs=("r13", "r12"))
        b.jump("dispatch_done")
    b.align_octaword()
    b.label("dispatch_done")
    # Advance the case every n iterations.
    b.emit(Opcode.ADDQ, dest="r8", srcs=("r8",), imm=1)
    b.emit(Opcode.CMPLT, dest="r14", srcs=("r8",), imm=n)
    b.branch(Opcode.BNE, "r14", "no_advance")
    b.load_imm("r8", 0)
    b.emit(Opcode.ADDQ, dest="r7", srcs=("r7",), imm=1)
    b.emit(Opcode.CMPLT, dest="r14", srcs=("r7",), imm=cases)
    b.branch(Opcode.BNE, "r14", "no_advance")
    b.load_imm("r7", 0)
    b.label("no_advance")
    b.emit(Opcode.ADDQ, dest="r1", srcs=("r1",), imm=1)
    b.emit(Opcode.CMPLT, dest="r14", srcs=("r1", "r2"))
    b.branch(Opcode.BNE, "r14", "loop")
    b.halt()
    program = b.build()
    # Fill the jump table with the case addresses now that layout is known.
    for k, label in enumerate(case_labels):
        program.data[table + 8 * k] = program.pc_of(program.labels[label])
    return program


def control_complex(*, iterations: int = 2000) -> Program:
    """C-O: if-then-else wrapping two switch bodies.

    The paper describes it as looping over an if-then-else that
    executes C-S2 in the if clause and C-S3 in the else clause; the
    condition alternates so both dispatchers stay warm.
    """
    cases = 6
    b = ProgramBuilder("C-O")
    table_a = b.alloc_words([0] * cases)
    table_b = b.alloc_words([0] * cases)
    b.load_imm("r1", 0)
    b.load_imm("r2", iterations)
    b.load_imm("r7", 0)   # case index / repeat state for arm A (period 2)
    b.load_imm("r8", 0)
    b.load_imm("r20", 0)  # case index / repeat state for arm B (period 3)
    b.load_imm("r21", 0)
    b.load_imm("r9", table_a)
    b.load_imm("r22", table_b)
    b.align_octaword()
    b.label("loop")
    b.emit(Opcode.AND, dest="r5", srcs=("r1",), imm=1)
    b.branch(Opcode.BEQ, "r5", "arm_b")

    # Arm A: switch advancing every 2 iterations.
    b.emit(Opcode.SLL, dest="r10", srcs=("r7",), imm=3)
    b.emit(Opcode.ADDQ, dest="r10", srcs=("r10", "r9"))
    b.emit(Opcode.LDQ, dest="r11", base="r10", disp=0)
    b.jmp_indirect("r11")
    labels_a = []
    for k in range(cases):
        label = f"a_case{k}"
        labels_a.append(label)
        b.align_octaword()
        b.label(label)
        b.emit(Opcode.ADDQ, dest="r12", srcs=("r12",), imm=k + 1)
        b.jump("a_done")
    b.label("a_done")
    b.emit(Opcode.ADDQ, dest="r8", srcs=("r8",), imm=1)
    b.emit(Opcode.CMPLT, dest="r14", srcs=("r8",), imm=2)
    b.branch(Opcode.BNE, "r14", "join")
    b.load_imm("r8", 0)
    b.emit(Opcode.ADDQ, dest="r7", srcs=("r7",), imm=1)
    b.emit(Opcode.CMPLT, dest="r14", srcs=("r7",), imm=cases)
    b.branch(Opcode.BNE, "r14", "join")
    b.load_imm("r7", 0)
    b.jump("join")

    # Arm B: switch advancing every 3 iterations.
    b.label("arm_b")
    b.emit(Opcode.SLL, dest="r23", srcs=("r20",), imm=3)
    b.emit(Opcode.ADDQ, dest="r23", srcs=("r23", "r22"))
    b.emit(Opcode.LDQ, dest="r24", base="r23", disp=0)
    b.jmp_indirect("r24")
    labels_b = []
    for k in range(cases):
        label = f"b_case{k}"
        labels_b.append(label)
        b.align_octaword()
        b.label(label)
        b.emit(Opcode.ADDQ, dest="r25", srcs=("r25",), imm=k + 1)
        b.jump("b_done")
    b.label("b_done")
    b.emit(Opcode.ADDQ, dest="r21", srcs=("r21",), imm=1)
    b.emit(Opcode.CMPLT, dest="r14", srcs=("r21",), imm=3)
    b.branch(Opcode.BNE, "r14", "join")
    b.load_imm("r21", 0)
    b.emit(Opcode.ADDQ, dest="r20", srcs=("r20",), imm=1)
    b.emit(Opcode.CMPLT, dest="r14", srcs=("r20",), imm=cases)
    b.branch(Opcode.BNE, "r14", "join")
    b.load_imm("r20", 0)

    b.label("join")
    b.emit(Opcode.ADDQ, dest="r1", srcs=("r1",), imm=1)
    b.emit(Opcode.CMPLT, dest="r14", srcs=("r1", "r2"))
    b.branch(Opcode.BNE, "r14", "loop")
    b.halt()
    program = b.build()
    for k, label in enumerate(labels_a):
        program.data[table_a + 8 * k] = program.pc_of(program.labels[label])
    for k, label in enumerate(labels_b):
        program.data[table_b + 8 * k] = program.pc_of(program.labels[label])
    return program
