"""The microbenchmark suite (paper Section 3).

:func:`microbenchmark_suite` returns the benchmarks in the order of
paper Table 2: C-Ca, C-Cb, C-R, C-S1, C-S2, C-S3, C-O, E-I, E-F,
E-D1..E-D6, E-DM1, M-I, M-D, M-L2, M-M, M-IP — followed by the two
DRAM-layer kernels (M-ROW, M-BANK) this reproduction adds for the
Section 4.2 row-buffer/bank calibration.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.isa.program import Program
from repro.workloads.micro.control import (
    control_complex,
    control_conditional,
    control_recursive,
    control_switch,
)
from repro.workloads.micro.dram import (
    dram_bank_thrash,
    dram_row_stream,
)
from repro.workloads.micro.execute import (
    execute_dependent,
    execute_dependent_multiply,
    execute_float_independent,
    execute_independent,
)
from repro.workloads.micro.memory import (
    build_chain,
    memory_dependent,
    memory_independent,
    memory_instruction_prefetch,
    memory_l2,
    memory_loop,
    memory_memory,
)

__all__ = [
    "MICROBENCHMARKS",
    "BENCH_KERNELS",
    "microbenchmark_suite",
    "build_microbenchmark",
    "control_complex",
    "control_conditional",
    "control_recursive",
    "control_switch",
    "execute_dependent",
    "execute_dependent_multiply",
    "execute_float_independent",
    "execute_independent",
    "dram_bank_thrash",
    "dram_row_stream",
    "build_chain",
    "memory_dependent",
    "memory_independent",
    "memory_loop",
    "memory_instruction_prefetch",
    "memory_l2",
    "memory_memory",
]

#: Builder per benchmark, keyed by the paper's Table 2 names.
MICROBENCHMARKS: Dict[str, Callable[[], Program]] = {
    "C-Ca": lambda: control_conditional(variant="a"),
    "C-Cb": lambda: control_conditional(variant="b"),
    "C-R": control_recursive,
    "C-S1": lambda: control_switch(1),
    "C-S2": lambda: control_switch(2),
    "C-S3": lambda: control_switch(3),
    "C-O": control_complex,
    "E-I": execute_independent,
    "E-F": execute_float_independent,
    "E-D1": lambda: execute_dependent(1),
    "E-D2": lambda: execute_dependent(2),
    "E-D3": lambda: execute_dependent(3),
    "E-D4": lambda: execute_dependent(4),
    "E-D5": lambda: execute_dependent(5),
    "E-D6": lambda: execute_dependent(6),
    "E-DM1": execute_dependent_multiply,
    "M-I": memory_independent,
    "M-D": memory_dependent,
    "M-L2": memory_l2,
    "M-M": memory_memory,
    "M-IP": memory_instruction_prefetch,
    "M-ROW": dram_row_stream,
    "M-BANK": dram_bank_thrash,
}

#: Bench-only kernels, importable by name like the Table 2 set but
#: deliberately *not* in :data:`MICROBENCHMARKS`: they would otherwise
#: leak into every experiment grid keyed on ``micro_names()``.
#: M-LOOP is the blockcache benchmark kernel (~216k instructions of
#: steady all-hit loop).
BENCH_KERNELS: Dict[str, Callable[[], Program]] = {
    "M-LOOP": memory_loop,
}


def build_microbenchmark(name: str) -> Program:
    """Build one microbenchmark by its Table 2 (or bench-kernel) name."""
    builder = MICROBENCHMARKS.get(name) or BENCH_KERNELS.get(name)
    if builder is None:
        raise KeyError(
            f"unknown microbenchmark {name!r}; known: "
            f"{list(MICROBENCHMARKS) + list(BENCH_KERNELS)}"
        )
    return builder()


def microbenchmark_suite() -> List[Program]:
    """All microbenchmarks, Table 2 order plus the DRAM kernels."""
    return [builder() for builder in MICROBENCHMARKS.values()]
