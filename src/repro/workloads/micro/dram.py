"""DRAM-layer microbenchmarks: M-ROW and M-BANK.

The Section 3.3 memory microbenchmarks stop at "misses both caches"
(M-M); they say nothing about *how* the resulting DRAM traffic lands on
the banked SDRAM.  Calibrating — and sanitizing — the DRAM timing model
(Section 4.2) needs workloads whose row-buffer behaviour is known by
construction:

* **M-ROW** — a single cold pass of independent sequential loads, one
  per 64-byte block.  Every access misses both caches (compulsory), and
  consecutive blocks share a 4KB DRAM row, so under an open-page policy
  nearly every access after the first in a row is a row-buffer hit:
  the row-locality extreme.
* **M-BANK** — first touches every page in order (pinning the
  first-touch mapper to sequential frames), then strides through
  *alternate* pages at a fixed in-page offset.  With 8KB pages and 4KB
  rows, a two-page stride advances the row number by four — the bank
  index never changes — so every access opens a fresh row in the *same*
  bank while the loads (independent, eight MAF entries deep) overlap in
  flight: the bank-conflict extreme.

Both kernels are cold-pass by design: re-traversing would hit the L2
(the distinct-block footprint is tiny next to 2MB), so all volume comes
from fresh blocks.
"""

from __future__ import annotations

from repro.isa.instructions import Opcode
from repro.isa.program import Program, ProgramBuilder

__all__ = ["dram_row_stream", "dram_bank_thrash"]

#: Bytes per L1/L2 cache block (the stride that makes every load a
#: fresh block) and per first-touch page (the mapper's frame granule).
_BLOCK = 64
_PAGE = 8192


def dram_row_stream(*, blocks: int = 6144, unroll: int = 8) -> Program:
    """M-ROW: one cold sequential pass, one load per 64B block.

    ``blocks`` * 64B (default 384KB) of fresh memory, so every load
    misses L1 and L2 and the DRAM sees a pure streaming reference
    pattern: 64 consecutive block accesses per 4KB row.
    """
    if blocks % unroll:
        raise ValueError(
            f"blocks ({blocks}) must be a multiple of unroll ({unroll})"
        )
    b = ProgramBuilder("M-ROW")
    base = b.alloc(blocks * _BLOCK, align=_PAGE)
    b.load_imm("r1", 0)
    b.load_imm("r2", blocks // unroll)
    b.load_imm("r9", base)
    b.align_octaword()
    b.label("loop")
    for i in range(unroll):
        b.emit(Opcode.LDQ, dest=f"r{10 + (i % 8)}", base="r9",
               disp=_BLOCK * i)
    b.emit(Opcode.ADDQ, dest="r9", srcs=("r9",), imm=_BLOCK * unroll)
    b.emit(Opcode.ADDQ, dest="r1", srcs=("r1",), imm=1)
    b.emit(Opcode.CMPLT, dest="r4", srcs=("r1", "r2"))
    b.branch(Opcode.BNE, "r4", "loop")
    b.halt()
    return b.build()


def dram_bank_thrash(*, pages: int = 384, unroll: int = 2) -> Program:
    """M-BANK: same-bank row misses from overlapping independent loads.

    Phase 1 touches byte 0 of every page in ascending order, so the
    sequential first-touch mapper assigns frame ``i`` to page ``i``.
    Phase 2 then loads byte 4096 of every *second* page: physical
    addresses ``16384k + 4096`` whose DRAM row numbers are ``4k + 1`` —
    the same bank every time (rows advance by the bank count), a fresh
    row every time, and a fresh 64B block every time (phase 1 cached a
    different block), so the accesses all reach DRAM and pile onto one
    bank while in flight together.
    """
    if pages % 2 or (pages // 2) % unroll:
        raise ValueError(
            f"pages ({pages}) must be even with pages/2 a multiple of "
            f"unroll ({unroll})"
        )
    b = ProgramBuilder("M-BANK")
    base = b.alloc(pages * _PAGE, align=_PAGE)

    # Phase 1: pin the first-touch mapping — one load per page, in order.
    b.load_imm("r1", 0)
    b.load_imm("r2", pages)
    b.load_imm("r9", base)
    b.align_octaword()
    b.label("touch")
    b.emit(Opcode.LDQ, dest="r10", base="r9", disp=0)
    b.emit(Opcode.ADDQ, dest="r9", srcs=("r9",), imm=_PAGE)
    b.emit(Opcode.ADDQ, dest="r1", srcs=("r1",), imm=1)
    b.emit(Opcode.CMPLT, dest="r4", srcs=("r1", "r2"))
    b.branch(Opcode.BNE, "r4", "touch")

    # Phase 2: hammer one bank — alternate pages, second-row offset.
    stride = 2 * _PAGE
    b.load_imm("r1", 0)
    b.load_imm("r2", pages // (2 * unroll))
    b.load_imm("r9", base + _PAGE // 2)
    b.align_octaword()
    b.label("thrash")
    for i in range(unroll):
        b.emit(Opcode.LDQ, dest=f"r{10 + (i % 8)}", base="r9",
               disp=stride * i)
    b.emit(Opcode.ADDQ, dest="r9", srcs=("r9",), imm=stride * unroll)
    b.emit(Opcode.ADDQ, dest="r1", srcs=("r1",), imm=1)
    b.emit(Opcode.CMPLT, dest="r4", srcs=("r1", "r2"))
    b.branch(Opcode.BNE, "r4", "thrash")
    b.halt()
    return b.build()
