"""Memory-system microbenchmarks: M-I, M-D, M-L2, M-M, M-IP.

Paper Section 3.3:

* **M-I** — repeated *independent* loads, all resident in the L1
  D-cache, summed into a register: L1 bandwidth (two ports).
* **M-D** — walks a linked list resident in L1, each load waiting on
  the previous: L1 load-to-use latency.
* **M-L2** — the same access pattern coded to miss the L1 on every
  reference (a working set between the 64KB L1 and the 2MB L2).
* **M-M** — misses both caches (working set beyond 2MB): back-to-back
  main-memory latency; also one of the Section 4.2 DRAM-calibration
  workloads.
* **M-IP** — iterates over a loop body large enough to flush the L1
  instruction cache every iteration: I-cache prefetch efficacy.
"""

from __future__ import annotations

from repro.isa.instructions import Opcode
from repro.isa.program import Program, ProgramBuilder

__all__ = [
    "memory_independent",
    "memory_loop",
    "memory_dependent",
    "memory_l2",
    "memory_memory",
    "memory_instruction_prefetch",
    "build_chain",
]


def build_chain(
    b: ProgramBuilder,
    nodes: int,
    stride: int,
    *,
    align: int = 64,
) -> int:
    """Allocate a pointer chain of ``nodes`` spaced ``stride`` bytes.

    Each node's first word holds the address of the next node; the last
    points back to the first.  Returns the head address.  A sequential
    chain with a large stride defeats spatial locality while keeping
    the footprint deterministic.
    """
    if nodes < 1:
        raise ValueError("chain needs at least one node")
    base = b.alloc(nodes * stride, align=align)
    for i in range(nodes):
        node = base + i * stride
        nxt = base + ((i + 1) % nodes) * stride
        b.poke(node, nxt)
    return base


def memory_independent(
    *, iterations: int = 800, unroll: int = 16, name: str = "M-I"
) -> Program:
    """M-I: independent L1-resident loads plus accumulating adds."""
    b = ProgramBuilder(name)
    values = b.alloc_words(list(range(unroll)))
    b.load_imm("r1", 0)
    b.load_imm("r2", iterations)
    b.load_imm("r9", values)
    b.load_imm("r3", 0)
    b.align_octaword()
    b.label("loop")
    for i in range(unroll):
        dest = f"r{10 + (i % 8)}"
        b.emit(Opcode.LDQ, dest=dest, base="r9", disp=8 * i)
        b.emit(Opcode.ADDQ, dest="r3", srcs=("r3", dest))
    b.emit(Opcode.ADDQ, dest="r3", srcs=("r3", "r1"))
    b.emit(Opcode.ADDQ, dest="r1", srcs=("r1",), imm=1)
    b.emit(Opcode.CMPLT, dest="r4", srcs=("r1", "r2"))
    b.branch(Opcode.BNE, "r4", "loop")
    b.halt()
    return b.build()


def memory_loop(*, iterations: int = 6000, unroll: int = 16) -> Program:
    """M-LOOP: the M-I body scaled up to a replay-dominated run.

    Same all-hit independent-load loop as M-I, but long enough
    (~216k dynamic instructions) that a steady-state fast path — not
    warm-up or capture — dominates wall time.  This is the blockcache
    benchmark kernel: its timing is identical per iteration after
    warm-up, so any speedup measured on it is pure replay leverage.
    """
    return memory_independent(
        iterations=iterations, unroll=unroll, name="M-LOOP"
    )


def _pointer_chase(
    name: str,
    *,
    nodes: int,
    stride: int,
    traversals: int,
) -> Program:
    """Common shape of M-D / M-L2 / M-M: walk a chain repeatedly."""
    b = ProgramBuilder(name)
    head = build_chain(b, nodes, stride)
    b.load_imm("r1", 0)
    b.load_imm("r2", traversals * nodes)
    b.load_imm("r9", head)
    b.align_octaword()
    b.label("loop")
    b.emit(Opcode.LDQ, dest="r9", base="r9", disp=0)
    b.emit(Opcode.ADDQ, dest="r3", srcs=("r3", "r9"))
    b.emit(Opcode.ADDQ, dest="r1", srcs=("r1",), imm=1)
    b.emit(Opcode.CMPLT, dest="r4", srcs=("r1", "r2"))
    b.branch(Opcode.BNE, "r4", "loop")
    b.halt()
    return b.build()


def memory_dependent(*, nodes: int = 64, traversals: int = 150) -> Program:
    """M-D: L1-resident pointer chase (64 nodes x 64B = 4KB).

    A small chain traversed many times so the steady-state 3-cycle
    load-to-use chain dominates the unavoidable cold-fill traversal.
    """
    return _pointer_chase("M-D", nodes=nodes, stride=64, traversals=traversals)


def memory_l2(*, nodes: int = 2048, traversals: int = 8) -> Program:
    """M-L2: misses L1 on every reference, hits L2 (2048 x 64B = 128KB,
    with a 64B stride so every node is a fresh L1 block)."""
    return _pointer_chase("M-L2", nodes=nodes, stride=64, traversals=traversals)


def memory_memory(*, nodes: int = 4096, traversals: int = 2) -> Program:
    """M-M: misses both levels (4096 x 832B = ~3.4MB > 2MB L2).

    The 832-byte stride gives every access a fresh L1/L2 block while
    crossing DRAM rows often enough to keep the row-buffer hit rate
    realistic, so the chase measures back-to-back main-memory latency
    as Section 4.2 requires.
    """
    return _pointer_chase("M-M", nodes=nodes, stride=832, traversals=traversals)


def memory_instruction_prefetch(
    *, iterations: int = 10, body_instructions: int = 20480
) -> Program:
    """M-IP: a straight-line body too big for the 64KB I-cache.

    20480 instructions x 4 bytes = 80KB of code per iteration, flushing
    the L1 I-cache each pass; with hardware prefetch the sequential
    refills pipeline, without it every line stalls.
    """
    b = ProgramBuilder("M-IP")
    b.load_imm("r1", 0)
    b.load_imm("r2", iterations)
    b.align_octaword()
    b.label("loop")
    for i in range(body_instructions):
        reg = f"r{3 + (i % 8)}"
        b.emit(Opcode.ADDQ, dest=reg, srcs=(reg,), imm=1)
    b.emit(Opcode.ADDQ, dest="r1", srcs=("r1",), imm=1)
    b.emit(Opcode.CMPLT, dest="r4", srcs=("r1", "r2"))
    b.branch(Opcode.BNE, "r4", "loop")
    b.halt()
    return b.build()
