"""Classic algorithm kernels written in the project ISA.

Beyond the paper's microbenchmarks and SPEC proxies, these are real
algorithms — useful as integration workloads (the functional machine
must compute correct results, which the tests verify architecturally)
and as demonstration inputs for the validation methodology.
"""

from __future__ import annotations

from typing import List

from repro.isa.instructions import Opcode
from repro.isa.program import Program, ProgramBuilder

__all__ = [
    "matmul",
    "memcpy_kernel",
    "binary_search",
    "bubble_sort",
    "checksum",
    "kernel_suite",
]


def matmul(n: int = 12) -> Program:
    """Naive n x n integer matrix multiply: C = A * B.

    A[i][j] = i + j, B[i][j] = (i == j), so C should equal A.
    """
    b = ProgramBuilder(f"matmul-{n}")
    a_base = b.alloc_words(
        [i + j for i in range(n) for j in range(n)]
    )
    b_base = b.alloc_words(
        [1 if i == j else 0 for i in range(n) for j in range(n)]
    )
    c_base = b.alloc(8 * n * n)

    # r1=i, r2=j, r3=k, r4=sum, r9/r10/r11 = bases
    b.load_imm("r9", a_base)
    b.load_imm("r10", b_base)
    b.load_imm("r11", c_base)
    b.load_imm("r1", 0)
    b.label("i_loop")
    b.load_imm("r2", 0)
    b.label("j_loop")
    b.load_imm("r3", 0)
    b.load_imm("r4", 0)
    b.label("k_loop")
    # r5 = A[i][k] : addr = a + (i*n + k)*8
    b.load_imm("r13", n)
    b.emit(Opcode.MULQ, dest="r13", srcs=("r13", "r1"))
    b.emit(Opcode.ADDQ, dest="r13", srcs=("r13", "r3"))
    b.emit(Opcode.SLL, dest="r13", srcs=("r13",), imm=3)
    b.emit(Opcode.ADDQ, dest="r13", srcs=("r13", "r9"))
    b.emit(Opcode.LDQ, dest="r5", base="r13", disp=0)
    # r6 = B[k][j]
    b.load_imm("r14", n)
    b.emit(Opcode.MULQ, dest="r14", srcs=("r14", "r3"))
    b.emit(Opcode.ADDQ, dest="r14", srcs=("r14", "r2"))
    b.emit(Opcode.SLL, dest="r14", srcs=("r14",), imm=3)
    b.emit(Opcode.ADDQ, dest="r14", srcs=("r14", "r10"))
    b.emit(Opcode.LDQ, dest="r6", base="r14", disp=0)
    # sum += A*B
    b.emit(Opcode.MULQ, dest="r5", srcs=("r5", "r6"))
    b.emit(Opcode.ADDQ, dest="r4", srcs=("r4", "r5"))
    b.emit(Opcode.ADDQ, dest="r3", srcs=("r3",), imm=1)
    b.emit(Opcode.CMPLT, dest="r15", srcs=("r3",), imm=n)
    b.branch(Opcode.BNE, "r15", "k_loop")
    # C[i][j] = sum
    b.load_imm("r13", n)
    b.emit(Opcode.MULQ, dest="r13", srcs=("r13", "r1"))
    b.emit(Opcode.ADDQ, dest="r13", srcs=("r13", "r2"))
    b.emit(Opcode.SLL, dest="r13", srcs=("r13",), imm=3)
    b.emit(Opcode.ADDQ, dest="r13", srcs=("r13", "r11"))
    b.emit(Opcode.STQ, srcs=("r4",), base="r13", disp=0)
    b.emit(Opcode.ADDQ, dest="r2", srcs=("r2",), imm=1)
    b.emit(Opcode.CMPLT, dest="r15", srcs=("r2",), imm=n)
    b.branch(Opcode.BNE, "r15", "j_loop")
    b.emit(Opcode.ADDQ, dest="r1", srcs=("r1",), imm=1)
    b.emit(Opcode.CMPLT, dest="r15", srcs=("r1",), imm=n)
    b.branch(Opcode.BNE, "r15", "i_loop")
    b.halt()
    program = b.build()
    program.c_base = c_base  # expose for architectural checks
    program.n = n
    return program


def memcpy_kernel(words: int = 2048) -> Program:
    """Copy ``words`` 64-bit words, unrolled by four."""
    b = ProgramBuilder(f"memcpy-{words}")
    src = b.alloc_words([(i * 7919) & 0xFFFF for i in range(words)])
    dst = b.alloc(8 * words)
    b.load_imm("r9", src)
    b.load_imm("r10", dst)
    b.load_imm("r1", 0)
    b.label("loop")
    for u in range(4):
        b.emit(Opcode.LDQ, dest=f"r{3 + u}", base="r9", disp=8 * u)
        b.emit(Opcode.STQ, srcs=(f"r{3 + u}",), base="r10", disp=8 * u)
    b.emit(Opcode.LDA, dest="r9", srcs=("r9",), imm=32)
    b.emit(Opcode.LDA, dest="r10", srcs=("r10",), imm=32)
    b.emit(Opcode.ADDQ, dest="r1", srcs=("r1",), imm=4)
    b.emit(Opcode.CMPLT, dest="r2", srcs=("r1",), imm=words)
    b.branch(Opcode.BNE, "r2", "loop")
    b.halt()
    program = b.build()
    program.src_base = src
    program.dst_base = dst
    program.words = words
    return program


def binary_search(size: int = 1024, probes: int = 400) -> Program:
    """Repeated binary searches over a sorted array.

    The element values are 2*i, and the probe keys sweep both present
    and absent values, producing the data-dependent branch behaviour
    binary search is famous for.
    """
    b = ProgramBuilder(f"bsearch-{size}")
    table = b.alloc_words([2 * i for i in range(size)])
    b.load_imm("r9", table)
    b.load_imm("r1", 0)          # probe counter
    b.load_imm("r20", 0)         # found-counter
    b.label("probe_loop")
    # key = (probe * 2654435761) % (2*size): mixes hits and misses.
    b.emit(Opcode.MULQ, dest="r2", srcs=("r1",), imm=2654435761)
    b.emit(Opcode.AND, dest="r2", srcs=("r2",), imm=2 * size - 1)
    b.load_imm("r3", 0)          # lo
    b.load_imm("r4", size)       # hi
    b.label("search_loop")
    b.emit(Opcode.CMPLT, dest="r5", srcs=("r3", "r4"))
    b.branch(Opcode.BEQ, "r5", "done")
    # mid = (lo + hi) >> 1 ; value = table[mid]
    b.emit(Opcode.ADDQ, dest="r6", srcs=("r3", "r4"))
    b.emit(Opcode.SRL, dest="r6", srcs=("r6",), imm=1)
    b.emit(Opcode.SLL, dest="r7", srcs=("r6",), imm=3)
    b.emit(Opcode.ADDQ, dest="r7", srcs=("r7", "r9"))
    b.emit(Opcode.LDQ, dest="r8", base="r7", disp=0)
    # if value == key: found
    b.emit(Opcode.CMPEQ, dest="r5", srcs=("r8", "r2"))
    b.branch(Opcode.BNE, "r5", "found")
    # if value < key: lo = mid + 1 else hi = mid
    b.emit(Opcode.CMPLT, dest="r5", srcs=("r8", "r2"))
    b.branch(Opcode.BEQ, "r5", "go_left")
    b.emit(Opcode.ADDQ, dest="r3", srcs=("r6",), imm=1)
    b.jump("search_loop")
    b.label("go_left")
    b.emit(Opcode.ADDQ, dest="r4", srcs=("r6", "r31"))
    b.jump("search_loop")
    b.label("found")
    b.emit(Opcode.ADDQ, dest="r20", srcs=("r20",), imm=1)
    b.label("done")
    b.emit(Opcode.ADDQ, dest="r1", srcs=("r1",), imm=1)
    b.emit(Opcode.CMPLT, dest="r5", srcs=("r1",), imm=probes)
    b.branch(Opcode.BNE, "r5", "probe_loop")
    b.halt()
    program = b.build()
    program.found_reg = "r20"
    return program


def bubble_sort(size: int = 48) -> Program:
    """Bubble-sort a descending array into ascending order in memory."""
    b = ProgramBuilder(f"bsort-{size}")
    table = b.alloc_words(list(range(size, 0, -1)))
    b.load_imm("r9", table)
    b.load_imm("r1", 0)              # outer i
    b.label("outer")
    b.load_imm("r2", 0)              # inner j
    b.load_imm("r8", size - 1)
    b.emit(Opcode.SUBQ, dest="r8", srcs=("r8", "r1"))
    b.label("inner")
    b.emit(Opcode.SLL, dest="r3", srcs=("r2",), imm=3)
    b.emit(Opcode.ADDQ, dest="r3", srcs=("r3", "r9"))
    b.emit(Opcode.LDQ, dest="r4", base="r3", disp=0)
    b.emit(Opcode.LDQ, dest="r5", base="r3", disp=8)
    b.emit(Opcode.CMPLE, dest="r6", srcs=("r4", "r5"))
    b.branch(Opcode.BNE, "r6", "no_swap")
    b.emit(Opcode.STQ, srcs=("r5",), base="r3", disp=0)
    b.emit(Opcode.STQ, srcs=("r4",), base="r3", disp=8)
    b.label("no_swap")
    b.emit(Opcode.ADDQ, dest="r2", srcs=("r2",), imm=1)
    b.emit(Opcode.CMPLT, dest="r6", srcs=("r2", "r8"))
    b.branch(Opcode.BNE, "r6", "inner")
    b.emit(Opcode.ADDQ, dest="r1", srcs=("r1",), imm=1)
    b.emit(Opcode.CMPLT, dest="r6", srcs=("r1",), imm=size - 1)
    b.branch(Opcode.BNE, "r6", "outer")
    b.halt()
    program = b.build()
    program.table_base = table
    program.size = size
    return program


def checksum(words: int = 4096) -> Program:
    """A rotating-XOR checksum over a buffer (byte-shuffling ALU mix)."""
    b = ProgramBuilder(f"checksum-{words}")
    data = b.alloc_words([(i * 2654435761) & ((1 << 64) - 1)
                          for i in range(words)])
    b.load_imm("r9", data)
    b.load_imm("r1", 0)
    b.load_imm("r4", 0)
    b.label("loop")
    b.emit(Opcode.LDQ, dest="r3", base="r9", disp=0)
    b.emit(Opcode.XOR, dest="r4", srcs=("r4", "r3"))
    b.emit(Opcode.SLL, dest="r5", srcs=("r4",), imm=13)
    b.emit(Opcode.SRL, dest="r6", srcs=("r4",), imm=51)
    b.emit(Opcode.OR, dest="r4", srcs=("r5", "r6"))
    b.emit(Opcode.LDA, dest="r9", srcs=("r9",), imm=8)
    b.emit(Opcode.ADDQ, dest="r1", srcs=("r1",), imm=1)
    b.emit(Opcode.CMPLT, dest="r2", srcs=("r1",), imm=words)
    b.branch(Opcode.BNE, "r2", "loop")
    b.halt()
    program = b.build()
    program.checksum_reg = "r4"
    return program


def kernel_suite() -> List[Program]:
    """All the classic kernels at their default sizes."""
    return [matmul(), memcpy_kernel(), binary_search(), bubble_sort(),
            checksum()]
