"""Workloads: the 21 microbenchmarks, SPEC proxies, and calibration
kernels, plus the cached-trace registry."""

from repro.workloads.calibration import (
    STREAM_KERNELS,
    calibration_suite,
    lmbench_latency,
    stream_kernel,
    stream_suite,
)
from repro.workloads.macro import (
    SPEC2000_PROFILES,
    SPEC95_PROFILES,
    WorkloadProfile,
    build_macro,
    build_spec2000,
    build_spec95,
    spec2000_suite,
    spec95_suite,
)
from repro.workloads.kernels import (
    binary_search,
    bubble_sort,
    checksum,
    kernel_suite,
    matmul,
    memcpy_kernel,
)
from repro.workloads.micro import (
    MICROBENCHMARKS,
    build_microbenchmark,
    microbenchmark_suite,
)
from repro.workloads.suite import (
    WorkloadSet,
    micro_names,
    spec2000_names,
    spec95_names,
)

__all__ = [
    "STREAM_KERNELS",
    "calibration_suite",
    "lmbench_latency",
    "stream_kernel",
    "stream_suite",
    "SPEC2000_PROFILES",
    "SPEC95_PROFILES",
    "WorkloadProfile",
    "build_macro",
    "build_spec2000",
    "build_spec95",
    "spec2000_suite",
    "spec95_suite",
    "MICROBENCHMARKS",
    "build_microbenchmark",
    "microbenchmark_suite",
    "binary_search",
    "bubble_sort",
    "checksum",
    "kernel_suite",
    "matmul",
    "memcpy_kernel",
    "WorkloadSet",
    "micro_names",
    "spec2000_names",
    "spec95_names",
]
