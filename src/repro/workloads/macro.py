"""Synthetic macrobenchmarks: SPEC2000 and SPEC95 workload proxies.

The paper validates against ten SPEC2000 benchmarks run to completion
(1.4 billion instructions for `art` alone).  A pure-Python simulator
cannot replay those binaries, so each benchmark is replaced by a
*profile-driven synthetic proxy* (DESIGN.md substitution table): a
generated program whose instruction mix, working-set structure, branch
predictability, pointer-chasing, call behaviour, I-cache pressure, and
store-to-load conflict rate are tuned per benchmark so the proxy lands
near the paper's native IPC and — more importantly — stresses the same
simulator mechanisms:

* `mesa`'s high L2 miss rate (43% in the paper) makes it sensitive to
  everything sim-alpha does not model beyond the L2;
* `art` is memory-parallel with store/load conflicts, feeding the MAF
  and replay-trap machinery (the paper's positive-error outlier);
* `eon` hops among call targets that collide in the I-cache, producing
  its "unusually high number of way mispredictions";
* `lucas` streams floating-point data DRAM-row-coherently.

All generation is seeded and deterministic.  Dynamic branch behaviour
comes from an in-register linear congruential generator, so the
functional machine computes real outcomes without any host randomness.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.isa.instructions import Opcode
from repro.isa.program import Program, ProgramBuilder
from repro.workloads.micro.memory import build_chain

__all__ = [
    "WorkloadProfile",
    "build_macro",
    "SPEC2000_PROFILES",
    "SPEC95_PROFILES",
    "spec2000_suite",
    "spec95_suite",
    "build_spec2000",
    "build_spec95",
]

# Registers reserved by the generator:
#   r1 loop counter, r2 bound, r3 LCG state, r9 hot base, r10 warm
#   base, r11 cold base, r12 chase pointer, r13/r14 scratch addresses,
#   r15 sink, r16 argument, r26 RA, r30 SP.
#: r19 is reserved as the serial dependence spine.
_INT_ACCS = ("r4", "r5", "r6", "r7", "r8", "r17", "r18")
_SPINE = "r19"
_FP_ACCS = ("f4", "f5", "f6", "f7", "f8", "f9")

_LCG_MUL = 0x5DEECE66D
_LCG_ADD = 0xB


@dataclass(frozen=True)
class WorkloadProfile:
    """Knobs describing one benchmark proxy."""

    name: str
    suite: str = "spec2000"
    #: Body "segments" per loop iteration; each segment is a handful of
    #: compute ops, possibly memory accesses, and usually a branch.
    segments: int = 24
    iterations: int = 90
    #: Fraction of compute operations that are floating point.
    fp_ratio: float = 0.0
    #: Of integer compute, how much is multiply.
    mul_ratio: float = 0.02
    #: Of FP compute, how much is divide/sqrt.
    div_ratio: float = 0.0
    #: Loads per segment (expected value).
    loads_per_segment: float = 1.2
    #: Stores per segment (expected value).
    stores_per_segment: float = 0.4
    #: Access mix across the three arrays (must sum to <= 1; the
    #: remainder hits the hot array).
    warm_frac: float = 0.15
    cold_frac: float = 0.0
    #: Fraction of loads that walk sequential streams instead of using
    #: LCG-random indices.  Streams model array kernels: they are DRAM-
    #: row- and TLB-friendly, and with several concurrent streams they
    #: thrash the per-bank open rows — which the native controller's
    #: row cache absorbs but sim-alpha's plainer DRAM path does not.
    stream_frac: float = 0.0
    #: Number of concurrent stream arrays (each stream_bytes long).
    streams: int = 0
    stream_bytes: int = 2 * 1024 * 1024
    #: Stream element stride: 8 models real array kernels (one L1 miss
    #: per block, like the word-by-word loops SPEC FP compiles to).
    stream_stride: int = 8
    #: Stores write to an output stream instead of the hot array
    #: (mesa's framebuffer, lucas's result vectors): adds row-buffer
    #: pressure the native controller absorbs.
    store_stream: bool = False
    #: Array sizes in bytes (powers of two).
    hot_bytes: int = 16 * 1024
    warm_bytes: int = 512 * 1024
    cold_bytes: int = 8 * 1024 * 1024
    #: Fraction of segments that advance a dependent pointer chase
    #: through the warm (or cold, if cold_chase) array.
    chase_frac: float = 0.0
    cold_chase: bool = False
    #: Fraction of branch sites whose outcome is LCG-random (the rest
    #: follow short predictable patterns).
    random_branch_frac: float = 0.25
    #: Fraction of random branches that spawn a *correlated* follow-up
    #: a segment or two later (testing the same saved condition).
    #: Locally each site looks random; the global predictor nails the
    #: follow-up — but only with speculatively updated history, since
    #: the pair sits just a few branches apart.  This is what gives the
    #: paper's ``spec`` feature its measurable macro effect.
    correlated_branch_frac: float = 0.5
    #: Probability a segment branches at all.
    branch_frac: float = 0.8
    #: Fraction of segments that call one of the leaf functions.
    call_frac: float = 0.0
    #: Number of leaf functions; >0 enables calls.
    functions: int = 0
    #: Place functions so their code collides in the I-cache (eon).
    icache_thrash: bool = False
    #: Fraction of loads that target an address stored to a few
    #: instructions earlier (replay-trap food).
    conflict_frac: float = 0.0
    #: Dependence depth of compute chains (higher = less ILP).
    chain_depth: int = 3
    #: Probability a segment carries a compiler-padding ``unop`` (what
    #: makes early no-op retirement, feature ``eret``, matter).
    unop_frac: float = 0.35
    #: Fraction of loads whose value joins a single serial dependence
    #: spine threading the whole loop body.  Real compiled code is far
    #: more dependence-bound than independent accumulators; the spine
    #: is what lets latency features (load-use speculation, bypass
    #: restrictions) show their true cost.
    spine_frac: float = 0.3
    seed: int = 1


def _pick_ops(rng: random.Random, profile: WorkloadProfile) -> Opcode:
    if rng.random() < profile.fp_ratio:
        if profile.div_ratio and rng.random() < profile.div_ratio:
            return rng.choice((Opcode.DIVT, Opcode.SQRTT))
        return rng.choice((Opcode.ADDT, Opcode.SUBT, Opcode.MULT))
    if rng.random() < profile.mul_ratio:
        return Opcode.MULQ
    return rng.choice(
        (Opcode.ADDQ, Opcode.SUBQ, Opcode.XOR, Opcode.AND, Opcode.OR)
    )


class _MacroBuilder:
    """Generates one proxy program from a profile."""

    def __init__(self, profile: WorkloadProfile):
        self.profile = profile
        self.rng = random.Random(profile.seed)
        self.b = ProgramBuilder(profile.name)
        self._acc_index = 0
        self._fp_index = 0
        self._corr_pending = False

    # ------------------------------------------------------------------

    def build(self) -> Program:
        profile = self.profile
        b = self.b
        hot = b.alloc(profile.hot_bytes, align=64)
        # Fill the hot array with pseudo-random words: data-dependent
        # branches test bits of these.
        fill_rng = random.Random(profile.seed ^ 0xDA7A)
        for word in range(profile.hot_bytes // 8):
            b.poke(hot + 8 * word, fill_rng.getrandbits(64))
        warm = b.alloc(profile.warm_bytes, align=64)
        cold = b.alloc(profile.cold_bytes, align=64)
        chase_head = 0
        if profile.chase_frac:
            region = profile.cold_bytes if profile.cold_chase else (
                profile.warm_bytes
            )
            nodes = max(64, min(4096, region // 512))
            chase_head = build_chain(b, nodes, 448)

        b.load_imm("r1", 0)
        b.load_imm("r2", profile.iterations)
        b.load_imm("r3", profile.seed | 1)
        b.load_imm("r9", hot)
        b.load_imm("r10", warm)
        b.load_imm("r11", cold)
        if chase_head:
            b.load_imm("r12", chase_head)
        # Stream state: base register + running-offset register pairs
        # (kept clear of RA=r26 and SP=r30).
        pairs = (("r20", "r24"), ("r21", "r25"), ("r22", "r27"),
                 ("r23", "r28"))
        self._stream_regs: List[Tuple[str, str]] = []
        for s in range(min(self.profile.streams, len(pairs))):
            base_reg, off_reg = pairs[s]
            stream_base = b.alloc(profile.stream_bytes, align=64)
            b.load_imm(base_reg, stream_base)
            b.load_imm(off_reg, s * 8192)
            self._stream_regs.append((base_reg, off_reg))
        b.align_octaword()
        b.label("main_loop")

        function_labels = self._plan_functions()
        for segment in range(profile.segments):
            self._emit_segment(segment, function_labels)

        b.emit(Opcode.ADDQ, dest="r1", srcs=("r1",), imm=1)
        b.emit(Opcode.CMPLT, dest="r15", srcs=("r1", "r2"))
        b.branch(Opcode.BNE, "r15", "main_loop")
        b.halt()

        if function_labels:
            self._emit_functions(function_labels)
        return b.build()

    # ------------------------------------------------------------------

    def _plan_functions(self) -> List[str]:
        return [f"fn{i}" for i in range(self.profile.functions)]

    def _emit_functions(self, labels: List[str]) -> None:
        """Emit leaf function bodies after the main loop.

        With ``icache_thrash``, functions are padded apart by half the
        I-cache way size so they index the same sets: calling them
        round-robin alternates ways, defeating the way predictor the
        same way `eon`'s virtual-call-heavy code does.
        """
        b = self.b
        profile = self.profile
        pad = (32 * 1024 // 4) if profile.icache_thrash else 32
        for label in labels:
            b.unop(pad - (b.here % pad) if b.here % pad else 0)
            b.align_octaword()
            b.label(label)
            for i in range(6):
                b.emit(Opcode.ADDQ, dest="r16", srcs=("r16",), imm=i + 1)
            b.emit(Opcode.XOR, dest="r16", srcs=("r16", "r3"))
            b.ret()

    # ------------------------------------------------------------------

    def _next_acc(self) -> str:
        self._acc_index = (self._acc_index + 1) % len(_INT_ACCS)
        return _INT_ACCS[self._acc_index]

    def _next_fp(self) -> str:
        self._fp_index = (self._fp_index + 1) % len(_FP_ACCS)
        return _FP_ACCS[self._fp_index]

    def _advance_lcg(self) -> None:
        """r3 = r3 * MUL + ADD (one mul + one add of dynamic work)."""
        b = self.b
        b.emit(Opcode.MULQ, dest="r3", srcs=("r3",), imm=_LCG_MUL)
        b.emit(Opcode.ADDQ, dest="r3", srcs=("r3",), imm=_LCG_ADD)

    def _emit_address(self, base_reg: str, size: int, addr_reg: str) -> None:
        """addr_reg = base + ((lcg >> 7) & mask) aligned to 8 bytes."""
        b = self.b
        mask = (size - 1) & ~7
        b.emit(Opcode.SRL, dest=addr_reg, srcs=("r3",), imm=7)
        b.emit(Opcode.AND, dest=addr_reg, srcs=(addr_reg,), imm=mask)
        b.emit(Opcode.ADDQ, dest=addr_reg, srcs=(addr_reg, base_reg))

    def _emit_stream_load(self, dest: str) -> None:
        """Load the next element of a round-robin stream, advancing it."""
        b = self.b
        profile = self.profile
        base_reg, off_reg = self._stream_regs[
            self._stream_index % len(self._stream_regs)
        ]
        self._stream_index += 1
        mask = (profile.stream_bytes - 1) & ~7
        b.emit(Opcode.AND, dest="r13", srcs=(off_reg,), imm=mask)
        b.emit(Opcode.ADDQ, dest="r13", srcs=("r13", base_reg))
        b.emit(Opcode.LDQ, dest=dest, base="r13", disp=0)
        b.emit(Opcode.LDA, dest=off_reg, srcs=(off_reg,),
               imm=profile.stream_stride)

    _stream_index = 0

    def _emit_segment(self, segment: int, functions: List[str]) -> None:
        profile = self.profile
        rng = self.rng
        b = self.b

        # Occasionally refresh the LCG so addresses/branches vary.
        if segment % 3 == 0:
            self._advance_lcg()

        # Compiler unop padding (alignment of branch targets, etc.).
        if rng.random() < profile.unop_frac:
            b.unop(1)

        # Compute cluster: a short dependence chain plus independents.
        chain_reg = self._next_acc()
        for depth in range(profile.chain_depth):
            op = _pick_ops(rng, profile)
            if op.klass.is_fp:
                dest = self._next_fp() if depth == 0 else self._last_fp
                src = dest
                b.emit(op, dest=dest, srcs=(src, self._next_fp()))
                self._last_fp = dest
            else:
                b.emit(op, dest=chain_reg, srcs=(chain_reg,),
                       imm=rng.randrange(1, 255))

        # Loads.
        loads = int(profile.loads_per_segment)
        if rng.random() < profile.loads_per_segment - loads:
            loads += 1
        for _ in range(loads):
            dest = self._next_acc()
            roll = rng.random()
            if profile.chase_frac and roll < profile.chase_frac:
                b.emit(Opcode.LDQ, dest="r12", base="r12", disp=0)
                continue
            if self._stream_regs and rng.random() < profile.stream_frac:
                self._emit_stream_load(dest)
            else:
                if roll < profile.chase_frac + profile.cold_frac:
                    base, size = "r11", profile.cold_bytes
                elif roll < (profile.chase_frac + profile.cold_frac
                             + profile.warm_frac):
                    base, size = "r10", profile.warm_bytes
                else:
                    base, size = "r9", profile.hot_bytes
                self._emit_address(base, size, "r13")
                b.emit(Opcode.LDQ, dest=dest, base="r13", disp=0)
            # Real code consumes loads promptly; this is what makes
            # load-use speculation (and its removal) matter.  Some
            # loads join the serial spine (r15), the rest feed a
            # rotating accumulator.
            if rng.random() < profile.spine_frac:
                b.emit(Opcode.ADDQ, dest=_SPINE, srcs=(_SPINE, dest))
            else:
                consumer = self._next_acc()
                b.emit(Opcode.ADDQ, dest=consumer, srcs=(consumer, dest))

        # Stores (possibly immediately reloaded: replay-trap food).
        stores = int(profile.stores_per_segment)
        if rng.random() < profile.stores_per_segment - stores:
            stores += 1
        for _ in range(stores):
            if profile.store_stream and self._stream_regs:
                base_reg, off_reg = self._stream_regs[-1]
                mask = (profile.stream_bytes - 1) & ~7
                b.emit(Opcode.AND, dest="r14", srcs=(off_reg,), imm=mask)
                b.emit(Opcode.ADDQ, dest="r14", srcs=("r14", base_reg))
            else:
                self._emit_address("r9", profile.hot_bytes, "r14")
            b.emit(Opcode.STQ, srcs=("r15",), base="r14", disp=0)
            if rng.random() < profile.conflict_frac:
                dest = self._next_acc()
                b.emit(Opcode.LDQ, dest=dest, base="r14", disp=0)
                b.emit(Opcode.ADDQ, dest="r15", srcs=("r15", dest))

        # Call one of the leaf functions.
        if functions and rng.random() < profile.call_frac:
            target = functions[segment % len(functions)]
            b.call(target)

        # Branch: skip a couple of filler instructions.
        if rng.random() < profile.branch_frac:
            skip = b.fresh_label("skip")
            if self._corr_pending and rng.random() < 0.8:
                # Correlated follow-up: re-test the saved condition.
                self._corr_pending = False
                b.branch(Opcode.BEQ, "r29", skip)
            elif rng.random() < profile.random_branch_frac:
                # Data-dependent branch: test a bit of a *loaded* hot-
                # array value (the array is filled with pseudo-random
                # words).  Unpredictable to the predictors, and the
                # load sits on the branch-resolution path — which is
                # what makes load-use speculation pay off in real code.
                bit = rng.randrange(0, 8)
                self._emit_address("r9", profile.hot_bytes, "r13")
                b.emit(Opcode.LDQ, dest="r15", base="r13", disp=0)
                if bit:
                    b.emit(Opcode.SRL, dest="r15", srcs=("r15",), imm=bit)
                b.emit(Opcode.AND, dest="r15", srcs=("r15",), imm=1)
                if rng.random() < profile.correlated_branch_frac:
                    b.emit(Opcode.OR, dest="r29", srcs=("r15", "r31"))
                    self._corr_pending = True
                b.branch(Opcode.BNE, "r15", skip)
            else:
                # Pattern branch: period 2-5 in the iteration count —
                # local history learns it.
                period = rng.randrange(2, 6)
                b.emit(Opcode.AND, dest="r15", srcs=("r1",),
                       imm=(1 << (period % 3)) | 1)
                b.branch(Opcode.BEQ, "r15", skip)
            filler = self._next_acc()
            b.emit(Opcode.ADDQ, dest=filler, srcs=(filler,), imm=3)
            b.emit(Opcode.XOR, dest=filler, srcs=(filler, "r1"))
            b.label(skip)

    _last_fp = "f4"


def build_macro(profile: WorkloadProfile) -> Program:
    """Generate the proxy program for ``profile``."""
    return _MacroBuilder(profile).build()


# ----------------------------------------------------------------------
# SPEC2000 (Table 3) profiles.  Comments give the paper's native IPC.
# ----------------------------------------------------------------------

SPEC2000_PROFILES: Dict[str, WorkloadProfile] = {
    # gzip: 1.53 — integer, compact hot set, modest streaming traffic.
    "gzip": WorkloadProfile(
        name="gzip", segments=22, iterations=130,
        loads_per_segment=1.0, stores_per_segment=0.4,
        warm_frac=0.06, streams=2, stream_frac=0.45, chase_frac=0.10,
        branch_frac=0.55, random_branch_frac=0.08,
        chain_depth=2, seed=11,
    ),
    # vpr: 1.02 — cache-resident but branchy and chain-bound.
    "vpr": WorkloadProfile(
        name="vpr", segments=24, iterations=115,
        loads_per_segment=0.9, stores_per_segment=0.3,
        warm_frac=0.05, chase_frac=0.06, branch_frac=0.7,
        random_branch_frac=0.30, chain_depth=4, seed=12,
    ),
    # gcc: 1.04 — big code footprint, calls, unpredictable branches.
    "gcc": WorkloadProfile(
        name="gcc", segments=30, iterations=85,
        loads_per_segment=1.1, stores_per_segment=0.5,
        warm_frac=0.12, streams=1, stream_frac=0.30, chase_frac=0.08,
        branch_frac=0.7, random_branch_frac=0.28,
        chain_depth=3, call_frac=0.30, functions=6, seed=13,
    ),
    # parser: 1.18 — pointer-ish integer code.
    "parser": WorkloadProfile(
        name="parser", segments=24, iterations=110,
        loads_per_segment=1.2, stores_per_segment=0.4,
        warm_frac=0.10, chase_frac=0.12, streams=1, stream_frac=0.30,
        branch_frac=0.6, random_branch_frac=0.18, chain_depth=3, seed=14,
    ),
    # eon: 1.21 — C++ renderer: calls thrash the I-cache ways.
    "eon": WorkloadProfile(
        name="eon", segments=22, iterations=110,
        fp_ratio=0.25, loads_per_segment=0.9, stores_per_segment=0.4,
        warm_frac=0.06, chase_frac=0.05, branch_frac=0.55,
        random_branch_frac=0.10, chain_depth=3, call_frac=0.5, functions=3, icache_thrash=True,
        seed=15,
    ),
    # twolf: 1.10 — placement/routing: branchy, moderate memory.
    "twolf": WorkloadProfile(
        name="twolf", segments=24, iterations=110,
        loads_per_segment=1.0, stores_per_segment=0.3,
        warm_frac=0.08, streams=1, stream_frac=0.12, chase_frac=0.08,
        branch_frac=0.65, random_branch_frac=0.22,
        chain_depth=3, seed=16,
    ),
    # mesa: 1.57 — FP rendering: four concurrent streams give it the
    # paper's very high L2 miss rate with enough MLP to keep IPC up.
    "mesa": WorkloadProfile(
        name="mesa", segments=26, iterations=100,
        fp_ratio=0.40, loads_per_segment=1.7, stores_per_segment=0.6,
        warm_frac=0.05, streams=4, stream_frac=0.85, store_stream=True,
        branch_frac=0.4, random_branch_frac=0.03,
        chain_depth=2, seed=17,
    ),
    # art: 0.48 — memory-bound neural net: parallel random cold misses,
    # store/load conflicts, replay traps (the positive-error outlier).
    "art": WorkloadProfile(
        name="art", segments=26, iterations=85,
        fp_ratio=0.30, loads_per_segment=2.0, stores_per_segment=0.7,
        warm_frac=0.12, cold_frac=0.50, conflict_frac=0.50,
        branch_frac=0.45, random_branch_frac=0.08,
        chain_depth=2, seed=18,
    ),
    # equake: 1.02 — FP with mixed streaming/irregular memory.
    "equake": WorkloadProfile(
        name="equake", segments=24, iterations=105,
        fp_ratio=0.40, loads_per_segment=1.3, stores_per_segment=0.4,
        warm_frac=0.15, streams=2, stream_frac=0.35, chase_frac=0.05,
        branch_frac=0.5, random_branch_frac=0.12,
        chain_depth=3, seed=19,
    ),
    # lucas: 1.57 — FP streaming, DRAM-row friendly (the benchmark on
    # which all the paper's simulators agree most closely).
    "lucas": WorkloadProfile(
        name="lucas", segments=24, iterations=110,
        fp_ratio=0.50, loads_per_segment=1.2, stores_per_segment=0.5,
        warm_frac=0.10, streams=2, stream_frac=0.65,
        branch_frac=0.35, random_branch_frac=0.02,
        chain_depth=2, seed=20,
    ),
}

# ----------------------------------------------------------------------
# SPEC95 profiles for the Figure 2 register-file study.
# ----------------------------------------------------------------------

SPEC95_PROFILES: Dict[str, WorkloadProfile] = {
    "go": WorkloadProfile(
        name="go", suite="spec95", segments=24, iterations=90,
        loads_per_segment=1.0, stores_per_segment=0.3,
        random_branch_frac=0.5, chain_depth=3, seed=31,
    ),
    "compress": WorkloadProfile(
        name="compress", suite="spec95", segments=20, iterations=110,
        loads_per_segment=1.2, stores_per_segment=0.5,
        warm_frac=0.25, random_branch_frac=0.25, chain_depth=3, seed=32,
    ),
    "gcc95": WorkloadProfile(
        name="gcc95", suite="spec95", segments=28, iterations=80,
        loads_per_segment=1.4, stores_per_segment=0.6,
        warm_frac=0.18, random_branch_frac=0.40, chain_depth=3,
        call_frac=0.25, functions=5, seed=33,
    ),
    "ijpeg": WorkloadProfile(
        name="ijpeg", suite="spec95", segments=22, iterations=100,
        loads_per_segment=1.3, stores_per_segment=0.5,
        warm_frac=0.12, random_branch_frac=0.08, chain_depth=2, seed=34,
    ),
    "perl": WorkloadProfile(
        name="perl", suite="spec95", segments=26, iterations=85,
        loads_per_segment=1.4, stores_per_segment=0.6,
        warm_frac=0.15, random_branch_frac=0.35, chain_depth=3,
        call_frac=0.3, functions=4, seed=35,
    ),
    "swim": WorkloadProfile(
        name="swim", suite="spec95", segments=24, iterations=95,
        fp_ratio=0.6, loads_per_segment=1.6, stores_per_segment=0.7,
        warm_frac=0.35, random_branch_frac=0.03, chain_depth=2, seed=36,
    ),
    "mgrid": WorkloadProfile(
        name="mgrid", suite="spec95", segments=24, iterations=95,
        fp_ratio=0.65, loads_per_segment=1.7, stores_per_segment=0.5,
        warm_frac=0.30, random_branch_frac=0.03, chain_depth=2, seed=37,
    ),
    "applu": WorkloadProfile(
        name="applu", suite="spec95", segments=24, iterations=90,
        fp_ratio=0.6, loads_per_segment=1.5, stores_per_segment=0.6,
        warm_frac=0.30, random_branch_frac=0.05, chain_depth=3, seed=38,
    ),
    "turb3d": WorkloadProfile(
        name="turb3d", suite="spec95", segments=24, iterations=90,
        fp_ratio=0.55, loads_per_segment=1.4, stores_per_segment=0.6,
        warm_frac=0.25, random_branch_frac=0.06, chain_depth=3, seed=39,
    ),
    "fpppp": WorkloadProfile(
        name="fpppp", suite="spec95", segments=30, iterations=75,
        fp_ratio=0.75, loads_per_segment=1.2, stores_per_segment=0.4,
        warm_frac=0.10, random_branch_frac=0.02, chain_depth=4, seed=40,
    ),
    "wave5": WorkloadProfile(
        name="wave5", suite="spec95", segments=24, iterations=90,
        fp_ratio=0.6, loads_per_segment=1.5, stores_per_segment=0.6,
        warm_frac=0.28, random_branch_frac=0.05, chain_depth=2, seed=41,
    ),
}


def build_spec2000(name: str) -> Program:
    """Build one SPEC2000 proxy by benchmark name."""
    try:
        return build_macro(SPEC2000_PROFILES[name])
    except KeyError:
        raise KeyError(
            f"unknown SPEC2000 proxy {name!r}; known: "
            f"{list(SPEC2000_PROFILES)}"
        ) from None


def build_spec95(name: str) -> Program:
    """Build one SPEC95 proxy by benchmark name."""
    try:
        return build_macro(SPEC95_PROFILES[name])
    except KeyError:
        raise KeyError(
            f"unknown SPEC95 proxy {name!r}; known: {list(SPEC95_PROFILES)}"
        ) from None


def spec2000_suite() -> List[Program]:
    """The ten Table 3 proxies, in the paper's column order."""
    return [build_macro(p) for p in SPEC2000_PROFILES.values()]


def spec95_suite() -> List[Program]:
    """The eleven Figure 2 proxies."""
    return [build_macro(p) for p in SPEC95_PROFILES.values()]
