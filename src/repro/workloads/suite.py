"""Workload registry with shared trace caching.

Every experiment replays the same dynamic traces through many simulator
configurations (Table 5 alone uses 13 configurations x 3 optimizations
x 10 macrobenchmarks); building the program and running the functional
machine once per workload and caching the trace makes the sweeps cheap.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Tuple

from repro.functional.machine import run_program
from repro.functional.trace import DynInstr
from repro.isa.program import Program
from repro.workloads.calibration import calibration_suite
from repro.workloads.macro import (
    SPEC2000_PROFILES,
    SPEC95_PROFILES,
    build_macro,
)
from repro.workloads.micro import MICROBENCHMARKS

__all__ = [
    "WorkloadSet",
    "WORKLOAD_FAMILIES",
    "family_workloads",
    "micro_names",
    "spec2000_names",
    "spec95_names",
]

#: Microbenchmark families by the subsystem they were built to stress
#: (paper Section 3's control/execute/memory taxonomy, plus the DRAM
#: row-locality kernels this reproduction adds).  The detection sweep
#: pairs each fault class with the families designed to expose it, so
#: the members are deliberately small, representative subsets — cheap
#: enough to fan a full fault matrix across, extreme enough that the
#: stressed subsystem dominates each run.
WORKLOAD_FAMILIES: Dict[str, Tuple[str, ...]] = {
    "control": ("C-Ca", "C-R", "C-S1"),
    "execute": ("E-I", "E-D3"),
    "memory": ("M-D", "M-L2", "M-M"),
    "dram": ("M-ROW", "M-BANK", "M-M"),
}


def family_workloads(families: Iterable[str]) -> List[str]:
    """Workload names for ``families``, deduplicated, family order."""
    names: List[str] = []
    for family in families:
        try:
            members = WORKLOAD_FAMILIES[family]
        except KeyError:
            raise KeyError(
                f"unknown workload family {family!r}; known: "
                f"{list(WORKLOAD_FAMILIES)}"
            ) from None
        for name in members:
            if name not in names:
                names.append(name)
    return names


def micro_names() -> List[str]:
    """Microbenchmark names in Table 2 order."""
    return list(MICROBENCHMARKS)


def spec2000_names() -> List[str]:
    """SPEC2000 proxy names in Table 3 order."""
    return list(SPEC2000_PROFILES)


def spec95_names() -> List[str]:
    """SPEC95 proxy names in Figure 2 order."""
    return list(SPEC95_PROFILES)


class WorkloadSet:
    """Builds workloads on demand and caches programs and traces."""

    def __init__(self) -> None:
        self._builders: Dict[str, Callable[[], Program]] = {}
        self._programs: Dict[str, Program] = {}
        self._traces: Dict[str, List[DynInstr]] = {}
        for name, builder in MICROBENCHMARKS.items():
            self._builders[name] = builder
        for name, profile in SPEC2000_PROFILES.items():
            self._builders[name] = (
                lambda p=profile: build_macro(p)
            )
        for name, profile in SPEC95_PROFILES.items():
            self._builders[name] = (
                lambda p=profile: build_macro(p)
            )

    def register(self, program: Program) -> None:
        """Add a pre-built program under its own name."""
        self._programs[program.name] = program
        self._builders[program.name] = lambda: program

    def register_calibration(self) -> List[str]:
        """Add the Section 4.2 calibration workloads; returns names."""
        names = []
        for name, program in calibration_suite().items():
            self.register(program)
            names.append(name)
        return names

    def names(self) -> List[str]:
        return list(self._builders)

    def program(self, name: str) -> Program:
        if name not in self._programs:
            try:
                builder = self._builders[name]
            except KeyError:
                raise KeyError(
                    f"unknown workload {name!r}; known: {self.names()}"
                ) from None
            self._programs[name] = builder()
        return self._programs[name]

    def trace(self, name: str) -> List[DynInstr]:
        """The cached dynamic trace for ``name`` (built on first use)."""
        if name not in self._traces:
            self._traces[name] = run_program(self.program(name))
        return self._traces[name]

    def traces(self, names: Iterable[str]) -> List[Tuple[str, List[DynInstr]]]:
        return [(name, self.trace(name)) for name in names]
