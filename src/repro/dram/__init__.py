"""SDRAM timing model and the Section 4.2 calibration parameter space."""

from repro.dram.config import DS10L_CALIBRATED, DramConfig, parameter_grid
from repro.dram.sdram import DramStats, Sdram

__all__ = [
    "DS10L_CALIBRATED",
    "DramConfig",
    "parameter_grid",
    "DramStats",
    "Sdram",
]
