"""Banked SDRAM timing model (after Cuppu et al.).

sim-alpha "model[s] the DRAM latency using the simulator provided by
Cuppu, et al."; this is our equivalent: per-bank open-row state with
RAS/CAS/precharge timing under an open- or closed-page policy.

Open-page policy: rows are left active after an access.  A subsequent
access to the same row pays only CAS; a different row pays precharge +
RAS + CAS.  Closed-page policy: the precharge is started immediately
after every access, so every access pays RAS + CAS, and the precharge
is hidden unless a back-to-back access hits the still-precharging bank.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.dram.config import DramConfig

__all__ = ["Sdram", "DramStats"]


@dataclass
class DramStats:
    accesses: int = 0
    row_hits: int = 0
    row_misses: int = 0
    bank_conflicts: int = 0
    #: Precharge commands issued: one per closed-page access, one per
    #: open-page row miss that found another row active.
    precharges: int = 0

    @property
    def row_hit_rate(self) -> float:
        return self.row_hits / self.accesses if self.accesses else 0.0


class Sdram:
    """Timing-only SDRAM: maps physical block addresses to (bank, row)."""

    def __init__(self, config: DramConfig | None = None):
        self.config = config or DramConfig()
        cfg = self.config
        self._row_shift = cfg.row_bytes.bit_length() - 1
        self._bank_mask = cfg.banks - 1
        #: Per-bank open row (None when precharged).
        self._open_row: Dict[int, Optional[int]] = {}
        #: Per-bank earliest next command time (CPU cycles).
        self._bank_free: Dict[int, float] = {}
        self.stats = DramStats()

    def _locate(self, paddr: int) -> Tuple[int, int]:
        """Bank and row of a physical address.

        Consecutive rows interleave across banks so streaming access
        spreads load — the usual SDRAM address mapping.
        """
        row_number = paddr >> self._row_shift
        return row_number & self._bank_mask, row_number >> (
            self._bank_mask.bit_length()
        )

    def access(self, time: float, paddr: int) -> float:
        """Issue a block read/write at ``time``; returns data-ready time
        in CPU cycles (controller latency included)."""
        cfg = self.config
        scale = cfg.cpu_cycles_per_dram_cycle
        bank, row = self._locate(paddr)
        self.stats.accesses += 1

        start = time + (cfg.controller_cycles * scale) / 2
        bank_free = self._bank_free.get(bank, 0.0)
        if bank_free > start:
            self.stats.bank_conflicts += 1
            start = bank_free

        open_row = self._open_row.get(bank)
        if cfg.page_policy == "open":
            if open_row == row:
                self.stats.row_hits += 1
                latency = cfg.cas_cycles
            else:
                self.stats.row_misses += 1
                if open_row is not None:
                    self.stats.precharges += 1
                latency = (
                    (cfg.precharge_cycles if open_row is not None else 0)
                    + cfg.ras_cycles
                    + cfg.cas_cycles
                )
            self._open_row[bank] = row
            ready = start + latency * scale
            self._bank_free[bank] = ready
        else:  # closed page: activate + read every time, precharge after
            self.stats.row_misses += 1
            self.stats.precharges += 1
            latency = cfg.ras_cycles + cfg.cas_cycles
            ready = start + latency * scale
            self._open_row[bank] = None
            # The bank is busy through its auto-precharge.
            self._bank_free[bank] = ready + cfg.precharge_cycles * scale

        ready += (cfg.controller_cycles * scale) / 2
        return ready

    def block_transfer_cycles(self) -> float:
        """CPU cycles to burst one cache block over the memory bus."""
        cfg = self.config
        return cfg.burst_cycles * cfg.cpu_cycles_per_dram_cycle / 2

    def reset(self) -> None:
        self._open_row.clear()
        self._bank_free.clear()
        self.stats = DramStats()


#: Declarative profiler hooks (see :mod:`repro.obs.profiler`).
PROFILE_COMPONENTS = {
    "Sdram": {
        "access": "mem/dram",
    },
}
