"""SDRAM timing configuration.

Paper Section 4.2 tunes exactly these knobs against M-M, stream, and
lmbench: "Our experiments showed that the open page policy with a
2-cycle RAS, 4-cycle CAS, 2-cycle precharge, and total of 2 cycles of
memory controller latency produced the least overall error."  Timing
parameters are in *memory-bus* cycles; the simulated DRAM runs "at
approximately 25% the processor speed", so each memory cycle costs
``cpu_cycles_per_dram_cycle`` CPU cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterator, List

__all__ = ["DramConfig", "DS10L_CALIBRATED", "parameter_grid"]


@dataclass(frozen=True)
class DramConfig:
    ras_cycles: int = 2
    cas_cycles: int = 4
    precharge_cycles: int = 2
    #: Total controller overhead (paper: 0 or 1 cycles each way between
    #: processor and DRAM; calibrated total = 2).
    controller_cycles: int = 2
    page_policy: str = "open"  # "open" or "closed"
    banks: int = 4
    row_bytes: int = 4096
    #: DRAM clock ratio: the DS-10L memory system runs at ~25% of the
    #: 466MHz core.
    cpu_cycles_per_dram_cycle: int = 4
    #: Burst transfer length for one 64-byte cache block on the 64-bit
    #: memory bus: 8 beats.
    burst_cycles: int = 8

    def __post_init__(self) -> None:
        if self.page_policy not in ("open", "closed"):
            raise ValueError(f"unknown page policy {self.page_policy!r}")
        if self.banks & (self.banks - 1):
            raise ValueError("bank count must be a power of two")
        if self.row_bytes & (self.row_bytes - 1):
            raise ValueError("row size must be a power of two")

    def with_policy(self, policy: str) -> "DramConfig":
        return replace(self, page_policy=policy)


#: The configuration the paper settled on for all macrobenchmark runs.
DS10L_CALIBRATED = DramConfig()


def parameter_grid(
    ras_values: List[int] = (1, 2, 3),
    cas_values: List[int] = (2, 3, 4, 5),
    precharge_values: List[int] = (1, 2, 3),
    controller_values: List[int] = (0, 1, 2),
    policies: List[str] = ("open", "closed"),
) -> Iterator[DramConfig]:
    """The Section 4.2 calibration sweep space."""
    for policy in policies:
        for ras in ras_values:
            for cas in cas_values:
                for precharge in precharge_values:
                    for controller in controller_values:
                        yield DramConfig(
                            ras_cycles=ras,
                            cas_cycles=cas,
                            precharge_cycles=precharge,
                            controller_cycles=controller,
                            page_policy=policy,
                        )
