"""Run provenance: enough metadata to trust (or reject) an old result.

A grid of numbers with no record of which configuration, code version,
or machine produced it is unfalsifiable — the paper's whole methodology
is about knowing *exactly* what a simulator modelled when it produced a
number.  :class:`RunProvenance` captures the reproducibility
fingerprint of one timing run:

* ``config_hash`` — SHA-256 (truncated) over the simulator's fully
  resolved :class:`~repro.core.config.MachineConfig`, so two results
  are comparable iff their hashes match;
* ``package_version`` — the ``repro`` release that produced it;
* ``created`` — wall-clock time (UTC, ISO-8601);
* ``host`` / ``platform`` / ``python`` — where it ran.

Hashes are computed once per simulator configuration and cached (the
configs are frozen dataclasses), so attaching provenance to every cell
of a large grid costs one dict lookup per run.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import platform as _platform
import socket
from dataclasses import dataclass
from datetime import datetime, timezone
from typing import Dict, Optional

__all__ = ["RunProvenance", "config_hash", "capture_provenance"]

#: config id -> (config, hash) memo.  The strong reference to the
#: config keeps its id from being reused while the entry is live
#: (configs are frozen, so the hash can never go stale).
_HASH_CACHE: Dict[int, tuple] = {}

#: Entries kept in the memo before oldest-first eviction kicks in.
_HASH_CACHE_LIMIT = 4096


def _package_version() -> str:
    # Imported lazily: repro/__init__ imports result.py which imports
    # this module, so a top-level import would cycle.
    try:
        from repro import __version__
        return __version__
    except Exception:  # pragma: no cover - partial-install fallback
        return "unknown"


def config_hash(config: object) -> str:
    """A stable 16-hex-digit digest of a configuration dataclass.

    Accepts any (possibly nested) dataclass — in practice a
    ``MachineConfig`` — and hashes its canonical JSON form.  Non-JSON
    leaf values (enums, callables) fall back to ``repr``.
    """
    if config is None:
        return "none"
    key = id(config)
    cached = _HASH_CACHE.get(key)
    if cached is not None:
        return cached[1]
    if dataclasses.is_dataclass(config) and not isinstance(config, type):
        payload = dataclasses.asdict(config)
    else:
        payload = config
    canonical = json.dumps(payload, sort_keys=True, default=repr)
    digest = hashlib.sha256(canonical.encode()).hexdigest()[:16]
    while len(_HASH_CACHE) >= _HASH_CACHE_LIMIT:  # unbounded-growth guard
        # Evict oldest-first (dict preserves insertion order) so the
        # configs a running grid is actively hashing keep their memo
        # entries instead of being wiped wholesale.
        del _HASH_CACHE[next(iter(_HASH_CACHE))]
    _HASH_CACHE[key] = (config, digest)
    return digest


@dataclass(frozen=True)
class RunProvenance:
    """The reproducibility fingerprint of one timing run."""

    config_hash: str
    config_name: str = ""
    package_version: str = ""
    created: str = ""
    host: str = ""
    platform: str = ""
    python: str = ""

    def to_dict(self) -> Dict[str, str]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, str]) -> "RunProvenance":
        names = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in payload.items() if k in names})


def capture_provenance(
    config: Optional[object] = None,
    *,
    name: str = "",
) -> RunProvenance:
    """Provenance for a run of ``config`` on this host, right now."""
    return RunProvenance(
        config_hash=config_hash(config),
        config_name=name or getattr(config, "name", ""),
        package_version=_package_version(),
        created=datetime.now(timezone.utc).isoformat(timespec="seconds"),
        host=socket.gethostname(),
        platform=_platform.platform(),
        python=_platform.python_version(),
    )
