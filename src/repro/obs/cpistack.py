"""CPI-stack accounting: where did the cycles go?

The engine is dependence-driven — it computes event *times*, not a
cycle-by-cycle state machine — so cycles are attributed the way
trace-driven CPI stacks conventionally are: retirement is in order, so
the gap between consecutive retire times is exactly the cost the
program paid for that instruction, and the whole run's cycle count is
the sum of those gaps.  Each gap is charged, whole, to the mechanism
that dominated it:

``base``
    pipeline throughput — nothing unusual happened;
``fetch``
    instruction supply (I-cache misses, line/way mispredicts on
    sequential flow);
``issue``
    rename/window/issue-side stalls (map stalls, store-wait holds,
    queue back-pressure delaying issue past the earliest possible
    cycle);
``memory``
    data-side misses (D-cache, L2, DTLB, MAF, victim-buffer detours,
    load-use squashes);
``trap``
    replay traps (store/load order, mbox) and their refetch shadows;
``bubble``
    control-flow redirect bubbles (branch/RAS/jmp mispredicts), charged
    to the instructions fetched after the redirect.

Because every gap lands in exactly one bucket, the components sum to
the total CPI by construction; :meth:`CpiStackAccountant.stack` folds
any floating-point summation residue into ``base`` so the identity
holds to machine precision.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

__all__ = ["CPI_COMPONENTS", "CpiStackAccountant", "cpi_stack_total"]

#: Component names, in rendering order.
CPI_COMPONENTS: Tuple[str, ...] = (
    "base", "fetch", "issue", "memory", "trap", "bubble",
)

#: Architectural event names (RunStats counters) per blame group.
TRAP_EVENTS = frozenset(
    ("store_replay_traps", "load_order_traps", "mbox_traps")
)
MEMORY_EVENTS = frozenset(
    ("dcache_misses", "l2_misses", "dtlb_misses", "victim_hits",
     "maf_stalls", "loaduse_mispredicts")
)
FETCH_EVENTS = frozenset(
    ("icache_misses", "line_mispredicts", "way_mispredicts")
)
REDIRECT_EVENTS = frozenset(
    ("branch_mispredicts", "ras_mispredicts", "jmp_mispredicts")
)
ISSUE_EVENTS = frozenset(("maps_stalls", "store_wait_holds"))


class CpiStackAccountant:
    """Accumulates per-component cycle totals over one run."""

    __slots__ = ("cycles", "counts", "_pending")

    def __init__(self) -> None:
        self.cycles: Dict[str, float] = {c: 0.0 for c in CPI_COMPONENTS}
        self.counts: Dict[str, int] = {c: 0 for c in CPI_COMPONENTS}
        #: Redirect cause set by the previous instruction, whose bubble
        #: surfaces as the *next* instructions' retire gap.
        self._pending: Optional[str] = None

    def classify(
        self,
        events: Tuple[str, ...],
        *,
        issue_stalled: bool = False,
    ) -> str:
        """The component charged for an instruction's retire gap."""
        pending, self._pending = self._pending, None
        cause = None
        for name in events:
            if name in TRAP_EVENTS:
                cause = "trap"
                break
        if cause is None and pending is not None:
            cause = pending
        if cause is None:
            for name in events:
                if name in MEMORY_EVENTS:
                    cause = "memory"
                    break
        if cause is None:
            for name in events:
                if name in FETCH_EVENTS:
                    cause = "fetch"
                    break
        if cause is None:
            if issue_stalled:
                cause = "issue"
            else:
                for name in events:
                    if name in ISSUE_EVENTS:
                        cause = "issue"
                        break
        if cause is None:
            cause = "base"
        # Redirect shadows land on the instructions *after* the event.
        for name in events:
            if name in TRAP_EVENTS:
                self._pending = "trap"
                break
            if name in REDIRECT_EVENTS:
                self._pending = "bubble"
                break
        return cause

    def account(
        self,
        delta: float,
        events: Tuple[str, ...],
        *,
        issue_stalled: bool = False,
    ) -> str:
        """Charge a retire gap; returns the component it went to."""
        cause = self.classify(events, issue_stalled=issue_stalled)
        if delta > 0.0:
            self.cycles[cause] += delta
        self.counts[cause] += 1
        return cause

    def stack(self, cycles: float, instructions: int) -> Dict[str, float]:
        """Cycles-per-instruction per component, summing to the CPI.

        ``cycles``/``instructions`` are the run's reported totals; any
        difference between the accounted gaps and the reported cycle
        count (float summation residue, the engine's >=1-cycle floor)
        is folded into ``base`` so the components sum to the CPI
        exactly.
        """
        if instructions <= 0:
            return {c: 0.0 for c in CPI_COMPONENTS}
        accounted = sum(self.cycles.values())
        adjusted = dict(self.cycles)
        adjusted["base"] += cycles - accounted
        return {c: adjusted[c] / instructions for c in CPI_COMPONENTS}


def cpi_stack_total(stack: Dict[str, float]) -> float:
    """Sum of a stack's components (== the CPI it decomposes)."""
    return sum(stack.values())
