"""Per-cell resource telemetry: what each simulation run *cost*.

Every timed cell reports the resources it consumed — wall time,
user/sys CPU time, peak RSS, retired instructions, and the derived
KIPS (thousand retired instructions per wall second).  The record
rides the :class:`~repro.result.SimResult` through the execution
engine's wire protocol, so a forked worker's telemetry describes the
*worker* process, and lands in three places:

* on the result itself (``result.telemetry``), blanked by
  ``ResultGrid.to_json(canonical=True)`` so determinism comparisons
  still hold;
* in the grid's run ledger (:class:`RunLedger`), one JSONL line per
  settled cell — the raw trajectory the bench harness and future
  perf PRs mine;
* mirrored into the :class:`~repro.obs.registry.MetricsRegistry`
  (``telemetry.*``), exportable as an OpenMetrics/Prometheus textfile
  via :meth:`MetricsRegistry.write_openmetrics`.

:class:`GridProgress` is the human view of the same stream: a live
``cells done/total, cells/s, ETA`` line for grid runs.
"""

from __future__ import annotations

import json
import os
import sys
import time
from dataclasses import dataclass
from typing import Dict, Optional, TextIO

try:
    import resource as _resource
except ImportError:  # pragma: no cover - non-POSIX
    _resource = None

__all__ = [
    "CellTelemetry",
    "TelemetryProbe",
    "RunLedger",
    "GridProgress",
    "mirror_to_metrics",
]


@dataclass
class CellTelemetry:
    """Resource consumption of one timed (simulator, workload) cell."""

    #: Wall-clock seconds for the cell's timing run.
    wall_s: float = 0.0
    #: User / system CPU seconds consumed by the measuring process.
    user_s: float = 0.0
    sys_s: float = 0.0
    #: Peak resident set size of the measuring process, in KiB (the
    #: process-wide high-water mark at measurement time; for forked
    #: workers that *is* the cell's peak, since each worker times one
    #: cell and dies).
    max_rss_kb: int = 0
    #: Retired instructions the run timed.
    instructions: int = 0
    #: Thousand retired instructions per wall second.
    kips: float = 0.0
    #: Process that produced the measurement (parent or worker).
    pid: int = 0
    #: Execution path that settled the cell: ``run`` (computed here),
    #: ``cache``, ``checkpoint``, or ``shard-<k>`` (committed by shard
    #: runner ``k``).  Operational provenance, not a measurement —
    #: blanked with the rest of the telemetry under
    #: ``ResultGrid.to_json(canonical=True)``.
    source: str = "run"

    def to_dict(self) -> Dict:
        return {
            "wall_s": self.wall_s,
            "user_s": self.user_s,
            "sys_s": self.sys_s,
            "max_rss_kb": self.max_rss_kb,
            "instructions": self.instructions,
            "kips": self.kips,
            "pid": self.pid,
            "source": self.source,
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "CellTelemetry":
        known = {
            "wall_s", "user_s", "sys_s", "max_rss_kb",
            "instructions", "kips", "pid", "source",
        }
        return cls(**{k: v for k, v in payload.items() if k in known})


def _rusage():
    if _resource is None:  # pragma: no cover - non-POSIX
        return None
    return _resource.getrusage(_resource.RUSAGE_SELF)


def _max_rss_kb(usage) -> int:
    if usage is None:  # pragma: no cover - non-POSIX
        return 0
    # ru_maxrss is KiB on Linux, bytes on macOS.
    raw = usage.ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - platform specific
        raw //= 1024
    return int(raw)


class TelemetryProbe:
    """Measures one cell: construct before the run, finish after.

    The getrusage pair costs ~1us; cheap enough to be always-on (the
    determinism story is handled downstream, by canonical blanking).
    """

    __slots__ = ("_wall0", "_usage0")

    def __init__(self):
        self._wall0 = time.perf_counter()
        self._usage0 = _rusage()

    def finish(self, instructions: int = 0) -> CellTelemetry:
        wall = time.perf_counter() - self._wall0
        usage = _rusage()
        user_s = sys_s = 0.0
        if usage is not None and self._usage0 is not None:
            user_s = usage.ru_utime - self._usage0.ru_utime
            sys_s = usage.ru_stime - self._usage0.ru_stime
        return CellTelemetry(
            wall_s=wall,
            user_s=user_s,
            sys_s=sys_s,
            max_rss_kb=_max_rss_kb(usage),
            instructions=int(instructions),
            kips=(instructions / wall / 1e3) if wall > 0 else 0.0,
            pid=os.getpid(),
        )


def mirror_to_metrics(registry, simulator, workload, telemetry) -> None:
    """Mirror one cell's telemetry into a metrics registry.

    Lands under ``telemetry.*`` so the OpenMetrics exporter
    (:meth:`~repro.obs.registry.MetricsRegistry.write_openmetrics`)
    publishes per-cell cost alongside the harness's own counters.  A
    disabled registry hands back null instruments, so this is free when
    metrics are off.
    """
    if telemetry is None:
        return
    key = f"{simulator}.{workload}"
    registry.timer(f"telemetry.cell_wall.{key}").observe(telemetry.wall_s)
    registry.timer(f"telemetry.cell_cpu.{key}").observe(
        telemetry.user_s + telemetry.sys_s
    )
    registry.gauge(f"telemetry.kips.{key}").set(telemetry.kips)
    registry.gauge(f"telemetry.max_rss_kb.{key}").set(telemetry.max_rss_kb)
    registry.counter(f"telemetry.instructions.{key}").inc(
        telemetry.instructions
    )
    registry.counter("telemetry.cells").inc()


class RunLedger:
    """Append-only JSONL ledger of per-cell telemetry for one grid run.

    One line per settled cell (completed, cache-resolved, or failed),
    flushed as written so an interrupted run's ledger is still
    readable.  The first line is a header carrying the schema tag.
    """

    FORMAT = "repro-run-ledger/1"

    def __init__(self, path, *, clock=time.time):
        self.path = os.fspath(path)
        self._clock = clock
        self.records = 0
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self._handle: Optional[TextIO] = open(
            self.path, "a", encoding="utf-8"
        )
        if self._handle.tell() == 0:
            self._write({"type": "header", "format": self.FORMAT})

    def _write(self, payload: Dict) -> None:
        if self._handle is None:  # pragma: no cover - post-close append
            return
        self._handle.write(json.dumps(payload, sort_keys=True) + "\n")
        self._handle.flush()

    def record(
        self,
        *,
        simulator: str,
        workload: str,
        status: str,
        source: str = "run",
        attempts: int = 1,
        telemetry: Optional[CellTelemetry] = None,
    ) -> None:
        """Append one cell's outcome.

        ``status`` is ``"ok"`` or the failure kind; ``source`` says
        where the result came from (``run``, ``cache``,
        ``checkpoint``).
        """
        payload: Dict = {
            "type": "cell",
            "ts": self._clock(),
            "simulator": simulator,
            "workload": workload,
            "status": status,
            "source": source,
            "attempts": attempts,
        }
        if telemetry is not None:
            payload["telemetry"] = telemetry.to_dict()
        self._write(payload)
        self.records += 1

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "RunLedger":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class GridProgress:
    """Live ``cells done/total, cells/s, ETA`` line for grid runs.

    Writes carriage-return-terminated updates to ``stream`` (default
    stderr) and a final newline on :meth:`close`.  Throttled to at
    most ~20 updates/s so a cache-warm grid doesn't spend its time
    printing.
    """

    __slots__ = (
        "total", "done", "_stream", "_clock", "_started",
        "_last_print", "_min_interval", "_wrote",
    )

    def __init__(
        self,
        total: int,
        *,
        stream: Optional[TextIO] = None,
        clock=time.perf_counter,
        min_interval_s: float = 0.05,
    ):
        self.total = max(0, int(total))
        self.done = 0
        self._stream = stream if stream is not None else sys.stderr
        self._clock = clock
        self._started = clock()
        self._last_print = float("-inf")
        self._min_interval = min_interval_s
        self._wrote = False

    def line(self) -> str:
        elapsed = max(1e-9, self._clock() - self._started)
        rate = self.done / elapsed
        remaining = self.total - self.done
        if self.done and rate > 0:
            eta = f"{remaining / rate:.0f}s"
        else:
            eta = "?"
        return (
            f"cells {self.done}/{self.total}  "
            f"{rate:.1f} cells/s  ETA {eta}"
        )

    def update(self, advance: int = 1) -> None:
        self.done += advance
        now = self._clock()
        final = self.done >= self.total
        if not final and now - self._last_print < self._min_interval:
            return
        self._last_print = now
        try:
            self._stream.write("\r" + self.line() + "\x1b[K")
            self._stream.flush()
            self._wrote = True
        except (OSError, ValueError):  # pragma: no cover - closed stream
            pass

    def close(self) -> None:
        if self._wrote:
            try:
                self._stream.write("\n")
                self._stream.flush()
            except (OSError, ValueError):  # pragma: no cover
                pass
            self._wrote = False
