"""The engine-side observer: one object, one hook, three consumers.

:class:`RunObserver` is what :meth:`AlphaPipeline.run_trace` talks to
when instrumentation is on.  The engine calls :meth:`begin` at the top
of each instruction (to snapshot the architectural event counters) and
one ``commit`` variant at the bottom; the observer diffs the counters,
charges the retire gap to a CPI-stack component, feeds the tracer's
ring buffer, and bumps registry counters.  When instrumentation is off
the engine holds ``None`` instead and pays one identity check per
instruction — that is the entire disabled-mode cost.

:class:`Instrumentation` is the user-facing bundle: it owns the
metrics registry and the per-run tracers/accountants, builds one
:class:`RunObserver` per timing run, and exposes the collected tracers
afterwards for export.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.obs.cpistack import CpiStackAccountant
from repro.obs.profiler import HotPathProfiler
from repro.obs.registry import MetricsRegistry
from repro.obs.tracer import PipelineTracer, TraceEvent

__all__ = ["RunObserver", "Instrumentation", "EVENT_FIELDS"]

#: RunStats counters snapshotted per instruction, in snapshot order.
EVENT_FIELDS: Tuple[str, ...] = (
    "icache_misses",
    "line_mispredicts",
    "way_mispredicts",
    "branch_mispredicts",
    "ras_mispredicts",
    "jmp_mispredicts",
    "loaduse_mispredicts",
    "dcache_misses",
    "l2_misses",
    "dtlb_misses",
    "victim_hits",
    "maf_stalls",
    "store_replay_traps",
    "load_order_traps",
    "mbox_traps",
    "maps_stalls",
    "store_wait_holds",
)


class RunObserver:
    """Per-run sink for the engine's instrumentation hook."""

    __slots__ = (
        "tracer", "accountant", "metrics", "sanitizer", "profiler",
        "simulator", "workload",
        "_prev_retire", "_pre", "_seq", "_instr_counter",
    )

    def __init__(
        self,
        *,
        tracer: Optional[PipelineTracer] = None,
        accountant: Optional[CpiStackAccountant] = None,
        metrics: Optional[MetricsRegistry] = None,
        sanitizer=None,
        profiler: Optional[HotPathProfiler] = None,
        simulator: str = "",
        workload: str = "",
    ):
        self.tracer = tracer
        self.accountant = accountant
        self.metrics = metrics
        # An integrity RunSanitizer riding the same hook (or None);
        # the timing engine also reads this attribute directly to
        # attach its live state and validate latencies at the source.
        self.sanitizer = sanitizer
        # A HotPathProfiler (or None); the timing engine reads this
        # attribute directly to lap its stage boundaries and wrap the
        # hierarchy/predictor components.
        self.profiler = profiler
        self.simulator = simulator
        self.workload = workload
        self._prev_retire = 0.0
        self._pre: Tuple[int, ...] = ()
        self._seq = 0
        self._instr_counter = (
            metrics.counter("pipeline.instructions")
            if metrics is not None else None
        )

    # -- engine hook ------------------------------------------------------

    def begin(self, stats) -> None:
        """Snapshot the event counters before an instruction is timed."""
        self._pre = tuple(getattr(stats, f) for f in EVENT_FIELDS)

    def commit(
        self,
        dyn,
        fetch: float,
        map_time: float,
        issue: float,
        complete: float,
        retire: float,
        stats,
    ) -> None:
        """Record one fully timed instruction."""
        pre = self._pre
        events = tuple(
            name
            for name, before in zip(EVENT_FIELDS, pre)
            if getattr(stats, name) > before
        )
        delta = retire - self._prev_retire
        self._prev_retire = retire
        seq = self._seq
        self._seq = seq + 1

        if self.sanitizer is not None:
            self.sanitizer.on_commit(
                fetch, map_time, issue, complete, retire, dyn.pc
            )

        cause = "base"
        if self.accountant is not None:
            # Queue back-pressure / dependence stalls push issue past
            # the earliest possible cycle after map.
            cause = self.accountant.account(
                delta, events, issue_stalled=issue > map_time + 1.000001
            )
        if self.tracer is not None:
            self.tracer.record(TraceEvent(
                seq=seq,
                pc=dyn.pc,
                op=dyn.opcode.name.lower(),
                klass=dyn.klass.name,
                fetch=fetch,
                map=map_time,
                issue=issue,
                complete=complete,
                retire=retire,
                cause=cause,
                events=events,
            ))
        if self._instr_counter is not None:
            self._instr_counter.inc()

    def commit_short(self, dyn, fetch: float, retire: float, stats) -> None:
        """Record an early-retiring instruction (nop removal, halt)."""
        self.commit(dyn, fetch, retire, retire, retire, retire, stats)

    # -- result decoration ------------------------------------------------

    def finalize(self, result) -> None:
        """Attach the accumulated CPI stack to a finished result."""
        if self.accountant is not None:
            result.cpi_stack = self.accountant.stack(
                result.cycles, result.instructions
            )
        if self.metrics is not None:
            self.metrics.counter("pipeline.runs").inc()


class Instrumentation:
    """User-facing bundle: registry + per-run tracers and CPI stacks.

    ``enabled=False`` makes :meth:`observer` return ``None``, which the
    engine treats as "no instrumentation" — the zero-cost mode.
    """

    def __init__(
        self,
        *,
        enabled: bool = True,
        trace: bool = False,
        trace_capacity: int = 65_536,
        cpi_stacks: bool = True,
        profile: bool = False,
        registry: Optional[MetricsRegistry] = None,
    ):
        self.enabled = enabled
        self.trace = trace
        self.trace_capacity = trace_capacity
        self.cpi_stacks = cpi_stacks
        self.profile = profile
        self.registry = registry if registry is not None else MetricsRegistry(
            enabled=enabled
        )
        #: (simulator, workload, observer) per run, in run order.
        self.runs: List[Tuple[str, str, RunObserver]] = []

    @classmethod
    def disabled(cls) -> "Instrumentation":
        return cls(enabled=False)

    def observer(
        self, *, simulator: str = "", workload: str = ""
    ) -> Optional[RunObserver]:
        """A fresh per-run observer, or ``None`` when disabled."""
        if not self.enabled:
            return None
        observer = RunObserver(
            tracer=(
                PipelineTracer(self.trace_capacity) if self.trace else None
            ),
            accountant=CpiStackAccountant() if self.cpi_stacks else None,
            metrics=self.registry if self.registry.enabled else None,
            profiler=HotPathProfiler() if self.profile else None,
            simulator=simulator,
            workload=workload,
        )
        self.runs.append((simulator, workload, observer))
        return observer

    def tracers(self) -> Dict[Tuple[str, str], PipelineTracer]:
        """Tracers collected so far, keyed by (simulator, workload)."""
        return {
            (sim, wl): obs.tracer
            for sim, wl, obs in self.runs
            if obs.tracer is not None
        }

    def last_tracer(self) -> Optional[PipelineTracer]:
        for _, _, obs in reversed(self.runs):
            if obs.tracer is not None:
                return obs.tracer
        return None

    def profilers(self) -> Dict[Tuple[str, str], HotPathProfiler]:
        """Profilers collected so far, keyed by (simulator, workload)."""
        return {
            (sim, wl): obs.profiler
            for sim, wl, obs in self.runs
            if obs.profiler is not None
        }

    def last_profiler(self) -> Optional[HotPathProfiler]:
        for _, _, obs in reversed(self.runs):
            if obs.profiler is not None:
                return obs.profiler
        return None
