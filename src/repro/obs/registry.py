"""A small metrics registry: counters, gauges, and wall-clock timers.

The registry is the collection point for everything the harness and the
hierarchy want to count about a run *of the tooling itself* (cell wall
times, cache accesses, experiment durations) — as opposed to the
architectural event counts that live in :class:`repro.result.RunStats`.

Two cost modes:

* **enabled** — instruments are real objects that accumulate values;
* **disabled** — :meth:`MetricsRegistry.counter` (and friends) hand
  back shared no-op instruments whose mutation methods do nothing, so
  instrumented code paths can call them unconditionally without
  branching.  A disabled registry never allocates per-name state.

Instrument handles are stable: call sites that care about hot-path cost
should look an instrument up once and keep the reference.
"""

from __future__ import annotations

import json
import re
import time
from typing import Dict, Iterator, List, Optional

__all__ = [
    "Counter",
    "Gauge",
    "Timer",
    "MetricsRegistry",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_TIMER",
]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Timer:
    """Accumulated wall-clock time over any number of observations."""

    __slots__ = ("name", "total", "count")

    def __init__(self, name: str):
        self.name = name
        self.total = 0.0
        self.count = 0

    def observe(self, seconds: float) -> None:
        self.total += seconds
        self.count += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def time(self) -> "_TimerContext":
        """Context manager measuring one observation."""
        return _TimerContext(self)


class _TimerContext:
    __slots__ = ("_timer", "_start")

    def __init__(self, timer: Timer):
        self._timer = timer
        self._start = 0.0

    def __enter__(self) -> "_TimerContext":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._timer.observe(time.perf_counter() - self._start)


class _NullCounter(Counter):
    """Shared do-nothing counter for disabled registries."""

    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass


class _NullTimer(Timer):
    __slots__ = ()

    def observe(self, seconds: float) -> None:
        pass


#: Shared no-op instruments (what a disabled registry hands out).
NULL_COUNTER = _NullCounter("null")
NULL_GAUGE = _NullGauge("null")
NULL_TIMER = _NullTimer("null")


class MetricsRegistry:
    """Get-or-create registry of named instruments.

    Names are free-form dotted paths (``"harness.cell.sim-alpha.C-R"``).
    A disabled registry returns the shared null instruments and records
    nothing.
    """

    def __init__(self, *, enabled: bool = True):
        self.enabled = enabled
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._timers: Dict[str, Timer] = {}

    @classmethod
    def disabled(cls) -> "MetricsRegistry":
        return cls(enabled=False)

    # -- instrument access ------------------------------------------------

    def counter(self, name: str) -> Counter:
        if not self.enabled:
            return NULL_COUNTER
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        if not self.enabled:
            return NULL_GAUGE
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def timer(self, name: str) -> Timer:
        if not self.enabled:
            return NULL_TIMER
        instrument = self._timers.get(name)
        if instrument is None:
            instrument = self._timers[name] = Timer(name)
        return instrument

    # -- introspection ----------------------------------------------------

    def __iter__(self) -> Iterator[str]:
        yield from self._counters
        yield from self._gauges
        yield from self._timers

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """All instrument values as plain data, suitable for JSON."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "timers": {
                n: {"total_s": t.total, "count": t.count, "mean_s": t.mean}
                for n, t in sorted(self._timers.items())
            },
        }

    def write_json(self, path: str, *, extra: Optional[Dict] = None) -> None:
        """Dump :meth:`snapshot` (plus optional metadata) to ``path``."""
        payload = dict(self.snapshot())
        if extra:
            payload["meta"] = extra
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")

    # -- OpenMetrics / Prometheus textfile export -------------------------

    def render_openmetrics(self, *, prefix: str = "repro") -> str:
        """The registry as OpenMetrics text (Prometheus-scrapeable).

        Counters become ``<prefix>_<name>_total``, gauges become
        ``<prefix>_<name>``, and timers become a
        ``_seconds_sum``/``_seconds_count`` pair (the summary subset
        the textfile collector understands).  Metric names are
        sanitised (dots to underscores), families are emitted in
        sorted order, and nothing varying (timestamps, hosts) is
        included, so two registries holding the same values render
        byte-identically — the property the telemetry determinism
        tests pin.
        """
        lines: List[str] = []
        for name, counter in sorted(self._counters.items()):
            metric = _metric_name(prefix, name)
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric}_total {_format_value(counter.value)}")
        for name, gauge in sorted(self._gauges.items()):
            metric = _metric_name(prefix, name)
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {_format_value(gauge.value)}")
        for name, timer in sorted(self._timers.items()):
            metric = _metric_name(prefix, name) + "_seconds"
            lines.append(f"# TYPE {metric} summary")
            lines.append(f"{metric}_sum {_format_value(timer.total)}")
            lines.append(f"{metric}_count {timer.count}")
        lines.append("# EOF")
        return "\n".join(lines) + "\n"

    def write_openmetrics(self, path: str, *, prefix: str = "repro") -> None:
        """Write :meth:`render_openmetrics` to ``path`` (a Prometheus
        node-exporter textfile-collector drop, or anything that scrapes
        OpenMetrics)."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.render_openmetrics(prefix=prefix))


_METRIC_SANITIZE = re.compile(r"[^a-zA-Z0-9_:]")


def _metric_name(prefix: str, name: str) -> str:
    """A legal OpenMetrics metric name for a dotted instrument name."""
    return _METRIC_SANITIZE.sub("_", f"{prefix}_{name}")


def _format_value(value: float) -> str:
    """Numbers formatted stably (integers without a trailing ``.0``)."""
    if isinstance(value, int) or (
        isinstance(value, float) and value.is_integer()
    ):
        return str(int(value))
    return repr(value)
