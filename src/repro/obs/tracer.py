"""Per-instruction pipeline event tracing.

The :class:`PipelineTracer` receives one :class:`TraceEvent` per
retired instruction from the engine's observer hook and keeps the most
recent ``capacity`` of them in a ring buffer (tracing a billion-cycle
run must not hold a billion records).  Two export formats:

* **JSONL** — one JSON object per line, self-describing, easy to grep
  and diff.  The first line is a header object carrying the workload,
  simulator, drop count, and (when available) run provenance.
* **Chrome trace-event JSON** — loads directly into ``chrome://tracing``
  or https://ui.perfetto.dev.  Each pipeline stage becomes a duration
  slice on its own track, with the cycle number standing in for the
  microsecond timestamp, so the pipeline's overlap structure is visible
  on a timeline.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

__all__ = ["TraceEvent", "PipelineTracer"]

#: Track (Chrome "thread") ids per pipeline stage, in display order.
_STAGE_TRACKS = (("fetch", 1), ("map", 2), ("execute", 3), ("retire", 4))


@dataclass(frozen=True)
class TraceEvent:
    """One instruction's passage through the pipeline."""

    seq: int              #: dynamic instruction index
    pc: int
    op: str               #: opcode mnemonic
    klass: str            #: instruction class name
    fetch: float          #: cycle the octaword's data was up
    map: float            #: cycle the instruction was renamed
    issue: float          #: cycle it left the issue queue
    complete: float       #: cycle its result wrote back
    retire: float         #: cycle it retired
    cause: str            #: CPI-stack component its retire delta went to
    events: Tuple[str, ...] = ()   #: architectural events it triggered

    def to_dict(self) -> Dict:
        return {
            "type": "event",
            "seq": self.seq,
            "pc": self.pc,
            "op": self.op,
            "class": self.klass,
            "fetch": self.fetch,
            "map": self.map,
            "issue": self.issue,
            "complete": self.complete,
            "retire": self.retire,
            "cause": self.cause,
            "events": list(self.events),
        }


class PipelineTracer:
    """Bounded ring buffer of :class:`TraceEvent` records."""

    def __init__(self, capacity: int = 65_536):
        if capacity <= 0:
            raise ValueError("tracer capacity must be positive")
        self.capacity = capacity
        self._ring: deque = deque(maxlen=capacity)
        self.recorded = 0     #: total events ever offered

    def record(self, event: TraceEvent) -> None:
        self.recorded += 1
        self._ring.append(event)

    @property
    def events(self) -> List[TraceEvent]:
        """The retained window, oldest first."""
        return list(self._ring)

    @property
    def dropped(self) -> int:
        """Events evicted by the ring bound."""
        return self.recorded - len(self._ring)

    def __len__(self) -> int:
        return len(self._ring)

    # -- exporters --------------------------------------------------------

    def header(
        self,
        *,
        simulator: str = "",
        workload: str = "",
        provenance: Optional[Dict] = None,
    ) -> Dict:
        head: Dict = {
            "type": "header",
            "format": "repro-pipeline-trace/1",
            "simulator": simulator,
            "workload": workload,
            "capacity": self.capacity,
            "recorded": self.recorded,
            "dropped": self.dropped,
        }
        if provenance is not None:
            head["provenance"] = provenance
        return head

    def write_jsonl(
        self,
        path: str,
        *,
        simulator: str = "",
        workload: str = "",
        provenance: Optional[Dict] = None,
    ) -> None:
        """One header line, then one line per retained event."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(self.header(
                simulator=simulator, workload=workload, provenance=provenance
            )) + "\n")
            for event in self._ring:
                handle.write(json.dumps(event.to_dict()) + "\n")

    def chrome_events(self) -> List[Dict]:
        """The retained window as Chrome trace-event dicts.

        Pipeline stages map to duration ("ph": "X") slices on four
        tracks; zero-length stages get a minimal visible duration.
        Architectural events ride along in each slice's ``args``.
        """
        out: List[Dict] = [
            {
                "ph": "M", "pid": 0, "tid": tid, "name": "thread_name",
                "args": {"name": f"{stage} stage"},
            }
            for stage, tid in _STAGE_TRACKS
        ]
        for event in self._ring:
            spans = (
                ("fetch", 1, event.fetch, event.map),
                ("map", 2, event.map, event.issue),
                ("execute", 3, event.issue, event.complete),
                ("retire", 4, event.complete, event.retire),
            )
            args = {
                "seq": event.seq,
                "pc": f"0x{event.pc:x}",
                "class": event.klass,
                "cause": event.cause,
                "events": list(event.events),
            }
            for stage, tid, start, end in spans:
                out.append({
                    "ph": "X",
                    "pid": 0,
                    "tid": tid,
                    "name": event.op,
                    "cat": stage,
                    "ts": start,
                    "dur": max(end - start, 0.05),
                    "args": args,
                })
        return out

    def write_chrome_trace(
        self,
        path: str,
        *,
        simulator: str = "",
        workload: str = "",
        provenance: Optional[Dict] = None,
    ) -> None:
        """A complete ``chrome://tracing`` JSON object file."""
        payload = {
            "traceEvents": self.chrome_events(),
            "displayTimeUnit": "ns",
            "otherData": self.header(
                simulator=simulator, workload=workload, provenance=provenance
            ),
        }
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
            handle.write("\n")


def validate_chrome_trace(payload: Dict) -> List[str]:
    """Schema problems in a Chrome trace-event payload (empty = valid).

    Checks the subset of the trace-event format the viewers require:
    a ``traceEvents`` list whose entries carry ``ph``/``pid``/``tid``/
    ``name``, with duration events also needing numeric ``ts``/``dur``.
    """
    problems: List[str] = []
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    for index, event in enumerate(events):
        for key in ("ph", "pid", "tid", "name"):
            if key not in event:
                problems.append(f"event {index}: missing {key!r}")
        if event.get("ph") == "X":
            for key in ("ts", "dur"):
                if not isinstance(event.get(key), (int, float)):
                    problems.append(f"event {index}: non-numeric {key!r}")
    return problems


__all__.append("validate_chrome_trace")
