"""Hot-path profiler: where the simulator's *own* wall-time goes.

The paper's discipline — never trust a number whose error you have not
measured — applies to the tooling too.  ROADMAP item 1 wants the
per-instruction Python timing loop 10-100x faster, and a speedup
campaign without attribution optimizes blind.  This module is the map:
a :class:`HotPathProfiler` attributes one run's wall-clock time to the
pipeline's phases (fetch / map / issue / mem / execute / control /
retire) and, one level down, to the components those phases call into
(cache lookups, the MSHRs, TLB/page-walk, the DRAM model, predictor
updates).

Two measurement mechanisms, both exact (no sampling):

* **phase laps** — :meth:`AlphaPipeline.run_trace` calls
  :meth:`HotPathProfiler.lap` at each stage boundary of the
  per-instruction loop.  Laps form a continuous timeline: every
  nanosecond between ``run_begin`` and ``run_end`` lands in exactly one
  phase, so the attribution table *sums to the measured run time* (the
  acceptance bar is >=95% coverage; laps deliver ~100% minus the cost
  of the final bookkeeping).
* **component wrapping** — :meth:`instrument` walks the declarative
  ``PROFILE_COMPONENTS`` tables that :mod:`repro.memory.hierarchy`,
  :mod:`repro.memory.mshr`, :mod:`repro.dram.sdram`, and the predictor
  modules export, and wraps those bound methods on the *instances* of
  one pipeline.  Wrapped calls nest (DRAM inside L2 inside a load);
  a child-time stack keeps every component's total *exclusive*
  (self-time), so components never double-count each other.

When no profiler is attached the engine pays one ``is not None`` check
per lap point and nothing is wrapped — the same <5% disabled-overhead
contract as the tracer, asserted by
``benchmarks/bench_observability_overhead.py``.

Export: :meth:`attribution` (plain data), :meth:`render` (the
attribution table), and :meth:`write_collapsed` (collapsed-stack lines,
``phase;component microseconds``, loadable by any flamegraph tool —
``flamegraph.pl``, speedscope, inferno).
"""

from __future__ import annotations

import sys
import time
from typing import Callable, Dict, List, Optional, Tuple

__all__ = ["HotPathProfiler", "PHASES"]

#: Phase names in pipeline order (the attribution table's row order).
PHASES: Tuple[str, ...] = (
    "setup",
    "fetch",
    "map",
    "issue",
    "mem",
    "execute",
    "control",
    "retire",
    "blockcache",
    "finalize",
)


class HotPathProfiler:
    """Exact wall-time attribution for one (or more) timing runs.

    One profiler may accumulate several runs (a grid's worth); totals
    are cumulative.  ``clock`` is injectable for tests.
    """

    __slots__ = (
        "_clock", "phases", "components", "component_calls",
        "total_s", "runs",
        "_lap_prev", "_run_start", "_stack", "_wrapped",
    )

    def __init__(self, *, clock: Callable[[], float] = time.perf_counter):
        self._clock = clock
        #: phase -> accumulated seconds (a complete partition of run time).
        self.phases: Dict[str, float] = {}
        #: component -> accumulated *exclusive* seconds.
        self.components: Dict[str, float] = {}
        #: component -> call count.
        self.component_calls: Dict[str, int] = {}
        #: total measured wall seconds across runs (run_begin..run_end).
        self.total_s = 0.0
        self.runs = 0
        self._lap_prev = 0.0
        self._run_start: Optional[float] = None
        #: Child-time accumulators for in-flight component calls.
        self._stack: List[float] = []
        #: ids of objects already wrapped (shared-MAF dedup).
        self._wrapped: set = set()

    # -- run scope ---------------------------------------------------------

    def run_begin(self) -> None:
        """Mark the start of a timed run (resets the lap origin)."""
        now = self._clock()
        self._run_start = now
        self._lap_prev = now

    def run_end(self) -> None:
        """Close the run: the tail lands in ``finalize``."""
        if self._run_start is None:
            return
        self.lap("finalize")
        self.total_s += self._lap_prev - self._run_start
        self.runs += 1
        self._run_start = None

    # -- phase laps (the pipeline loop's API) ------------------------------

    def lap(self, phase: str) -> None:
        """Attribute the time since the previous lap to ``phase``.

        Laps are a continuous timeline: each call charges exactly the
        interval since the last lap (or ``run_begin``), so phase totals
        partition the run with no gaps and no overlap.
        """
        now = self._clock()
        self.phases[phase] = (
            self.phases.get(phase, 0.0) + now - self._lap_prev
        )
        self._lap_prev = now

    # -- component timing (the wrapped-method API) -------------------------

    def cstart(self) -> float:
        """Open a component interval; returns the start token."""
        self._stack.append(0.0)
        return self._clock()

    def cstop(self, name: str, start: float) -> None:
        """Close a component interval opened by :meth:`cstart`.

        The elapsed time minus any nested component time is credited to
        ``name`` (exclusive attribution); the full elapsed time is
        reported upward to the enclosing component, if any.
        """
        elapsed = self._clock() - start
        child = self._stack.pop()
        self.components[name] = (
            self.components.get(name, 0.0) + elapsed - child
        )
        self.component_calls[name] = self.component_calls.get(name, 0) + 1
        if self._stack:
            self._stack[-1] += elapsed

    # -- instance instrumentation ------------------------------------------

    def _wrap(self, obj: object, attr: str, component: str) -> None:
        inner = getattr(obj, attr)
        if getattr(inner, "_profiled", False):
            return

        def timed(*args, _inner=inner, _name=component, **kwargs):
            token = self.cstart()
            try:
                return _inner(*args, **kwargs)
            finally:
                self.cstop(_name, token)

        timed._profiled = True
        setattr(obj, attr, timed)

    def _instrument_object(self, obj: object) -> None:
        """Wrap one instance's declared profile hooks (idempotent)."""
        if obj is None or id(obj) in self._wrapped:
            return
        # The declarative hook table lives on the instance's module.
        module = sys.modules.get(type(obj).__module__)
        hooks = getattr(module, "PROFILE_COMPONENTS", None)
        if not hooks:
            return
        class_hooks = hooks.get(type(obj).__name__)
        if not class_hooks:
            return
        for attr, component in class_hooks.items():
            if hasattr(obj, attr):
                self._wrap(obj, attr, component)
        self._wrapped.add(id(obj))

    def instrument(self, pipeline) -> None:
        """Attach component timers to one :class:`AlphaPipeline`.

        Walks the pipeline's hierarchy (caches, MAFs, TLB path, DRAM)
        and predictors, wrapping every method their modules declare in
        ``PROFILE_COMPONENTS``.  Wrapping is per *instance*, and a
        fresh pipeline is built per run, so instrumentation never
        leaks between runs.  Shared objects (one MAF serving three
        caches) are wrapped once.
        """
        hier = getattr(pipeline, "hierarchy", None)
        targets = [
            hier,
            getattr(hier, "dram", None),
            getattr(hier, "maf_i", None),
            getattr(hier, "maf_d", None),
            getattr(hier, "maf_l2", None),
            getattr(pipeline, "branch_predictor", None),
            getattr(pipeline, "line_predictor", None),
            getattr(pipeline, "way_predictor", None),
            getattr(pipeline, "ras", None),
            getattr(pipeline, "load_use", None),
            getattr(pipeline, "store_wait", None),
        ]
        for target in targets:
            self._instrument_object(target)

    # -- reporting ---------------------------------------------------------

    @property
    def coverage(self) -> float:
        """Fraction of measured run wall-time the phase table explains."""
        return (
            sum(self.phases.values()) / self.total_s if self.total_s else 0.0
        )

    def attribution(self) -> Dict:
        """The full attribution as plain JSON-ready data."""
        ordered = {
            phase: self.phases[phase]
            for phase in PHASES if phase in self.phases
        }
        for phase in sorted(self.phases):
            ordered.setdefault(phase, self.phases[phase])
        return {
            "total_s": self.total_s,
            "runs": self.runs,
            "coverage": self.coverage,
            "phases": ordered,
            "components": {
                name: {
                    "self_s": self.components[name],
                    "calls": self.component_calls.get(name, 0),
                }
                for name in sorted(self.components)
            },
        }

    def render(self) -> str:
        """The per-run attribution table (phases, then components)."""
        data = self.attribution()
        total = data["total_s"] or 1e-12
        lines = [
            f"hot-path attribution ({data['runs']} run(s), "
            f"{data['total_s'] * 1e3:.1f} ms measured, "
            f"coverage {data['coverage'] * 100:.1f}%)",
            f"{'phase':<12} {'ms':>10} {'share':>7}",
        ]
        for phase, seconds in data["phases"].items():
            lines.append(
                f"{phase:<12} {seconds * 1e3:>10.2f} "
                f"{seconds / total * 100:>6.1f}%"
            )
        if data["components"]:
            lines.append("")
            lines.append(
                f"{'component':<22} {'self ms':>10} {'calls':>10} "
                f"{'us/call':>8}"
            )
            for name, record in data["components"].items():
                calls = record["calls"] or 1
                lines.append(
                    f"{name:<22} {record['self_s'] * 1e3:>10.2f} "
                    f"{record['calls']:>10} "
                    f"{record['self_s'] / calls * 1e6:>8.2f}"
                )
        return "\n".join(lines)

    def collapsed_stacks(self) -> List[str]:
        """Flamegraph-compatible collapsed-stack lines.

        Phases become ``pipeline;<phase>`` frames; components become
        ``pipeline;<parent-phase>;<leaf>`` children (a component names
        its parent phase in its ``"parent/leaf"`` hook name).  Values
        are integer microseconds of *self* time, so a flamegraph's
        frame widths match the attribution table.  Component self-time
        is subtracted from its parent phase so stacks never
        double-count.
        """
        child_of: Dict[str, float] = {}
        lines: List[str] = []
        for name in sorted(self.components):
            parent, _, leaf = name.partition("/")
            seconds = self.components[name]
            child_of[parent] = child_of.get(parent, 0.0) + seconds
            micros = int(round(seconds * 1e6))
            if micros > 0:
                lines.append(f"pipeline;{parent};{leaf or name} {micros}")
        phase_lines: List[str] = []
        for phase, seconds in self.phases.items():
            self_s = max(0.0, seconds - child_of.get(phase, 0.0))
            micros = int(round(self_s * 1e6))
            if micros > 0:
                phase_lines.append(f"pipeline;{phase} {micros}")
        return sorted(phase_lines) + lines

    def write_collapsed(self, path: str) -> None:
        """Write :meth:`collapsed_stacks` one line per stack."""
        with open(path, "w", encoding="utf-8") as handle:
            for line in self.collapsed_stacks():
                handle.write(line + "\n")
