"""Observability: metrics, pipeline tracing, CPI stacks, provenance.

The paper's method is cycle *attribution* — its authors drove
sim-alpha's error from ~75% to ~2% by finding which mechanism each
wrong cycle belonged to.  This package gives the reproduction the same
lens over itself:

* :class:`MetricsRegistry` — counters/gauges/timers for the tooling
  (cell wall times, cache traffic), with a zero-cost disabled mode;
* :class:`PipelineTracer` — a bounded ring buffer of per-instruction
  stage events, exporting JSONL and Chrome trace-event files;
* :class:`CpiStackAccountant` — decomposes CPI into
  base/fetch/issue/memory/trap/bubble components that sum exactly;
* :class:`RunProvenance` — config hash + version + host + wall clock
  attached to results;
* :class:`HotPathProfiler` — exact wall-time attribution of the
  simulator's own hot loop to pipeline phases and hierarchy/predictor
  components, with a flamegraph-compatible collapsed-stack export
  (``Instrumentation(profile=True)``);
* :class:`CellTelemetry` / :class:`RunLedger` / :class:`GridProgress`
  — per-cell resource cost (wall, CPU, RSS, KIPS) on every result, a
  JSONL per-grid run ledger, and a live progress line;
* :class:`Instrumentation` — the bundle the harness, CLI, and
  simulators accept; ``Instrumentation.disabled()`` (or simply passing
  nothing) keeps the hot timing loop at one pointer check per
  instruction.

Quick look at where a workload's cycles go::

    from repro import SimAlpha
    from repro.obs import Instrumentation
    from repro.validation import Harness

    inst = Instrumentation(trace=True)
    harness = Harness()
    result = harness.run_one(SimAlpha, "M-D", instrumentation=inst)
    print(result.cpi_stack)            # component -> cycles/instr
    inst.last_tracer().write_chrome_trace("md.chrome.json")
"""

from repro.obs.cpistack import (
    CPI_COMPONENTS,
    CpiStackAccountant,
    cpi_stack_total,
)
from repro.obs.observer import EVENT_FIELDS, Instrumentation, RunObserver
from repro.obs.profiler import PHASES, HotPathProfiler
from repro.obs.provenance import (
    RunProvenance,
    capture_provenance,
    config_hash,
)
from repro.obs.registry import Counter, Gauge, MetricsRegistry, Timer
from repro.obs.telemetry import (
    CellTelemetry,
    GridProgress,
    RunLedger,
    TelemetryProbe,
    mirror_to_metrics,
)
from repro.obs.tracer import PipelineTracer, TraceEvent, validate_chrome_trace

__all__ = [
    "HotPathProfiler",
    "PHASES",
    "CellTelemetry",
    "TelemetryProbe",
    "RunLedger",
    "GridProgress",
    "mirror_to_metrics",
    "CPI_COMPONENTS",
    "CpiStackAccountant",
    "cpi_stack_total",
    "EVENT_FIELDS",
    "Instrumentation",
    "RunObserver",
    "RunProvenance",
    "capture_provenance",
    "config_hash",
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "Timer",
    "PipelineTracer",
    "TraceEvent",
    "validate_chrome_trace",
]
