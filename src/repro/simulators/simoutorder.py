"""sim-outorder: the SimpleScalar 3.0b out-of-order model.

Paper Section 5.1: "The tools simulate a processor organization that
would not be feasible at high frequencies and consequently have never
been validated against hardware ... The simulator models a five-stage
pipeline and is based on the Register Update Unit (RUU), which combines
the physical register file, reorder buffer, and issue window into a
single structure."

The abstractions that make it fast — and optimistic — are deliberate
and mirror the paper's list of why it outruns the DS-10L by ~37%:

* a shallow five-stage pipeline (3-cycle-ish mispredict penalty instead
  of 7+);
* a BTB for target prediction instead of a line predictor;
* a centralized execution core: no clusters, no cross-cluster bypass,
  no slotting restrictions;
* generic functional units;
* no replay traps of any kind, and an unconstrained front end (fetch is
  not octaword-aligned);
* a simpler memory system with a flat DRAM latency (the paper
  configures 62 cycles) and no MAF/port limits.

Configured per the paper: RUU = 64 entries, a combined 64-entry LSQ,
caches matching the DS-10L geometry.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Sequence, Tuple

from repro.functional.trace import DynInstr
from repro.isa.instructions import InstrClass
from repro.memory.cache import Cache, CacheConfig
from repro.predictors.btb import BranchTargetBuffer, BtbConfig
from repro.predictors.ras import RasConfig, ReturnAddressStack
from repro.predictors.twolevel import TwoLevelConfig, TwoLevelPredictor
from repro.result import RunStats, SimResult

__all__ = ["OutOrderConfig", "SimOutOrder"]


@dataclass(frozen=True)
class OutOrderConfig:
    """sim-outorder knobs (defaults = the paper's configuration)."""

    name: str = "sim-outorder"
    fetch_width: int = 4
    issue_width: int = 4
    commit_width: int = 4
    ruu_size: int = 64
    lsq_size: int = 64
    #: Cycles from fetch to issue-eligible (the shallow pipeline).
    front_depth: int = 2
    #: Extra cycles after branch resolution before refetch.
    mispredict_penalty: int = 2
    int_alu_units: int = 4
    int_mult_units: int = 1
    #: One FP adder, as in the paper's 21264-matched configuration.
    fp_alu_units: int = 1
    fp_mult_units: int = 1
    mem_ports: int = 2
    l1d: CacheConfig = field(
        default_factory=lambda: CacheConfig(64 * 1024, 2, 64, name="dl1")
    )
    l1i: CacheConfig = field(
        default_factory=lambda: CacheConfig(64 * 1024, 2, 64, name="il1")
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(2 * 1024 * 1024, 1, 64, name="ul2")
    )
    l1_latency: int = 3
    l2_latency: int = 13
    dram_latency: int = 62
    btb: BtbConfig = field(default_factory=BtbConfig)
    predictor: TwoLevelConfig = field(default_factory=TwoLevelConfig)
    #: None = the classic RUU (registers are window entries).  An int
    #: models the Table 5 variant "in which the physical register file
    #: is a separate structure" of that many rename registers.
    separate_phys_regs: Optional[int] = None

    def with_l1_latency(self, cycles: int) -> "OutOrderConfig":
        return replace(self, l1_latency=cycles)


class SimOutOrder:
    """Times traces under the RUU model."""

    def __init__(self, config: OutOrderConfig | None = None):
        self.config = config or OutOrderConfig()

    @property
    def name(self) -> str:
        return self.config.name

    def run_trace(self, trace: Sequence[DynInstr], workload: str = "") -> SimResult:
        cfg = self.config
        stats = RunStats()
        il1 = Cache(cfg.l1i)
        dl1 = Cache(cfg.l1d)
        ul2 = Cache(cfg.l2)
        bpred = TwoLevelPredictor(cfg.predictor)
        btb = BranchTargetBuffer(cfg.btb)
        ras = ReturnAddressStack(RasConfig(depth=8))

        reg_ready: Dict[str, float] = {}
        ruu_ring: list = []
        ruu_head = 0
        lsq_ring: list = []
        lsq_head = 0
        phys_ring: list = []
        phys_head = 0
        phys_pool = cfg.separate_phys_regs

        ports: Dict[int, int] = {}
        mem_ports: Dict[int, int] = {}
        commit_ports: Dict[int, int] = {}
        fetch_slots: Dict[int, int] = {}

        units = {
            "ialu": [0.0] * cfg.int_alu_units,
            "imult": [0.0] * cfg.int_mult_units,
            "falu": [0.0] * cfg.fp_alu_units,
            "fmult": [0.0] * cfg.fp_mult_units,
        }

        def unit_kind(klass: InstrClass) -> str:
            if klass is InstrClass.INT_MUL:
                return "imult"
            if klass in (
                InstrClass.FP_MUL,
                InstrClass.FP_DIV_S,
                InstrClass.FP_DIV_D,
                InstrClass.FP_SQRT_S,
                InstrClass.FP_SQRT_D,
            ):
                return "fmult"
            if klass.is_fp and not klass.is_memory:
                return "falu"
            return "ialu"

        def dcache_latency(addr: int, write: bool) -> Tuple[float, bool]:
            hit = dl1.access(addr, write=write).hit
            if hit:
                return float(cfg.l1_latency), True
            if ul2.access(addr).hit:
                return float(cfg.l2_latency), False
            return float(cfg.dram_latency), False

        pending_redirect = 0.0
        fetch_cursor = 0.0
        last_commit = 0.0
        final_commit = 0.0

        for dyn in trace:
            klass = dyn.klass

            # Fetch: width-limited, cache-timed, alignment-free.
            fetch_at = max(pending_redirect, fetch_cursor)
            cycle = int(fetch_at)
            while fetch_slots.get(cycle, 0) >= cfg.fetch_width:
                cycle += 1
            fetch_slots[cycle] = fetch_slots.get(cycle, 0) + 1
            fetch_time = float(cycle) if cycle > fetch_at else fetch_at
            fetch_cursor = float(cycle)
            if not il1.access(dyn.pc).hit:
                stats.icache_misses += 1
                if ul2.access(dyn.pc).hit:
                    fetch_time += cfg.l2_latency
                else:
                    fetch_time += cfg.dram_latency
                # Fetch stalls behind an I-cache miss.
                fetch_cursor = max(fetch_cursor, fetch_time)

            if klass is InstrClass.HALT:
                commit = max(fetch_time + cfg.front_depth + 1, last_commit)
                last_commit = commit
                final_commit = max(final_commit, commit)
                continue

            # Dispatch: RUU / LSQ / (optional) rename occupancy.
            dispatch = fetch_time + cfg.front_depth
            if len(ruu_ring) - ruu_head >= cfg.ruu_size:
                oldest = ruu_ring[ruu_head]
                ruu_head += 1
                if ruu_head > 4096:
                    del ruu_ring[:ruu_head]
                    ruu_head = 0
                if oldest > dispatch:
                    dispatch = oldest
            if dyn.is_memory and len(lsq_ring) - lsq_head >= cfg.lsq_size:
                oldest = lsq_ring[lsq_head]
                lsq_head += 1
                if oldest > dispatch:
                    dispatch = oldest
            if phys_pool is not None and dyn.dest is not None:
                if len(phys_ring) - phys_head >= phys_pool:
                    oldest = phys_ring[phys_head]
                    phys_head += 1
                    if oldest > dispatch:
                        dispatch = oldest

            # Operand readiness (full bypass, no cluster penalty).
            data_ready = dispatch + 1
            for src in dyn.srcs:
                t = reg_ready.get(src)
                if t is not None and t > data_ready:
                    data_ready = t

            # Issue-width and unit arbitration.
            issue_time = data_ready
            cycle = int(issue_time)
            while ports.get(cycle, 0) >= cfg.issue_width:
                cycle += 1
            ports[cycle] = ports.get(cycle, 0) + 1
            if cycle > issue_time:
                issue_time = float(cycle)
            pool = units[unit_kind(klass)]
            best = min(range(len(pool)), key=lambda i: pool[i])
            if pool[best] > issue_time:
                issue_time = pool[best]
            pool[best] = issue_time + 1

            # Execute.
            if dyn.is_load:
                cycle = int(issue_time)
                while mem_ports.get(cycle, 0) >= cfg.mem_ports:
                    cycle += 1
                mem_ports[cycle] = mem_ports.get(cycle, 0) + 1
                latency, hit = dcache_latency(dyn.eaddr, False)
                if not hit:
                    stats.dcache_misses += 1
                complete = issue_time + latency
            elif dyn.is_store:
                latency, hit = dcache_latency(dyn.eaddr, True)
                if not hit:
                    stats.dcache_misses += 1
                complete = issue_time + 1  # stores retire from the LSQ
            else:
                # SimpleScalar's generic latencies: control resolves in
                # one cycle and the default FP adder takes two (both
                # shorter than the 21264's — part of its optimism).
                if dyn.is_control:
                    latency = 1
                elif dyn.klass is InstrClass.FP_ADD:
                    latency = 2
                else:
                    latency = dyn.latency
                complete = issue_time + latency

            # Control: 2-level + BTB/RAS with the shallow-pipe penalty.
            if dyn.is_control:
                resolve = complete
                mispredicted = False
                if klass is InstrClass.COND_BRANCH:
                    stats.branch_lookups += 1
                    prediction = bpred.predict_and_train(dyn.pc, dyn.taken)
                    if prediction != dyn.taken:
                        stats.branch_mispredicts += 1
                        mispredicted = True
                    elif dyn.taken:
                        if btb.lookup_and_train(dyn.pc, dyn.next_pc) != dyn.next_pc:
                            mispredicted = True
                elif klass is InstrClass.RETURN:
                    if not ras.predict_and_pop(dyn.next_pc):
                        stats.ras_mispredicts += 1
                        mispredicted = True
                else:
                    if klass is InstrClass.CALL:
                        ras.push(dyn.fallthrough_pc)
                    if btb.lookup_and_train(dyn.pc, dyn.next_pc) != dyn.next_pc:
                        stats.jmp_mispredicts += 1
                        mispredicted = True
                if mispredicted:
                    pending_redirect = max(
                        pending_redirect, resolve + cfg.mispredict_penalty
                    )

            if dyn.dest is not None and dyn.dest not in ("r31", "f31"):
                reg_ready[dyn.dest] = complete

            # Commit in order, width-limited.
            commit = max(complete + 1, last_commit)
            cycle = int(commit)
            while commit_ports.get(cycle, 0) >= cfg.commit_width:
                cycle += 1
            commit_ports[cycle] = commit_ports.get(cycle, 0) + 1
            if cycle > commit:
                commit = float(cycle)
            last_commit = commit
            final_commit = max(final_commit, commit)

            ruu_ring.append(commit)
            if dyn.is_memory:
                lsq_ring.append(commit)
                if lsq_head > 4096:
                    del lsq_ring[:lsq_head]
                    lsq_head = 0
            if phys_pool is not None and dyn.dest is not None:
                phys_ring.append(commit)
                if phys_head > 4096:
                    del phys_ring[:phys_head]
                    phys_head = 0

            if len(fetch_slots) > 65536:
                horizon = int(fetch_time) - 64
                fetch_slots = {c: n for c, n in fetch_slots.items() if c > horizon}
                ports = {c: n for c, n in ports.items() if c > horizon}
                mem_ports = {c: n for c, n in mem_ports.items() if c > horizon}
                commit_ports = {
                    c: n for c, n in commit_ports.items() if c > horizon
                }

        return SimResult(
            simulator=cfg.name,
            workload=workload,
            cycles=max(final_commit, 1.0),
            instructions=len(trace),
            stats=stats,
        )
