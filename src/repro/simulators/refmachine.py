"""The NativeMachine: our stand-in for the Compaq DS-10L workstation.

The paper measures simulator error against real hardware — a 466MHz
Alpha 21264 in a DS-10L with a 2MB direct-mapped L2 and 256MB of
memory.  No Alpha hardware is available here (see DESIGN.md), so the
reference is the *highest-fidelity configuration of our own model*: the
validated feature set **plus** every behaviour the paper explicitly
says sim-alpha does not capture (Section 4.1 and the Table 3
discussion):

* OS page colouring ("possible sources of this error include page
  coloring ... not modeled in the simulator");
* memory-controller page-hit optimizations ("or memory controller
  optimizations to increase page hits") — modelled as a controller
  open-row cache standing in for the C-chip/D-chip scheduling;
* the single 8-entry MAF shared among the three caches (sim-alpha gives
  each cache its own);
* store/port contention ("Instead of forcing stores in the store-queue
  to wait until an idle L1 data cache cycle is available, we assume
  that writes can complete unimpeded" — the native machine does not);
* PAL-code TLB miss handling that stalls the program (sim-alpha walks
  page tables in hardware without stalling);
* write-back bus traffic;
* additional replay-trap sources (the `art` anomaly: 52M native traps
  vs 43M simulated).

Because the microbenchmarks are cache/TLB resident, these effects
barely touch them — so sim-alpha's microbenchmark error against this
reference is small, while the memory-bound macrobenchmarks diverge.
That is precisely the error structure the paper reports, arising here
from mechanism rather than curve-fitting.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.config import MachineConfig, NativeEffects
from repro.core.simalpha import SimAlpha
from repro.functional.trace import DynInstr
from repro.result import SimResult

__all__ = ["NativeMachine", "make_native_machine"]


def make_native_machine(name: str = "DS-10L") -> SimAlpha:
    """Build the reference-machine configuration."""
    config = MachineConfig(name=name, native=NativeEffects.ds10l())
    return SimAlpha(config)


class NativeMachine:
    """Reference machine with DCPI-style measurement built in.

    ``measure=True`` routes results through the sampling profiler in
    :mod:`repro.simulators.dcpi`, reproducing the paper's measurement
    path (hardware-counter sampling at a configurable interval) rather
    than reading exact cycle counts out of the model.
    """

    def __init__(self, *, measure: bool = True, sampling_interval: int = 40_000):
        self._machine = make_native_machine()
        self.measure = measure
        self.sampling_interval = sampling_interval

    @property
    def name(self) -> str:
        return self._machine.name

    @property
    def config(self) -> MachineConfig:
        return self._machine.config

    def run_trace(
        self,
        trace: Sequence[DynInstr],
        workload: str = "",
        *,
        observer=None,
        watchdog=None,
    ) -> SimResult:
        result = self._machine.run_trace(
            trace, workload, observer=observer, watchdog=watchdog
        )
        if not self.measure:
            return result
        from repro.simulators.dcpi import DcpiProfiler

        profiler = DcpiProfiler(interval_cycles=self.sampling_interval)
        return profiler.measure(result)
