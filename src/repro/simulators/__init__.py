"""Timing simulators beyond the sim-alpha family: the reference
machine, DCPI measurement, SimpleScalar's sim-outorder, and the 8-way
in-house simulator from the Figure 2 stability study."""

from repro.simulators.base import RunStats, SimResult, Simulator
from repro.simulators.dcpi import SAMPLING_INTERVALS, DcpiProfiler
from repro.simulators.eightway import EightWayConfig, EightWaySim
from repro.simulators.perfect import PerfectConfig, PerfectMachine
from repro.simulators.refmachine import NativeMachine, make_native_machine
from repro.simulators.simoutorder import OutOrderConfig, SimOutOrder

__all__ = [
    "RunStats",
    "SimResult",
    "Simulator",
    "SAMPLING_INTERVALS",
    "DcpiProfiler",
    "EightWayConfig",
    "EightWaySim",
    "PerfectConfig",
    "PerfectMachine",
    "NativeMachine",
    "make_native_machine",
    "OutOrderConfig",
    "SimOutOrder",
]
