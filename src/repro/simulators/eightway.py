"""An idealized 8-way issue simulator (the Figure 2 comparison).

Paper Section 5.3: "A recent study measured the performance effects of
multi-cycle register file delays, with and without complete bypassing
[Cruz et al.].  That study used an in-house, 8-way issue simulator."
Figure 2 contrasts that simulator's IPCs (tall bars, large bypass
sensitivity) with sim-alpha configured alike (much lower IPCs, little
sensitivity at 2-cycle/partial).

We therefore need an *abstract, wide, unconstrained* machine: 8-wide
fetch/issue/commit, a 256-entry window, large predictors, no clusters,
no slotting, no replay traps, and an idealized memory system.  Its only
sharp edge is the register file under study: ``access_cycles`` deepens
the pipeline, and removing full bypass puts ``access_cycles - 1``
bubbles between dependent instructions — which, on a machine this
wide, is exactly what dominates.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Sequence

from repro.core.config import RegFileConfig
from repro.functional.trace import DynInstr
from repro.isa.instructions import InstrClass
from repro.memory.cache import Cache, CacheConfig
from repro.predictors.ras import RasConfig, ReturnAddressStack
from repro.predictors.twolevel import TwoLevelConfig, TwoLevelPredictor
from repro.result import RunStats, SimResult

__all__ = ["EightWayConfig", "EightWaySim"]


@dataclass(frozen=True)
class EightWayConfig:
    name: str = "8-way-inhouse"
    width: int = 8
    window: int = 256
    front_depth: int = 3
    mispredict_penalty: int = 2
    regfile: RegFileConfig = field(default_factory=RegFileConfig)
    l1d: CacheConfig = field(
        default_factory=lambda: CacheConfig(64 * 1024, 2, 64, name="dl1")
    )
    l1_latency: int = 2
    l2_latency: int = 10
    dram_latency: int = 50
    predictor: TwoLevelConfig = field(
        default_factory=lambda: TwoLevelConfig(history_bits=14,
                                               pattern_entries=16384)
    )

    def with_regfile(self, access_cycles: int, full_bypass: bool) -> "EightWayConfig":
        label = (
            f"{self.name}-rf{access_cycles}"
            f"{'full' if full_bypass else 'partial'}"
        )
        return replace(
            self,
            name=label,
            regfile=RegFileConfig(access_cycles, full_bypass),
        )


class EightWaySim:
    """Dependence-limited timing for the idealized wide machine."""

    def __init__(self, config: EightWayConfig | None = None):
        self.config = config or EightWayConfig()

    @property
    def name(self) -> str:
        return self.config.name

    def run_trace(self, trace: Sequence[DynInstr], workload: str = "") -> SimResult:
        cfg = self.config
        stats = RunStats()
        dl1 = Cache(cfg.l1d)
        l2 = Cache(CacheConfig(2 * 1024 * 1024, 1, 64, name="l2"))
        bpred = TwoLevelPredictor(cfg.predictor)
        ras = ReturnAddressStack(RasConfig(depth=32))

        regread_extra = cfg.regfile.access_cycles - 1
        bypass_penalty = (
            0 if cfg.regfile.full_bypass
            else max(0, cfg.regfile.access_cycles - 1)
        )
        depth = cfg.front_depth + regread_extra

        reg_ready: Dict[str, float] = {}
        window_ring: list = []
        window_head = 0
        issue_slots: Dict[int, int] = {}
        fetch_slots: Dict[int, int] = {}
        pending_redirect = 0.0
        fetch_cursor = 0.0
        last_commit = 0.0
        final_commit = 0.0

        for dyn in trace:
            klass = dyn.klass
            fetch_at = max(pending_redirect, fetch_cursor)
            cycle = int(fetch_at)
            while fetch_slots.get(cycle, 0) >= cfg.width:
                cycle += 1
            fetch_slots[cycle] = fetch_slots.get(cycle, 0) + 1
            fetch_time = float(cycle) if cycle > fetch_at else fetch_at
            fetch_cursor = float(cycle)

            if klass is InstrClass.HALT:
                final_commit = max(final_commit, fetch_time + depth + 1)
                continue

            dispatch = fetch_time + depth
            if len(window_ring) - window_head >= cfg.window:
                oldest = window_ring[window_head]
                window_head += 1
                if window_head > 8192:
                    del window_ring[:window_head]
                    window_head = 0
                if oldest > dispatch:
                    dispatch = oldest

            data_ready = dispatch + 1
            for src in dyn.srcs:
                t = reg_ready.get(src)
                if t is not None and t > data_ready:
                    data_ready = t

            issue_time = data_ready
            cycle = int(issue_time)
            while issue_slots.get(cycle, 0) >= cfg.width:
                cycle += 1
            issue_slots[cycle] = issue_slots.get(cycle, 0) + 1
            if cycle > issue_time:
                issue_time = float(cycle)

            if dyn.is_load:
                hit = dl1.access(dyn.eaddr).hit
                if hit:
                    complete = issue_time + cfg.l1_latency
                else:
                    stats.dcache_misses += 1
                    complete = issue_time + (
                        cfg.l2_latency if l2.access(dyn.eaddr).hit
                        else cfg.dram_latency
                    )
            elif dyn.is_store:
                dl1.access(dyn.eaddr, write=True)
                complete = issue_time + 1
            else:
                complete = issue_time + dyn.latency

            if dyn.is_control:
                mispredicted = False
                if klass is InstrClass.COND_BRANCH:
                    stats.branch_lookups += 1
                    if bpred.predict_and_train(dyn.pc, dyn.taken) != dyn.taken:
                        stats.branch_mispredicts += 1
                        mispredicted = True
                elif klass is InstrClass.RETURN:
                    if not ras.predict_and_pop(dyn.next_pc):
                        mispredicted = True
                elif klass is InstrClass.CALL:
                    ras.push(dyn.fallthrough_pc)
                if mispredicted:
                    pending_redirect = max(
                        pending_redirect, complete + cfg.mispredict_penalty
                    )

            if dyn.dest is not None and dyn.dest not in ("r31", "f31"):
                reg_ready[dyn.dest] = complete + bypass_penalty

            commit = max(complete + 1, last_commit)
            last_commit = commit
            final_commit = max(final_commit, commit)
            window_ring.append(commit)

            if len(fetch_slots) > 65536:
                horizon = int(fetch_time) - 64
                fetch_slots = {c: n for c, n in fetch_slots.items() if c > horizon}
                issue_slots = {c: n for c, n in issue_slots.items() if c > horizon}

        return SimResult(
            simulator=cfg.name,
            workload=workload,
            cycles=max(final_commit, 1.0),
            instructions=len(trace),
            stats=stats,
        )
