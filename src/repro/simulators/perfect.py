"""The perfect machine: a dataflow-limit simulator.

An analytical upper bound on any configuration of any of our machines:
infinite fetch/issue/retire width, perfect prediction, a perfect
memory system (every load hits at the L1 latency), no structural
limits of any kind.  Only true data dependences and instruction
latencies remain, so ``cycles == the critical path of the dataflow
graph``.

The paper's framing makes such a bound useful twice over: it shows how
far *all* real machines sit from dataflow (sim-outorder's optimism is
a step in this direction, not the limit), and it gives a quick sanity
ceiling when tuning workload proxies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from repro.functional.trace import DynInstr
from repro.isa.instructions import InstrClass
from repro.result import RunStats, SimResult

__all__ = ["PerfectConfig", "PerfectMachine"]


@dataclass(frozen=True)
class PerfectConfig:
    name: str = "perfect-dataflow"
    #: Load-to-use latency applied to every load (a perfect L1).
    load_latency: int = 3


class PerfectMachine:
    """Times traces at the dataflow limit."""

    def __init__(self, config: PerfectConfig | None = None):
        self.config = config or PerfectConfig()

    @property
    def name(self) -> str:
        return self.config.name

    def run_trace(self, trace: Sequence[DynInstr], workload: str = "") -> SimResult:
        load_latency = self.config.load_latency
        reg_ready: Dict[str, float] = {}
        critical_path = 0.0
        for dyn in trace:
            start = 0.0
            for src in dyn.srcs:
                t = reg_ready.get(src)
                if t is not None and t > start:
                    start = t
            if dyn.is_load:
                latency = load_latency
            elif dyn.klass is InstrClass.NOP:
                latency = 0
            else:
                latency = dyn.latency
            done = start + latency
            if dyn.dest is not None and dyn.dest not in ("r31", "f31"):
                reg_ready[dyn.dest] = done
            if done > critical_path:
                critical_path = done
        return SimResult(
            simulator=self.config.name,
            workload=workload,
            cycles=max(critical_path, 1.0),
            instructions=len(trace),
            stats=RunStats(),
        )
