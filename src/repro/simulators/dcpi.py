"""DCPI-style sampling measurement of the native machine.

Paper Section 2.3: "We used the Compaq DCPI (DIGITAL Continuous
Profiling Infrastructure) tool to measure time.  DCPI employs hardware
counters to measure execution time (in cycles), number of instructions
committed, and a few other hardware events ... The events may be
sampled at several intervals, from 1,000 cycles to 64K cycles.  Larger
sampling intervals dilate the execution time less, but introduce
additional error when counting events.  We chose a sampling interval of
40,000 cycles, which showed the best trade-off."

We reproduce both effects *in relative terms* (the paper's benchmarks
run for billions of cycles; our traces are representative windows of
10^4-10^5 cycles, so absolute half-interval quantisation would be
meaningless here — see DESIGN.md):

* **dilation** — every ``interval`` cycles the sampling interrupt
  steals ``overhead_per_sample`` cycles, inflating measured time by
  ``overhead / interval`` (worse at short intervals);
* **quantisation** — event counts are reconstructed from samples, so
  the measured cycle count carries noise whose relative magnitude grows
  with the interval (fewer samples per unit work).

The noise is deterministic per (workload, interval) — a seeded hash —
so every experiment is exactly reproducible.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace as dc_replace
from typing import Tuple

from repro.result import SimResult

__all__ = ["DcpiProfiler", "SAMPLING_INTERVALS"]

#: The interval range DCPI supports (paper: 1,000 to 64K cycles).
SAMPLING_INTERVALS = (1_000, 4_000, 16_000, 40_000, 64_000)


def _unit_noise(key: str) -> float:
    """Deterministic pseudo-noise in [-1, 1) derived from ``key``."""
    digest = hashlib.sha256(key.encode()).digest()
    value = int.from_bytes(digest[:8], "little")
    return value / 2**63 - 1.0


@dataclass
class DcpiProfiler:
    """Converts exact model cycles into DCPI-style measured cycles."""

    interval_cycles: int = 40_000
    #: Cycles of interrupt/PC-capture overhead per sample.
    overhead_per_sample: float = 60.0
    #: Relative quantisation noise at the longest (64K) interval.
    #: Together with the overhead this puts the dilation/quantisation
    #: sweet spot at the 40K-cycle interval the authors chose.
    quantisation_at_max: float = 0.006
    seed: str = "dcpi"

    _MAX_INTERVAL = 64_000

    def __post_init__(self) -> None:
        if not 1_000 <= self.interval_cycles <= self._MAX_INTERVAL:
            raise ValueError(
                "DCPI sampling interval must be between 1,000 and 64K cycles"
            )

    def dilation_fraction(self) -> float:
        """Relative execution-time dilation from sample interrupts."""
        return self.overhead_per_sample / self.interval_cycles

    def quantisation_fraction(self, workload: str) -> float:
        """Signed relative error from sample-based reconstruction."""
        noise = _unit_noise(f"{self.seed}:{workload}:{self.interval_cycles}")
        scale = self.quantisation_at_max * (
            self.interval_cycles / self._MAX_INTERVAL
        )
        return noise * scale

    def measure(self, result: SimResult) -> SimResult:
        """DCPI-measured version of an exact simulation result."""
        factor = (
            1.0
            + self.dilation_fraction()
            + self.quantisation_fraction(result.workload)
        )
        measured = result.cycles * factor
        measured = max(measured, float(result.instructions) / 11.0)
        # Measurement dilation applies to every cycle alike, so an
        # attached CPI stack scales uniformly and keeps summing to the
        # (measured) CPI.
        stack = result.cpi_stack
        if stack is not None and result.cycles:
            scale = measured / result.cycles
            stack = {c: v * scale for c, v in stack.items()}
        return dc_replace(result, cycles=measured, cpi_stack=stack)

    def error_profile(self, workload: str) -> Tuple[float, float]:
        """(dilation, quantisation) relative components for analysis.

        The paper's interval trade-off in miniature: dilation shrinks
        and quantisation grows as the interval lengthens, with a sweet
        spot around the 40K cycles the authors chose.
        """
        return self.dilation_fraction(), self.quantisation_fraction(workload)
