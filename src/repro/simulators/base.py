"""Common simulator interfaces and result records.

The concrete definitions live in :mod:`repro.result` (a leaf module) so
that the pipeline engines and the simulator package can both import
them without a cycle; this module re-exports them under the historical
name.
"""

from repro.result import RunStats, SimResult, Simulator

__all__ = ["RunStats", "SimResult", "Simulator"]
