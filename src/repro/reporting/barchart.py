"""ASCII bar charts, for regenerating the paper's Figure 2.

Figure 2 overlays two simulators' IPCs as grouped bars (the tall
in-house bars with sim-alpha's dark bars inside them).  A terminal
rendering keeps the reproduction self-contained: horizontal bars,
grouped by benchmark, one row per (simulator, configuration) series.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

__all__ = ["render_grouped_bars"]


def render_grouped_bars(
    groups: Sequence[str],
    series: Dict[str, Sequence[float]],
    *,
    width: int = 48,
    unit: str = "IPC",
    title: str = "",
) -> str:
    """Render grouped horizontal bars.

    ``groups`` are the outer categories (benchmarks); ``series`` maps a
    label (e.g. "8-way 1cyc full") to one value per group.  All bars
    share one scale so cross-series comparison is faithful.
    """
    if not groups:
        raise ValueError("no groups to draw")
    for label, values in series.items():
        if len(values) != len(groups):
            raise ValueError(
                f"series {label!r} has {len(values)} values for "
                f"{len(groups)} groups"
            )
    peak = max(max(values) for values in series.values())
    if peak <= 0:
        raise ValueError("all values are non-positive")
    label_width = max(len(label) for label in series)

    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    scale = f"0 {'-' * (width - 2)} {peak:.2f} {unit}"
    lines.append(" " * (label_width + 2) + scale)
    for index, group in enumerate(groups):
        lines.append(f"{group}:")
        for label, values in series.items():
            value = values[index]
            filled = int(round(value / peak * width))
            bar = "█" * filled
            lines.append(
                f"  {label.ljust(label_width)} {bar} {value:.2f}"
            )
    return "\n".join(lines)
