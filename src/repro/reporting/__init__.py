"""Table/chart rendering and the paper's published numbers."""

from repro.reporting.barchart import render_grouped_bars
from repro.reporting.coverage import (
    CoverageCell,
    coverage_cells,
    render_coverage,
)
from repro.reporting.cpistack import (
    render_cpi_stack_bars,
    render_cpi_stack_table,
)
from repro.reporting.tables import format_value, render_table
from repro.reporting import paper_data

__all__ = [
    "CoverageCell",
    "coverage_cells",
    "render_coverage",
    "render_grouped_bars",
    "render_cpi_stack_bars",
    "render_cpi_stack_table",
    "format_value",
    "render_table",
    "paper_data",
]
