"""Table/chart rendering and the paper's published numbers."""

from repro.reporting.barchart import render_grouped_bars
from repro.reporting.tables import format_value, render_table
from repro.reporting import paper_data

__all__ = [
    "render_grouped_bars",
    "format_value",
    "render_table",
    "paper_data",
]
