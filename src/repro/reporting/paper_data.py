"""Published numbers from the paper, for shape comparison.

The benches print our measured values next to these.  We do not expect
absolute agreement — our reference machine is itself a model (see
DESIGN.md) — but signs, orderings, and rough magnitudes should match.
"""

from __future__ import annotations

from typing import Dict, Tuple

__all__ = [
    "TABLE1_LATENCIES",
    "TABLE2_NATIVE_IPC",
    "TABLE2_INITIAL_ERROR",
    "TABLE2_VALIDATED_ERROR",
    "TABLE2_OUTORDER_DIFF",
    "TABLE2_MEAN_ERRORS",
    "TABLE3",
    "TABLE3_MEANS",
    "TABLE4",
    "TABLE5",
    "FIGURE2_CRUZ_IPC",
    "FIGURE2_BENCHMARKS",
    "CALIBRATION_TARGETS",
]

#: Table 1 — instruction latencies in cycles.
TABLE1_LATENCIES: Dict[str, int] = {
    "integer ALU": 1,
    "integer multiply": 7,
    "integer load (cache hit)": 3,
    "FP add, multiply": 4,
    "FP divide (single)": 12,
    "FP sqrt (single)": 18,
    "FP divide (double)": 15,
    "FP sqrt (double)": 33,
    "FP load (cache hit)": 4,
    "unconditional jump": 3,
}

#: Table 2 — native (DS-10L) IPC per microbenchmark.
TABLE2_NATIVE_IPC: Dict[str, float] = {
    "C-Ca": 1.80, "C-Cb": 1.87, "C-R": 2.65, "C-S1": 0.56, "C-S2": 0.85,
    "C-S3": 0.95, "C-O": 1.75, "E-I": 4.00, "E-F": 1.01, "E-D1": 1.03,
    "E-D2": 2.16, "E-D3": 2.72, "E-D4": 2.79, "E-D5": 3.30, "E-D6": 3.11,
    "E-DM1": 0.15, "M-I": 2.98, "M-D": 1.66, "M-L2": 0.36, "M-M": 0.07,
    "M-IP": 1.75,
}

#: Table 2 — % CPI error of sim-initial vs the DS-10L.
TABLE2_INITIAL_ERROR: Dict[str, float] = {
    "C-Ca": -498.1, "C-Cb": -260.4, "C-R": -198.4, "C-S1": 31.2,
    "C-S2": -3.6, "C-S3": -8.5, "C-O": -273.6, "E-I": -20.9, "E-F": -0.1,
    "E-D1": 0.3, "E-D2": -0.0, "E-D3": 9.3, "E-D4": 3.6, "E-D5": -2.1,
    "E-D6": 6.1, "E-DM1": 85.7, "M-I": -24.2, "M-D": -32.9, "M-L2": -4.0,
    "M-M": -8.2, "M-IP": -97.9,
}

#: Table 2 — % CPI error of validated sim-alpha vs the DS-10L.
TABLE2_VALIDATED_ERROR: Dict[str, float] = {
    "C-Ca": 4.3, "C-Cb": 0.6, "C-R": 0.3, "C-S1": 6.4, "C-S2": 2.1,
    "C-S3": 0.5, "C-O": -0.6, "E-I": -0.4, "E-F": 0.2, "E-D1": 0.4,
    "E-D2": 0.0, "E-D3": 11.5, "E-D4": 0.3, "E-D5": 5.8, "E-D6": 1.3,
    "E-DM1": -0.3, "M-I": 0.6, "M-D": 0.4, "M-L2": -0.9, "M-M": 4.2,
    "M-IP": 0.5,
}

#: Table 2 — % difference of sim-outorder vs the DS-10L.
TABLE2_OUTORDER_DIFF: Dict[str, float] = {
    "C-Ca": 28.2, "C-Cb": 37.8, "C-R": 25.2, "C-S1": 36.1, "C-S2": 36.5,
    "C-S3": 42.2, "C-O": 3.0, "E-I": -0.4, "E-F": 0.2, "E-D1": 0.4,
    "E-D2": 2.6, "E-D3": 14.8, "E-D4": 30.2, "E-D5": 17.6, "E-D6": 22.2,
    "E-DM1": -0.3, "M-I": 0.7, "M-D": -31.1, "M-L2": 35.6, "M-M": -0.3,
    "M-IP": -43.1,
}

#: Table 2 — mean absolute errors per simulator column.
TABLE2_MEAN_ERRORS = {
    "sim-initial": 74.7,
    "sim-alpha": 2.0,
    "sim-outorder": 19.5,
}

#: Table 3 — per-benchmark (native IPC, sim-alpha %err,
#: sim-stripped %diff, sim-outorder %diff).
TABLE3: Dict[str, Tuple[float, float, float, float]] = {
    "gzip": (1.53, -22.0, -51.5, 28.6),
    "vpr": (1.02, -4.6, -44.1, 34.0),
    "gcc": (1.04, -18.1, -42.3, 37.2),
    "parser": (1.18, -23.1, -42.0, 37.1),
    "eon": (1.21, -0.9, -34.1, 38.3),
    "twolf": (1.10, -6.1, -42.1, 32.3),
    "mesa": (1.57, -38.4, -62.1, 36.8),
    "art": (0.48, 43.0, 39.8, 76.9),
    "equake": (1.02, -10.9, -32.7, 34.6),
    "lucas": (1.57, -14.7, -10.0, 11.5),
}

#: Table 3 — aggregate row: (harmonic-mean IPC or mean |error|).
TABLE3_MEANS = {
    "native_hm_ipc": 1.05,
    "sim-alpha_hm_ipc": 1.05,
    "sim-alpha_mean_abs_error": 18.19,
    "sim-stripped_hm_ipc": 0.92,
    "sim-stripped_mean_abs_error": 40.07,
    "sim-outorder_hm_ipc": 1.95,
    "sim-outorder_mean_abs_error": 36.72,
}

#: Table 4 — per removed feature: (HM IPC, mean % change, std dev).
TABLE4: Dict[str, Tuple[float, float, float]] = {
    "ref": (1.05, 0.0, 0.0),
    "addr": (0.98, -7.78, 5.81),
    "eret": (1.10, -0.67, 1.09),
    "luse": (0.99, -5.79, 2.52),
    "pref": (1.05, -0.29, 1.27),
    "spec": (0.99, -5.92, 5.07),
    "stwt": (1.00, -4.25, 5.60),
    "vbuf": (1.05, -0.37, 1.07),
    "maps": (1.07, 2.11, 2.85),
    "slot": (1.05, 0.36, 1.64),
    "trap": (1.05, 0.31, 0.99),
}

#: Table 5 — % improvement per optimization per configuration.
#: Rows: optimization, columns: configuration.
TABLE5: Dict[str, Dict[str, float]] = {
    "l1_latency_3_to_1": {
        "sim-alpha": 5.53, "addr": 5.45, "eret": 5.98, "luse": float("nan"),
        "pref": 6.25, "spec": 5.45, "stwt": 6.49, "vbuf": 6.42,
        "maps": 5.90, "slot": 5.25, "trap": 5.95,
        "sim-stripped": 9.85, "sim-outorder": 5.78,
    },
    "l1_size_64_to_128": {
        "sim-alpha": 2.04, "addr": 1.72, "eret": 2.03, "luse": 1.70,
        "pref": 2.23, "spec": 1.96, "stwt": 2.43, "vbuf": 2.14,
        "maps": 2.02, "slot": 1.55, "trap": 1.38,
        "sim-stripped": 1.70, "sim-outorder": 0.66,
    },
    "regs_40_to_80": {
        "sim-alpha": 0.63, "addr": 0.91, "eret": 0.53, "luse": 0.63,
        "pref": 0.98, "spec": 1.07, "stwt": 1.44, "vbuf": 0.55,
        "maps": 0.88, "slot": 1.27, "trap": 0.95,
        "sim-stripped": 1.70, "sim-outorder": 0.64,
    },
}

#: Figure 2 — Cruz et al.'s 8-way simulator IPCs (approximate values
#: read off the figure) per (benchmark, regfile config).
FIGURE2_BENCHMARKS = (
    "go", "compress", "gcc95", "ijpeg", "perl",
    "swim", "mgrid", "applu", "turb3d", "fpppp", "wave5",
)

FIGURE2_CRUZ_IPC: Dict[str, Tuple[float, float, float]] = {
    # (1-cycle full bypass, 2-cycle full bypass, 2-cycle partial)
    "go": (2.6, 2.5, 1.9),
    "compress": (2.9, 2.8, 2.1),
    "gcc95": (2.8, 2.7, 2.0),
    "ijpeg": (3.6, 3.5, 2.6),
    "perl": (2.9, 2.8, 2.1),
    "swim": (3.4, 3.3, 2.5),
    "mgrid": (3.8, 3.7, 2.8),
    "applu": (3.5, 3.4, 2.6),
    "turb3d": (3.7, 3.6, 2.8),
    "fpppp": (3.2, 3.1, 2.4),
    "wave5": (3.4, 3.3, 2.5),
}

#: Section 4.2 — calibration: the winning DRAM configuration and the
#: residual execution-time differences.
CALIBRATION_TARGETS = {
    "winner": {
        "page_policy": "open",
        "ras_cycles": 2,
        "cas_cycles": 4,
        "precharge_cycles": 2,
        "controller_cycles": 2,
    },
    "residuals_percent": {"M-M": 2.8, "stream": -6.5, "lmbench": 13.0},
}
