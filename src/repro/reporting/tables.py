"""Plain-text table rendering for the experiment drivers and benches."""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

__all__ = ["render_table", "format_value"]


def format_value(value, *, precision: int = 2) -> str:
    """Render one cell: floats get fixed precision, NaN shows as n/a."""
    if value is None:
        return "n/a"
    if isinstance(value, float):
        if value != value:  # NaN
            return "n/a"
        return f"{value:.{precision}f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    *,
    title: Optional[str] = None,
    precision: int = 2,
) -> str:
    """Render a fixed-width ASCII table.

    The first column is left-aligned (row labels); the rest are
    right-aligned (numbers).
    """
    string_rows: List[List[str]] = [
        [format_value(cell, precision=precision) for cell in row]
        for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in string_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        parts = [cells[0].ljust(widths[0])]
        parts.extend(cell.rjust(widths[i + 1])
                     for i, cell in enumerate(cells[1:]))
        return "  ".join(parts)

    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(render_row(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(render_row(row) for row in string_rows)
    return "\n".join(lines)
