"""CPI-stack rendering: the attribution table and the stacked bars.

Input is what the instrumented runs produce: a mapping of workload
name -> CPI stack (component -> cycles/instr, summing to the CPI; see
:mod:`repro.obs.cpistack`).  The table gives exact numbers per
component; the stacked bars show, per workload, how the CPI divides —
the visual the paper's debugging loop (Section 3.4) works from when
deciding which mechanism to chase next.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from repro.obs.cpistack import CPI_COMPONENTS
from repro.reporting.tables import render_table

__all__ = ["render_cpi_stack_table", "render_cpi_stack_bars"]

#: Fill glyph per component, in CPI_COMPONENTS order.
_FILLS = ("█", "▓", "▒", "░", "▚", "▞")


def render_cpi_stack_table(
    stacks: Mapping[str, Dict[str, float]],
    *,
    components: Sequence[str] = CPI_COMPONENTS,
    title: str = "CPI stacks (cycles per instruction by mechanism)",
    precision: int = 4,
) -> str:
    """One row per workload: components, then their sum (the CPI)."""
    if not stacks:
        raise ValueError("no CPI stacks to render")
    headers = ["workload", *components, "cpi"]
    rows = []
    for workload, stack in stacks.items():
        values = [stack.get(c, 0.0) for c in components]
        rows.append([workload, *values, sum(values)])
    return render_table(headers, rows, title=title, precision=precision)


def render_cpi_stack_bars(
    stacks: Mapping[str, Dict[str, float]],
    *,
    components: Sequence[str] = CPI_COMPONENTS,
    width: int = 56,
    title: str = "CPI stacks",
) -> str:
    """Stacked horizontal bars, one per workload, on a shared scale.

    Each component renders as a run of its legend glyph sized by its
    share of the longest bar; components that round below one cell are
    dropped from the drawing (they remain in the table).
    """
    if not stacks:
        raise ValueError("no CPI stacks to render")
    totals = {w: sum(s.get(c, 0.0) for c in components)
              for w, s in stacks.items()}
    peak = max(totals.values())
    if peak <= 0:
        raise ValueError("all CPI stacks are empty")
    name_width = max(len(w) for w in stacks)

    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    legend = "  ".join(
        f"{_FILLS[i % len(_FILLS)]} {c}" for i, c in enumerate(components)
    )
    lines.append(legend)
    lines.append(" " * (name_width + 2)
                 + f"0 {'-' * (width - 2)} {peak:.2f} CPI")
    for workload, stack in stacks.items():
        bar = ""
        for i, component in enumerate(components):
            cells = int(round(stack.get(component, 0.0) / peak * width))
            bar += _FILLS[i % len(_FILLS)] * cells
        lines.append(
            f"{workload.ljust(name_width)}  {bar} {totals[workload]:.3f}"
        )
    return "\n".join(lines)
