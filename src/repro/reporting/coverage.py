"""Detection-coverage reporting: the fault × workload-family table.

The sweep (:func:`repro.integrity.faultinject.run_detection_sweep`)
produces one :class:`Detection` per (fault, workload) cell; this module
folds those cells into the *coverage* view the robustness acceptance
criteria are written against — for each fault class and each family
built to stress its subsystem, how many member workloads caught the
fault, and whether any cell was silently clean.

Cell notation in the rendered table:

``3/3✓``   every member detected the fault, at least one through its
           designed channel;
``2/3!``   a member was silently clean — the sweep fails;
``3/3*``   detected everywhere but never through the designed channel;
``·``      family not paired with this fault (not a gap: the family
           does not stress that subsystem).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.reporting.tables import render_table

__all__ = ["CoverageCell", "coverage_cells", "render_coverage"]


@dataclass
class CoverageCell:
    """One (fault, family) aggregate over the family's member cells."""

    fault: str
    family: str
    detected: int = 0
    total: int = 0
    via_designed: int = 0
    #: Workloads in this family whose cell was silently clean.
    silent: List[str] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        return self.total > 0 and not self.silent

    def label(self) -> str:
        mark = "✓" if self.complete and self.via_designed else (
            "!" if self.silent else "*"
        )
        return f"{self.detected}/{self.total}{mark}"


def coverage_cells(matrix) -> Dict[Tuple[str, str], CoverageCell]:
    """Fold a sweep's rows into (fault, family) coverage aggregates.

    Control rows and skipped faults are left out: controls are judged
    by :attr:`DetectionMatrix.all_caught`, and a skipped fault has no
    cells to aggregate.
    """
    cells: Dict[Tuple[str, str], CoverageCell] = {}
    for row in matrix.rows:
        if row.fault == "control" or row.skipped or not row.family:
            continue
        key = (row.fault, row.family)
        cell = cells.get(key)
        if cell is None:
            cell = cells[key] = CoverageCell(row.fault, row.family)
        cell.total += 1
        if row.detected:
            cell.detected += 1
            if row.expected_channel:
                cell.via_designed += 1
        else:
            cell.silent.append(row.workload)
    return cells


def render_coverage(matrix, *, title: str = "Detection coverage") -> str:
    """The fault × family coverage table plus a one-line verdict."""
    cells = coverage_cells(matrix)
    if not cells:
        return f"{title}: no swept cells (single-workload matrix?)"
    faults: List[str] = []
    families: List[str] = []
    for fault, family in cells:
        if fault not in faults:
            faults.append(fault)
        if family not in families:
            families.append(family)
    rows = []
    for fault in faults:
        row: List[str] = [fault]
        for family in families:
            cell = cells.get((fault, family))
            row.append(cell.label() if cell is not None else "·")
        rows.append(row)
    table = render_table(["fault"] + families, rows, title=title)

    silent = matrix.silent_corruptions()
    if matrix.all_caught:
        verdict = (
            f"PASS: {len(cells)} (fault, family) pairings, every cell "
            f"detected, controls clean"
        )
    elif silent:
        verdict = "FAIL: silently clean cells: " + ", ".join(silent)
    else:
        verdict = (
            "FAIL: a control cell raised a false alarm or a fault "
            "never fired its designed channel"
        )
    return f"{table}\n{verdict}"
