"""Command-line entry point: ``repro-experiments <experiment>``.

Runs one (or all) of the paper's experiments and prints the table.
Useful for quick looks without the pytest-benchmark harness::

    repro-experiments table2
    repro-experiments table4 --quick
    repro-experiments all
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict

from repro.validation import (
    ablate_native_effects,
    baseline_spread,
    bug_walk,
    calibrate_dram,
    diagnose,
    figure2_regfile,
    sampling_interval_study,
    table1_latencies,
    table2_micro,
    table3_macro,
    table4_features,
    table5_stability,
    warmup_study,
)
from repro.validation.harness import Harness
from repro.workloads.suite import micro_names, spec2000_names, spec95_names

__all__ = ["main"]

#: Reduced workload sets for --quick runs.
_QUICK_MICRO = ("C-Ca", "C-R", "C-S1", "E-I", "E-D3", "M-D", "M-M")
_QUICK_MACRO = ("gzip", "eon", "mesa", "art")
_QUICK_SPEC95 = ("go", "swim", "fpppp")


def _run_table1(quick: bool) -> str:
    return table1_latencies().render()


def _run_table2(quick: bool) -> str:
    names = _QUICK_MICRO if quick else micro_names()
    return table2_micro(benchmarks=names).render()


def _run_table3(quick: bool) -> str:
    names = _QUICK_MACRO if quick else spec2000_names()
    return table3_macro(benchmarks=names).render()


def _run_table4(quick: bool) -> str:
    names = _QUICK_MACRO if quick else spec2000_names()
    features = ("addr", "luse", "spec", "stwt") if quick else None
    return table4_features(benchmarks=names, features=features).render()


def _run_table5(quick: bool) -> str:
    names = _QUICK_MACRO if quick else spec2000_names()
    features = ("addr", "luse") if quick else None
    return table5_stability(benchmarks=names, features=features).render()


def _run_figure2(quick: bool) -> str:
    names = _QUICK_SPEC95 if quick else spec95_names()
    return figure2_regfile(benchmarks=names).render()


def _run_calibration(quick: bool) -> str:
    if quick:
        from repro.dram.config import parameter_grid

        configs = list(parameter_grid(
            ras_values=(2,), cas_values=(3, 4),
            precharge_values=(2,), controller_values=(1, 2),
        ))
        return calibrate_dram(configs=configs).render()
    return calibrate_dram().render()


def _run_bugwalk(quick: bool) -> str:
    names = _QUICK_MICRO if quick else micro_names()
    bugs = (
        ("late_branch_recovery", "jmp_undercharge", "wrong_fu_mix")
        if quick else None
    )
    return bug_walk(benchmarks=names, bugs=bugs).render()


def _run_sampling(quick: bool) -> str:
    return sampling_interval_study().render()


def _run_warmup(quick: bool) -> str:
    workloads = ("gzip",) if quick else ("gzip", "mesa", "C-Ca")
    harness = Harness()
    parts = []
    for workload in workloads:
        profile = warmup_study(workload, harness=harness)
        parts.append(profile.render())
    return "\n\n".join(parts)


def _run_baselines(quick: bool) -> str:
    result = baseline_spread(workload="compress" if quick else "gcc95")
    return (result.render()
            + f"\nspread ratio: {result.spread_ratio:.2f}x")


def _run_ablation(quick: bool) -> str:
    benchmarks = ("mesa", "art") if quick else (
        "gzip", "eon", "mesa", "art", "lucas"
    )
    return ablate_native_effects(benchmarks=benchmarks).render()


def _run_diagnose(quick: bool) -> str:
    """Replay the canonical Section 3.4 debugging sessions."""
    from repro.core.siminitial import make_sim_with_bugs
    from repro.simulators.refmachine import make_native_machine

    sessions = [("M-I", "masked_load_trap_addresses"),
                ("E-DM1", "wrong_fu_mix")]
    if not quick:
        sessions.append(("C-Ca", "late_branch_recovery"))
    harness = Harness()
    reference_machine = make_native_machine()
    parts = []
    for workload, bug in sessions:
        trace = harness.workloads.trace(workload)
        reference = reference_machine.run_trace(trace, workload)
        buggy = make_sim_with_bugs(bug).run_trace(trace, workload)
        parts.append(f"injected: {bug}\n"
                     + diagnose(buggy, reference).render())
    return "\n\n".join(parts)


_EXPERIMENTS: Dict[str, Callable[[bool], str]] = {
    "table1": _run_table1,
    "table2": _run_table2,
    "table3": _run_table3,
    "table4": _run_table4,
    "table5": _run_table5,
    "figure2": _run_figure2,
    "calibration": _run_calibration,
    "bugwalk": _run_bugwalk,
    "sampling": _run_sampling,
    "warmup": _run_warmup,
    "baselines": _run_baselines,
    "ablation": _run_ablation,
    "diagnose": _run_diagnose,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Reproduce the experiments of 'Measuring Experimental Error "
            "in Microprocessor Simulation' (ISCA 2001)."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=sorted(_EXPERIMENTS) + ["all"],
        help="which experiment to run",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="use reduced workload/parameter sets",
    )
    args = parser.parse_args(argv)

    names = sorted(_EXPERIMENTS) if args.experiment == "all" else [
        args.experiment
    ]
    for name in names:
        started = time.time()
        output = _EXPERIMENTS[name](args.quick)
        elapsed = time.time() - started
        print(output)
        print(f"[{name} completed in {elapsed:.1f}s]")
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
