"""Command-line entry point: ``repro-experiments <experiment>``.

Runs one (or all) of the paper's experiments and prints the table.
Useful for quick looks without the pytest-benchmark harness::

    repro-experiments table2
    repro-experiments table4 --quick
    repro-experiments all

Grid-shaped experiments (tables 2-5, figure2, bugwalk) accept
``--jobs N`` to fan cells out over worker processes and
``--cache-dir DIR`` to memoize cells on disk across invocations
(``--no-cache`` forces a full recompute)::

    repro-experiments table2 --jobs 4 --cache-dir ~/.cache/repro
    repro-experiments all --quick --jobs 2 --cache-dir .repro-cache

The ``trace`` subcommand instruments a single run instead: it prints
the workload's CPI stack and writes a JSONL pipeline trace plus a
Chrome trace-event file (loadable in ``chrome://tracing``)::

    repro-experiments trace M-D
    repro-experiments trace C-R --simulator sim-initial --emit-trace out/
    repro-experiments table2 --quick --metrics-out metrics.json

Integrity options (see docs/ROBUSTNESS.md): ``--sanitize`` arms the
invariant sanitizers (``--strict`` aborts on the first violation
instead of quarantining), ``--stuck-after S`` arms the livelock
watchdog, and ``--checkpoint FILE`` journals completed grid cells so
``--resume`` can pick an interrupted run back up.  The exit status
reports integrity: 0 clean, 3 when any cell was quarantined or failed,
4 on a strict-mode abort.  The ``integrity`` subcommand runs the
fault-injection detection matrix and exits nonzero unless every fault
is caught; ``--sweep`` pairs every fault with the microbenchmark
families that stress its subsystem and prints the coverage report,
``--families`` restricts the sweep.  ``checkpoint-gc`` prunes a grid
journal by entry age::

    repro-experiments table2 --sanitize --stuck-after 120
    repro-experiments table3 --checkpoint t3.ckpt --resume
    repro-experiments integrity
    repro-experiments integrity --sweep
    repro-experiments integrity --sweep --families dram,memory
    repro-experiments checkpoint-gc t3.ckpt --gc-max-age 604800

Observability (see docs/OBSERVABILITY.md): ``profile`` attributes one
run's wall time to pipeline phases and components and writes a
flamegraph-compatible collapsed-stack file; ``bench`` runs the pinned
performance suite, emits a schema-versioned ``BENCH_<label>.json``
trajectory artifact, and with ``--compare OLD NEW`` diffs two
artifacts, exiting 5 when a gated metric regressed past
``--bench-threshold``; ``cache-gc`` prunes a result cache by age and
LRU size budget.  Grid runs accept ``--ledger FILE`` (per-cell JSONL
telemetry), ``--progress`` (live cells/s + ETA line), and
``--openmetrics FILE`` (Prometheus-textfile registry export)::

    repro-experiments profile M-D
    repro-experiments profile gzip --simulator sim-initial
    repro-experiments bench --label pr6
    repro-experiments bench --compare BENCH_pr6.json BENCH_pr9.json
    repro-experiments cache-gc .repro-cache --gc-max-age 604800
    repro-experiments table2 --jobs 4 --ledger t2.ledger.jsonl --progress
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Callable, Dict

from repro.validation import (
    ablate_native_effects,
    baseline_spread,
    bug_walk,
    calibrate_dram,
    diagnose,
    figure2_regfile,
    sampling_interval_study,
    table1_latencies,
    table2_micro,
    table3_macro,
    table4_features,
    table5_stability,
    warmup_study,
)
from repro.exec.spec import RunOptions
from repro.validation.exitcodes import ExitCode
from repro.validation.harness import Harness
from repro.workloads.suite import micro_names, spec2000_names, spec95_names

__all__ = ["main"]

#: Simulator factories the ``trace`` subcommand can instrument.
def _trace_simulators() -> Dict[str, Callable[[], object]]:
    from repro.core.simalpha import SimAlpha
    from repro.core.siminitial import make_sim_initial
    from repro.core.simstripped import make_sim_stripped
    from repro.simulators.refmachine import make_native_machine

    return {
        "sim-alpha": SimAlpha,
        "sim-initial": make_sim_initial,
        "sim-stripped": make_sim_stripped,
        "native": make_native_machine,
    }

#: Reduced workload sets for --quick runs.
_QUICK_MICRO = ("C-Ca", "C-R", "C-S1", "E-I", "E-D3", "M-D", "M-M")
_QUICK_MACRO = ("gzip", "eon", "mesa", "art")
_QUICK_SPEC95 = ("go", "swim", "fpppp")


def _run_table1(quick: bool, engine: Dict) -> str:
    return table1_latencies().render()


def _run_table2(quick: bool, engine: Dict) -> str:
    names = _QUICK_MICRO if quick else micro_names()
    return table2_micro(benchmarks=names, **engine).render()


def _run_table3(quick: bool, engine: Dict) -> str:
    names = _QUICK_MACRO if quick else spec2000_names()
    return table3_macro(benchmarks=names, **engine).render()


def _run_table4(quick: bool, engine: Dict) -> str:
    names = _QUICK_MACRO if quick else spec2000_names()
    features = ("addr", "luse", "spec", "stwt") if quick else None
    return table4_features(
        benchmarks=names, features=features, **engine
    ).render()


def _run_table5(quick: bool, engine: Dict) -> str:
    names = _QUICK_MACRO if quick else spec2000_names()
    features = ("addr", "luse") if quick else None
    return table5_stability(
        benchmarks=names, features=features, **engine
    ).render()


def _run_figure2(quick: bool, engine: Dict) -> str:
    names = _QUICK_SPEC95 if quick else spec95_names()
    return figure2_regfile(benchmarks=names, **engine).render()


def _run_calibration(quick: bool, engine: Dict) -> str:
    if quick:
        from repro.dram.config import parameter_grid

        configs = list(parameter_grid(
            ras_values=(2,), cas_values=(3, 4),
            precharge_values=(2,), controller_values=(1, 2),
        ))
        return calibrate_dram(configs=configs).render()
    return calibrate_dram().render()


def _run_bugwalk(quick: bool, engine: Dict) -> str:
    names = _QUICK_MICRO if quick else micro_names()
    bugs = (
        ("late_branch_recovery", "jmp_undercharge", "wrong_fu_mix")
        if quick else None
    )
    return bug_walk(benchmarks=names, bugs=bugs, **engine).render()


def _run_sampling(quick: bool, engine: Dict) -> str:
    return sampling_interval_study().render()


def _run_warmup(quick: bool, engine: Dict) -> str:
    workloads = ("gzip",) if quick else ("gzip", "mesa", "C-Ca")
    harness = engine["harness"]
    parts = []
    for workload in workloads:
        profile = warmup_study(workload, harness=harness)
        parts.append(profile.render())
    return "\n\n".join(parts)


def _run_baselines(quick: bool, engine: Dict) -> str:
    result = baseline_spread(workload="compress" if quick else "gcc95")
    return (result.render()
            + f"\nspread ratio: {result.spread_ratio:.2f}x")


def _run_ablation(quick: bool, engine: Dict) -> str:
    benchmarks = ("mesa", "art") if quick else (
        "gzip", "eon", "mesa", "art", "lucas"
    )
    return ablate_native_effects(benchmarks=benchmarks).render()


def _run_diagnose(quick: bool, engine: Dict) -> str:
    """Replay the canonical Section 3.4 debugging sessions."""
    from repro.core.siminitial import make_sim_with_bugs
    from repro.simulators.refmachine import make_native_machine

    sessions = [("M-I", "masked_load_trap_addresses"),
                ("E-DM1", "wrong_fu_mix")]
    if not quick:
        sessions.append(("C-Ca", "late_branch_recovery"))
    harness = engine["harness"]
    reference_machine = make_native_machine()
    parts = []
    for workload, bug in sessions:
        trace = harness.workloads.trace(workload)
        reference = reference_machine.run_trace(trace, workload)
        buggy = make_sim_with_bugs(bug).run_trace(trace, workload)
        parts.append(f"injected: {bug}\n"
                     + diagnose(buggy, reference).render())
    return "\n\n".join(parts)


def run_trace_command(
    workload: str,
    *,
    simulator: str = "sim-alpha",
    out_dir: str = ".",
    capacity: int = 65_536,
    metrics_out: str = "",
) -> str:
    """Instrument one run: CPI stack to stdout, trace files to disk."""
    from repro.obs import Instrumentation
    from repro.reporting import (
        render_cpi_stack_bars,
        render_cpi_stack_table,
    )

    factories = _trace_simulators()
    try:
        factory = factories[simulator]
    except KeyError:
        raise SystemExit(
            f"unknown simulator {simulator!r}; choose from "
            f"{sorted(factories)}"
        ) from None
    if capacity <= 0:
        raise SystemExit(
            f"--trace-limit must be positive (got {capacity})"
        )

    instrumentation = Instrumentation(trace=True, trace_capacity=capacity)
    harness = Harness(metrics=instrumentation.registry)
    try:
        result = harness.run_one(
            factory, workload, instrumentation=instrumentation
        )
    except KeyError as error:
        # WorkloadSet raises a descriptive KeyError naming the known
        # workloads; surface it as a CLI error, not a traceback.
        raise SystemExit(str(error.args[0])) from None

    os.makedirs(out_dir, exist_ok=True)
    provenance = result.provenance.to_dict() if result.provenance else None
    tracer = instrumentation.last_tracer()
    jsonl_path = os.path.join(out_dir, f"{workload}.trace.jsonl")
    chrome_path = os.path.join(out_dir, f"{workload}.chrome.json")
    tracer.write_jsonl(
        jsonl_path, simulator=result.simulator, workload=workload,
        provenance=provenance,
    )
    tracer.write_chrome_trace(
        chrome_path, simulator=result.simulator, workload=workload,
        provenance=provenance,
    )
    if metrics_out:
        instrumentation.registry.write_json(
            metrics_out, extra={"command": "trace", "workload": workload}
        )

    stacks = {workload: result.cpi_stack}
    parts = [
        str(result),
        "",
        render_cpi_stack_table(stacks),
        "",
        render_cpi_stack_bars(stacks),
        "",
        f"pipeline trace (JSONL):       {jsonl_path}",
        f"chrome://tracing event file:  {chrome_path}",
        f"events retained: {len(tracer)} of {tracer.recorded} "
        f"({tracer.dropped} dropped by the ring bound)",
    ]
    if provenance:
        parts.append(
            f"provenance: config={provenance['config_hash']} "
            f"version={provenance['package_version']} "
            f"host={provenance['host']}"
        )
    return "\n".join(parts)


def run_profile_command(
    workload: str,
    *,
    simulator: str = "sim-alpha",
    out_dir: str = ".",
    metrics_out: str = "",
) -> str:
    """Profile one run: attribution table to stdout, collapsed stacks
    (flamegraph.pl-compatible) to disk."""
    from repro.obs import Instrumentation

    factories = _trace_simulators()
    try:
        factory = factories[simulator]
    except KeyError:
        raise SystemExit(
            f"unknown simulator {simulator!r}; choose from "
            f"{sorted(factories)}"
        ) from None

    instrumentation = Instrumentation(profile=True)
    harness = Harness(metrics=instrumentation.registry)
    try:
        result = harness.run_one(
            factory, workload, instrumentation=instrumentation
        )
    except KeyError as error:
        raise SystemExit(str(error.args[0])) from None

    profiler = instrumentation.last_profiler()
    if profiler is None:
        # Simulators without the observer hook (e.g. native) never
        # enter the profiled pipeline; say so instead of a blank table.
        raise SystemExit(
            f"simulator {simulator!r} does not support the observer "
            f"hook, so there is no hot path to profile"
        )
    os.makedirs(out_dir, exist_ok=True)
    collapsed_path = os.path.join(out_dir, f"{workload}.collapsed.txt")
    profiler.write_collapsed(collapsed_path)
    if metrics_out:
        instrumentation.registry.write_json(
            metrics_out, extra={"command": "profile", "workload": workload}
        )
    return "\n".join([
        str(result),
        "",
        profiler.render(),
        "",
        f"collapsed stacks (flamegraph.pl): {collapsed_path}",
    ])


#: Runners take (quick, engine) where ``engine`` holds the shared
#: ``harness=`` (whose :class:`~repro.exec.spec.RunOptions` carry the
#: jobs/cache/shards selection) for drivers that run
#: (simulator x workload) grids; runners whose experiment has no grid
#: simply ignore it.
_EXPERIMENTS: Dict[str, Callable[[bool, Dict], str]] = {
    "table1": _run_table1,
    "table2": _run_table2,
    "table3": _run_table3,
    "table4": _run_table4,
    "table5": _run_table5,
    "figure2": _run_figure2,
    "calibration": _run_calibration,
    "bugwalk": _run_bugwalk,
    "sampling": _run_sampling,
    "warmup": _run_warmup,
    "baselines": _run_baselines,
    "ablation": _run_ablation,
    "diagnose": _run_diagnose,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Reproduce the experiments of 'Measuring Experimental Error "
            "in Microprocessor Simulation' (ISCA 2001)."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=sorted(_EXPERIMENTS) + [
            "all", "trace", "integrity", "checkpoint-gc",
            "profile", "bench", "blockcache-check", "cache-gc",
            "chaos", "shard-status",
        ],
        help="which experiment to run, 'trace' to instrument one run, "
             "'profile' for hot-path wall-time attribution, 'bench' "
             "for the pinned performance suite, 'blockcache-check' to "
             "audit fast-path/detailed byte equivalence (exit 5 on "
             "divergence), 'integrity' to run "
             "the fault-injection matrix, 'chaos' to run the sharded-"
             "execution chaos scenarios (exit 1 on any violation), "
             "'shard-status' to inspect a sharded run's journals, "
             "'checkpoint-gc' to prune a "
             "grid journal, or 'cache-gc' to prune a result cache",
    )
    parser.add_argument(
        "workload", nargs="?", default=None,
        help="workload to trace/profile (e.g. M-D or gzip), journal "
             "path (checkpoint-gc, shard-status), cache directory "
             "(cache-gc), or scenario name (chaos; omit to run all)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="use reduced workload/parameter sets",
    )
    parser.add_argument(
        "--simulator", default="sim-alpha",
        help="simulator for the trace subcommand "
             "(sim-alpha, sim-initial, sim-stripped, native)",
    )
    parser.add_argument(
        "--emit-trace", metavar="DIR", default=".",
        help="directory for the trace subcommand's JSONL and Chrome "
             "trace-event files (default: current directory)",
    )
    parser.add_argument(
        "--trace-limit", type=int, default=65_536, metavar="N",
        help="ring-buffer capacity: keep the last N instructions "
             "(default: 65536)",
    )
    parser.add_argument(
        "--metrics-out", metavar="FILE", default="",
        help="write a metrics-registry JSON snapshot (per-experiment "
             "wall times, or per-cell timings for trace) to FILE",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="fan grid cells out over N worker processes "
             "(default: 1, serial)",
    )
    parser.add_argument(
        "--shards", type=int, default=1, metavar="N",
        help="run grids over N crash-safe work-stealing shard runner "
             "processes (worker loss is recovered from fsynced shard "
             "journals; combine with --checkpoint for coordinator-"
             "crash resume; default: 1, no sharding)",
    )
    parser.add_argument(
        "--cache-dir", metavar="DIR", default="",
        help="memoize grid cells on disk under DIR, keyed by exact "
             "configuration; unchanged cells are reused across runs",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="ignore --cache-dir: recompute every cell this run",
    )
    parser.add_argument(
        "--sanitize", action="store_true",
        help="arm the invariant sanitizers: audit every cell and "
             "quarantine violating results off the grid (exit 3)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="with --sanitize (implied): abort on the first invariant "
             "violation instead of quarantining (exit 4)",
    )
    parser.add_argument(
        "--stuck-after", type=float, default=None, metavar="S",
        help="arm the livelock watchdog: a cell making no retirement "
             "progress for S seconds fails as 'stuck' instead of "
             "hanging forever",
    )
    parser.add_argument(
        "--checkpoint", metavar="FILE", default="",
        help="journal completed grid cells to FILE (atomic writes) so "
             "an interrupted run can be resumed",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="with --checkpoint: skip cells the journal already holds",
    )
    parser.add_argument(
        "--sweep", action="store_true",
        help="integrity subcommand: pair every fault with the workload "
             "families that stress its subsystem and print the "
             "fault x family coverage report",
    )
    parser.add_argument(
        "--families", metavar="LIST", default="",
        help="with integrity --sweep: comma-separated workload "
             "families to sweep (control, execute, memory, dram; "
             "default: all)",
    )
    parser.add_argument(
        "--gc-max-age", type=float, default=None, metavar="S",
        help="checkpoint-gc/cache-gc subcommands: prune entries "
             "untouched for more than S seconds",
    )
    parser.add_argument(
        "--gc-max-bytes", type=int, default=None, metavar="N",
        help="cache-gc subcommand: evict least-recently-used entries "
             "until the cache fits in N bytes",
    )
    parser.add_argument(
        "--ledger", metavar="FILE", default="",
        help="append one JSONL record per settled grid cell (status + "
             "resource telemetry) to FILE",
    )
    parser.add_argument(
        "--progress", action="store_true",
        help="render a live 'cells done/total, cells/s, ETA' line on "
             "stderr while a grid runs",
    )
    parser.add_argument(
        "--openmetrics", metavar="FILE", default="",
        help="write the metrics registry as an OpenMetrics/Prometheus "
             "text file after the run",
    )
    parser.add_argument(
        "--label", default="local", metavar="NAME",
        help="bench subcommand: label for the emitted artifact "
             "(default: local)",
    )
    parser.add_argument(
        "--bench-out", metavar="FILE", default="",
        help="bench subcommand: artifact path "
             "(default: BENCH_<label>.json)",
    )
    parser.add_argument(
        "--compare", nargs=2, metavar=("OLD", "NEW"), default=None,
        help="bench subcommand: compare two artifacts instead of "
             "running the suite; exit 5 on a gated regression",
    )
    parser.add_argument(
        "--bench-threshold", type=float, default=0.15, metavar="FRAC",
        help="bench --compare: relative change in a gated metric's bad "
             "direction that counts as a regression (default: 0.15)",
    )
    parser.add_argument(
        "--bench-rounds", type=int, default=2, metavar="N",
        help="bench subcommand: best-of-N rounds for wall-time-"
             "sensitive probes (default: 2)",
    )
    parser.add_argument(
        "--no-blockcache", action="store_true",
        help="disable the trace-compiled fast path: run every cell "
             "through the pure detailed timing loop",
    )
    parser.add_argument(
        "--blockcache-verify", type=int, default=None, metavar="N",
        help="re-execute every Nth fast-path batch through the "
             "detailed loop and quarantine the run on divergence "
             "(default: 32; 1 = verify everything, replay nothing)",
    )
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error(f"--jobs must be >= 1 (got {args.jobs})")
    if args.shards < 1:
        parser.error(f"--shards must be >= 1 (got {args.shards})")
    if args.resume and not args.checkpoint:
        parser.error("--resume requires --checkpoint FILE")
    if args.stuck_after is not None and args.stuck_after <= 0:
        parser.error(
            f"--stuck-after must be positive (got {args.stuck_after})"
        )

    if args.bench_threshold < 0:
        parser.error(
            f"--bench-threshold must be >= 0 (got {args.bench_threshold})"
        )
    if args.bench_rounds < 1:
        parser.error(
            f"--bench-rounds must be >= 1 (got {args.bench_rounds})"
        )
    if args.blockcache_verify is not None and args.blockcache_verify < 0:
        parser.error(
            f"--blockcache-verify must be >= 0 "
            f"(got {args.blockcache_verify})"
        )
    if args.no_blockcache:
        blockcache = False
    elif args.blockcache_verify is not None:
        from repro.core.blockcache import BlockCacheConfig

        blockcache = BlockCacheConfig(
            verify_interval=args.blockcache_verify
        )
    else:
        blockcache = None

    if args.experiment == "blockcache-check":
        from repro.validation.bench import run_blockcache_check

        report, ok = run_blockcache_check()
        print(report)
        return ExitCode.OK if ok else ExitCode.DIVERGENCE

    if args.experiment == "bench":
        from repro.validation.bench import (
            compare_artifacts,
            load_artifact,
            render_comparison,
            run_bench,
            write_artifact,
        )

        if args.compare:
            old_path, new_path = args.compare
            try:
                old = load_artifact(old_path)
                new = load_artifact(new_path)
            except (OSError, ValueError) as error:
                print(error, file=sys.stderr)
                return ExitCode.USAGE
            rows, regressions = compare_artifacts(
                old, new, threshold=args.bench_threshold
            )
            print(f"{old.get('label')} ({old.get('created')}) -> "
                  f"{new.get('label')} ({new.get('created')})")
            print(render_comparison(
                rows, regressions, threshold=args.bench_threshold
            ))
            return ExitCode.DIVERGENCE if regressions else ExitCode.OK
        artifact = run_bench(
            label=args.label,
            rounds=args.bench_rounds,
            progress=lambda message: print(
                f"bench: {message}", file=sys.stderr
            ),
        )
        out = args.bench_out or f"BENCH_{args.label}.json"
        write_artifact(artifact, out)
        gated = sum(
            1 for metric in artifact["metrics"].values() if metric["gate"]
        )
        print(f"wrote {out}: {len(artifact['metrics'])} metrics "
              f"({gated} gated)")
        for name in sorted(artifact["metrics"]):
            metric = artifact["metrics"][name]
            kind = "gated" if metric["gate"] else "info"
            print(f"  {name:<34} {metric['value']:>12.3f} "
                  f"{metric['unit']:<8} ({kind})")
        return ExitCode.OK

    if args.experiment == "chaos":
        from repro.integrity.chaos import (
            CHAOS_SCENARIOS,
            run_chaos_scenario,
            run_chaos_suite,
        )

        if args.workload and args.workload not in CHAOS_SCENARIOS:
            parser.error(
                f"unknown chaos scenario {args.workload!r}; known: "
                + ", ".join(sorted(CHAOS_SCENARIOS))
            )
        if args.workload:
            report_outcomes = [run_chaos_scenario(args.workload)]
            from repro.integrity.chaos import ChaosReport

            report = ChaosReport(outcomes=report_outcomes)
        else:
            report = run_chaos_suite()
        print(report.render())
        if args.metrics_out:
            with open(args.metrics_out, "w", encoding="utf-8") as out:
                out.write(report.to_json())
        if report.all_passed:
            print("all chaos scenarios passed; grids byte-identical")
            return ExitCode.OK
        failed = [o.scenario for o in report.outcomes if not o.passed]
        print("CHAOS VIOLATIONS: " + ", ".join(failed), file=sys.stderr)
        return ExitCode.FAILURE

    if args.experiment == "shard-status":
        from repro.exec.coordinator import shard_status

        base = args.workload or args.checkpoint
        if not base:
            parser.error(
                "shard-status requires a journal base path "
                "(positional or --checkpoint FILE)"
            )
        status = shard_status(base)
        if not status["journals"]:
            print(f"{base}: no journals found")
            return ExitCode.USAGE
        for record in status["journals"]:
            print(
                f"{record['path']}: {record['entries']} entries "
                f"[{record['state']}]"
            )
        print(f"{status['distinct_digests']} distinct cells journaled")
        return ExitCode.OK

    if args.experiment == "cache-gc":
        from repro.exec.cache import ResultCache

        root = args.workload or args.cache_dir
        if not root:
            parser.error(
                "cache-gc requires a cache directory (positional or "
                "--cache-dir DIR)"
            )
        if not os.path.isdir(root):
            print(f"{root}: not a directory", file=sys.stderr)
            return ExitCode.USAGE
        summary = ResultCache(root).gc(
            max_age_s=args.gc_max_age, max_bytes=args.gc_max_bytes
        )
        print(
            f"{root}: removed {len(summary['removed'])} entries, "
            f"reclaimed {summary['reclaimed_bytes']} bytes, "
            f"{summary['kept']} kept"
        )
        return ExitCode.OK

    if args.experiment == "profile":
        if not args.workload:
            parser.error("profile requires a workload name, e.g. "
                         "'repro-experiments profile M-D'")
        print(run_profile_command(
            args.workload,
            simulator=args.simulator,
            out_dir=args.emit_trace,
            metrics_out=args.metrics_out,
        ))
        return ExitCode.OK

    if args.experiment == "checkpoint-gc":
        from repro.integrity.checkpoint import GridCheckpoint

        path = args.checkpoint or args.workload
        if not path:
            parser.error(
                "checkpoint-gc requires a journal path (positional or "
                "--checkpoint FILE)"
            )
        checkpoint = GridCheckpoint(path)
        try:
            before = len(checkpoint.load())
        except ValueError as error:
            print(error, file=sys.stderr)
            return ExitCode.USAGE
        pruned = checkpoint.gc(max_age_s=args.gc_max_age)
        print(
            f"{path}: pruned {len(pruned)} of {before} entries, "
            f"{len(checkpoint)} kept"
        )
        return ExitCode.OK

    if args.experiment == "integrity":
        from repro.integrity.faultinject import (
            run_detection_matrix,
            run_detection_sweep,
        )

        if args.sweep or args.families:
            from repro.reporting import render_coverage

            families = [
                family.strip()
                for family in args.families.split(",")
                if family.strip()
            ] or None
            try:
                matrix = run_detection_sweep(
                    families=families,
                    include_pool_faults=not args.quick,
                )
            except KeyError as error:
                parser.error(str(error.args[0]))
            print(matrix.render())
            print()
            print(render_coverage(matrix))
        else:
            matrix = run_detection_matrix(
                workload=args.workload or "M-M",
                include_pool_faults=not args.quick,
            )
            print(matrix.render())
        if matrix.all_caught:
            print("all faults detected; control clean")
            return ExitCode.OK
        print(
            "SILENT CORRUPTIONS: "
            + ", ".join(matrix.silent_corruptions())
        )
        return ExitCode.FAILURE

    if args.experiment == "trace":
        if not args.workload:
            parser.error("trace requires a workload name, e.g. "
                         "'repro-experiments trace M-D'")
        print(run_trace_command(
            args.workload,
            simulator=args.simulator,
            out_dir=args.emit_trace,
            capacity=args.trace_limit,
            metrics_out=args.metrics_out,
        ))
        return ExitCode.OK

    from repro.integrity.sanitizers import IntegrityError, Sanitizers
    from repro.obs.registry import MetricsRegistry

    registry = MetricsRegistry(
        enabled=bool(args.metrics_out or args.openmetrics)
    )
    sanitizers = (
        Sanitizers(strict=args.strict)
        if args.sanitize or args.strict else None
    )
    options = RunOptions(
        jobs=args.jobs,
        cache=(
            None if args.no_cache or not args.cache_dir
            else args.cache_dir
        ),
        watchdog_s=args.stuck_after,
        checkpoint=args.checkpoint or None,
        resume=args.resume,
        ledger=args.ledger or None,
        live_progress=args.progress,
        blockcache=blockcache,
        shards=args.shards,
    )
    harness = Harness(
        options=options, metrics=registry, sanitizers=sanitizers,
    )
    engine = {
        # One harness across experiments: traces are built once, every
        # grid inherits ``options`` through it, and cache/cell counters
        # land in the --metrics-out registry.
        "harness": harness,
    }
    names = sorted(_EXPERIMENTS) if args.experiment == "all" else [
        args.experiment
    ]
    for name in names:
        started = time.time()
        try:
            with registry.timer(f"experiment.{name}").time():
                output = _EXPERIMENTS[name](args.quick, engine)
        except IntegrityError as error:
            print(f"integrity violation (strict) in {name}:",
                  file=sys.stderr)
            print(f"  {error.violation}", file=sys.stderr)
            return ExitCode.STRICT_ABORT
        elapsed = time.time() - started
        print(output)
        print(f"[{name} completed in {elapsed:.1f}s]")
        print()
    if args.metrics_out:
        registry.write_json(
            args.metrics_out,
            extra={"experiments": names, "quick": args.quick,
                   "jobs": args.jobs,
                   "cache_dir": options.cache or ""},
        )
    if args.openmetrics:
        registry.write_openmetrics(args.openmetrics)
    if harness.failed_cells:
        print(
            f"{len(harness.failed_cells)} cell(s) failed or were "
            f"quarantined:", file=sys.stderr,
        )
        for failure in harness.failed_cells:
            print(f"  {failure.describe()}", file=sys.stderr)
        return ExitCode.FAILED_CELLS
    return ExitCode.OK


if __name__ == "__main__":
    sys.exit(main())
