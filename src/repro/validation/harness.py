"""The validation harness: run simulator configurations over workload
sets and organise the results for the experiment drivers."""

from __future__ import annotations

import inspect
import json
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.obs.observer import Instrumentation
from repro.obs.provenance import capture_provenance
from repro.obs.registry import MetricsRegistry
from repro.result import SimResult
from repro.workloads.suite import WorkloadSet

__all__ = ["SimulatorFactory", "ResultGrid", "Harness"]

#: A factory producing a *fresh* simulator per run (predictor and cache
#: state must not leak between workloads).
SimulatorFactory = Callable[[], object]


@dataclass
class ResultGrid:
    """Results indexed by (simulator name, workload name)."""

    results: Dict[str, Dict[str, SimResult]] = field(default_factory=dict)

    def add(self, result: SimResult) -> None:
        self.results.setdefault(result.simulator, {})[result.workload] = result

    def get(self, simulator: str, workload: str) -> SimResult:
        per_sim = self.results.get(simulator)
        if per_sim is None:
            raise KeyError(
                f"unknown simulator {simulator!r}; grid has simulators: "
                f"{self.simulators()}"
            )
        result = per_sim.get(workload)
        if result is None:
            raise KeyError(
                f"no result for workload {workload!r} under simulator "
                f"{simulator!r}; that simulator has workloads: "
                f"{sorted(per_sim)}"
            )
        return result

    def simulators(self) -> List[str]:
        return list(self.results)

    def workloads(self) -> List[str]:
        names: List[str] = []
        for per_sim in self.results.values():
            for name in per_sim:
                if name not in names:
                    names.append(name)
        return names

    def ipcs(self, simulator: str) -> Dict[str, float]:
        return {
            workload: result.ipc
            for workload, result in self.results[simulator].items()
        }

    # -- persistence ------------------------------------------------------

    def to_json(self, *, indent: Optional[int] = None) -> str:
        """Serialise the whole grid (stats, ``extra``, CPI stacks,
        provenance included) for persistence and cross-run diffing."""
        payload = {
            "format": "repro-result-grid/1",
            "results": [
                result.to_dict()
                for per_sim in self.results.values()
                for result in per_sim.values()
            ],
        }
        return json.dumps(payload, indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ResultGrid":
        """Inverse of :meth:`to_json`."""
        payload = json.loads(text)
        if payload.get("format") != "repro-result-grid/1":
            raise ValueError(
                f"not a serialised ResultGrid: format="
                f"{payload.get('format')!r}"
            )
        grid = cls()
        for entry in payload["results"]:
            grid.add(SimResult.from_dict(entry))
        return grid


def _accepts_observer(run_trace: Callable) -> bool:
    """Whether a simulator's ``run_trace`` takes the observer hook."""
    try:
        return "observer" in inspect.signature(run_trace).parameters
    except (TypeError, ValueError):  # pragma: no cover - exotic callables
        return False


class Harness:
    """Runs (simulator x workload) grids with cached traces.

    ``metrics`` (a :class:`repro.obs.MetricsRegistry`) makes the
    harness record per-cell wall times and run counts; it is shared by
    every grid this harness runs.  ``instrumentation`` passed to the
    run methods additionally threads pipeline observers (CPI stacks,
    tracing) through simulators that support them.
    """

    def __init__(
        self,
        workloads: Optional[WorkloadSet] = None,
        *,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.workloads = workloads or WorkloadSet()
        self.metrics = metrics if metrics is not None else (
            MetricsRegistry.disabled()
        )

    def _run_cell(
        self,
        simulator,
        trace,
        workload: str,
        instrumentation: Optional[Instrumentation],
    ) -> SimResult:
        """Time one (simulator, workload) cell, instrumented."""
        observer = None
        run_trace = simulator.run_trace
        if instrumentation is not None and instrumentation.enabled \
                and _accepts_observer(run_trace):
            observer = instrumentation.observer(
                simulator=simulator.name, workload=workload
            )
        timer = self.metrics.timer(f"harness.cell.{simulator.name}.{workload}")
        with timer.time():
            if observer is not None:
                result = run_trace(trace, workload, observer=observer)
            else:
                result = run_trace(trace, workload)
        self.metrics.counter("harness.runs").inc()
        if result.provenance is None:
            result.provenance = capture_provenance(
                getattr(simulator, "config", None),
                name=getattr(simulator, "name", ""),
            )
        return result

    def run_one(
        self,
        factory: SimulatorFactory,
        workload: str,
        *,
        instrumentation: Optional[Instrumentation] = None,
    ) -> SimResult:
        """Run one simulator (fresh instance) on one workload."""
        simulator = factory()
        trace = self.workloads.trace(workload)
        return self._run_cell(simulator, trace, workload, instrumentation)

    def run_grid(
        self,
        factories: Sequence[SimulatorFactory],
        workload_names: Iterable[str],
        *,
        progress: Optional[Callable[[str, str], None]] = None,
        instrumentation: Optional[Instrumentation] = None,
    ) -> ResultGrid:
        """Run every factory over every workload.

        ``progress(simulator, workload)`` is called before each cell;
        with a metrics registry attached, each cell's wall time is also
        recorded under ``harness.cell.<simulator>.<workload>``.
        """
        grid = ResultGrid()
        names = list(workload_names)
        for name in names:
            trace = self.workloads.trace(name)
            for factory in factories:
                simulator = factory()
                if progress is not None:
                    progress(simulator.name, name)
                grid.add(
                    self._run_cell(simulator, trace, name, instrumentation)
                )
        return grid
