"""The validation harness: run simulator configurations over workload
sets and organise the results for the experiment drivers."""

from __future__ import annotations

import dataclasses
import inspect
import json
import os
import weakref
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.integrity.sanitizers import (
    IntegrityError,
    InvariantViolation,
    Sanitizers,
)
from repro.integrity.watchdog import SimulationStuck, Watchdog
from repro.obs.observer import Instrumentation, RunObserver
from repro.obs.provenance import capture_provenance
from repro.obs.registry import MetricsRegistry
from repro.obs.telemetry import (
    GridProgress,
    RunLedger,
    TelemetryProbe,
    mirror_to_metrics,
)
from repro.result import SimResult, VOLATILE_PROVENANCE_FIELDS
from repro.workloads.suite import WorkloadSet

__all__ = [
    "SimulatorFactory",
    "CellFailure",
    "ResultGrid",
    "Harness",
    "quarantine_failure",
]

#: A factory producing a *fresh* simulator per run (predictor and cache
#: state must not leak between workloads).
SimulatorFactory = Callable[[], object]

#: Backwards-compatible alias; the canonical list lives in
#: :mod:`repro.result` so checkpoint merges share it.
_VOLATILE_PROVENANCE_FIELDS = VOLATILE_PROVENANCE_FIELDS


@dataclass(frozen=True)
class CellFailure:
    """Structured record of one (simulator, workload) cell that could
    not produce a result.

    Produced by the parallel execution engine
    (:mod:`repro.exec.engine`): a cell that raises, crashes its worker
    process, or exceeds its timeout is recorded here — after exhausting
    its retry budget — instead of aborting the rest of the grid.  The
    integrity layer adds two kinds: ``"invariant"`` for results
    quarantined by the sanitizers (the violated invariant and its state
    snapshot land in ``snapshot``) and ``"stuck"`` for detected
    livelocks.
    """

    simulator: str
    workload: str
    #: One of ``"exception"``, ``"crash"``, ``"timeout"``,
    #: ``"invariant"``, ``"stuck"``.
    kind: str
    message: str = ""
    #: Total attempts made (1 + retries).
    attempts: int = 1
    #: Wall-clock seconds spent on the final attempt.
    elapsed_s: float = 0.0
    #: Diagnostic state captured at failure time (for ``"invariant"``
    #: kinds, the violation records under a ``"violations"`` key).
    snapshot: Optional[Dict] = None

    def describe(self) -> str:
        """One-line human summary (the CLI's failure listing)."""
        head = f"{self.simulator} on {self.workload}: {self.kind}"
        return f"{head} - {self.message}" if self.message else head

    def to_dict(self) -> Dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict) -> "CellFailure":
        names = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in payload.items() if k in names})


@dataclass
class ResultGrid:
    """Results indexed by (simulator name, workload name)."""

    results: Dict[str, Dict[str, SimResult]] = field(default_factory=dict)
    #: Cells that failed under the parallel engine (empty for serial
    #: runs, which propagate exceptions instead).
    failures: List[CellFailure] = field(default_factory=list)

    def add(self, result: SimResult, *, replace: bool = False) -> None:
        """Insert ``result``; duplicate (simulator, workload) cells are
        an error unless ``replace=True`` (the execution engine's
        cache-refresh path)."""
        per_sim = self.results.setdefault(result.simulator, {})
        if result.workload in per_sim and not replace:
            raise ValueError(
                f"duplicate cell ({result.simulator!r}, "
                f"{result.workload!r}): the grid already holds a result "
                f"for this pair; pass replace=True to overwrite it"
            )
        per_sim[result.workload] = result

    def _per_sim(self, simulator: str) -> Dict[str, SimResult]:
        per_sim = self.results.get(simulator)
        if per_sim is None:
            raise KeyError(
                f"unknown simulator {simulator!r}; grid has simulators: "
                f"{self.simulators()}"
            )
        return per_sim

    def get(self, simulator: str, workload: str) -> SimResult:
        per_sim = self._per_sim(simulator)
        result = per_sim.get(workload)
        if result is None:
            raise KeyError(
                f"no result for workload {workload!r} under simulator "
                f"{simulator!r}; that simulator has workloads: "
                f"{sorted(per_sim)}"
            )
        return result

    def simulators(self) -> List[str]:
        return list(self.results)

    def workloads(self) -> List[str]:
        names: List[str] = []
        for per_sim in self.results.values():
            for name in per_sim:
                if name not in names:
                    names.append(name)
        return names

    def ipcs(self, simulator: str) -> Dict[str, float]:
        return {
            workload: result.ipc
            for workload, result in self._per_sim(simulator).items()
        }

    # -- persistence ------------------------------------------------------

    def to_json(
        self,
        *,
        indent: Optional[int] = None,
        canonical: bool = False,
    ) -> str:
        """Serialise the whole grid (stats, ``extra``, CPI stacks,
        provenance, failure records included) for persistence and
        cross-run diffing.

        ``canonical=True`` blanks the provenance fields that vary from
        run to run on identical measurements (``created``, ``host``,
        ``platform``, ``python``), so two runs of the same
        configurations serialise byte-identically iff they measured the
        same thing — the form the determinism tests and cross-run diffs
        compare.
        """
        entries = []
        for per_sim in self.results.values():
            for result in per_sim.values():
                # canonical_dict blanks volatile provenance and the
                # resource telemetry (wall time, RSS, pids): identical
                # measurements must serialise byte-identically.
                entries.append(
                    result.canonical_dict() if canonical
                    else result.to_dict()
                )
        payload = {
            "format": "repro-result-grid/1",
            "results": entries,
            "failures": [f.to_dict() for f in self.failures],
        }
        return json.dumps(payload, indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ResultGrid":
        """Inverse of :meth:`to_json`."""
        payload = json.loads(text)
        if payload.get("format") != "repro-result-grid/1":
            raise ValueError(
                f"not a serialised ResultGrid: format="
                f"{payload.get('format')!r}"
            )
        grid = cls()
        for entry in payload["results"]:
            grid.add(SimResult.from_dict(entry))
        for entry in payload.get("failures", ()):
            grid.failures.append(CellFailure.from_dict(entry))
        return grid


#: run_trace function -> its parameter-name set.  Keyed by the
#: underlying function object (bound methods are recreated on every
#: attribute access), so one inspect.signature pays for a whole grid.
_SIGNATURE_CACHE: "weakref.WeakKeyDictionary[Callable, frozenset]" = (
    weakref.WeakKeyDictionary()
)


def _signature_params(run_trace: Callable) -> frozenset:
    """The parameter names a simulator's ``run_trace`` accepts (cached)."""
    probe = getattr(run_trace, "__func__", run_trace)
    try:
        return _SIGNATURE_CACHE[probe]
    except (KeyError, TypeError):
        pass
    try:
        params = frozenset(inspect.signature(probe).parameters)
    except (TypeError, ValueError):  # pragma: no cover - exotic callables
        params = frozenset()
    try:
        _SIGNATURE_CACHE[probe] = params
    except TypeError:  # pragma: no cover - unweakrefable callable
        pass
    return params


def _accepts_observer(run_trace: Callable) -> bool:
    """Whether a simulator's ``run_trace`` takes the observer hook."""
    return "observer" in _signature_params(run_trace)


def quarantine_failure(
    violations: Sequence[InvariantViolation],
    *,
    simulator: str = "",
    workload: str = "",
    attempts: int = 1,
    elapsed_s: float = 0.0,
) -> CellFailure:
    """Build the ``kind="invariant"`` :class:`CellFailure` recording a
    quarantined result (shared by the harness and the execution
    engine)."""
    first = violations[0] if violations else None
    return CellFailure(
        simulator=(first.simulator if first else "") or simulator,
        workload=(first.workload if first else "") or workload,
        kind="invariant",
        message=str(first) if first else "invariant violation",
        attempts=attempts,
        elapsed_s=elapsed_s,
        snapshot={"violations": [v.to_dict() for v in violations]},
    )


class Harness:
    """Runs (simulator x workload) grids with cached traces.

    ``metrics`` (a :class:`repro.obs.MetricsRegistry`) makes the
    harness record per-cell wall times and run counts; it is shared by
    every grid this harness runs.  ``instrumentation`` passed to the
    run methods additionally threads pipeline observers (CPI stacks,
    tracing) through simulators that support them.

    ``sanitizers`` (a :class:`repro.integrity.Sanitizers`, disabled by
    default) arms the invariant checkers: every cell is audited, and
    in grid runs a violating result is *quarantined* — recorded as a
    ``kind="invariant"`` :class:`CellFailure` instead of entering the
    grid (strict bundles raise :class:`IntegrityError` instead).
    ``watchdog_s`` arms a per-cell livelock watchdog with that stall
    budget (seconds) on simulators that accept one.  Failures from
    every grid this harness runs accumulate on ``failed_cells``, which
    is what the CLI's exit status reports.
    """

    def __init__(
        self,
        workloads: Optional[WorkloadSet] = None,
        *,
        metrics: Optional[MetricsRegistry] = None,
        sanitizers: Optional[Sanitizers] = None,
        watchdog_s: Optional[float] = None,
        checkpoint=None,
        resume: bool = False,
        ledger=None,
        live_progress: bool = False,
        blockcache=None,
        shards: int = 1,
    ):
        self.workloads = workloads or WorkloadSet()
        #: Trace-compilation control forwarded to simulators whose
        #: ``run_trace`` accepts it: ``None`` leaves each simulator's
        #: own default (enabled), ``False`` forces the pure detailed
        #: loop (the CLI's ``--no-blockcache``), ``True`` or a
        #: :class:`repro.core.blockcache.BlockCacheConfig` forces it on.
        self.blockcache = blockcache
        self.metrics = metrics if metrics is not None else (
            MetricsRegistry.disabled()
        )
        self.sanitizers = sanitizers if sanitizers is not None else (
            Sanitizers.disabled()
        )
        self.watchdog_s = watchdog_s
        #: Grid-level defaults used when :meth:`run_grid` is not given
        #: its own ``checkpoint``/``resume`` (how the CLI threads one
        #: journal through drivers that only pass jobs/cache).
        self.checkpoint = checkpoint
        self.resume = resume
        #: Same grid-level-default pattern for the telemetry ledger and
        #: the live progress line (``--ledger`` / ``--progress``).
        self.ledger = ledger
        self.live_progress = live_progress
        #: Grid-level default shard count (the CLI's ``--shards``):
        #: ``> 1`` routes grids through the crash-safe work-stealing
        #: :class:`~repro.exec.coordinator.ShardCoordinator`.
        self.shards = max(1, int(shards))
        #: Violations found by the most recent cell (empty when the
        #: sanitizers are disabled or the cell was clean).
        self.last_violations: List[InvariantViolation] = []
        #: Every failed/quarantined cell across all grids this harness
        #: has run (the CLI exit-status source).
        self.failed_cells: List[CellFailure] = []

    def _run_cell(
        self,
        simulator,
        trace,
        workload: str,
        instrumentation: Optional[Instrumentation],
    ) -> SimResult:
        """Time one (simulator, workload) cell, instrumented."""
        observer = None
        run_trace = simulator.run_trace
        params = _signature_params(run_trace)
        if instrumentation is not None and instrumentation.enabled \
                and "observer" in params:
            observer = instrumentation.observer(
                simulator=simulator.name, workload=workload
            )
        sanitizer = None
        if self.sanitizers.enabled:
            sanitizer = self.sanitizers.run_sanitizer(
                simulator=simulator.name, workload=workload
            )
            if "observer" in params:
                # Ride the engine's observer hook (sharing the
                # instrumentation observer when there is one).
                if observer is None:
                    observer = RunObserver(
                        sanitizer=sanitizer,
                        simulator=simulator.name, workload=workload,
                    )
                else:
                    observer.sanitizer = sanitizer
        kwargs = {}
        if observer is not None:
            kwargs["observer"] = observer
        if self.watchdog_s is not None and "watchdog" in params:
            kwargs["watchdog"] = Watchdog(self.watchdog_s)
        if self.blockcache is not None and "blockcache" in params:
            kwargs["blockcache"] = self.blockcache
        timer = self.metrics.timer(f"harness.cell.{simulator.name}.{workload}")
        probe = TelemetryProbe()
        with timer.time():
            result = run_trace(trace, workload, **kwargs)
        if result.telemetry is None:
            result.telemetry = probe.finish(result.instructions)
        mirror_to_metrics(
            self.metrics, simulator.name, workload, result.telemetry
        )
        self.metrics.counter("harness.runs").inc()
        if result.provenance is None:
            result.provenance = capture_provenance(
                getattr(simulator, "config", None),
                name=getattr(simulator, "name", ""),
            )
        if sanitizer is not None:
            sanitizer.audit_result(
                result, expected_instructions=len(trace)
            )
            self.last_violations = list(sanitizer.violations)
        else:
            self.last_violations = []
        return result


    def run_one(
        self,
        factory: SimulatorFactory,
        workload: str,
        *,
        instrumentation: Optional[Instrumentation] = None,
    ) -> SimResult:
        """Run one simulator (fresh instance) on one workload."""
        simulator = factory()
        trace = self.workloads.trace(workload)
        return self._run_cell(simulator, trace, workload, instrumentation)

    def run_grid(
        self,
        factories: Sequence[SimulatorFactory],
        workload_names: Iterable[str],
        *,
        progress: Optional[Callable[[str, str], None]] = None,
        instrumentation: Optional[Instrumentation] = None,
        jobs: int = 1,
        cache=None,
        timeout: Optional[float] = None,
        retries: int = 0,
        checkpoint=None,
        resume: bool = False,
        ledger=None,
        live_progress: bool = False,
        shards: Optional[int] = None,
    ) -> ResultGrid:
        """Run every factory over every workload.

        ``progress(simulator, workload)`` is called before each cell;
        with a metrics registry attached, each cell's wall time is also
        recorded under ``harness.cell.<simulator>.<workload>``.

        ``jobs > 1`` fans the cells out over a process pool, and
        ``cache`` (a :class:`repro.exec.ResultCache` or a directory
        path) memoizes cell results on disk across runs; either option
        — as does ``checkpoint`` (a
        :class:`repro.integrity.GridCheckpoint` or journal path, with
        ``resume=True`` to skip cells it already holds) — delegates to
        the execution engine (:mod:`repro.exec.engine`), which also
        honours the per-cell ``timeout`` (seconds) and ``retries``
        budget and records failed cells as :class:`CellFailure`
        entries on the returned grid.  The default (``jobs=1``, no
        cache, no checkpoint) is the in-process serial path, where a
        failing cell raises — except for integrity quarantines and
        detected livelocks, which are isolated per cell in every mode.

        ``ledger`` (a :class:`~repro.obs.telemetry.RunLedger` or JSONL
        path) appends one per-cell telemetry record per settled cell;
        ``live_progress=True`` renders a live
        ``cells done/total, cells/s, ETA`` line on stderr.  Both work
        in every execution mode.

        ``shards > 1`` (the CLI's ``--shards``) routes the grid
        through the crash-safe work-stealing
        :class:`~repro.exec.coordinator.ShardCoordinator`: runner loss
        is recovered from fsynced shard journals, and a ``checkpoint``
        journal makes the whole run resumable across coordinator
        crashes.  Results are byte-identical (canonical serialisation)
        to the serial path.
        """
        names = list(workload_names)
        if checkpoint is None and self.checkpoint is not None:
            checkpoint = self.checkpoint
            resume = resume or self.resume
        if ledger is None and self.ledger is not None:
            ledger = self.ledger
        live_progress = live_progress or self.live_progress
        if shards is None:
            shards = self.shards
        if shards > 1:
            from repro.exec.coordinator import ShardCoordinator

            coordinator = ShardCoordinator(
                self.workloads,
                shards=shards,
                cache=cache,
                metrics=self.metrics,
                sanitizers=self.sanitizers,
                watchdog_s=self.watchdog_s,
                retries=retries,
                checkpoint=checkpoint,
                resume=resume,
                blockcache=self.blockcache,
            )
            grid = coordinator.run_grid(
                factories, names,
                instrumentation=instrumentation, progress=progress,
                ledger=ledger, live_progress=live_progress,
            )
            self.failed_cells.extend(grid.failures)
            return grid
        if jobs > 1 or cache is not None or checkpoint is not None:
            from repro.exec.engine import ExperimentEngine

            engine = ExperimentEngine(
                self.workloads,
                jobs=jobs,
                cache=cache,
                timeout=timeout,
                retries=retries,
                metrics=self.metrics,
                sanitizers=self.sanitizers,
                watchdog_s=self.watchdog_s,
                checkpoint=checkpoint,
                resume=resume,
                blockcache=self.blockcache,
            )
            grid = engine.run_grid(
                factories, names,
                instrumentation=instrumentation, progress=progress,
                ledger=ledger, live_progress=live_progress,
            )
            self.failed_cells.extend(grid.failures)
            return grid
        owns_ledger = isinstance(ledger, (str, os.PathLike))
        if owns_ledger:
            ledger = RunLedger(ledger)
        progress_line = (
            GridProgress(len(names) * len(factories))
            if live_progress else None
        )

        def note(simulator: str, workload: str, status: str,
                 telemetry=None) -> None:
            if ledger is not None:
                ledger.record(
                    simulator=simulator, workload=workload,
                    status=status, telemetry=telemetry,
                )
            if progress_line is not None:
                progress_line.update()

        grid = ResultGrid()
        try:
            for name in names:
                trace = self.workloads.trace(name)
                for factory in factories:
                    simulator = factory()
                    if progress is not None:
                        progress(simulator.name, name)
                    try:
                        result = self._run_cell(
                            simulator, trace, name, instrumentation
                        )
                    except IntegrityError as exc:
                        # Fatal violation mid-run: quarantine the cell
                        # (strict bundles never get here — the
                        # sanitizer's raise propagates before the
                        # result exists).
                        if self.sanitizers.strict:
                            raise
                        grid.failures.append(quarantine_failure(
                            [exc.violation],
                            simulator=simulator.name, workload=name,
                        ))
                        note(simulator.name, name, "invariant")
                    except SimulationStuck as exc:
                        grid.failures.append(CellFailure(
                            simulator=simulator.name,
                            workload=name,
                            kind="stuck",
                            message=str(exc),
                            snapshot={
                                "instructions": exc.instructions,
                                "retire": exc.retire,
                                "state": exc.state,
                            },
                        ))
                        note(simulator.name, name, "stuck")
                    else:
                        if self.last_violations:
                            grid.failures.append(quarantine_failure(
                                self.last_violations,
                                simulator=simulator.name, workload=name,
                            ))
                            note(simulator.name, name, "invariant")
                        else:
                            grid.add(result)
                            note(
                                simulator.name, name, "ok",
                                telemetry=result.telemetry,
                            )
        finally:
            if progress_line is not None:
                progress_line.close()
            if owns_ledger:
                ledger.close()
        self.failed_cells.extend(grid.failures)
        return grid
