"""The validation harness: run simulator configurations over workload
sets and organise the results for the experiment drivers."""

from __future__ import annotations

import dataclasses
import inspect
import json
import os
import weakref
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.exec.spec import RunOptions, fold_legacy_kwargs
from repro.integrity.sanitizers import (
    IntegrityError,
    InvariantViolation,
    Sanitizers,
)
from repro.integrity.watchdog import SimulationStuck, Watchdog
from repro.obs.observer import Instrumentation, RunObserver
from repro.obs.provenance import capture_provenance
from repro.obs.registry import MetricsRegistry
from repro.obs.telemetry import (
    GridProgress,
    RunLedger,
    TelemetryProbe,
    mirror_to_metrics,
)
from repro.result import SimResult, VOLATILE_PROVENANCE_FIELDS
from repro.workloads.suite import WorkloadSet

__all__ = [
    "SimulatorFactory",
    "CellFailure",
    "ResultGrid",
    "Harness",
    "quarantine_failure",
]

#: A factory producing a *fresh* simulator per run (predictor and cache
#: state must not leak between workloads).
SimulatorFactory = Callable[[], object]

#: Backwards-compatible alias; the canonical list lives in
#: :mod:`repro.result` so checkpoint merges share it.
_VOLATILE_PROVENANCE_FIELDS = VOLATILE_PROVENANCE_FIELDS

#: Distinguishes "not passed" from an explicit ``None`` (a ``None``
#: watchdog/blockcache override is meaningful: disarmed / default).
_UNSET = object()


@dataclass(frozen=True)
class CellFailure:
    """Structured record of one (simulator, workload) cell that could
    not produce a result.

    Produced by the parallel execution engine
    (:mod:`repro.exec.engine`): a cell that raises, crashes its worker
    process, or exceeds its timeout is recorded here — after exhausting
    its retry budget — instead of aborting the rest of the grid.  The
    integrity layer adds two kinds: ``"invariant"`` for results
    quarantined by the sanitizers (the violated invariant and its state
    snapshot land in ``snapshot``) and ``"stuck"`` for detected
    livelocks.
    """

    simulator: str
    workload: str
    #: One of ``"exception"``, ``"crash"``, ``"timeout"``,
    #: ``"invariant"``, ``"stuck"``.
    kind: str
    message: str = ""
    #: Total attempts made (1 + retries).
    attempts: int = 1
    #: Wall-clock seconds spent on the final attempt.
    elapsed_s: float = 0.0
    #: Diagnostic state captured at failure time (for ``"invariant"``
    #: kinds, the violation records under a ``"violations"`` key).
    snapshot: Optional[Dict] = None

    def describe(self) -> str:
        """One-line human summary (the CLI's failure listing)."""
        head = f"{self.simulator} on {self.workload}: {self.kind}"
        return f"{head} - {self.message}" if self.message else head

    def to_dict(self) -> Dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict) -> "CellFailure":
        names = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in payload.items() if k in names})


@dataclass
class ResultGrid:
    """Results indexed by (simulator name, workload name)."""

    results: Dict[str, Dict[str, SimResult]] = field(default_factory=dict)
    #: Cells that failed under the parallel engine (empty for serial
    #: runs, which propagate exceptions instead).
    failures: List[CellFailure] = field(default_factory=list)

    def add(self, result: SimResult, *, replace: bool = False) -> None:
        """Insert ``result``; duplicate (simulator, workload) cells are
        an error unless ``replace=True`` (the execution engine's
        cache-refresh path)."""
        per_sim = self.results.setdefault(result.simulator, {})
        if result.workload in per_sim and not replace:
            raise ValueError(
                f"duplicate cell ({result.simulator!r}, "
                f"{result.workload!r}): the grid already holds a result "
                f"for this pair; pass replace=True to overwrite it"
            )
        per_sim[result.workload] = result

    def _per_sim(self, simulator: str) -> Dict[str, SimResult]:
        per_sim = self.results.get(simulator)
        if per_sim is None:
            raise KeyError(
                f"unknown simulator {simulator!r}; grid has simulators: "
                f"{self.simulators()}"
            )
        return per_sim

    def get(self, simulator: str, workload: str) -> SimResult:
        per_sim = self._per_sim(simulator)
        result = per_sim.get(workload)
        if result is None:
            raise KeyError(
                f"no result for workload {workload!r} under simulator "
                f"{simulator!r}; that simulator has workloads: "
                f"{sorted(per_sim)}"
            )
        return result

    def simulators(self) -> List[str]:
        return list(self.results)

    def workloads(self) -> List[str]:
        names: List[str] = []
        for per_sim in self.results.values():
            for name in per_sim:
                if name not in names:
                    names.append(name)
        return names

    def ipcs(self, simulator: str) -> Dict[str, float]:
        return {
            workload: result.ipc
            for workload, result in self._per_sim(simulator).items()
        }

    # -- persistence ------------------------------------------------------

    def to_json(
        self,
        *,
        indent: Optional[int] = None,
        canonical: bool = False,
    ) -> str:
        """Serialise the whole grid (stats, ``extra``, CPI stacks,
        provenance, failure records included) for persistence and
        cross-run diffing.

        ``canonical=True`` blanks the provenance fields that vary from
        run to run on identical measurements (``created``, ``host``,
        ``platform``, ``python``), so two runs of the same
        configurations serialise byte-identically iff they measured the
        same thing — the form the determinism tests and cross-run diffs
        compare.
        """
        entries = []
        for per_sim in self.results.values():
            for result in per_sim.values():
                # canonical_dict blanks volatile provenance and the
                # resource telemetry (wall time, RSS, pids): identical
                # measurements must serialise byte-identically.
                entries.append(
                    result.canonical_dict() if canonical
                    else result.to_dict()
                )
        payload = {
            "format": "repro-result-grid/1",
            "results": entries,
            "failures": [f.to_dict() for f in self.failures],
        }
        return json.dumps(payload, indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ResultGrid":
        """Inverse of :meth:`to_json`."""
        payload = json.loads(text)
        if payload.get("format") != "repro-result-grid/1":
            raise ValueError(
                f"not a serialised ResultGrid: format="
                f"{payload.get('format')!r}"
            )
        grid = cls()
        for entry in payload["results"]:
            grid.add(SimResult.from_dict(entry))
        for entry in payload.get("failures", ()):
            grid.failures.append(CellFailure.from_dict(entry))
        return grid


#: run_trace function -> its parameter-name set.  Keyed by the
#: underlying function object (bound methods are recreated on every
#: attribute access), so one inspect.signature pays for a whole grid.
_SIGNATURE_CACHE: "weakref.WeakKeyDictionary[Callable, frozenset]" = (
    weakref.WeakKeyDictionary()
)


def _signature_params(run_trace: Callable) -> frozenset:
    """The parameter names a simulator's ``run_trace`` accepts (cached)."""
    probe = getattr(run_trace, "__func__", run_trace)
    try:
        return _SIGNATURE_CACHE[probe]
    except (KeyError, TypeError):
        pass
    try:
        params = frozenset(inspect.signature(probe).parameters)
    except (TypeError, ValueError):  # pragma: no cover - exotic callables
        params = frozenset()
    try:
        _SIGNATURE_CACHE[probe] = params
    except TypeError:  # pragma: no cover - unweakrefable callable
        pass
    return params


def _accepts_observer(run_trace: Callable) -> bool:
    """Whether a simulator's ``run_trace`` takes the observer hook."""
    return "observer" in _signature_params(run_trace)


def quarantine_failure(
    violations: Sequence[InvariantViolation],
    *,
    simulator: str = "",
    workload: str = "",
    attempts: int = 1,
    elapsed_s: float = 0.0,
) -> CellFailure:
    """Build the ``kind="invariant"`` :class:`CellFailure` recording a
    quarantined result (shared by the harness and the execution
    engine)."""
    first = violations[0] if violations else None
    return CellFailure(
        simulator=(first.simulator if first else "") or simulator,
        workload=(first.workload if first else "") or workload,
        kind="invariant",
        message=str(first) if first else "invariant violation",
        attempts=attempts,
        elapsed_s=elapsed_s,
        snapshot={"violations": [v.to_dict() for v in violations]},
    )


class Harness:
    """Runs (simulator x workload) grids with cached traces.

    ``metrics`` (a :class:`repro.obs.MetricsRegistry`) makes the
    harness record per-cell wall times and run counts; it is shared by
    every grid this harness runs.  ``instrumentation`` passed to the
    run methods additionally threads pipeline observers (CPI stacks,
    tracing) through simulators that support them.

    ``sanitizers`` (a :class:`repro.integrity.Sanitizers`, disabled by
    default) arms the invariant checkers: every cell is audited, and
    in grid runs a violating result is *quarantined* — recorded as a
    ``kind="invariant"`` :class:`CellFailure` instead of entering the
    grid (strict bundles raise :class:`IntegrityError` instead).
    ``watchdog_s`` arms a per-cell livelock watchdog with that stall
    budget (seconds) on simulators that accept one.  Failures from
    every grid this harness runs accumulate on ``failed_cells``, which
    is what the CLI's exit status reports.
    """

    #: Keywords the pre-RunOptions constructor accepted; still folded
    #: in (with a DeprecationWarning) so old callers keep working.
    _LEGACY_INIT = (
        "watchdog_s", "checkpoint", "resume", "ledger", "live_progress",
        "blockcache", "shards",
    )
    #: The historical ``run_grid`` keyword surface, now RunOptions.
    _LEGACY_RUN_GRID = (
        "jobs", "cache", "timeout", "retries", "checkpoint", "resume",
        "ledger", "live_progress", "shards",
    )

    def __init__(
        self,
        workloads: Optional[WorkloadSet] = None,
        options: Optional[RunOptions] = None,
        *,
        metrics: Optional[MetricsRegistry] = None,
        sanitizers: Optional[Sanitizers] = None,
        **legacy,
    ):
        #: Harness-level execution defaults; per-call options merge
        #: over these (see :meth:`run_grid`).
        self.options = fold_legacy_kwargs(
            options, legacy, allowed=self._LEGACY_INIT, owner="Harness()",
        )
        self.workloads = workloads or WorkloadSet()
        #: Trace-compilation control forwarded to simulators whose
        #: ``run_trace`` accepts it: ``None`` leaves each simulator's
        #: own default (enabled), ``False`` forces the pure detailed
        #: loop (the CLI's ``--no-blockcache``), ``True`` or a
        #: :class:`repro.core.blockcache.BlockCacheConfig` forces it on.
        self.blockcache = self.options.blockcache
        self.metrics = metrics if metrics is not None else (
            MetricsRegistry.disabled()
        )
        self.sanitizers = sanitizers if sanitizers is not None else (
            self.options.sanitizer_bundle() or Sanitizers.disabled()
        )
        self.watchdog_s = self.options.watchdog_s
        #: Views over :attr:`options`, kept for callers that still read
        #: the old attributes.
        self.checkpoint = self.options.checkpoint
        self.resume = self.options.resume
        self.ledger = self.options.ledger
        self.live_progress = self.options.live_progress
        self.shards = max(1, int(self.options.shards))
        #: Violations found by the most recent cell (empty when the
        #: sanitizers are disabled or the cell was clean).
        self.last_violations: List[InvariantViolation] = []
        #: Every failed/quarantined cell across all grids this harness
        #: has run (the CLI exit-status source).
        self.failed_cells: List[CellFailure] = []

    def _run_cell(
        self,
        simulator,
        trace,
        workload: str,
        instrumentation: Optional[Instrumentation],
        *,
        sanitizers: Optional[Sanitizers] = None,
        watchdog_s=_UNSET,
        blockcache=_UNSET,
    ) -> SimResult:
        """Time one (simulator, workload) cell, instrumented.

        The keyword overrides let a caller carry per-call
        :class:`RunOptions` without mutating harness state (the job
        service runs grids from worker threads); unset, the harness's
        own settings apply.
        """
        sanitizer_bundle = (
            sanitizers if sanitizers is not None else self.sanitizers
        )
        watchdog_budget = (
            self.watchdog_s if watchdog_s is _UNSET else watchdog_s
        )
        blockcache_mode = (
            self.blockcache if blockcache is _UNSET else blockcache
        )
        observer = None
        run_trace = simulator.run_trace
        params = _signature_params(run_trace)
        if instrumentation is not None and instrumentation.enabled \
                and "observer" in params:
            observer = instrumentation.observer(
                simulator=simulator.name, workload=workload
            )
        sanitizer = None
        if sanitizer_bundle.enabled:
            sanitizer = sanitizer_bundle.run_sanitizer(
                simulator=simulator.name, workload=workload
            )
            if "observer" in params:
                # Ride the engine's observer hook (sharing the
                # instrumentation observer when there is one).
                if observer is None:
                    observer = RunObserver(
                        sanitizer=sanitizer,
                        simulator=simulator.name, workload=workload,
                    )
                else:
                    observer.sanitizer = sanitizer
        kwargs = {}
        if observer is not None:
            kwargs["observer"] = observer
        if watchdog_budget is not None and "watchdog" in params:
            kwargs["watchdog"] = Watchdog(watchdog_budget)
        if blockcache_mode is not None and "blockcache" in params:
            kwargs["blockcache"] = blockcache_mode
        timer = self.metrics.timer(f"harness.cell.{simulator.name}.{workload}")
        probe = TelemetryProbe()
        with timer.time():
            result = run_trace(trace, workload, **kwargs)
        if result.telemetry is None:
            result.telemetry = probe.finish(result.instructions)
        mirror_to_metrics(
            self.metrics, simulator.name, workload, result.telemetry
        )
        self.metrics.counter("harness.runs").inc()
        if result.provenance is None:
            result.provenance = capture_provenance(
                getattr(simulator, "config", None),
                name=getattr(simulator, "name", ""),
            )
        if sanitizer is not None:
            sanitizer.audit_result(
                result, expected_instructions=len(trace)
            )
            self.last_violations = list(sanitizer.violations)
        else:
            self.last_violations = []
        return result


    def _effective_sanitizers(self, options: RunOptions) -> Sanitizers:
        """The sanitizer bundle one run should use: an explicitly
        attached live bundle wins, else whatever ``options`` ask for."""
        if self.sanitizers.enabled:
            return self.sanitizers
        return options.sanitizer_bundle() or self.sanitizers

    def run_one(
        self,
        factory: SimulatorFactory,
        workload: str,
        *,
        instrumentation: Optional[Instrumentation] = None,
        options: Optional[RunOptions] = None,
    ) -> SimResult:
        """Run one simulator (fresh instance) on one workload.

        ``options`` applies the single-cell view of a
        :class:`RunOptions` (sanitize/strict, watchdog_s, blockcache —
        see :meth:`RunOptions.trimmed`) for this call only, merged over
        the harness-level defaults.
        """
        simulator = factory()
        trace = self.workloads.trace(workload)
        if options is None:
            return self._run_cell(
                simulator, trace, workload, instrumentation
            )
        opts = options.merged_over(self.options).trimmed()
        return self._run_cell(
            simulator, trace, workload, instrumentation,
            sanitizers=self._effective_sanitizers(opts),
            watchdog_s=opts.watchdog_s,
            blockcache=opts.blockcache,
        )

    def run_grid(
        self,
        factories: Sequence[SimulatorFactory],
        workload_names: Iterable[str],
        options: Optional[RunOptions] = None,
        *,
        progress: Optional[Callable[[str, str], None]] = None,
        instrumentation: Optional[Instrumentation] = None,
        **legacy,
    ) -> ResultGrid:
        """Run every factory over every workload.

        ``options`` (a :class:`repro.exec.spec.RunOptions`) carries
        every execution knob — jobs, cache, timeout, retries,
        checkpoint/resume, ledger, live_progress, shards, sanitize,
        watchdog_s, blockcache — merged over the harness-level options
        (a field left at its default inherits the harness's value).
        The historical keyword arguments (``jobs=``, ``cache=``, ...)
        still work through a deprecation shim that folds them into the
        options object and warns once per call.

        ``progress(simulator, workload)`` is called before each cell;
        with a metrics registry attached, each cell's wall time is also
        recorded under ``harness.cell.<simulator>.<workload>``.

        Execution backend, chosen from the merged options:

        * ``shards > 1`` routes the grid through the crash-safe
          work-stealing :class:`~repro.exec.coordinator.
          ShardCoordinator` (runner loss recovered from fsynced shard
          journals; results byte-identical to the serial path);
        * ``jobs > 1``, a ``cache``, or a ``checkpoint`` delegates to
          the execution engine (:mod:`repro.exec.engine`), which also
          honours the per-cell ``timeout`` and ``retries`` budget and
          records failed cells as :class:`CellFailure` entries;
        * otherwise the in-process serial path runs, where a failing
          cell raises — except for integrity quarantines and detected
          livelocks, which are isolated per cell in every mode.

        ``ledger`` (a :class:`~repro.obs.telemetry.RunLedger` or JSONL
        path) appends one per-cell telemetry record per settled cell;
        ``live_progress=True`` renders a live
        ``cells done/total, cells/s, ETA`` line on stderr.  Both work
        in every execution mode.
        """
        names = list(workload_names)
        opts = fold_legacy_kwargs(
            options, legacy, allowed=self._LEGACY_RUN_GRID,
            owner="Harness.run_grid()",
        ).merged_over(self.options)
        sanitizers = self._effective_sanitizers(opts)
        if opts.shards > 1:
            from repro.exec.coordinator import ShardCoordinator

            coordinator = ShardCoordinator(
                self.workloads, opts,
                metrics=self.metrics, sanitizers=sanitizers,
            )
            grid = coordinator.run_grid(
                factories, names,
                instrumentation=instrumentation, progress=progress,
            )
            self.failed_cells.extend(grid.failures)
            return grid
        if (opts.jobs > 1 or opts.cache is not None
                or opts.checkpoint is not None):
            from repro.exec.engine import ExperimentEngine

            engine = ExperimentEngine(
                self.workloads, opts,
                metrics=self.metrics, sanitizers=sanitizers,
            )
            grid = engine.run_grid(
                factories, names,
                instrumentation=instrumentation, progress=progress,
            )
            self.failed_cells.extend(grid.failures)
            return grid
        ledger = opts.ledger
        owns_ledger = isinstance(ledger, (str, os.PathLike))
        if owns_ledger:
            ledger = RunLedger(ledger)
        progress_line = (
            GridProgress(len(names) * len(factories))
            if opts.live_progress else None
        )

        def note(simulator: str, workload: str, status: str,
                 telemetry=None) -> None:
            if ledger is not None:
                ledger.record(
                    simulator=simulator, workload=workload,
                    status=status, telemetry=telemetry,
                )
            if progress_line is not None:
                progress_line.update()

        grid = ResultGrid()
        try:
            for name in names:
                trace = self.workloads.trace(name)
                for factory in factories:
                    simulator = factory()
                    if progress is not None:
                        progress(simulator.name, name)
                    try:
                        result = self._run_cell(
                            simulator, trace, name, instrumentation,
                            sanitizers=sanitizers,
                            watchdog_s=opts.watchdog_s,
                            blockcache=opts.blockcache,
                        )
                    except IntegrityError as exc:
                        # Fatal violation mid-run: quarantine the cell
                        # (strict bundles never get here — the
                        # sanitizer's raise propagates before the
                        # result exists).
                        if sanitizers.strict:
                            raise
                        grid.failures.append(quarantine_failure(
                            [exc.violation],
                            simulator=simulator.name, workload=name,
                        ))
                        note(simulator.name, name, "invariant")
                    except SimulationStuck as exc:
                        grid.failures.append(CellFailure(
                            simulator=simulator.name,
                            workload=name,
                            kind="stuck",
                            message=str(exc),
                            snapshot={
                                "instructions": exc.instructions,
                                "retire": exc.retire,
                                "state": exc.state,
                            },
                        ))
                        note(simulator.name, name, "stuck")
                    else:
                        if self.last_violations:
                            grid.failures.append(quarantine_failure(
                                self.last_violations,
                                simulator=simulator.name, workload=name,
                            ))
                            note(simulator.name, name, "invariant")
                        else:
                            grid.add(result)
                            note(
                                simulator.name, name, "ok",
                                telemetry=result.telemetry,
                            )
        finally:
            if progress_line is not None:
                progress_line.close()
            if owns_ledger:
                ledger.close()
        self.failed_cells.extend(grid.failures)
        return grid
