"""The validation harness: run simulator configurations over workload
sets and organise the results for the experiment drivers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.result import SimResult
from repro.workloads.suite import WorkloadSet

__all__ = ["SimulatorFactory", "ResultGrid", "Harness"]

#: A factory producing a *fresh* simulator per run (predictor and cache
#: state must not leak between workloads).
SimulatorFactory = Callable[[], object]


@dataclass
class ResultGrid:
    """Results indexed by (simulator name, workload name)."""

    results: Dict[str, Dict[str, SimResult]] = field(default_factory=dict)

    def add(self, result: SimResult) -> None:
        self.results.setdefault(result.simulator, {})[result.workload] = result

    def get(self, simulator: str, workload: str) -> SimResult:
        return self.results[simulator][workload]

    def simulators(self) -> List[str]:
        return list(self.results)

    def workloads(self) -> List[str]:
        names: List[str] = []
        for per_sim in self.results.values():
            for name in per_sim:
                if name not in names:
                    names.append(name)
        return names

    def ipcs(self, simulator: str) -> Dict[str, float]:
        return {
            workload: result.ipc
            for workload, result in self.results[simulator].items()
        }


class Harness:
    """Runs (simulator x workload) grids with cached traces."""

    def __init__(self, workloads: Optional[WorkloadSet] = None):
        self.workloads = workloads or WorkloadSet()

    def run_one(self, factory: SimulatorFactory, workload: str) -> SimResult:
        """Run one simulator (fresh instance) on one workload."""
        simulator = factory()
        trace = self.workloads.trace(workload)
        return simulator.run_trace(trace, workload)

    def run_grid(
        self,
        factories: Sequence[SimulatorFactory],
        workload_names: Iterable[str],
        *,
        progress: Optional[Callable[[str, str], None]] = None,
    ) -> ResultGrid:
        """Run every factory over every workload."""
        grid = ResultGrid()
        names = list(workload_names)
        for name in names:
            trace = self.workloads.trace(name)
            for factory in factories:
                simulator = factory()
                if progress is not None:
                    progress(simulator.name, name)
                grid.add(simulator.run_trace(trace, name))
        return grid
