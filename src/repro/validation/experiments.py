"""Experiment drivers: one per table/figure in the paper's evaluation.

Each driver returns a small result object carrying structured rows and
a ``render()`` method; the ``benchmarks/`` harnesses call these and
print our numbers beside the paper's published values.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.bugs import ALL_BUGS
from repro.core.config import MachineConfig, RegFileConfig
from repro.core.features import ALL_FEATURES, FeatureSet
from repro.core.simalpha import SimAlpha
from repro.core.siminitial import make_sim_initial, make_sim_with_bugs
from repro.core.simstripped import make_sim_minus_feature, make_sim_stripped
from repro.exec.spec import RunOptions
from repro.functional.machine import run_program
from repro.isa.instructions import InstrClass, LATENCY, Opcode
from repro.isa.program import ProgramBuilder
from repro.memory.cache import CacheConfig
from repro.reporting.tables import render_table
from repro.result import SimResult
from repro.simulators.dcpi import DcpiProfiler
from repro.simulators.eightway import EightWayConfig, EightWaySim
from repro.simulators.refmachine import NativeMachine
from repro.simulators.simoutorder import OutOrderConfig, SimOutOrder
from repro.validation.harness import Harness
from repro.validation.metrics import (
    arithmetic_mean,
    harmonic_mean,
    mean_absolute_error,
    percent_change,
    percent_error_cpi,
    std_deviation,
)
from repro.workloads.suite import micro_names, spec2000_names, spec95_names

__all__ = [
    "Table1Result",
    "table1_latencies",
    "Table2Result",
    "table2_micro",
    "Table3Result",
    "table3_macro",
    "Table4Result",
    "table4_features",
    "Table5Result",
    "table5_stability",
    "Figure2Result",
    "figure2_regfile",
    "BugWalkResult",
    "bug_walk",
    "SamplingResult",
    "sampling_interval_study",
]


# ----------------------------------------------------------------------
# Table 1: instruction latencies
# ----------------------------------------------------------------------

_LATENCY_PROBES: Dict[str, Opcode] = {
    "integer ALU": Opcode.ADDQ,
    "integer multiply": Opcode.MULQ,
    "FP add": Opcode.ADDT,
    "FP multiply": Opcode.MULT,
    "FP divide (single)": Opcode.DIVS,
    "FP divide (double)": Opcode.DIVT,
    "FP sqrt (single)": Opcode.SQRTS,
    "FP sqrt (double)": Opcode.SQRTT,
}


def _chain_program(opcode: Opcode, length: int):
    """A straight-line dependent chain of ``length`` ops."""
    b = ProgramBuilder(f"probe-{opcode.mnemonic}-{length}")
    if opcode.klass.is_fp:
        reg = "f1"
        for _ in range(length):
            b.emit(opcode, dest=reg, srcs=(reg, "f2"))
    else:
        reg = "r1"
        b.load_imm(reg, 3)
        for _ in range(length):
            b.emit(opcode, dest=reg, srcs=(reg,), imm=1)
    b.halt()
    return b.build()


def _load_chain_program(fp: bool, length: int):
    """A dependent pointer-style chain of loads (cache resident)."""
    b = ProgramBuilder(f"probe-load-{length}")
    head = b.alloc_words([0] * 8)
    b.poke(head, head)
    b.load_imm("r9", head)
    if fp:
        # FP loads cannot carry the chain (their dest is an f-reg), so
        # measure an int-load chain plus the documented fp extra.
        raise NotImplementedError
    for _ in range(length):
        b.emit(Opcode.LDQ, dest="r9", base="r9", disp=0)
    b.halt()
    return b.build()


@dataclass
class Table1Result:
    rows: List[Tuple[str, int, float]]  # (class, configured, measured)

    def render(self) -> str:
        return render_table(
            ["instruction class", "Table 1", "measured"],
            self.rows,
            title="Table 1: instruction latencies (cycles)",
        )

    def max_deviation(self) -> float:
        return max(abs(measured - configured)
                   for _, configured, measured in self.rows)


def table1_latencies(*, short: int = 16, long: int = 80) -> Table1Result:
    """Measure effective dependent-issue spacing per instruction class.

    Two chain lengths difference out pipeline fill and warm-up: the
    measured latency is (cycles(long) - cycles(short)) / (long - short).
    """
    rows: List[Tuple[str, int, float]] = []
    sim = SimAlpha()
    for label, opcode in _LATENCY_PROBES.items():
        cycles = {}
        for length in (short, long):
            result = sim.run_trace(
                run_program(_chain_program(opcode, length)), label
            )
            cycles[length] = result.cycles
        measured = (cycles[long] - cycles[short]) / (long - short)
        rows.append((label, LATENCY[opcode.klass], measured))
    # Integer load chain (the 3-cycle load-to-use of Table 1).
    cycles = {}
    for length in (short, long):
        result = sim.run_trace(
            run_program(_load_chain_program(False, length)), "load"
        )
        cycles[length] = result.cycles
    measured = (cycles[long] - cycles[short]) / (long - short)
    rows.append(("integer load (cache hit)", LATENCY[InstrClass.INT_LOAD],
                 measured))
    return Table1Result(rows)


# ----------------------------------------------------------------------
# Table 2: microbenchmark validation
# ----------------------------------------------------------------------

@dataclass
class Table2Row:
    benchmark: str
    native_ipc: float
    initial_ipc: float
    initial_error: float
    alpha_ipc: float
    alpha_error: float
    outorder_ipc: float
    outorder_diff: float


@dataclass
class Table2Result:
    rows: List[Table2Row]
    mean_initial_error: float
    mean_alpha_error: float
    mean_outorder_diff: float

    def row(self, benchmark: str) -> Table2Row:
        for row in self.rows:
            if row.benchmark == benchmark:
                return row
        raise KeyError(benchmark)

    def render(self) -> str:
        table_rows = [
            (r.benchmark, r.native_ipc, r.initial_ipc, r.initial_error,
             r.alpha_ipc, r.alpha_error, r.outorder_ipc, r.outorder_diff)
            for r in self.rows
        ]
        table_rows.append(
            ("mean |err|", None, None, self.mean_initial_error,
             None, self.mean_alpha_error, None, self.mean_outorder_diff)
        )
        return render_table(
            ["benchmark", "native IPC", "initial IPC", "err%",
             "alpha IPC", "err%", "outorder IPC", "diff%"],
            table_rows,
            title="Table 2: microbenchmark validation",
        )


def table2_micro(
    harness: Optional[Harness] = None,
    benchmarks: Optional[Sequence[str]] = None,
    *,
    options: Optional[RunOptions] = None,
) -> Table2Result:
    """Native vs sim-initial vs sim-alpha vs sim-outorder on the 21
    microbenchmarks.

    ``options`` picks the execution engine (``jobs``, ``cache``,
    ``shards`` — see :class:`~repro.exec.spec.RunOptions`); by default
    the grid inherits the harness's own options.
    """
    harness = harness or Harness()
    names = list(benchmarks or micro_names())
    factories = [
        NativeMachine,
        make_sim_initial,
        SimAlpha,
        SimOutOrder,
    ]
    grid = harness.run_grid(factories, names, options)
    rows: List[Table2Row] = []
    for name in names:
        native = grid.get("DS-10L", name)
        initial = grid.get("sim-initial", name)
        alpha = grid.get("sim-alpha", name)
        outorder = grid.get("sim-outorder", name)
        rows.append(
            Table2Row(
                benchmark=name,
                native_ipc=native.ipc,
                initial_ipc=initial.ipc,
                initial_error=percent_error_cpi(initial.cpi, native.cpi),
                alpha_ipc=alpha.ipc,
                alpha_error=percent_error_cpi(alpha.cpi, native.cpi),
                outorder_ipc=outorder.ipc,
                outorder_diff=percent_error_cpi(outorder.cpi, native.cpi),
            )
        )
    return Table2Result(
        rows=rows,
        mean_initial_error=mean_absolute_error(
            r.initial_error for r in rows
        ),
        mean_alpha_error=mean_absolute_error(r.alpha_error for r in rows),
        mean_outorder_diff=mean_absolute_error(
            r.outorder_diff for r in rows
        ),
    )


# ----------------------------------------------------------------------
# Table 3: macrobenchmark validation
# ----------------------------------------------------------------------

@dataclass
class Table3Row:
    benchmark: str
    native_ipc: float
    alpha_ipc: float
    alpha_error: float
    stripped_ipc: float
    stripped_diff: float
    outorder_ipc: float
    outorder_diff: float


@dataclass
class Table3Result:
    rows: List[Table3Row]
    native_hm_ipc: float
    alpha_hm_ipc: float
    alpha_mean_error: float
    stripped_hm_ipc: float
    stripped_mean_diff: float
    outorder_hm_ipc: float
    outorder_mean_diff: float

    def row(self, benchmark: str) -> Table3Row:
        for row in self.rows:
            if row.benchmark == benchmark:
                return row
        raise KeyError(benchmark)

    def render(self) -> str:
        table_rows = [
            (r.benchmark, r.native_ipc, r.alpha_ipc, r.alpha_error,
             r.stripped_ipc, r.stripped_diff, r.outorder_ipc,
             r.outorder_diff)
            for r in self.rows
        ]
        table_rows.append(
            ("HM / mean|err|", self.native_hm_ipc, self.alpha_hm_ipc,
             self.alpha_mean_error, self.stripped_hm_ipc,
             self.stripped_mean_diff, self.outorder_hm_ipc,
             self.outorder_mean_diff)
        )
        return render_table(
            ["benchmark", "native IPC", "alpha IPC", "err%",
             "stripped IPC", "diff%", "outorder IPC", "diff%"],
            table_rows,
            title="Table 3: macrobenchmark validation",
        )


def table3_macro(
    harness: Optional[Harness] = None,
    benchmarks: Optional[Sequence[str]] = None,
    *,
    options: Optional[RunOptions] = None,
) -> Table3Result:
    """Native vs sim-alpha vs sim-stripped vs sim-outorder on the
    SPEC2000 proxies."""
    harness = harness or Harness()
    names = list(benchmarks or spec2000_names())
    factories = [NativeMachine, SimAlpha, make_sim_stripped, SimOutOrder]
    grid = harness.run_grid(factories, names, options)
    rows: List[Table3Row] = []
    for name in names:
        native = grid.get("DS-10L", name)
        alpha = grid.get("sim-alpha", name)
        stripped = grid.get("sim-stripped", name)
        outorder = grid.get("sim-outorder", name)
        rows.append(
            Table3Row(
                benchmark=name,
                native_ipc=native.ipc,
                alpha_ipc=alpha.ipc,
                alpha_error=percent_error_cpi(alpha.cpi, native.cpi),
                stripped_ipc=stripped.ipc,
                stripped_diff=percent_error_cpi(stripped.cpi, native.cpi),
                outorder_ipc=outorder.ipc,
                outorder_diff=percent_error_cpi(outorder.cpi, native.cpi),
            )
        )
    return Table3Result(
        rows=rows,
        native_hm_ipc=harmonic_mean([r.native_ipc for r in rows]),
        alpha_hm_ipc=harmonic_mean([r.alpha_ipc for r in rows]),
        alpha_mean_error=mean_absolute_error(r.alpha_error for r in rows),
        stripped_hm_ipc=harmonic_mean([r.stripped_ipc for r in rows]),
        stripped_mean_diff=mean_absolute_error(
            r.stripped_diff for r in rows
        ),
        outorder_hm_ipc=harmonic_mean([r.outorder_ipc for r in rows]),
        outorder_mean_diff=mean_absolute_error(
            r.outorder_diff for r in rows
        ),
    )


# ----------------------------------------------------------------------
# Table 4: effect of individual features
# ----------------------------------------------------------------------

@dataclass
class Table4Column:
    feature: str
    hm_ipc: float
    mean_change: float
    stddev: float


@dataclass
class Table4Result:
    reference_hm_ipc: float
    columns: List[Table4Column]

    def column(self, feature: str) -> Table4Column:
        for col in self.columns:
            if col.feature == feature:
                return col
        raise KeyError(feature)

    def render(self) -> str:
        rows = [("ref", self.reference_hm_ipc, 0.0, 0.0)]
        rows.extend(
            (c.feature, c.hm_ipc, c.mean_change, c.stddev)
            for c in self.columns
        )
        return render_table(
            ["config", "HM IPC", "mean %change", "std dev"],
            rows,
            title="Table 4: effects of low-level features on performance",
        )


def table4_features(
    harness: Optional[Harness] = None,
    benchmarks: Optional[Sequence[str]] = None,
    features: Optional[Sequence[str]] = None,
    *,
    options: Optional[RunOptions] = None,
) -> Table4Result:
    """Remove each of the ten features from sim-alpha, one at a time."""
    harness = harness or Harness()
    names = list(benchmarks or spec2000_names())
    feature_list = list(features or ALL_FEATURES)

    factories: List[Callable[[], object]] = [SimAlpha]
    factories.extend(
        (lambda f=f: make_sim_minus_feature(f)) for f in feature_list
    )
    grid = harness.run_grid(factories, names, options)

    ref_ipcs = {n: grid.get("sim-alpha", n).ipc for n in names}
    columns: List[Table4Column] = []
    for feature in feature_list:
        sim_name = f"sim-alpha-no-{feature}"
        ipcs = {n: grid.get(sim_name, n).ipc for n in names}
        changes = [
            percent_change(ipcs[n], ref_ipcs[n]) for n in names
        ]
        columns.append(
            Table4Column(
                feature=feature,
                hm_ipc=harmonic_mean(list(ipcs.values())),
                mean_change=arithmetic_mean(changes),
                stddev=std_deviation(changes),
            )
        )
    return Table4Result(
        reference_hm_ipc=harmonic_mean(list(ref_ipcs.values())),
        columns=columns,
    )


# ----------------------------------------------------------------------
# Table 5: stability of optimizations across configurations
# ----------------------------------------------------------------------

#: The three optimizations studied (paper Table 5 rows).
_OPTIMIZATIONS = ("l1_latency_3_to_1", "l1_size_64_to_128", "regs_40_to_80")


def _alpha_with(
    features: FeatureSet,
    name: str,
    *,
    l1_latency: Optional[int] = None,
    l1_size: Optional[int] = None,
    rename_regs: Optional[int] = None,
) -> SimAlpha:
    """A sim-alpha variant with one optimization applied."""
    config = MachineConfig(name=name, features=features)
    memory = config.memory
    if l1_latency is not None:
        memory = replace(memory, l1d_load_to_use=l1_latency)
    if l1_size is not None:
        memory = replace(
            memory,
            l1d=CacheConfig(l1_size, 2, 64, name="l1d"),
        )
    config = replace(config, memory=memory)
    if rename_regs is not None:
        config = replace(
            config, int_rename_regs=rename_regs, fp_rename_regs=rename_regs
        )
    return SimAlpha(config)


def _outorder_with(
    name: str,
    *,
    l1_latency: Optional[int] = None,
    l1_size: Optional[int] = None,
    rename_regs: Optional[int] = None,
) -> SimOutOrder:
    """The Table 5 modified sim-outorder (separate physical registers)."""
    config = OutOrderConfig(name=name, separate_phys_regs=rename_regs or 40)
    if l1_latency is not None:
        config = replace(config, l1_latency=l1_latency)
    if l1_size is not None:
        config = replace(
            config, l1d=CacheConfig(l1_size, 2, 64, name="dl1")
        )
    return SimOutOrder(config)


@dataclass
class Table5Result:
    #: improvements[optimization][configuration] = % improvement in HM
    #: IPC (NaN where not applicable, e.g. the 1-cycle L1 under the
    #: no-luse configuration, as in the paper).
    improvements: Dict[str, Dict[str, float]]
    configurations: List[str]

    def render(self) -> str:
        headers = ["optimization"] + self.configurations
        rows = []
        for optimization, per_config in self.improvements.items():
            rows.append(
                [optimization]
                + [per_config.get(c, float("nan"))
                   for c in self.configurations]
            )
        return render_table(
            headers, rows,
            title="Table 5: simulator stability (% improvement)",
        )

    def spread(self, optimization: str) -> float:
        """Max - min improvement across configurations (stability)."""
        values = [
            v for v in self.improvements[optimization].values()
            if v == v  # drop NaN
        ]
        return max(values) - min(values)


def table5_stability(
    harness: Optional[Harness] = None,
    benchmarks: Optional[Sequence[str]] = None,
    features: Optional[Sequence[str]] = None,
    *,
    options: Optional[RunOptions] = None,
) -> Table5Result:
    """Measure the three optimizations across 13 configurations.

    Configurations: sim-alpha, sim-alpha minus each single feature,
    sim-stripped, and the modified sim-outorder.
    """
    harness = harness or Harness()
    names = list(benchmarks or spec2000_names())
    feature_list = list(features or ALL_FEATURES)

    feature_sets: Dict[str, FeatureSet] = {"sim-alpha": FeatureSet()}
    for feature in feature_list:
        feature_sets[feature] = FeatureSet().without(feature)
    feature_sets["sim-stripped"] = FeatureSet.stripped()

    optimization_kwargs = {
        "l1_latency_3_to_1": {"l1_latency": 1},
        "l1_size_64_to_128": {"l1_size": 128 * 1024},
        "regs_40_to_80": {"rename_regs": 80},
    }

    improvements: Dict[str, Dict[str, float]] = {
        o: {} for o in _OPTIMIZATIONS
    }

    def hm_ipc(factory: Callable[[], object]) -> float:
        grid = harness.run_grid([factory], names, options)
        ipcs = grid.ipcs(grid.simulators()[0])
        return harmonic_mean([ipcs[n] for n in names])

    for config_name, feature_set in feature_sets.items():
        base = hm_ipc(lambda: _alpha_with(feature_set, config_name))
        for optimization in _OPTIMIZATIONS:
            if optimization == "l1_latency_3_to_1" and (
                config_name == "luse"
            ):
                # As in the paper: with a 1-cycle D-cache there is no
                # load-use window to speculate over (marked n/a).
                improvements[optimization][config_name] = float("nan")
                continue
            kwargs = optimization_kwargs[optimization]
            improved = hm_ipc(
                lambda: _alpha_with(
                    feature_set, f"{config_name}+{optimization}", **kwargs
                )
            )
            improvements[optimization][config_name] = percent_change(
                improved, base
            )

    # Modified sim-outorder column.
    base = hm_ipc(lambda: _outorder_with("sim-outorder-sep"))
    for optimization in _OPTIMIZATIONS:
        kwargs = optimization_kwargs[optimization]
        improved = hm_ipc(
            lambda: _outorder_with(
                f"sim-outorder-sep+{optimization}", **kwargs
            )
        )
        improvements[optimization]["sim-outorder"] = percent_change(
            improved, base
        )

    configurations = list(feature_sets) + ["sim-outorder"]
    return Table5Result(improvements=improvements,
                        configurations=configurations)


# ----------------------------------------------------------------------
# Figure 2: register file sensitivity
# ----------------------------------------------------------------------

_REGFILE_CONFIGS: Tuple[Tuple[str, int, bool], ...] = (
    ("1-cycle full bypass", 1, True),
    ("2-cycle full bypass", 2, True),
    ("2-cycle partial bypass", 2, False),
)


@dataclass
class Figure2Result:
    #: ipcs[simulator][benchmark] = (cfg1, cfg2, cfg3) IPCs.
    ipcs: Dict[str, Dict[str, Tuple[float, float, float]]]
    benchmarks: List[str]

    def harmonic_means(self, simulator: str) -> Tuple[float, float, float]:
        per_bench = self.ipcs[simulator]
        return tuple(
            harmonic_mean([per_bench[b][i] for b in self.benchmarks])
            for i in range(3)
        )

    def bypass_loss(self, simulator: str) -> float:
        """% IPC lost moving from 2-cycle full to 2-cycle partial."""
        _, full2, partial2 = self.harmonic_means(simulator)
        return percent_change(partial2, full2)

    def render(self) -> str:
        headers = ["benchmark"]
        for simulator in self.ipcs:
            for label, _, _ in _REGFILE_CONFIGS:
                headers.append(f"{simulator}:{label.split()[0]}"
                               f"{'f' if 'full' in label else 'p'}")
        rows = []
        for bench in self.benchmarks:
            row = [bench]
            for simulator in self.ipcs:
                row.extend(self.ipcs[simulator][bench])
            rows.append(row)
        hm_row = ["HM"]
        for simulator in self.ipcs:
            hm_row.extend(self.harmonic_means(simulator))
        rows.append(hm_row)
        return render_table(
            headers, rows, title="Figure 2: register file sensitivity"
        )

    def render_bars(self, benchmarks: Optional[Sequence[str]] = None) -> str:
        """The figure itself: grouped bars, as in the paper."""
        from repro.reporting.barchart import render_grouped_bars

        chosen = list(benchmarks or self.benchmarks)
        series: Dict[str, List[float]] = {}
        for simulator, per_bench in self.ipcs.items():
            for config_index, (label, _, _) in enumerate(_REGFILE_CONFIGS):
                key = f"{simulator} {label}"
                series[key] = [per_bench[b][config_index] for b in chosen]
        return render_grouped_bars(
            chosen, series,
            title="Figure 2: register file sensitivity (IPC)",
        )


def figure2_regfile(
    harness: Optional[Harness] = None,
    benchmarks: Optional[Sequence[str]] = None,
    *,
    options: Optional[RunOptions] = None,
) -> Figure2Result:
    """Three register-file configurations on the 8-way simulator and on
    sim-alpha, over the SPEC95 proxies."""
    harness = harness or Harness()
    names = list(benchmarks or spec95_names())
    ipcs: Dict[str, Dict[str, List[float]]] = {
        "8-way": {n: [] for n in names},
        "sim-alpha": {n: [] for n in names},
    }
    for label, access, full in _REGFILE_CONFIGS:
        eight_config = EightWayConfig().with_regfile(access, full)
        alpha_config = replace(
            MachineConfig(name=f"sim-alpha-rf-{access}{full}"),
            regfile=RegFileConfig(access, full),
        )
        grid = harness.run_grid(
            [lambda: EightWaySim(eight_config),
             lambda: SimAlpha(alpha_config)],
            names, options,
        )
        eight_name, alpha_name = grid.simulators()
        for name in names:
            ipcs["8-way"][name].append(grid.get(eight_name, name).ipc)
            ipcs["sim-alpha"][name].append(grid.get(alpha_name, name).ipc)
    return Figure2Result(
        ipcs={
            sim: {n: tuple(v) for n, v in per.items()}
            for sim, per in ipcs.items()
        },
        benchmarks=names,
    )


# ----------------------------------------------------------------------
# Extension: per-bug error attribution (Section 3.4 narrated; we
# quantify it)
# ----------------------------------------------------------------------

@dataclass
class BugWalkResult:
    #: mean_error[bug] = mean |CPI error| on the microbenchmarks with
    #: only that bug injected.
    mean_error: Dict[str, float]
    baseline_error: float

    def render(self) -> str:
        rows = [("(none: validated)", self.baseline_error)]
        rows.extend(sorted(
            self.mean_error.items(), key=lambda kv: -kv[1]
        ))
        return render_table(
            ["bug", "mean |err| %"], rows,
            title="Per-bug error attribution (microbenchmarks)",
        )


def bug_walk(
    harness: Optional[Harness] = None,
    benchmarks: Optional[Sequence[str]] = None,
    bugs: Optional[Sequence[str]] = None,
    *,
    options: Optional[RunOptions] = None,
) -> BugWalkResult:
    """Inject each sim-initial bug alone and measure micro error."""
    harness = harness or Harness()
    names = list(benchmarks or micro_names())
    bug_list = list(bugs or ALL_BUGS)

    def grid_results(factory: Callable[[], object]) -> Dict[str, SimResult]:
        grid = harness.run_grid([factory], names, options)
        simulator = grid.simulators()[0]
        return {n: grid.get(simulator, n) for n in names}

    native = grid_results(NativeMachine)

    def mean_error_of(factory: Callable[[], object]) -> float:
        results = grid_results(factory)
        errors = [
            percent_error_cpi(results[n].cpi, native[n].cpi)
            for n in names
        ]
        return mean_absolute_error(errors)

    baseline = mean_error_of(SimAlpha)
    mean_error: Dict[str, float] = {}
    for bug in bug_list:
        mean_error[bug] = mean_error_of(
            lambda b=bug: make_sim_with_bugs(b)
        )
    return BugWalkResult(mean_error=mean_error, baseline_error=baseline)


# ----------------------------------------------------------------------
# Extension: DCPI sampling-interval trade-off (Section 2.3 narrated)
# ----------------------------------------------------------------------

@dataclass
class SamplingResult:
    #: rows: (interval, dilation %, mean |quantisation| %, combined %)
    rows: List[Tuple[int, float, float, float]]

    def best_interval(self) -> int:
        return min(self.rows, key=lambda r: r[3])[0]

    def render(self) -> str:
        return render_table(
            ["interval", "dilation %", "quantisation %", "combined %"],
            self.rows,
            title="DCPI sampling-interval trade-off",
            precision=3,
        )


def sampling_interval_study(
    workloads: Optional[Sequence[str]] = None,
    intervals: Sequence[int] = (1_000, 4_000, 16_000, 40_000, 64_000),
) -> SamplingResult:
    """Reproduce the dilation-vs-quantisation trade-off DCPI forced on
    the authors (they chose 40K cycles)."""
    names = list(workloads or micro_names())
    rows = []
    for interval in intervals:
        profiler = DcpiProfiler(interval_cycles=interval)
        dilation = profiler.dilation_fraction() * 100
        quantisation = arithmetic_mean(
            [abs(profiler.quantisation_fraction(n)) * 100 for n in names]
        )
        rows.append(
            (interval, dilation, quantisation, dilation + quantisation)
        )
    return SamplingResult(rows)
