"""Ablation studies over the modelling choices DESIGN.md calls out.

The NativeMachine differs from sim-alpha by a specific set of
mechanisms (page mapping, controller row cache, MAF sharing, port
contention, TLB handling...).  These drivers measure each choice's
contribution so the model's error budget is itself quantified —
applying the paper's own discipline to our reproduction of it.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import MachineConfig, NativeEffects
from repro.core.simalpha import SimAlpha
from repro.memory.victim import VictimBufferConfig
from repro.reporting.tables import render_table
from repro.validation.harness import Harness
from repro.validation.metrics import harmonic_mean, percent_change

__all__ = [
    "NativeEffectAblation",
    "ablate_native_effects",
    "PagingPolicyStudy",
    "paging_policy_study",
    "victim_buffer_sweep",
    "VictimBufferSweep",
]

_EFFECT_NAMES = (
    "page_coloring",
    "controller_page_opt",
    "shared_maf",
    "store_port_contention",
    "pal_tlb_misses",
    "writeback_traffic",
    "split_memory_bus",
    "extra_replay_traps",
)


@dataclass
class NativeEffectAblation:
    #: contribution[effect] = % IPC change of enabling that effect
    #: alone on top of plain sim-alpha (negative = effect slows the
    #: machine, positive = speeds it).
    contribution: Dict[str, float]
    combined: float

    def render(self) -> str:
        rows = sorted(self.contribution.items(), key=lambda kv: kv[1])
        rows.append(("ALL (NativeMachine)", self.combined))
        return render_table(
            ["native effect (alone)", "HM IPC change %"],
            rows,
            title="Ablation: the DS-10L effects sim-alpha does not model",
        )


def ablate_native_effects(
    harness: Optional[Harness] = None,
    benchmarks: Sequence[str] = ("gzip", "eon", "mesa", "art", "lucas"),
) -> NativeEffectAblation:
    """Enable each NativeMachine effect alone and measure its impact."""
    harness = harness or Harness()
    names = list(benchmarks)

    def hm_ipc(native: NativeEffects, label: str) -> float:
        config = MachineConfig(name=label, native=native)
        ipcs = [
            harness.run_one(lambda: SimAlpha(config), n).ipc for n in names
        ]
        return harmonic_mean(ipcs)

    base = hm_ipc(NativeEffects.none(), "base")
    contribution = {}
    for effect in _EFFECT_NAMES:
        ipc = hm_ipc(NativeEffects(**{effect: True}), effect)
        contribution[effect] = percent_change(ipc, base)
    combined = percent_change(hm_ipc(NativeEffects.ds10l(), "all"), base)
    return NativeEffectAblation(contribution=contribution,
                                combined=combined)


@dataclass
class PagingPolicyStudy:
    #: ipcs[policy][benchmark]
    ipcs: Dict[str, Dict[str, float]]

    def hm(self, policy: str) -> float:
        return harmonic_mean(list(self.ipcs[policy].values()))

    def render(self) -> str:
        benchmarks = list(next(iter(self.ipcs.values())))
        rows = [
            [policy] + [per[b] for b in benchmarks] + [self.hm(policy)]
            for policy, per in self.ipcs.items()
        ]
        return render_table(
            ["paging policy"] + benchmarks + ["HM"],
            rows,
            title="Ablation: virtual-to-physical page mapping policy",
        )


def paging_policy_study(
    harness: Optional[Harness] = None,
    benchmarks: Sequence[str] = ("mesa", "art", "equake", "lucas"),
    policies: Sequence[str] = ("sequential", "colored", "hashed"),
) -> PagingPolicyStudy:
    """Section 4's irreducible-error source, measured directly.

    The physical addresses behind the L2 depend on the OS page
    mapping; this sweeps the three modelled policies on the
    memory-bound proxies.
    """
    harness = harness or Harness()
    ipcs: Dict[str, Dict[str, float]] = {}
    for policy in policies:
        config = MachineConfig(name=f"paging-{policy}")
        config = replace(
            config,
            memory=replace(
                config.memory,
                paging=replace(config.memory.paging, policy=policy),
            ),
        )
        ipcs[policy] = {
            name: harness.run_one(lambda: SimAlpha(config), name).ipc
            for name in benchmarks
        }
    return PagingPolicyStudy(ipcs=ipcs)


@dataclass
class VictimBufferSweep:
    #: rows: (entries, HM IPC, % vs no buffer)
    rows: List[Tuple[int, float, float]]

    def render(self) -> str:
        return render_table(
            ["victim entries", "HM IPC", "vs none %"],
            self.rows,
            title="Ablation: victim buffer sizing",
        )


def victim_buffer_sweep(
    harness: Optional[Harness] = None,
    benchmarks: Sequence[str] = ("vpr", "twolf", "art"),
    sizes: Sequence[int] = (0, 2, 8, 32),
) -> VictimBufferSweep:
    """Size the 8-entry victim buffer up and down (paper ``vbuf``)."""
    harness = harness or Harness()
    names = list(benchmarks)

    def hm_ipc(entries: int) -> float:
        config = MachineConfig(name=f"vbuf{entries}")
        memory = config.memory
        if entries == 0:
            memory = replace(memory, victim_buffer_enabled=False)
        else:
            memory = replace(
                memory, victim_buffer=VictimBufferConfig(entries=entries)
            )
        config = replace(config, memory=memory)
        return harmonic_mean([
            harness.run_one(lambda: SimAlpha(config), n).ipc for n in names
        ])

    baseline = hm_ipc(0)
    rows = [(0, baseline, 0.0)]
    for entries in sizes:
        if entries == 0:
            continue
        ipc = hm_ipc(entries)
        rows.append((entries, ipc, percent_change(ipc, baseline)))
    return VictimBufferSweep(rows=rows)
