"""Error diagnosis: the paper's Section 3.4 debugging loop, codified.

The authors reduced sim-initial's 74.7% error to 2% by comparing event
counts between the simulator and the reference ("In addition to
measuring total execution time, we also monitored event counts, such
as mispredictions requiring rollback in various predictors") and
chasing the divergent ones to specific mechanisms.

:func:`diagnose` does that comparison mechanically: given a simulator
result and a reference result for the same workload, it normalises
every event counter per kilo-instruction, ranks the divergences, and
maps each to the pipeline mechanism (and, where applicable, the
sim-initial bug or paper feature) that usually causes it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.result import SimResult
from repro.reporting.tables import render_table

__all__ = ["EventDivergence", "Diagnosis", "diagnose"]

#: Event -> (mechanism, related feature/bug hint).
_EVENT_HINTS = {
    "branch_mispredicts": (
        "conditional-branch direction prediction",
        "tournament predictor sizing; speculative history update (spec)",
    ),
    "line_mispredicts": (
        "next-fetch (line) prediction",
        "slot-stage override adder (addr / late_branch_recovery); "
        "line-predictor initialisation",
    ),
    "way_mispredicts": (
        "I-cache way prediction",
        "extra_way_predictor_cycle; code layout (eon-style thrash)",
    ),
    "ras_mispredicts": (
        "return address stack",
        "speculative RAS update (spec); stack depth/circularity",
    ),
    "jmp_mispredicts": (
        "indirect-jump target prediction",
        "jmp flush penalty (jmp_undercharge)",
    ),
    "loaduse_mispredicts": (
        "load hit/miss speculation",
        "load-use feature (luse); squash recovery (short_luse_recovery)",
    ),
    "store_replay_traps": (
        "load issued past an unresolved conflicting store",
        "store-wait predictor (stwt)",
    ),
    "load_order_traps": (
        "load-load replay (out-of-order same-address loads)",
        "address-compare granularity (masked_load_trap_addresses)",
    ),
    "mbox_traps": (
        "mbox replay traps (MAF conflicts / same-set references)",
        "trap feature; MAF sharing",
    ),
    "icache_misses": ("instruction cache behaviour",
                      "prefetch feature (pref); code footprint"),
    "dcache_misses": ("data cache behaviour",
                      "victim buffer (vbuf); working-set modelling"),
    "l2_misses": ("L2 / off-chip behaviour",
                  "page mapping; DRAM calibration (Section 4.2)"),
    "dtlb_misses": ("data TLB behaviour",
                    "PAL-code vs hardware walk (Section 4.1)"),
    "itlb_misses": ("instruction TLB behaviour", "code footprint"),
    "maf_stalls": ("MAF capacity", "shared vs per-cache MAF"),
    "maps_stalls": ("rename-pool pressure", "maps feature; window sizing"),
    "store_wait_holds": ("store-wait serialisation",
                         "store-wait table clear interval"),
}


@dataclass
class EventDivergence:
    event: str
    simulated_per_ki: float
    reference_per_ki: float
    mechanism: str
    hint: str

    @property
    def delta_per_ki(self) -> float:
        return self.simulated_per_ki - self.reference_per_ki


@dataclass
class Diagnosis:
    workload: str
    cpi_error_percent: float
    divergences: List[EventDivergence]

    def top(self, n: int = 5) -> List[EventDivergence]:
        return self.divergences[:n]

    def render(self, n: int = 8) -> str:
        rows = [
            (d.event, d.simulated_per_ki, d.reference_per_ki,
             d.delta_per_ki, d.mechanism)
            for d in self.top(n)
        ]
        header = (
            f"Diagnosis for {self.workload}: CPI error "
            f"{self.cpi_error_percent:+.1f}%"
        )
        table = render_table(
            ["event", "sim /ki", "ref /ki", "delta", "mechanism"],
            rows,
            title=header,
            precision=3,
        )
        hints = "\n".join(
            f"  - {d.event}: {d.hint}" for d in self.top(3)
            if abs(d.delta_per_ki) > 0.01
        )
        if hints:
            table += "\n\nwhere to look first:\n" + hints
        elif abs(self.cpi_error_percent) > 2.0:
            # The Section 3.4 situation where counts agree but time
            # does not: the error is in a *penalty*, not an event rate
            # (e.g. the late-branch-recovery or extra-way-cycle bugs).
            table += (
                "\n\nno event rate diverges: the error is in penalty "
                "or latency modelling (redirect costs, stage charges), "
                "not in prediction/miss behaviour."
            )
        return table


def diagnose(
    simulated: SimResult,
    reference: SimResult,
    *,
    minimum_delta: float = 0.0,
) -> Diagnosis:
    """Rank the event-rate divergences between two runs.

    Both results must be for the same workload.  Rates are normalised
    per 1000 committed instructions, so traces of different lengths
    (e.g. a shorter validation run) still compare.
    """
    if simulated.workload != reference.workload:
        raise ValueError(
            f"workload mismatch: {simulated.workload!r} vs "
            f"{reference.workload!r}"
        )
    if reference.cpi <= 0:
        raise ValueError("reference CPI must be positive")
    cpi_error = (reference.cpi - simulated.cpi) / reference.cpi * 100.0

    divergences: List[EventDivergence] = []
    for event, (mechanism, hint) in _EVENT_HINTS.items():
        simulated_rate = (
            getattr(simulated.stats, event) / simulated.instructions * 1000
        )
        reference_rate = (
            getattr(reference.stats, event) / reference.instructions * 1000
        )
        if abs(simulated_rate - reference_rate) < minimum_delta:
            continue
        divergences.append(EventDivergence(
            event=event,
            simulated_per_ki=simulated_rate,
            reference_per_ki=reference_rate,
            mechanism=mechanism,
            hint=hint,
        ))
    divergences.sort(key=lambda d: -abs(d.delta_per_ki))
    return Diagnosis(
        workload=simulated.workload,
        cpi_error_percent=cpi_error,
        divergences=divergences,
    )
