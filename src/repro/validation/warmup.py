"""Warm-up and steady-state analysis of simulation measurements.

The paper measures whole runs ("We ran all of the benchmarks to
completion"), and its microbenchmarks iterate "for numerous iterations
to isolate the behavior" — i.e., long enough that cold caches, cold
predictors, and cold TLBs stop mattering.  This module quantifies that
requirement: how many instructions until a workload's windowed IPC
settles, and how much error a too-short run would inject.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.simalpha import SimAlpha
from repro.reporting.tables import render_table
from repro.validation.harness import Harness

__all__ = ["WarmupProfile", "warmup_study"]


@dataclass
class WarmupProfile:
    workload: str
    window_size: int
    #: IPC of each successive window.
    window_ipcs: List[float]
    #: Mean IPC of the second half (the steady-state estimate).
    steady_ipc: float
    #: First window whose IPC is within `tolerance` of steady state.
    settled_window: Optional[int]
    tolerance: float

    @property
    def settled_instructions(self) -> Optional[int]:
        if self.settled_window is None:
            return None
        return (self.settled_window + 1) * self.window_size

    def truncation_error(self, windows: int) -> float:
        """% CPI error of measuring only the first ``windows`` windows."""
        if not 0 < windows <= len(self.window_ipcs):
            raise ValueError("windows out of range")
        measured = sum(self.window_ipcs[:windows]) / windows
        if measured <= 0:
            raise ValueError(
                f"measured IPC over the first {windows} window(s) is "
                f"{measured!r}; a non-positive IPC means the profile "
                f"windows are degenerate and the truncation error is "
                f"undefined"
            )
        return (1 / self.steady_ipc - 1 / measured) / (
            1 / self.steady_ipc
        ) * 100.0

    def render(self) -> str:
        rows = [
            (i, ipc) for i, ipc in enumerate(self.window_ipcs)
        ]
        table = render_table(
            ["window", "IPC"], rows,
            title=(f"Warm-up profile: {self.workload} "
                   f"(window = {self.window_size} instructions)"),
        )
        if self.settled_instructions is not None:
            table += (
                f"\n\nsettles within {self.tolerance:.0%} of steady "
                f"IPC ({self.steady_ipc:.2f}) after "
                f"{self.settled_instructions} instructions"
            )
        else:
            table += "\n\nnever settles within tolerance (trace too short)"
        return table


def warmup_study(
    workload: str,
    *,
    harness: Optional[Harness] = None,
    simulator: Optional[SimAlpha] = None,
    window_size: int = 4096,
    tolerance: float = 0.05,
) -> WarmupProfile:
    """Windowed-IPC warm-up profile of ``workload`` on one simulator."""
    harness = harness or Harness()
    simulator = simulator or SimAlpha()
    trace = harness.workloads.trace(workload)
    result = simulator.run_trace(trace, workload, window_size=window_size)
    marks = list(result.stats.extra.get("window_retire_times", []))
    if len(marks) < 2:
        raise ValueError(
            f"trace of {len(trace)} instructions yields fewer than two "
            f"windows of {window_size}; lower window_size"
        )
    # The engine marks retire time at every full window boundary; the
    # instructions past the last boundary form a final partial window
    # that retired fewer than window_size instructions, closed by the
    # run's total cycle count.
    total = result.instructions
    tail = total - len(marks) * window_size
    if tail > 0 and result.cycles > marks[-1]:
        marks.append(result.cycles)
    ipcs: List[float] = []
    previous = 0.0
    for index, mark in enumerate(marks):
        cycles = mark - previous
        retired = min(window_size, total - index * window_size)
        ipcs.append(retired / cycles if cycles > 0 else 0.0)
        previous = mark

    half = len(ipcs) // 2
    steady = sum(ipcs[half:]) / len(ipcs[half:])
    settled = None
    for index, ipc in enumerate(ipcs):
        if steady and abs(ipc - steady) / steady <= tolerance:
            settled = index
            break
    return WarmupProfile(
        workload=workload,
        window_size=window_size,
        window_ipcs=ipcs,
        steady_ipc=steady,
        settled_window=settled,
        tolerance=tolerance,
    )
