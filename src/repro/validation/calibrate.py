"""Section 4.2: memory-system approximation by parameter calibration.

"To determine the configuration of the memory system, we first measured
the execution time, in cycles, of M-M, stream, and lmbench, and then
compared the results to those obtained from the simulator.  We varied
the RAS time, the CAS time, the precharge latency, and controller
latency ... We also compared an open-page policy ... to a closed-page
policy."

The driver measures the calibration workloads once on the native
machine, sweeps a grid of :class:`~repro.dram.config.DramConfig` for
sim-alpha, and reports the configuration minimising the mean absolute
execution-time difference — the paper's winner being open-page RAS=2,
CAS=4, precharge=2, controller=2.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.config import MachineConfig
from repro.core.simalpha import SimAlpha
from repro.dram.config import DramConfig, parameter_grid
from repro.reporting.tables import render_table
from repro.simulators.refmachine import NativeMachine
from repro.validation.harness import Harness
from repro.validation.metrics import mean_absolute_error
from repro.workloads.suite import WorkloadSet

__all__ = ["CalibrationResult", "calibrate_dram", "sim_alpha_with_dram"]


def sim_alpha_with_dram(dram: DramConfig, name: str = "") -> SimAlpha:
    """sim-alpha with the memory system's DRAM swapped for ``dram``."""
    base = MachineConfig(name=name or f"sim-alpha[{dram.page_policy}"
                                      f" r{dram.ras_cycles}c{dram.cas_cycles}"
                                      f"p{dram.precharge_cycles}"
                                      f"k{dram.controller_cycles}]")
    return SimAlpha(replace(base, memory=replace(base.memory, dram=dram)))


@dataclass
class CalibrationResult:
    #: (config, mean |%diff|, per-workload %diff) sorted best-first.
    ranking: List[Tuple[DramConfig, float, Dict[str, float]]]

    @property
    def best(self) -> DramConfig:
        return self.ranking[0][0]

    @property
    def best_error(self) -> float:
        return self.ranking[0][1]

    def residuals(self) -> Dict[str, float]:
        """Per-workload %diff under the winning configuration."""
        return dict(self.ranking[0][2])

    def render(self, top: int = 10) -> str:
        rows = []
        for config, error, _ in self.ranking[:top]:
            rows.append(
                (f"{config.page_policy} RAS={config.ras_cycles} "
                 f"CAS={config.cas_cycles} PRE={config.precharge_cycles} "
                 f"CTL={config.controller_cycles}",
                 error)
            )
        return render_table(
            ["DRAM configuration", "mean |%diff|"],
            rows,
            title="Section 4.2: DRAM calibration sweep (best first)",
        )


def calibrate_dram(
    harness: Optional[Harness] = None,
    configs: Optional[Iterable[DramConfig]] = None,
    workloads: Optional[Sequence[str]] = None,
) -> CalibrationResult:
    """Sweep DRAM configurations against the native calibration runs."""
    if harness is None:
        workload_set = WorkloadSet()
        names = workload_set.register_calibration()
        harness = Harness(workload_set)
    else:
        names = harness.workloads.register_calibration()
    if workloads is not None:
        names = list(workloads)

    native_cycles = {
        name: harness.run_one(NativeMachine, name).cycles for name in names
    }

    ranking: List[Tuple[DramConfig, float, Dict[str, float]]] = []
    for config in (configs if configs is not None else parameter_grid()):
        diffs: Dict[str, float] = {}
        for name in names:
            result = harness.run_one(
                lambda c=config: sim_alpha_with_dram(c), name
            )
            diffs[name] = (
                (native_cycles[name] - result.cycles)
                / native_cycles[name] * 100.0
            )
        ranking.append(
            (config, mean_absolute_error(diffs.values()), diffs)
        )
    ranking.sort(key=lambda item: item[1])
    return CalibrationResult(ranking)
