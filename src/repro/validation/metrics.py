"""Error metrics, exactly as the paper computes them.

* Per-benchmark error is "a percentage difference in CPI" between a
  simulator and the reference; a *negative* error means the simulator
  under-estimates performance (its CPI is higher than the machine's),
  matching the sign convention of Tables 2 and 3.
* "The mean errors are computed as the arithmetic mean of the absolute
  errors."
* "Aggregate IPCs are computed using the harmonic mean."
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

__all__ = [
    "percent_error_cpi",
    "percent_change",
    "mean_absolute_error",
    "arithmetic_mean",
    "harmonic_mean",
    "std_deviation",
]


def percent_error_cpi(simulated_cpi: float, reference_cpi: float) -> float:
    """Signed CPI error of a simulator against the reference machine.

    Negative: the simulator is slower than the machine (performance
    under-estimated).  Positive: the simulator is optimistic.
    """
    if reference_cpi <= 0:
        raise ValueError("reference CPI must be positive")
    return (reference_cpi - simulated_cpi) / reference_cpi * 100.0


def percent_change(new: float, base: float) -> float:
    """Relative change of ``new`` vs ``base`` in percent (IPC deltas)."""
    if base <= 0:
        raise ValueError("base must be positive")
    return (new - base) / base * 100.0


def mean_absolute_error(errors: Iterable[float]) -> float:
    """Arithmetic mean of absolute errors (the paper's aggregate)."""
    values = [abs(e) for e in errors]
    if not values:
        raise ValueError("no errors to aggregate")
    return sum(values) / len(values)


def arithmetic_mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("no values to average")
    return sum(values) / len(values)


def harmonic_mean(values: Sequence[float]) -> float:
    """Harmonic mean (the paper's aggregate for IPC)."""
    if not values:
        raise ValueError("no values to average")
    if any(v <= 0 for v in values):
        raise ValueError("harmonic mean requires positive values")
    return len(values) / sum(1.0 / v for v in values)


def std_deviation(values: Sequence[float]) -> float:
    """Population standard deviation (Table 4's variability row)."""
    if not values:
        raise ValueError("no values")
    mean = arithmetic_mean(values)
    return math.sqrt(sum((v - mean) ** 2 for v in values) / len(values))
