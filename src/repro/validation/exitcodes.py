"""The one exit-code vocabulary every CLI verb speaks.

Collected here (instead of bare integers sprinkled through
``validation/cli.py``) so scripts, CI jobs, and the job service agree
on what a status means.  The table is documented in the README.
"""

from __future__ import annotations

import enum

__all__ = ["ExitCode"]


class ExitCode(enum.IntEnum):
    """Process exit status of ``repro-experiments`` / ``repro-serve``."""

    #: Clean run: every cell completed, every check passed.
    OK = 0
    #: A detection/verification suite found what it was hunting for:
    #: undetected injected faults (``integrity``) or chaos-scenario
    #: violations (``chaos``).
    FAILURE = 1
    #: Usage or input error: bad flags, unreadable files, malformed
    #: artifacts (argparse also exits 2 on its own).
    USAGE = 2
    #: The grid completed but one or more cells failed or were
    #: quarantined by the sanitizers.
    FAILED_CELLS = 3
    #: A strict sanitizer bundle aborted the run on the first
    #: invariant violation (``--sanitize --strict``).
    STRICT_ABORT = 4
    #: A gated divergence: ``bench --compare`` regression past the
    #: threshold, or ``blockcache-check`` byte-inequivalence.
    DIVERGENCE = 5
    #: The job service could not start or serve (``repro-serve``).
    SERVICE = 6
