"""The paper's Section 7 recommendations, as executable experiments.

The paper closes with four recommendations for rigorous simulation
research.  Three of them are quantifiable with this package, and this
module turns each into a measurement:

* **Common baselines** — "In the ISCA-27 proceedings, five different
  studies reported IPCs of the SPEC95 gcc benchmark that were evenly
  distributed from 0.9 to 3.5."  :func:`baseline_spread` reproduces
  the phenomenon: one workload, a handful of plausible ad-hoc
  simulator parameterizations, and the resulting IPC spread.

* **Consistent parameters** — "many studies choose parameters, such as
  DRAM latencies, in an ad-hoc manner."  :func:`parameter_sensitivity`
  measures how much an optimization's reported benefit moves when the
  un-validated background parameters move.

* **Quantified stability** — "To ensure that an optimization is widely
  effective ... it should be measured across a range of processor and
  system organizations."  :func:`stability_score` condenses a Table 5
  row into a single number (relative spread across configurations).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.config import MachineConfig
from repro.core.features import FeatureSet
from repro.core.simalpha import SimAlpha
from repro.dram.config import DramConfig
from repro.memory.cache import CacheConfig
from repro.reporting.tables import render_table
from repro.simulators.eightway import EightWayConfig, EightWaySim
from repro.simulators.simoutorder import OutOrderConfig, SimOutOrder
from repro.validation.harness import Harness
from repro.validation.metrics import harmonic_mean, percent_change

__all__ = [
    "BaselineSpreadResult",
    "baseline_spread",
    "ParameterSensitivityResult",
    "parameter_sensitivity",
    "stability_score",
]


# ----------------------------------------------------------------------
# Common baselines: the ISCA-27 gcc spread
# ----------------------------------------------------------------------

def _research_group_simulators() -> Dict[str, Callable[[], object]]:
    """Five plausible 'research group' simulators for one study.

    Each is a defensible configuration someone could publish with: a
    validated model, a stripped academic model, an aggressive abstract
    model, a wide idealized model, and a conservative model.
    """
    return {
        "group-A (validated detail)": SimAlpha,
        "group-B (typical academic)": lambda: SimAlpha(MachineConfig(
            name="group-B", features=FeatureSet.stripped()
        )),
        "group-C (SimpleScalar defaults)": SimOutOrder,
        "group-D (8-wide idealized)": lambda: EightWaySim(EightWayConfig(
            name="group-D"
        )),
        "group-E (SimpleScalar, big window)": lambda: SimOutOrder(
            OutOrderConfig(name="group-E", ruu_size=128, issue_width=8,
                           fetch_width=8, commit_width=8,
                           int_alu_units=8, mem_ports=4)
        ),
    }


@dataclass
class BaselineSpreadResult:
    workload: str
    ipcs: Dict[str, float]

    @property
    def spread_ratio(self) -> float:
        """max/min IPC across the groups (paper's gcc: 3.5/0.9 ~ 3.9x)."""
        values = list(self.ipcs.values())
        return max(values) / min(values)

    def render(self) -> str:
        rows = sorted(self.ipcs.items(), key=lambda kv: kv[1])
        return render_table(
            ["research group", f"{self.workload} IPC"],
            rows,
            title="Common-baselines study: one benchmark, five groups",
        )


def baseline_spread(
    harness: Optional[Harness] = None,
    workload: str = "gcc95",
) -> BaselineSpreadResult:
    """Run one benchmark under five 'research group' simulators."""
    harness = harness or Harness()
    ipcs = {
        name: harness.run_one(factory, workload).ipc
        for name, factory in _research_group_simulators().items()
    }
    return BaselineSpreadResult(workload=workload, ipcs=ipcs)


# ----------------------------------------------------------------------
# Consistent parameters: ad-hoc DRAM latency vs reported benefit
# ----------------------------------------------------------------------

@dataclass
class ParameterSensitivityResult:
    #: rows: (background label, baseline HM IPC, improved HM IPC, %benefit)
    rows: List[Tuple[str, float, float, float]]

    @property
    def benefit_range(self) -> Tuple[float, float]:
        benefits = [row[3] for row in self.rows]
        return min(benefits), max(benefits)

    def render(self) -> str:
        return render_table(
            ["background DRAM", "base IPC", "optimized IPC", "benefit %"],
            self.rows,
            title=("Consistent-parameters study: one optimization, "
                   "ad-hoc backgrounds"),
        )


def parameter_sensitivity(
    harness: Optional[Harness] = None,
    benchmarks: Sequence[str] = ("mesa", "art", "equake"),
) -> ParameterSensitivityResult:
    """Measure a 128KB-L1 optimization under ad-hoc DRAM choices.

    Different 'papers' pick different uncalibrated DRAM latencies; the
    same optimization then reports different benefits — the
    inconsistency the paper's recommendation targets.
    """
    harness = harness or Harness()
    backgrounds = {
        "calibrated (2/4/2/2 open)": DramConfig(),
        "optimistic (1/2/1/0 open)": DramConfig(
            ras_cycles=1, cas_cycles=2, precharge_cycles=1,
            controller_cycles=0,
        ),
        "pessimistic (3/6/3/4 closed)": DramConfig(
            ras_cycles=3, cas_cycles=6, precharge_cycles=3,
            controller_cycles=4, page_policy="closed",
        ),
    }

    def hm_ipc(dram: DramConfig, l1_size: Optional[int]) -> float:
        config = MachineConfig(name="ps")
        memory = replace(config.memory, dram=dram)
        if l1_size is not None:
            memory = replace(
                memory, l1d=CacheConfig(l1_size, 2, 64, name="l1d")
            )
        config = replace(config, memory=memory)
        ipcs = [
            harness.run_one(lambda: SimAlpha(config), name).ipc
            for name in benchmarks
        ]
        return harmonic_mean(ipcs)

    rows = []
    for label, dram in backgrounds.items():
        base = hm_ipc(dram, None)
        improved = hm_ipc(dram, 128 * 1024)
        rows.append((label, base, improved, percent_change(improved, base)))
    return ParameterSensitivityResult(rows)


# ----------------------------------------------------------------------
# Quantified stability
# ----------------------------------------------------------------------

def stability_score(improvements: Dict[str, float]) -> float:
    """Condense a Table 5 row into one number.

    The score is the spread of the improvement across configurations,
    normalised by its mean magnitude: 0 is perfectly stable; above ~1
    the optimization's benefit depends more on the simulator than on
    the idea.  NaN entries (inapplicable configurations) are ignored.
    """
    values = [v for v in improvements.values() if v == v]
    if not values:
        raise ValueError("no applicable configurations")
    mean_magnitude = sum(abs(v) for v in values) / len(values)
    if mean_magnitude == 0:
        return 0.0
    return (max(values) - min(values)) / mean_magnitude
