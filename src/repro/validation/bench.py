"""The benchmark-trajectory harness: pinned perf suite + regression gate.

ROADMAP item 1 wants the timing core 10-100x faster; a perf campaign
needs a *trajectory* — comparable measurements over time — or every
"optimization" is an anecdote.  :func:`run_bench` runs a pinned suite
and emits a schema-versioned artifact (``BENCH_<label>.json``); the
first artifact is committed with the PR that introduced the harness,
and every subsequent perf PR appends its own point.
:func:`compare_artifacts` diffs two artifacts and reports regressions
past a configurable threshold — the CLI (``repro bench --compare OLD
NEW``) exits non-zero on any, which is the CI gate.

Two kinds of metric, distinguished by their ``gate`` flag:

* **informational** (``gate=False``) — raw simulator throughput
  (per-workload KIPS).  Machine-dependent; tracked for the trajectory
  but never gated, because CI hardware is not your hardware.
* **gated** (``gate=True``) — machine-portable *ratios*: engine
  parallel speedup on sleep-bound cells, warm-cache hit rate,
  disabled-instrumentation overhead, profiler coverage, and the
  blockcache warm-replay speedup on M-LOOP (detailed wall / fast-path
  wall on the same trace — both sides run on the same host, so the
  ratio is hardware-independent).  These compare meaningfully across
  hosts, so a regression past the threshold is a real defect, not
  noise.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List, Optional, Tuple

from repro.core.simalpha import SimAlpha
from repro.exec.cache import ResultCache
from repro.exec.spec import RunOptions
from repro.obs.observer import Instrumentation
from repro.obs.provenance import _package_version
from repro.result import SimResult
from repro.validation.harness import Harness
from repro.workloads.suite import WorkloadSet

__all__ = [
    "BENCH_FORMAT",
    "DEFAULT_KIPS_WORKLOADS",
    "BLOCKCACHE_CHECK_WORKLOADS",
    "run_bench",
    "run_blockcache_check",
    "write_artifact",
    "load_artifact",
    "compare_artifacts",
    "render_comparison",
]

BENCH_FORMAT = "repro-bench/1"

#: The pinned KIPS suite: one compute-bound, one ILP, one memory-bound
#: microbenchmark (small enough for CI smoke, varied enough to catch a
#: hot-loop regression that only bites one behaviour class).
DEFAULT_KIPS_WORKLOADS: Tuple[str, ...] = ("C-S1", "E-D3", "M-D")

#: Wall seconds each sleep-bound fake cell "computes" for (the parallel
#: speedup probe; sleeping makes the measured speedup a property of the
#: engine's scheduling, not of host CPU count or speed).
_SLEEP_CELL_S = 0.05


class _SleepSim:
    """A simulator whose cost is pure wall time: the speedup probe.

    Sleep-bound cells parallelise perfectly, so serial/parallel wall
    time measures the engine's fan-out overhead and nothing about the
    host's arithmetic throughput — the most machine-portable speedup
    probe available.
    """

    name = "bench-sleep"

    def run_trace(self, trace, workload: str = "") -> SimResult:
        time.sleep(_SLEEP_CELL_S)
        return SimResult(
            simulator=self.name,
            workload=workload,
            cycles=1.0,
            instructions=len(trace),
        )


class _SleepSim2(_SleepSim):
    """Second sleep-bound identity (a grid needs distinct sim names)."""

    name = "bench-sleep-2"


def _metric(value: float, unit: str, *, gate: bool,
            higher_is_better: bool) -> Dict:
    return {
        "value": float(value),
        "unit": unit,
        "gate": gate,
        "higher_is_better": higher_is_better,
    }


def _bench_kips(workloads: WorkloadSet, names, rounds: int) -> Dict[str, Dict]:
    """Best-of-``rounds`` KIPS per pinned workload (informational)."""
    harness = Harness(workloads)
    metrics: Dict[str, Dict] = {}
    best: Dict[str, float] = {}
    for _ in range(rounds):
        for name in names:
            result = harness.run_one(SimAlpha, name)
            kips = result.telemetry.kips if result.telemetry else 0.0
            if kips > best.get(name, 0.0):
                best[name] = kips
    for name in names:
        metrics[f"kips.sim-alpha.{name}"] = _metric(
            best[name], "kips", gate=False, higher_is_better=True
        )
    return metrics


def _bench_parallel_speedup(workloads: WorkloadSet, names) -> Dict[str, Dict]:
    """Serial / jobs=2 wall-time ratio over sleep-bound fake cells."""
    # Two factories x the pinned workloads = enough cells for two
    # workers to stay busy; traces are already built (and cached) by
    # the KIPS pass, so only the sleeps are timed.
    factories = [_SleepSim, _SleepSim2]
    names = list(names)
    for name in names:
        workloads.trace(name)
    t0 = time.perf_counter()
    Harness(workloads).run_grid(factories, names)
    serial = time.perf_counter() - t0
    t0 = time.perf_counter()
    Harness(workloads).run_grid(factories, names, RunOptions(jobs=2))
    parallel = time.perf_counter() - t0
    speedup = serial / parallel if parallel > 0 else 0.0
    return {
        "engine.parallel_speedup_j2": _metric(
            speedup, "x", gate=True, higher_is_better=True
        ),
    }


def _bench_warm_cache(workloads: WorkloadSet, names,
                      cache_root: str) -> Dict[str, Dict]:
    """Hit rate of a second grid run against a just-populated cache."""
    cold = ResultCache(cache_root)
    Harness(workloads).run_grid([SimAlpha], names, RunOptions(cache=cold))
    warm = ResultCache(cache_root)
    Harness(workloads).run_grid([SimAlpha], names, RunOptions(cache=warm))
    probes = warm.hits + warm.misses
    rate = warm.hits / probes if probes else 0.0
    return {
        "cache.warm_hit_rate": _metric(
            rate, "fraction", gate=True, higher_is_better=True
        ),
    }


def _bench_disabled_overhead(workloads: WorkloadSet, name: str,
                             rounds: int) -> Dict[str, Dict]:
    """Disabled-instrumentation / bare wall-time ratio (the <5%
    contract, continuously measured)."""
    trace = workloads.trace(name)
    baseline = float("inf")
    disabled = float("inf")
    for _ in range(max(2, rounds)):
        t0 = time.perf_counter()
        SimAlpha().run_trace(trace, name)
        baseline = min(baseline, time.perf_counter() - t0)
        inst = Instrumentation.disabled()
        harness = Harness(workloads)
        t0 = time.perf_counter()
        harness.run_one(SimAlpha, name, instrumentation=inst)
        disabled = min(disabled, time.perf_counter() - t0)
    ratio = disabled / baseline if baseline > 0 else 0.0
    return {
        "obs.disabled_overhead_ratio": _metric(
            ratio, "ratio", gate=True, higher_is_better=False
        ),
    }


def _bench_profiler_coverage(workloads: WorkloadSet,
                             name: str) -> Dict[str, Dict]:
    """Fraction of run wall-time the profiler's phase table explains
    (the >=95% attribution contract, continuously measured)."""
    inst = Instrumentation(profile=True)
    Harness(workloads).run_one(SimAlpha, name, instrumentation=inst)
    prof = inst.last_profiler()
    coverage = prof.coverage if prof is not None else 0.0
    return {
        "profiler.coverage": _metric(
            coverage, "fraction", gate=True, higher_is_better=True
        ),
    }


def _bench_blockcache(workloads: WorkloadSet, rounds: int) -> Dict[str, Dict]:
    """Blockcache off / on wall-time ratio on the M-LOOP kernel.

    M-LOOP is a steady all-hit loop, so the fast path replays nearly
    all of it; the detailed run and the fast run execute on the same
    host back to back, making the ratio machine-portable.  Gated: a
    drop means the trace-compilation layer stopped engaging (a
    steadiness or pre-scan regression), not that the host got slower.
    """
    from repro.workloads.micro import memory_loop

    workloads.register(memory_loop())
    trace = workloads.trace("M-LOOP")
    detailed = float("inf")
    fast = float("inf")
    for _ in range(max(2, rounds)):
        t0 = time.perf_counter()
        SimAlpha().run_trace(trace, "M-LOOP", blockcache=False)
        detailed = min(detailed, time.perf_counter() - t0)
        t0 = time.perf_counter()
        SimAlpha().run_trace(trace, "M-LOOP")
        fast = min(fast, time.perf_counter() - t0)
    speedup = detailed / fast if fast > 0 else 0.0
    return {
        "blockcache.warm_replay_speedup": _metric(
            speedup, "x", gate=True, higher_is_better=True
        ),
    }


#: The blockcache-check kernels: one replay-dominated loop (M-LOOP),
#: one moderately steady kernel (E-I), and three that must *fall back*
#: (branchy C-Ca, missing M-D, DRAM-bound M-ROW) — equivalence must
#: hold whether the fast path engages or not.
BLOCKCACHE_CHECK_WORKLOADS: Tuple[str, ...] = (
    "M-LOOP", "M-I", "E-I", "C-Ca", "M-D", "M-ROW",
)


def run_blockcache_check(
    *,
    workload_names=BLOCKCACHE_CHECK_WORKLOADS,
    workloads: Optional[WorkloadSet] = None,
) -> Tuple[str, bool]:
    """Byte-equivalence audit of the trace-compiled fast path.

    Runs every kernel twice — detailed loop only, then with the
    blockcache enabled — and compares the canonical serialisations
    (``ResultGrid.to_json(canonical=True)``), which cover every stat,
    CPI-relevant count, and provenance-stable field.  Returns the
    report and whether every pair was byte-identical.
    """
    from repro.validation.harness import ResultGrid
    from repro.workloads.micro import memory_loop

    workloads = workloads or WorkloadSet()
    if "M-LOOP" in workload_names:
        workloads.register(memory_loop())
    lines = []
    ok = True
    for name in workload_names:
        trace = workloads.trace(name)
        t0 = time.perf_counter()
        detailed = SimAlpha().run_trace(trace, name, blockcache=False)
        t_detailed = time.perf_counter() - t0
        t0 = time.perf_counter()
        fast = SimAlpha().run_trace(trace, name)
        t_fast = time.perf_counter() - t0
        grid_a = ResultGrid()
        grid_a.add(detailed)
        grid_b = ResultGrid()
        grid_b.add(fast)
        same = (
            grid_a.to_json(canonical=True) == grid_b.to_json(canonical=True)
        )
        ok = ok and same
        ratio = t_detailed / t_fast if t_fast > 0 else 0.0
        lines.append(
            f"{name:<8} {len(trace):>8} instrs  "
            f"{'identical' if same else 'DIVERGED':<10} "
            f"detailed {t_detailed:6.3f}s  fast {t_fast:6.3f}s  "
            f"({ratio:4.1f}x)"
        )
    verdict = (
        "blockcache equivalence: every kernel byte-identical"
        if ok else
        "blockcache equivalence FAILED: fast path diverged from the "
        "detailed loop"
    )
    return "\n".join(lines + [verdict]), ok


def run_bench(
    *,
    label: str = "local",
    workloads: Optional[WorkloadSet] = None,
    kips_workloads=DEFAULT_KIPS_WORKLOADS,
    rounds: int = 2,
    cache_root: Optional[str] = None,
    progress=None,
) -> Dict:
    """Run the pinned suite; returns the schema-versioned artifact.

    ``rounds`` controls best-of-N for the wall-time-sensitive probes.
    ``cache_root`` overrides where the warm-cache probe builds its
    scratch cache (a temporary directory by default).  ``progress`` is
    an optional ``callable(str)`` narrating the stages.
    """
    workloads = workloads or WorkloadSet()
    names = list(kips_workloads)

    def say(message: str) -> None:
        if progress is not None:
            progress(message)

    metrics: Dict[str, Dict] = {}
    say(f"kips suite: {', '.join(names)} (best of {rounds})")
    metrics.update(_bench_kips(workloads, names, rounds))
    say("engine parallel speedup (sleep-bound cells, jobs=2)")
    metrics.update(_bench_parallel_speedup(workloads, names))
    say("warm-cache hit rate")
    if cache_root is not None:
        metrics.update(_bench_warm_cache(workloads, names, cache_root))
    else:
        import tempfile

        with tempfile.TemporaryDirectory() as scratch:
            metrics.update(_bench_warm_cache(workloads, names, scratch))
    say(f"disabled-instrumentation overhead on {names[0]}")
    metrics.update(_bench_disabled_overhead(workloads, names[0], rounds))
    say(f"profiler coverage on {names[0]}")
    metrics.update(_bench_profiler_coverage(workloads, names[0]))
    say("blockcache warm-replay speedup on M-LOOP")
    metrics.update(_bench_blockcache(workloads, rounds))

    return {
        "format": BENCH_FORMAT,
        "label": label,
        "created": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "package_version": _package_version(),
        "metrics": metrics,
    }


def write_artifact(payload: Dict, path: str) -> None:
    parent = os.path.dirname(os.fspath(path))
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_artifact(path: str) -> Dict:
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("format") != BENCH_FORMAT:
        raise ValueError(
            f"not a bench artifact: format={payload.get('format')!r} "
            f"(expected {BENCH_FORMAT!r})"
        )
    return payload


def compare_artifacts(
    old: Dict, new: Dict, *, threshold: float = 0.15
) -> Tuple[List[Dict], List[Dict]]:
    """Diff two artifacts; returns ``(rows, regressions)``.

    Every metric present in both artifacts gets a row (name, old, new,
    relative change, gated or not).  A *regression* is a gated metric
    whose value moved in its bad direction by more than ``threshold``
    (relative).  Informational metrics never regress, whatever they do.
    """
    rows: List[Dict] = []
    regressions: List[Dict] = []
    old_metrics = old.get("metrics", {})
    new_metrics = new.get("metrics", {})
    for name in sorted(set(old_metrics) & set(new_metrics)):
        before = old_metrics[name]
        after = new_metrics[name]
        ov, nv = before["value"], after["value"]
        change = (nv - ov) / ov if ov else 0.0
        gate = bool(before.get("gate")) and bool(after.get("gate"))
        higher = bool(after.get("higher_is_better", True))
        # Positive regress = moved in the bad direction.
        regress = -change if higher else change
        row = {
            "name": name,
            "old": ov,
            "new": nv,
            "change": change,
            "gate": gate,
            "regression": gate and regress > threshold,
        }
        rows.append(row)
        if row["regression"]:
            regressions.append(row)
    return rows, regressions


def render_comparison(rows: List[Dict], regressions: List[Dict],
                      *, threshold: float) -> str:
    """Human-readable comparison table plus verdict line."""
    lines = [f"{'metric':<34} {'old':>12} {'new':>12} {'change':>8}"]
    for row in rows:
        flag = ""
        if row["regression"]:
            flag = "  REGRESSION"
        elif not row["gate"]:
            flag = "  (info)"
        lines.append(
            f"{row['name']:<34} {row['old']:>12.3f} {row['new']:>12.3f} "
            f"{row['change'] * 100:>7.1f}%{flag}"
        )
    if regressions:
        lines.append(
            f"{len(regressions)} gated metric(s) regressed past "
            f"{threshold * 100:g}%"
        )
    else:
        lines.append(
            f"no gated regressions (threshold {threshold * 100:g}%)"
        )
    return "\n".join(lines)
