"""repro — a reproduction of *Measuring Experimental Error in
Microprocessor Simulation* (Desikan, Burger & Keckler, ISCA 2001).

The package provides:

* :mod:`repro.core` — the sim-alpha family: a validated Alpha 21264
  pipeline model with the paper's ten feature flags, the sim-initial
  bug set, and the sim-stripped configuration;
* :mod:`repro.simulators` — the reference NativeMachine (DS-10L
  stand-in) with DCPI-style measurement, SimpleScalar's sim-outorder,
  and the 8-way in-house simulator of the Figure 2 study;
* :mod:`repro.workloads` — the 21-entry microbenchmark suite, SPEC2000
  and SPEC95 proxies, and the STREAM/lmbench calibration kernels;
* :mod:`repro.validation` — metrics, the run harness, and a driver per
  table/figure (Tables 1-5, Figure 2, the Section 4.2 DRAM
  calibration, plus extension studies);
* substrates: :mod:`repro.isa`, :mod:`repro.functional`,
  :mod:`repro.predictors`, :mod:`repro.memory`, :mod:`repro.dram`.

Quickstart::

    from repro import SimAlpha, NativeMachine, build_microbenchmark
    from repro.functional import run_program

    program = build_microbenchmark("C-R")
    trace = run_program(program)
    print(NativeMachine().run_trace(trace, "C-R"))
    print(SimAlpha().run_trace(trace, "C-R"))
"""

from repro.core import (
    BugSet,
    FeatureSet,
    MachineConfig,
    NativeEffects,
    RegFileConfig,
    SimAlpha,
    make_sim_initial,
    make_sim_minus_feature,
    make_sim_stripped,
    make_sim_with_bugs,
)
from repro.obs import (
    Instrumentation,
    MetricsRegistry,
    PipelineTracer,
    RunProvenance,
)
from repro.result import RunStats, SimResult
from repro.simulators import (
    DcpiProfiler,
    EightWaySim,
    NativeMachine,
    SimOutOrder,
)
from repro.validation import Harness
from repro.workloads import (
    build_macro,
    build_microbenchmark,
    build_spec2000,
    build_spec95,
)

__version__ = "1.0.0"

__all__ = [
    "BugSet",
    "FeatureSet",
    "MachineConfig",
    "NativeEffects",
    "RegFileConfig",
    "SimAlpha",
    "make_sim_initial",
    "make_sim_minus_feature",
    "make_sim_stripped",
    "make_sim_with_bugs",
    "RunStats",
    "SimResult",
    "Instrumentation",
    "MetricsRegistry",
    "PipelineTracer",
    "RunProvenance",
    "DcpiProfiler",
    "EightWaySim",
    "NativeMachine",
    "SimOutOrder",
    "Harness",
    "build_macro",
    "build_microbenchmark",
    "build_spec2000",
    "build_spec95",
    "__version__",
]
