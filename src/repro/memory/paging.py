"""Virtual-to-physical page mapping policies.

Paper Section 4: "Access latency in modern DRAMs ... is highly
dependent on the stream of physical addresses presented to them, which
in turn depends on the virtual to physical page mappings."  A simulator
that does not run the OS cannot replicate the native machine's
mappings, and mismatched mappings change both DRAM row behaviour and
L2 conflict misses.  This is the paper's *irreducible* macro-benchmark
error source, so we model the policies explicitly:

``sequential``
    A bump allocator: pages are assigned consecutive frames in first-
    touch order.  This is what a user-level simulator (sim-alpha,
    SimpleScalar) effectively does.

``colored``
    Page colouring: the OS picks a frame whose colour (the L2 index
    bits above the page offset) matches the virtual page, eliminating
    L2 conflicts between pages that would not conflict virtually.  The
    Gibson FLASH study the paper cites found OS page colouring can
    markedly reduce cache misses; our NativeMachine uses this policy.

``hashed``
    A deterministic pseudo-random frame per page — a long-running
    machine's fragmented free list.  Useful for sensitivity studies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["PagingConfig", "PageMapper"]

_GOLDEN = 0x9E3779B97F4A7C15
_MASK64 = (1 << 64) - 1


@dataclass
class PagingConfig:
    page_bytes: int = 8192  # Alpha page size
    policy: str = "sequential"  # sequential | colored | hashed
    #: Number of page colours (L2 sets spanned by the index bits above
    #: the page offset).  2MB direct-mapped L2 / 8KB pages = 256 colours.
    colors: int = 256
    #: Physical memory size bound (DS-10L: 256MB).
    memory_bytes: int = 256 * 1024 * 1024
    seed: int = 0x5EED

    def __post_init__(self) -> None:
        if self.policy not in ("sequential", "colored", "hashed"):
            raise ValueError(f"unknown paging policy {self.policy!r}")
        if self.page_bytes & (self.page_bytes - 1):
            raise ValueError("page size must be a power of two")


class PageMapper:
    """First-touch page table implementing the three policies."""

    def __init__(self, config: PagingConfig | None = None):
        self.config = config or PagingConfig()
        self._page_shift = self.config.page_bytes.bit_length() - 1
        self._frames: Dict[int, int] = {}
        self._num_frames = self.config.memory_bytes // self.config.page_bytes
        self._next_frame = 0
        # Per-colour bump cursors for the coloured policy.
        self._color_cursor: Dict[int, int] = {}

    @property
    def pages_mapped(self) -> int:
        return len(self._frames)

    def page_of(self, vaddr: int) -> int:
        return vaddr >> self._page_shift

    def translate(self, vaddr: int) -> int:
        """Physical address for ``vaddr``, allocating on first touch."""
        page = vaddr >> self._page_shift
        frame = self._frames.get(page)
        if frame is None:
            frame = self._allocate(page)
            self._frames[page] = frame
        offset = vaddr & (self.config.page_bytes - 1)
        return (frame << self._page_shift) | offset

    def _allocate(self, page: int) -> int:
        policy = self.config.policy
        if policy == "sequential":
            frame = self._next_frame
            self._next_frame = (self._next_frame + 1) % self._num_frames
            return frame
        if policy == "colored":
            color = page % self.config.colors
            cursor = self._color_cursor.get(color, 0)
            self._color_cursor[color] = cursor + 1
            # Frames of a given colour are spaced `colors` apart.
            frame = (color + cursor * self.config.colors) % self._num_frames
            return frame
        # hashed
        mixed = ((page + self.config.seed) * _GOLDEN) & _MASK64
        return (mixed >> 17) % self._num_frames
