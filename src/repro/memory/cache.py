"""Set-associative cache model.

Models tag state (hit/miss/way/eviction) with LRU replacement; the
*timing* of misses is composed by :class:`repro.memory.hierarchy.
MemoryHierarchy` from the MAF, buses, L2, and DRAM models.  Both 21264
L1 caches are 64KB, two-way set associative with 64-byte blocks; the
DS-10L's L2 is 2MB direct mapped with 64-byte blocks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

__all__ = ["CacheConfig", "CacheStats", "Cache", "AccessResult"]


@dataclass
class CacheConfig:
    """Geometry of one cache level."""

    size_bytes: int = 64 * 1024
    ways: int = 2
    block_bytes: int = 64
    name: str = "cache"

    def __post_init__(self) -> None:
        if self.block_bytes & (self.block_bytes - 1):
            raise ValueError("block size must be a power of two")
        if self.size_bytes % (self.block_bytes * self.ways):
            raise ValueError(
                f"{self.name}: size {self.size_bytes} not divisible by "
                f"ways*block ({self.ways}*{self.block_bytes})"
            )

    @property
    def sets(self) -> int:
        return self.size_bytes // (self.block_bytes * self.ways)


@dataclass
class CacheStats:
    accesses: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


@dataclass(frozen=True)
class AccessResult:
    """Outcome of a tag lookup (timing applied by the hierarchy)."""

    hit: bool
    way: int
    set_index: int
    evicted_block: Optional[int] = None
    evicted_dirty: bool = False


class Cache:
    """LRU set-associative tag array with dirty bits."""

    def __init__(self, config: CacheConfig):
        self.config = config
        self._sets: List[List[Tuple[int, bool]]] = [
            [] for _ in range(config.sets)
        ]
        self._block_shift = config.block_bytes.bit_length() - 1
        self._set_mask = config.sets - 1
        if config.sets & (config.sets - 1):
            raise ValueError(f"{config.name}: set count must be a power of two")
        self.stats = CacheStats()

    def block_of(self, address: int) -> int:
        """Block-aligned address containing ``address``."""
        return address >> self._block_shift << self._block_shift

    def set_of(self, address: int) -> int:
        return (address >> self._block_shift) & self._set_mask

    def probe(self, address: int) -> bool:
        """Tag check without any state change (no LRU update, no stats)."""
        block = self.block_of(address)
        return any(tag == block for tag, _ in self._sets[self.set_of(address)])

    def access(self, address: int, *, write: bool = False) -> AccessResult:
        """Look up ``address``; on miss, allocate (evicting LRU).

        Returns hit/way/set and any eviction so the caller can route the
        victim to a victim buffer or schedule a write-back.
        """
        block = self.block_of(address)
        set_index = self.set_of(address)
        entries = self._sets[set_index]
        self.stats.accesses += 1

        for i, (tag, dirty) in enumerate(entries):
            if tag == block:
                entries.append(entries.pop(i))  # LRU refresh
                if write and not dirty:
                    entries[-1] = (block, True)
                return AccessResult(True, len(entries) - 1, set_index)

        self.stats.misses += 1
        evicted_block: Optional[int] = None
        evicted_dirty = False
        if len(entries) >= self.config.ways:
            evicted_block, evicted_dirty = entries.pop(0)
            self.stats.evictions += 1
            if evicted_dirty:
                self.stats.writebacks += 1
        entries.append((block, write))
        return AccessResult(
            False, len(entries) - 1, set_index, evicted_block, evicted_dirty
        )

    def fill(self, address: int, *, dirty: bool = False) -> Optional[int]:
        """Install a block without counting an access (e.g. prefetch).

        Returns the evicted block address, if any.
        """
        block = self.block_of(address)
        entries = self._sets[self.set_of(address)]
        for i, (tag, was_dirty) in enumerate(entries):
            if tag == block:
                entries.append(entries.pop(i))
                if dirty and not was_dirty:
                    entries[-1] = (block, True)
                return None
        evicted: Optional[int] = None
        if len(entries) >= self.config.ways:
            evicted, _ = entries.pop(0)
            self.stats.evictions += 1
        entries.append((block, dirty))
        return evicted

    def invalidate(self, address: int) -> bool:
        """Drop the block containing ``address``; True if it was present."""
        block = self.block_of(address)
        entries = self._sets[self.set_of(address)]
        for i, (tag, _) in enumerate(entries):
            if tag == block:
                entries.pop(i)
                return True
        return False

    def outstanding_same_set(self, address_a: int, address_b: int) -> bool:
        """Whether two addresses index the same set but different blocks.

        The mbox-trap condition the paper describes: "concurrent
        references to two blocks that map to the same place in the
        cache" force a replay trap on the 21264.
        """
        return (
            self.set_of(address_a) == self.set_of(address_b)
            and self.block_of(address_a) != self.block_of(address_b)
        )
