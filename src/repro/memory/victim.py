"""Eight-entry victim buffer for the L1 data cache.

Blocks evicted from the D-cache park here; a miss that hits in the
victim buffer is serviced at a short latency instead of going to the
L2, and the block is swapped back into the cache.  This is the paper's
``vbuf`` feature (Table 4 measures its contribution at ~0.4%).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

__all__ = ["VictimBufferConfig", "VictimBuffer", "VictimBufferStats"]


@dataclass
class VictimBufferConfig:
    entries: int = 8
    #: Extra load-to-use cycles for a victim-buffer hit relative to an
    #: L1 hit (the swap costs a couple of cycles but avoids the L2 trip).
    hit_penalty: int = 2


@dataclass
class VictimBufferStats:
    probes: int = 0
    hits: int = 0
    inserts: int = 0


class VictimBuffer:
    """FIFO buffer of recently evicted (block address, dirty) pairs."""

    def __init__(self, config: VictimBufferConfig | None = None):
        self.config = config or VictimBufferConfig()
        self._entries: List[List] = []  # [block, dirty], FIFO order
        self.stats = VictimBufferStats()

    def __len__(self) -> int:
        return len(self._entries)

    def insert(self, block: int, dirty: bool) -> Optional[tuple]:
        """Park an evicted block; returns a displaced (block, dirty) if
        the buffer overflowed (that victim must be written back)."""
        self.stats.inserts += 1
        self._entries.append([block, dirty])
        if len(self._entries) > self.config.entries:
            old_block, old_dirty = self._entries.pop(0)
            return (old_block, old_dirty)
        return None

    def probe_and_extract(self, block: int) -> Optional[bool]:
        """If ``block`` is buffered, remove and return its dirty bit.

        Extraction models the swap back into the D-cache.
        """
        self.stats.probes += 1
        for i, (entry_block, dirty) in enumerate(self._entries):
            if entry_block == block:
                self.stats.hits += 1
                self._entries.pop(i)
                return dirty
        return None
