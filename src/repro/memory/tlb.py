"""TLBs and the page-table walk.

The 21264 handles TLB misses in PAL code (software), stalling the
program; sim-alpha instead "simulates a hardware walk of the five
levels of page tables and does not stall the pipeline" (paper Section
4.1).  Both behaviours are provided: the walk cost is computed from
five dependent page-table loads, and the ``stalls_pipeline`` flag says
whether the pipeline model should serialise around it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

__all__ = ["TlbConfig", "Tlb", "TlbStats", "PageWalkModel"]


@dataclass
class TlbConfig:
    entries: int = 128
    page_bytes: int = 8192
    name: str = "tlb"


@dataclass
class TlbStats:
    accesses: int = 0
    misses: int = 0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class Tlb:
    """Fully associative LRU TLB over virtual page numbers."""

    def __init__(self, config: TlbConfig | None = None):
        self.config = config or TlbConfig()
        self._page_shift = self.config.page_bytes.bit_length() - 1
        self._entries: List[int] = []  # virtual page numbers, LRU first
        self.stats = TlbStats()

    def access(self, vaddr: int) -> bool:
        """Translate; returns True on a TLB hit (allocates on miss)."""
        page = vaddr >> self._page_shift
        self.stats.accesses += 1
        entries = self._entries
        try:
            entries.remove(page)
        except ValueError:
            self.stats.misses += 1
            if len(entries) >= self.config.entries:
                entries.pop(0)
            entries.append(page)
            return False
        entries.append(page)
        return True


@dataclass
class PageWalkModel:
    """Cost model for resolving a TLB miss.

    ``hardware_walk``: five dependent page-table loads, each normally
    hitting the L2 (the table working set is small); the pipeline keeps
    executing around it.  ``pal_code``: the 21264's software handler —
    a trap into PAL code that stalls the whole program for the handler
    length plus the same walk loads.
    """

    levels: int = 5
    #: Per-level load latency: upper-level PTEs hit the L1, leaf
    #: entries the L2, averaging well under the L2 load-to-use.
    level_latency: int = 8
    #: PALcode trap entry/exit overhead on the native machine.
    pal_overhead: int = 15
    stalls_pipeline: bool = False

    def walk_latency(self) -> int:
        """Cycles to resolve one TLB miss."""
        latency = self.levels * self.level_latency
        if self.stalls_pipeline:
            latency += self.pal_overhead
        return latency
