"""On-chip and off-chip memory system substrate."""

from repro.memory.bus import Bus, BusConfig, BusStats
from repro.memory.cache import AccessResult, Cache, CacheConfig, CacheStats
from repro.memory.hierarchy import (
    IFetchResult,
    LoadResult,
    MemoryHierarchy,
    MemoryHierarchyConfig,
)
from repro.memory.mshr import MafConfig, MafOutcome, MafStats, MissAddressFile
from repro.memory.paging import PageMapper, PagingConfig
from repro.memory.tlb import PageWalkModel, Tlb, TlbConfig, TlbStats
from repro.memory.victim import (
    VictimBuffer,
    VictimBufferConfig,
    VictimBufferStats,
)

__all__ = [
    "Bus",
    "BusConfig",
    "BusStats",
    "AccessResult",
    "Cache",
    "CacheConfig",
    "CacheStats",
    "IFetchResult",
    "LoadResult",
    "MemoryHierarchy",
    "MemoryHierarchyConfig",
    "MafConfig",
    "MafOutcome",
    "MafStats",
    "MissAddressFile",
    "PageMapper",
    "PagingConfig",
    "PageWalkModel",
    "Tlb",
    "TlbConfig",
    "TlbStats",
    "VictimBuffer",
    "VictimBufferConfig",
    "VictimBufferStats",
]
