"""Bus occupancy models.

The DS-10L has two dedicated off-chip connections: a 128-bit channel to
the backside L2, and a 64-bit memory bus (which on the real board runs
through the C-chip/D-chip controller to a 128-bit, 75MHz array bus —
the paper lists that split bus among its un-modelled components; our
NativeMachine adds it, sim-alpha uses the single-bus simplification).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["BusConfig", "Bus", "BusStats"]


@dataclass
class BusConfig:
    width_bytes: int = 16
    #: CPU cycles per bus cycle (the 186MHz L2 bus at 466MHz core is
    #: ~2.5; the memory bus is slower).
    cpu_cycles_per_bus_cycle: float = 2.5
    name: str = "bus"


@dataclass
class BusStats:
    transfers: int = 0
    busy_cycles: float = 0.0
    contention_cycles: float = 0.0


class Bus:
    """A single-master-at-a-time bus tracked by next-free time."""

    def __init__(self, config: BusConfig | None = None):
        self.config = config or BusConfig()
        self._next_free = 0.0
        self.stats = BusStats()

    def occupancy(self, payload_bytes: int) -> float:
        """CPU cycles the bus is held for a transfer of ``payload_bytes``."""
        cfg = self.config
        beats = max(1, -(-payload_bytes // cfg.width_bytes))  # ceil div
        return beats * cfg.cpu_cycles_per_bus_cycle

    def request(self, time: float, payload_bytes: int) -> float:
        """Acquire the bus at or after ``time``; returns transfer-complete
        time and accounts contention."""
        start = max(time, self._next_free)
        hold = self.occupancy(payload_bytes)
        self.stats.transfers += 1
        self.stats.busy_cycles += hold
        self.stats.contention_cycles += start - time
        self._next_free = start + hold
        return start + hold

    def reset(self) -> None:
        self._next_free = 0.0
        self.stats = BusStats()
