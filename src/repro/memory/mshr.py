"""Miss address file (MAF) — miss status holding registers with
combining targets.

The 21264 tracks outstanding off-chip misses in an eight-entry MAF
(Kroft-style MSHRs).  A second miss to a block already outstanding
*combines* with the existing entry — it completes when the original
fill returns, without consuming a new entry or issuing a new request.
A miss arriving when all entries are busy must stall (or, with mbox
traps enabled, flush).

The real chip shares one 8-entry MAF among the three caches; sim-alpha
(per paper Section 4.1) gives each cache its own 8-entry MAF — the
hierarchy composes either arrangement from this class.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

__all__ = ["MafConfig", "MissAddressFile", "MafStats", "MafOutcome"]


@dataclass
class MafConfig:
    entries: int = 8


@dataclass
class MafStats:
    allocations: int = 0
    combines: int = 0
    full_stalls: int = 0


@dataclass(frozen=True)
class MafOutcome:
    """Result of presenting a miss to the MAF.

    ``start_time`` is when the miss request may actually issue (equal to
    the request time unless the MAF was full); ``combined_fill`` is the
    completion time of an in-flight request for the same block, or None
    when a fresh entry was allocated; ``stalled`` reports a full-MAF
    stall (the mbox-trap trigger when traps are modelled).
    """

    start_time: float
    combined_fill: float | None
    stalled: bool


class MissAddressFile:
    """Time-based MAF: entries are (block, fill_time) pairs."""

    def __init__(self, config: MafConfig | None = None):
        self.config = config or MafConfig()
        self._inflight: Dict[int, float] = {}
        self._starts: Dict[int, float] = {}
        self.stats = MafStats()
        #: Highest concurrent occupancy ever observed at an allocation
        #: instant.  In a correct MAF this never exceeds
        #: ``config.entries`` — present_miss stalls first.  The
        #: integrity sanitizers audit this bound after every run.
        self.peak_occupancy: int = 0

    def _expire(self, now: float) -> None:
        if len(self._inflight) > self.config.entries * 4:
            # Opportunistic cleanup; correctness never depends on it —
            # but the two maps must stay in sync, and pruning must
            # never drive tracked occupancy negative.
            self._inflight = {
                b: t for b, t in self._inflight.items() if t > now
            }
            self._starts = {
                b: s for b, s in self._starts.items() if b in self._inflight
            }
            assert len(self._inflight) >= len(self._starts) >= 0, (
                f"MAF bookkeeping corrupt after expiry: "
                f"{len(self._inflight)} fills vs {len(self._starts)} starts"
            )

    def _busy_entries(self, now: float) -> List[Tuple[int, float]]:
        return [(b, t) for b, t in self._inflight.items() if t > now]

    def outstanding(self, now: float) -> int:
        """Number of entries still tracking in-flight fills at ``now``."""
        busy = len(self._busy_entries(now))
        assert busy >= 0, f"negative MAF occupancy {busy} at t={now!r}"
        return busy

    def occupancy_at(self, when: float) -> int:
        """Entries whose request was *active* at ``when`` — issued
        (``start <= when``) but not yet filled (``when < fill``).

        Unlike :meth:`outstanding` (which counts every tracked fill
        later than ``now``, including backdated full-stall allocations
        whose request has not issued yet), this is the physically
        meaningful occupancy: it can never legitimately exceed
        ``config.entries``.  The integrity sanitizers probe it; the
        PR 2 ``present_miss`` oversubscription bug is exactly a
        violation of this bound.  Fills recorded without a start time
        are not counted.
        """
        return sum(
            1
            for block, fill in self._inflight.items()
            if when < fill and self._starts.get(block, fill) <= when
        )

    def present_miss(self, now: float, block: int) -> MafOutcome:
        """Present a miss for ``block`` at time ``now``.

        The caller must follow up with :meth:`record_fill` once it has
        computed the fill completion time for a fresh allocation.
        """
        self._expire(now)
        fill = self._inflight.get(block)
        if fill is not None and fill > now:
            self.stats.combines += 1
            return MafOutcome(now, fill, False)

        busy = self._busy_entries(now)
        if len(busy) >= self.config.entries:
            # Stall until occupancy actually drops below capacity.  A
            # stalled predecessor allocates with a backdated start, so
            # the file can be tracking more than `entries` fills; the
            # earliest fill alone then frees a slot that predecessor
            # already claimed.
            self.stats.full_stalls += 1
            fills = sorted(t for _, t in busy)
            start = fills[len(busy) - self.config.entries]
            return MafOutcome(start, None, True)
        return MafOutcome(now, None, False)

    def record_fill(
        self, block: int, fill_time: float, start: float | None = None
    ) -> None:
        """Register that the fill for ``block`` completes at
        ``fill_time``; ``start`` is when its request issued (the
        ``MafOutcome.start_time`` of the allocating miss), enabling
        time-aware occupancy accounting via :meth:`occupancy_at`.
        """
        if not math.isfinite(fill_time):
            raise ValueError(
                f"non-finite MAF fill time {fill_time!r} for block "
                f"{block:#x} — a memory latency upstream is corrupt"
            )
        if start is not None:
            if not math.isfinite(start):
                raise ValueError(
                    f"non-finite MAF start time {start!r} for block "
                    f"{block:#x}"
                )
            if fill_time < start:
                raise ValueError(
                    f"MAF fill at t={fill_time:g} precedes its request "
                    f"at t={start:g} for block {block:#x}"
                )
            self._starts[block] = start
        else:
            self._starts.pop(block, None)
        self.stats.allocations += 1
        self._inflight[block] = fill_time
        if start is not None:
            # Exact even after opportunistic pruning: pruned fills
            # precede `now <= start`, so none could be active here.
            occupancy = self.occupancy_at(start)
            if occupancy > self.peak_occupancy:
                self.peak_occupancy = occupancy

    def inflight_blocks(self, now: float) -> List[int]:
        """Blocks with fills still outstanding at ``now``."""
        return [b for b, t in self._inflight.items() if t > now]

    def fill_time(self, block: int, now: float) -> float | None:
        """Outstanding fill time for ``block``, or None if not in
        flight.  Used to resolve tag-hit-but-data-in-flight races."""
        fill = self._inflight.get(block)
        if fill is not None and fill > now:
            return fill
        return None


#: Declarative profiler hooks (see :mod:`repro.obs.profiler`).
PROFILE_COMPONENTS = {
    "MissAddressFile": {
        "present_miss": "mem/maf",
        "record_fill": "mem/maf",
    },
}
