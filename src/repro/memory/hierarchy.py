"""The composed memory system: L1 I/D, victim buffer, MAFs, L2, buses,
TLBs, page mapping, and SDRAM.

All methods are *time based*: they take the CPU cycle at which a
request presents and return the cycle its data is ready, updating
internal resource next-free times (buses, DRAM banks, cache ports).
This style serves the dependence-driven pipeline models, which replay
an in-order trace and need completion times rather than a lock-step
cycle loop.

The configuration deliberately exposes both what sim-alpha models and
what it does *not* (paper Section 4.1): a shared vs. per-cache MAF,
store/port contention, PAL-code TLB stalls, a memory-controller row
cache (standing in for the C-chip/D-chip page-hit optimizations), and
the page-mapping policy.  The NativeMachine turns the "unmodelled"
effects on; sim-alpha leaves them off.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.dram.config import DramConfig
from repro.dram.sdram import Sdram
from repro.memory.bus import Bus, BusConfig
from repro.memory.cache import Cache, CacheConfig
from repro.memory.mshr import MafConfig, MissAddressFile
from repro.memory.paging import PageMapper, PagingConfig
from repro.memory.tlb import PageWalkModel, Tlb, TlbConfig
from repro.memory.victim import VictimBuffer, VictimBufferConfig

__all__ = [
    "MemoryHierarchyConfig",
    "MemoryHierarchy",
    "LoadResult",
    "IFetchResult",
]


@dataclass
class MemoryHierarchyConfig:
    """Geometry and behaviour of the whole memory system.

    Defaults describe the DS-10L as configured in the paper: 64KB 2-way
    64B-block L1s, 3-cycle load-to-use D-cache hits, a 2MB direct-mapped
    L2 with 13-cycle load-to-use, an 8-entry victim buffer, 8-entry
    MAFs, and DRAM at ~25% core speed.
    """

    l1i: CacheConfig = field(
        default_factory=lambda: CacheConfig(64 * 1024, 2, 64, name="l1i")
    )
    l1d: CacheConfig = field(
        default_factory=lambda: CacheConfig(64 * 1024, 2, 64, name="l1d")
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(2 * 1024 * 1024, 1, 64, name="l2")
    )
    #: Load-to-use latency for an L1 D-cache hit (integer loads).
    l1d_load_to_use: int = 3
    #: FP loads take one extra cycle (Table 1: 4 vs 3).
    fp_load_extra: int = 1
    #: Load-to-use latency for an L2 hit.
    l2_load_to_use: int = 13
    #: Extra cycles erroneously charged on L2 hits (sim-initial's
    #: register-read modelling bug; 0 when fixed).
    l2_extra_cycles: int = 0

    victim_buffer_enabled: bool = True
    victim_buffer: VictimBufferConfig = field(default_factory=VictimBufferConfig)

    maf: MafConfig = field(default_factory=MafConfig)
    #: True models the real chip (one 8-entry MAF shared by all caches);
    #: False models sim-alpha (a private 8-entry MAF per cache).
    shared_maf: bool = False

    itlb: TlbConfig = field(default_factory=lambda: TlbConfig(128, name="itlb"))
    dtlb: TlbConfig = field(default_factory=lambda: TlbConfig(128, name="dtlb"))
    walk: PageWalkModel = field(default_factory=PageWalkModel)

    paging: PagingConfig = field(default_factory=PagingConfig)
    dram: DramConfig = field(default_factory=DramConfig)

    l2_bus: BusConfig = field(
        default_factory=lambda: BusConfig(16, 2.5, name="l2_bus")
    )
    mem_bus: BusConfig = field(
        default_factory=lambda: BusConfig(8, 4.0, name="mem_bus")
    )

    #: I-cache hardware prefetch (paper feature ``pref``): up to four
    #: sequential lines fetched on an I-miss.
    icache_prefetch: bool = True
    prefetch_lines: int = 4

    #: Native-machine (DS-10L) effects that sim-alpha does not model.
    store_port_contention: bool = False
    #: Memory-controller open-row tracking beyond the DRAM banks' own
    #: open pages (stand-in for C-chip/D-chip page-hit optimization).
    controller_row_cache: int = 0
    #: Whether dirty write-backs occupy the buses (sim-alpha assumes
    #: "writes can complete unimpeded").
    writeback_traffic: bool = False
    #: Native machines take replay traps on concurrent off-chip misses
    #: that collide in an L2 set — a trap source sim-alpha lacks (part
    #: of the paper's `art` anomaly, where the DS-10L incurred 52M
    #: replay traps to the simulator's 43M).
    l2_set_conflict_traps: bool = False


@dataclass(frozen=True)
class LoadResult:
    """Timing and event flags for one data access."""

    ready: float
    l1_hit: bool
    l2_hit: bool
    victim_hit: bool
    tlb_miss: bool
    tlb_stall_cycles: int
    maf_stall: bool
    same_set_conflict: bool
    l2_set_conflict: bool = False


@dataclass(frozen=True)
class IFetchResult:
    ready: float
    l1_hit: bool
    way: int


class MemoryHierarchy:
    """One instance per simulation run (all state is timing-relevant)."""

    def __init__(self, config: MemoryHierarchyConfig | None = None):
        self.config = config or MemoryHierarchyConfig()
        cfg = self.config
        self.l1i = Cache(cfg.l1i)
        self.l1d = Cache(cfg.l1d)
        self.l2 = Cache(cfg.l2)
        self.victim = (
            VictimBuffer(cfg.victim_buffer) if cfg.victim_buffer_enabled else None
        )
        if cfg.shared_maf:
            shared = MissAddressFile(cfg.maf)
            self.maf_i = self.maf_d = self.maf_l2 = shared
        else:
            self.maf_i = MissAddressFile(cfg.maf)
            self.maf_d = MissAddressFile(cfg.maf)
            self.maf_l2 = MissAddressFile(cfg.maf)
        self.itlb = Tlb(cfg.itlb)
        self.dtlb = Tlb(cfg.dtlb)
        self.mapper = PageMapper(cfg.paging)
        self.dram = Sdram(cfg.dram)
        self.l2_bus = Bus(cfg.l2_bus)
        self.mem_bus = Bus(cfg.mem_bus)
        # Two D-cache ports; stores contend only when modelled.
        self._dport_free = [0.0, 0.0]
        # Controller row cache: recent (bank-row key) list, MRU last.
        self._row_cache: List[int] = []
        self._row_shift = cfg.dram.row_bytes.bit_length() - 1
        # I-prefetch buffer: block -> fill-ready time.  Prefetched
        # lines park here and install into the I-cache only on demand,
        # so prefetching never pollutes the cache.
        self._prefetch_buffer: dict = {}
        # Cached metrics instruments (attach_metrics); None keeps the
        # access paths at one identity check per request.
        self._m_ifetches = None
        self._m_ifetch_hits = None
        self._m_loads = None
        self._m_load_hits = None
        self._m_stores = None
        self._m_store_hits = None

    def attach_metrics(self, registry) -> None:
        """Count hierarchy traffic into a :class:`MetricsRegistry`.

        Instrument handles are cached here so the per-access cost is a
        bound-method call on a counter, nothing more.
        """
        self._m_ifetches = registry.counter("memory.ifetches")
        self._m_ifetch_hits = registry.counter("memory.ifetch_l1_hits")
        self._m_loads = registry.counter("memory.loads")
        self._m_load_hits = registry.counter("memory.load_l1_hits")
        self._m_stores = registry.counter("memory.stores")
        self._m_store_hits = registry.counter("memory.store_l1_hits")

    # ------------------------------------------------------------------
    # Address translation
    # ------------------------------------------------------------------

    def _translate(self, time: float, vaddr: int, tlb: Tlb) -> Tuple[int, bool, int]:
        """Returns (paddr, tlb_missed, stall_cycles)."""
        hit = tlb.access(vaddr)
        paddr = self.mapper.translate(vaddr)
        if hit:
            return paddr, False, 0
        walk = self.config.walk
        stall = walk.walk_latency() if walk.stalls_pipeline else 0
        return paddr, True, stall

    # ------------------------------------------------------------------
    # Off-chip path
    # ------------------------------------------------------------------

    def _dram_access(self, time: float, paddr: int) -> float:
        """Memory-bus arbitration + SDRAM access + block burst."""
        cfg = self.config
        bus_done = self.mem_bus.request(time, 8)  # command/address phase
        if cfg.controller_row_cache:
            key = paddr >> self._row_shift
            if key in self._row_cache:
                self._row_cache.remove(key)
                self._row_cache.append(key)
                # Controller satisfied the access from an already-open
                # page: CAS-only timing.
                scale = cfg.dram.cpu_cycles_per_dram_cycle
                ready = bus_done + (
                    cfg.dram.cas_cycles + cfg.dram.controller_cycles
                ) * scale
            else:
                self._row_cache.append(key)
                if len(self._row_cache) > cfg.controller_row_cache:
                    self._row_cache.pop(0)
                ready = self.dram.access(bus_done, paddr)
        else:
            ready = self.dram.access(bus_done, paddr)
        ready += self.dram.block_transfer_cycles()
        return ready

    def _l2_access(
        self, time: float, paddr: int, *, write: bool = False
    ) -> Tuple[float, bool, bool]:
        """Access the L2 at ``time``.

        Returns (fill-ready time, l2_hit, l2_set_conflict) where the
        conflict flag reports a concurrent outstanding miss to a
        different block in the same L2 set (a native-machine replay-trap
        trigger when ``l2_set_conflict_traps`` is modelled).
        """
        cfg = self.config
        bus_done = self.l2_bus.request(time, 64)
        queue_delay = bus_done - time - self.l2_bus.occupancy(64)
        result = self.l2.access(paddr, write=write)
        if result.hit:
            ready = time + cfg.l2_load_to_use + cfg.l2_extra_cycles + queue_delay
            return ready, True, False

        # L2 miss: MAF for off-chip, then DRAM.
        block = self.l2.block_of(paddr)
        conflict = False
        if cfg.l2_set_conflict_traps:
            conflict = any(
                self.l2.set_of(other) == result.set_index and other != block
                for other in self.maf_l2.inflight_blocks(time)
            )
        outcome = self.maf_l2.present_miss(time, block)
        if outcome.combined_fill is not None:
            return outcome.combined_fill, False, conflict
        ready = self._dram_access(outcome.start_time, paddr)
        self.maf_l2.record_fill(block, ready, start=outcome.start_time)
        if result.evicted_dirty and cfg.writeback_traffic:
            self.mem_bus.request(ready, cfg.l2.block_bytes)
        return ready, False, conflict

    # ------------------------------------------------------------------
    # Instruction fetch
    # ------------------------------------------------------------------

    def ifetch(self, time: float, vaddr: int) -> IFetchResult:
        """Fetch the octaword at ``vaddr``; returns readiness and way.

        The 21264's I-cache is virtually indexed and tagged, so the tag
        lookup uses the virtual address; translation matters only on
        the refill path to the (physically indexed) L2.
        """
        cfg = self.config
        result = self.l1i.access(vaddr)
        if self._m_ifetches is not None:
            self._m_ifetches.inc()
            if result.hit:
                self._m_ifetch_hits.inc()
        if result.hit:
            pending = self.maf_i.fill_time(self.l1i.block_of(vaddr), time)
            ready = time + 1
            if pending is not None and pending > ready:
                ready = pending
            return IFetchResult(ready, True, result.way)

        block = self.l1i.block_of(vaddr)
        buffered = self._prefetch_buffer.pop(block, None)
        if buffered is not None:
            # Demand install from the prefetch buffer.
            self.l1i.fill(block)
            ready = max(time + 2, buffered)
            return IFetchResult(ready, False, result.way)

        paddr, _, stall = self._translate(time, vaddr, self.itlb)
        time += stall
        outcome = self.maf_i.present_miss(time, block)
        if outcome.combined_fill is not None:
            return IFetchResult(outcome.combined_fill, False, result.way)
        ready, _, _ = self._l2_access(outcome.start_time, paddr)
        self.maf_i.record_fill(block, ready, start=outcome.start_time)
        if cfg.icache_prefetch:
            # Fetch up to four sequential lines on an I-miss into the
            # prefetch buffer; they trail the demand line.
            block_bytes = cfg.l1i.block_bytes
            for i in range(1, cfg.prefetch_lines + 1):
                next_vaddr = vaddr + i * block_bytes
                next_block = self.l1i.block_of(next_vaddr)
                if (not self.l1i.probe(next_vaddr)
                        and next_block not in self._prefetch_buffer):
                    prefetch_ready, _, _ = self._l2_access(
                        outcome.start_time + i, paddr + i * block_bytes
                    )
                    self._prefetch_buffer[next_block] = prefetch_ready
            while len(self._prefetch_buffer) > 4 * cfg.prefetch_lines:
                self._prefetch_buffer.pop(
                    next(iter(self._prefetch_buffer))
                )
        return IFetchResult(ready, False, result.way)

    # ------------------------------------------------------------------
    # Data side
    # ------------------------------------------------------------------

    def _acquire_dport(self, time: float) -> float:
        """Grab one of the two D-cache ports at or after ``time``."""
        index = 0 if self._dport_free[0] <= self._dport_free[1] else 1
        start = max(time, self._dport_free[index])
        self._dport_free[index] = start + 1
        return start

    def load(self, time: float, vaddr: int, *, fp: bool = False) -> LoadResult:
        """A demand load presented at ``time``.

        The L1 D-cache is virtually indexed (the 21264 overlaps the TLB
        lookup with the tag access), so L1 behaviour is independent of
        the page-mapping policy; the physical address matters from the
        L2 down.
        """
        cfg = self.config
        paddr, tlb_miss, stall = self._translate(time, vaddr, self.dtlb)
        stall_cycles = stall
        if stall and cfg.walk.stalls_pipeline:
            time += stall
        elif tlb_miss:
            # A hardware walk does not stall the pipeline (independent
            # instructions keep flowing), but this load's translation
            # is still not ready until the walk completes.
            time += cfg.walk.walk_latency()

        time = self._acquire_dport(time)
        hit_latency = cfg.l1d_load_to_use + (cfg.fp_load_extra if fp else 0)
        result = self.l1d.access(vaddr)
        if self._m_loads is not None:
            self._m_loads.inc()
            if result.hit:
                self._m_load_hits.inc()
        if result.hit:
            # A tag hit on a block whose fill is still in flight waits
            # for the fill (the tags allocate at miss time).
            pending = self.maf_d.fill_time(self.l1d.block_of(vaddr), time)
            ready = time + hit_latency
            if pending is not None and pending + hit_latency > ready:
                ready = pending + hit_latency
            return LoadResult(
                ready, True, False, False,
                tlb_miss, stall_cycles, False, False,
            )

        block = self.l1d.block_of(vaddr)
        # Same-set conflict with an outstanding miss: mbox trap trigger.
        same_set = any(
            self.l1d.set_of(other) == result.set_index and other != block
            for other in self.maf_d.inflight_blocks(time)
        )

        if result.evicted_block is not None and self.victim is not None:
            displaced = self.victim.insert(
                result.evicted_block, result.evicted_dirty
            )
            if displaced and displaced[1] and cfg.writeback_traffic:
                self.l2_bus.request(time, cfg.l1d.block_bytes)

        if self.victim is not None:
            dirty = self.victim.probe_and_extract(block)
            if dirty is not None:
                ready = time + hit_latency + self.victim.config.hit_penalty
                return LoadResult(
                    ready, False, False, True,
                    tlb_miss, stall_cycles, False, same_set,
                )

        outcome = self.maf_d.present_miss(time, block)
        if outcome.combined_fill is not None:
            ready = outcome.combined_fill + (cfg.fp_load_extra if fp else 0)
            return LoadResult(
                ready, False, False, False,
                tlb_miss, stall_cycles, False, same_set,
            )
        ready, l2_hit, l2_conflict = self._l2_access(outcome.start_time, paddr)
        ready += cfg.fp_load_extra if fp else 0
        self.maf_d.record_fill(block, ready, start=outcome.start_time)
        return LoadResult(
            ready, False, l2_hit, False,
            tlb_miss, stall_cycles, outcome.stalled, same_set, l2_conflict,
        )

    def store(self, time: float, vaddr: int) -> LoadResult:
        """A store leaving the store queue at ``time``.

        Stores are write-allocate/write-back.  Unless store/port
        contention is modelled (native machine), they are assumed to
        "complete unimpeded" as the paper says of sim-alpha.
        """
        cfg = self.config
        paddr, tlb_miss, stall = self._translate(time, vaddr, self.dtlb)
        stall_cycles = stall
        if stall and cfg.walk.stalls_pipeline:
            time += stall

        if cfg.store_port_contention:
            time = self._acquire_dport(time)

        result = self.l1d.access(vaddr, write=True)
        if self._m_stores is not None:
            self._m_stores.inc()
            if result.hit:
                self._m_store_hits.inc()
        if result.hit:
            return LoadResult(
                time + 1, True, False, False,
                tlb_miss, stall_cycles, False, False,
            )

        block = self.l1d.block_of(vaddr)
        if result.evicted_block is not None and self.victim is not None:
            self.victim.insert(result.evicted_block, result.evicted_dirty)
        if self.victim is not None:
            dirty = self.victim.probe_and_extract(block)
            if dirty is not None:
                return LoadResult(
                    time + 2, False, False, True,
                    tlb_miss, stall_cycles, False, False,
                )
        outcome = self.maf_d.present_miss(time, block)
        if outcome.combined_fill is not None:
            return LoadResult(
                outcome.combined_fill, False, False, False,
                tlb_miss, stall_cycles, False, False,
            )
        ready, l2_hit, l2_conflict = self._l2_access(
            outcome.start_time, paddr, write=True
        )
        self.maf_d.record_fill(block, ready, start=outcome.start_time)
        return LoadResult(
            ready, False, l2_hit, False,
            tlb_miss, stall_cycles, outcome.stalled, False, l2_conflict,
        )


#: Declarative profiler hooks (see :mod:`repro.obs.profiler`): method
#: name -> "parent-phase/component".  Consumed by
#: ``HotPathProfiler.instrument`` when ``Instrumentation(profile=True)``
#: is active; costs nothing otherwise (no inline timing code here).
PROFILE_COMPONENTS = {
    "MemoryHierarchy": {
        "ifetch": "fetch/icache",
        "load": "mem/dcache",
        "store": "mem/dcache-store",
        "_translate": "mem/tlb",
        "_l2_access": "mem/l2",
    },
}
