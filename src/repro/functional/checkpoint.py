"""Architectural checkpoints.

sim-alpha inherited SimpleScalar's "checkpoint functionality"; this is
ours: snapshot a :class:`~repro.functional.machine.ArchState` (register
files + memory) so long workloads can be functionally fast-forwarded
once and timing runs started from the interesting region — the
standard sampling workflow for slow detailed simulators.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.functional.machine import ArchState
from repro.functional.memory_image import SparseMemory

__all__ = ["snapshot", "restore", "save_checkpoint", "load_checkpoint"]

PathLike = Union[str, Path]

_FORMAT = "repro-checkpoint-v1"


def snapshot(state: ArchState) -> dict:
    """A JSON-serialisable snapshot of architectural state."""
    return {
        "format": _FORMAT,
        "iregs": dict(state.iregs),
        "fregs": dict(state.fregs),
        "memory": {
            str(address): value for address, value in state.memory.words()
        },
    }


def restore(data: dict) -> ArchState:
    """Rebuild an :class:`ArchState` from :func:`snapshot` output."""
    if data.get("format") != _FORMAT:
        raise ValueError(
            f"not a checkpoint (format={data.get('format')!r})"
        )
    memory = SparseMemory()
    for address, value in data["memory"].items():
        memory.store_word(int(address), value)
    state = ArchState(memory=memory)
    state.iregs.update(data["iregs"])
    state.fregs.update(data["fregs"])
    return state


def save_checkpoint(state: ArchState, path: PathLike) -> None:
    """Write a checkpoint file."""
    Path(path).write_text(json.dumps(snapshot(state)))


def load_checkpoint(path: PathLike) -> ArchState:
    """Read a checkpoint file."""
    return restore(json.loads(Path(path).read_text()))
