"""Sparse byte-addressable data memory for the functional machine."""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

__all__ = ["SparseMemory"]

_WORD = 8
_MASK64 = (1 << 64) - 1


class SparseMemory:
    """A sparse 64-bit-word memory with byte access helpers.

    Storage is a dict keyed by 8-byte-aligned addresses holding unsigned
    64-bit little-endian words.  Unwritten memory reads as zero, which
    matches the zero-initialised heap our program builders assume.
    """

    def __init__(self, image: Dict[int, int] | None = None):
        self._words: Dict[int, int] = {}
        if image:
            for address, value in image.items():
                self.store_word(address, value)

    @staticmethod
    def _split(address: int) -> Tuple[int, int]:
        return address & ~(_WORD - 1), address & (_WORD - 1)

    def load_word(self, address: int) -> int:
        """Load the aligned 64-bit word containing ``address``."""
        base, _ = self._split(address)
        return self._words.get(base, 0)

    def store_word(self, address: int, value: int) -> None:
        """Store a 64-bit word at the aligned address containing
        ``address``."""
        base, _ = self._split(address)
        self._words[base] = value & _MASK64

    def load_byte(self, address: int) -> int:
        base, offset = self._split(address)
        return (self._words.get(base, 0) >> (8 * offset)) & 0xFF

    def store_byte(self, address: int, value: int) -> None:
        base, offset = self._split(address)
        word = self._words.get(base, 0)
        shift = 8 * offset
        word = (word & ~(0xFF << shift)) | ((value & 0xFF) << shift)
        self._words[base] = word

    def words(self) -> Iterable[Tuple[int, int]]:
        """All (aligned address, word) pairs currently backed."""
        return self._words.items()

    def __len__(self) -> int:
        return len(self._words)
