"""Architectural (functional) execution of programs.

The :class:`FunctionalMachine` interprets a :class:`~repro.isa.program.
Program` at the architectural level — register and memory semantics
only, no timing — and produces the dynamic trace consumed by every
timing simulator.  Running the functional model once and replaying the
trace through many pipeline configurations is what makes the paper's
sweep experiments (Tables 4 and 5 run sim-alpha under 13+ different
configurations) tractable.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.functional.memory_image import SparseMemory
from repro.functional.trace import DynInstr
from repro.isa.instructions import InstrClass, Instruction, Opcode
from repro.isa.program import Program, STACK_BASE
from repro.isa.registers import RA, SP, ZERO_FP, ZERO_INT

__all__ = ["FunctionalMachine", "ExecutionLimitExceeded", "run_program"]

_MASK64 = (1 << 64) - 1
_SIGN64 = 1 << 63


def _to_signed(value: int) -> int:
    value &= _MASK64
    return value - (1 << 64) if value & _SIGN64 else value


class ExecutionLimitExceeded(RuntimeError):
    """A program ran past its dynamic instruction budget.

    Workload bugs (a mis-built loop bound) would otherwise hang the
    whole validation harness; the limit converts them into a crisp
    failure naming the program.
    """

    def __init__(self, program: Program, limit: int):
        super().__init__(
            f"program {program.name!r} exceeded the dynamic instruction "
            f"limit of {limit}; probable infinite loop"
        )
        self.program = program
        self.limit = limit


@dataclass
class ArchState:
    """Architectural state: register files plus data memory."""

    iregs: Dict[str, int] = field(default_factory=dict)
    fregs: Dict[str, float] = field(default_factory=dict)
    memory: SparseMemory = field(default_factory=SparseMemory)

    def read_int(self, name: str) -> int:
        if name == ZERO_INT:
            return 0
        return self.iregs.get(name, 0)

    def write_int(self, name: str, value: int) -> None:
        if name != ZERO_INT:
            self.iregs[name] = value & _MASK64

    def read_fp(self, name: str) -> float:
        if name == ZERO_FP:
            return 0.0
        return self.fregs.get(name, 0.0)

    def write_fp(self, name: str, value: float) -> None:
        if name != ZERO_FP:
            self.fregs[name] = value


class FunctionalMachine:
    """Interprets programs and records the dynamic instruction trace."""

    #: Default dynamic instruction budget; generously above anything the
    #: workload suite produces.
    DEFAULT_LIMIT = 5_000_000

    def __init__(self, program: Program, *, limit: int = DEFAULT_LIMIT):
        self.program = program
        self.limit = limit
        self.state = ArchState(memory=SparseMemory(program.data))
        self.state.write_int(SP, STACK_BASE)
        self.trace: List[DynInstr] = []
        self.instructions_retired = 0

    # ------------------------------------------------------------------

    def run(self) -> List[DynInstr]:
        """Execute from the program entry until HALT; returns the trace."""
        program = self.program
        instrs = program.instructions
        state = self.state
        trace = self.trace
        limit = self.limit
        code_base = program.code_base

        index = program.entry
        seq = 0
        while True:
            if seq >= limit:
                raise ExecutionLimitExceeded(program, limit)
            instr = instrs[index]
            klass = instr.klass
            pc = code_base + index * 4
            slot = (pc >> 2) & 3
            taken = False
            eaddr: Optional[int] = None
            size = 8
            next_index = index + 1

            if klass is InstrClass.HALT:
                trace.append(
                    DynInstr(seq, index, pc, instr.opcode, None, (), False,
                             pc + 4, None, 8, slot)
                )
                self.instructions_retired = seq + 1
                return trace
            if klass is InstrClass.NOP:
                pass
            elif klass is InstrClass.INT_ALU or klass is InstrClass.INT_MUL:
                self._exec_int(instr)
            elif klass.is_fp and not klass.is_memory:
                self._exec_fp(instr)
            elif klass.is_memory:
                eaddr, size = self._exec_memory(instr)
            elif klass is InstrClass.COND_BRANCH:
                taken = self._branch_taken(instr)
                if taken:
                    next_index = program.target_index(index)
            elif klass is InstrClass.UNCOND_BRANCH:
                taken = True
                next_index = program.target_index(index)
            elif klass is InstrClass.CALL:
                taken = True
                state.write_int(instr.dest or RA, pc + 4)
                if instr.target is not None:
                    next_index = program.target_index(index)
                else:
                    next_index = program.index_of(state.read_int(instr.srcs[0]))
            elif klass is InstrClass.RETURN or klass is InstrClass.JUMP:
                taken = True
                next_index = program.index_of(state.read_int(instr.srcs[0]))
            else:  # pragma: no cover - exhaustive over InstrClass
                raise NotImplementedError(f"unhandled class {klass}")

            next_pc = code_base + next_index * 4
            # Timing models see the address register as a source.
            srcs = (
                instr.srcs + (instr.base,)
                if instr.base is not None
                else instr.srcs
            )
            trace.append(
                DynInstr(seq, index, pc, instr.opcode, instr.dest,
                         srcs, taken, next_pc, eaddr, size, slot)
            )
            seq += 1
            index = next_index

    # ------------------------------------------------------------------

    def _operands(self, instr: Instruction) -> List[int]:
        state = self.state
        values = [state.read_int(s) for s in instr.srcs]
        if instr.imm is not None:
            if len(values) >= 2:
                # Alpha operate instructions take rb XOR a literal,
                # never both; silently dropping one would mis-time and
                # mis-compute, so fail loudly.
                raise ValueError(
                    f"{instr}: integer operate takes two register "
                    "sources or one source plus an immediate, not both"
                )
            values.append(instr.imm & _MASK64)
        return values

    def _exec_int(self, instr: Instruction) -> None:
        op = instr.opcode
        state = self.state
        vals = self._operands(instr)
        a = vals[0] if vals else 0
        b = vals[1] if len(vals) > 1 else 0
        if op is Opcode.ADDQ or op is Opcode.LDA:
            result = a + b
        elif op is Opcode.SUBQ:
            result = a - b
        elif op is Opcode.AND:
            result = a & b
        elif op is Opcode.OR:
            result = a | b
        elif op is Opcode.XOR:
            result = a ^ b
        elif op is Opcode.SLL:
            result = a << (b & 63)
        elif op is Opcode.SRL:
            result = (a & _MASK64) >> (b & 63)
        elif op is Opcode.CMPEQ:
            result = int(a == b)
        elif op is Opcode.CMPLT:
            result = int(_to_signed(a) < _to_signed(b))
        elif op is Opcode.CMPLE:
            result = int(_to_signed(a) <= _to_signed(b))
        elif op is Opcode.MULQ:
            result = a * b
        elif op is Opcode.CMOVEQ:
            result = b if a == 0 else state.read_int(instr.dest)
        elif op is Opcode.CMOVNE:
            result = b if a != 0 else state.read_int(instr.dest)
        else:  # pragma: no cover - exhaustive over integer opcodes
            raise NotImplementedError(f"unhandled integer op {op}")
        state.write_int(instr.dest, result)

    def _exec_fp(self, instr: Instruction) -> None:
        op = instr.opcode
        state = self.state
        a = state.read_fp(instr.srcs[0]) if instr.srcs else 0.0
        b = state.read_fp(instr.srcs[1]) if len(instr.srcs) > 1 else 0.0
        if op is Opcode.ADDT:
            result = a + b
        elif op is Opcode.SUBT:
            result = a - b
        elif op is Opcode.MULT:
            result = a * b
        elif op in (Opcode.DIVS, Opcode.DIVT):
            result = a / b if b else 0.0
        elif op in (Opcode.SQRTS, Opcode.SQRTT):
            result = abs(a) ** 0.5
        else:  # pragma: no cover - exhaustive over fp opcodes
            raise NotImplementedError(f"unhandled fp op {op}")
        state.write_fp(instr.dest, result)

    def _exec_memory(self, instr: Instruction):
        op = instr.opcode
        state = self.state
        eaddr = (state.read_int(instr.base) + instr.disp) & _MASK64
        if op is Opcode.LDQ:
            state.write_int(instr.dest, state.memory.load_word(eaddr))
            return eaddr, 8
        if op is Opcode.STQ:
            state.memory.store_word(eaddr, state.read_int(instr.srcs[0]))
            return eaddr, 8
        if op is Opcode.LDBU:
            state.write_int(instr.dest, state.memory.load_byte(eaddr))
            return eaddr, 1
        if op is Opcode.STB:
            state.memory.store_byte(eaddr, state.read_int(instr.srcs[0]))
            return eaddr, 1
        if op is Opcode.LDT:
            bits = state.memory.load_word(eaddr)
            state.write_fp(instr.dest, _bits_to_float(bits))
            return eaddr, 8
        if op is Opcode.STT:
            bits = _float_to_bits(state.read_fp(instr.srcs[0]))
            state.memory.store_word(eaddr, bits)
            return eaddr, 8
        raise NotImplementedError(f"unhandled memory op {op}")  # pragma: no cover

    def _branch_taken(self, instr: Instruction) -> bool:
        value = _to_signed(self.state.read_int(instr.srcs[0]))
        op = instr.opcode
        if op is Opcode.BEQ:
            return value == 0
        if op is Opcode.BNE:
            return value != 0
        if op is Opcode.BLT:
            return value < 0
        if op is Opcode.BGE:
            return value >= 0
        if op is Opcode.BLE:
            return value <= 0
        if op is Opcode.BGT:
            return value > 0
        raise NotImplementedError(f"unhandled branch {op}")  # pragma: no cover


def _bits_to_float(bits: int) -> float:
    return struct.unpack("<d", struct.pack("<Q", bits & _MASK64))[0]


def _float_to_bits(value: float) -> int:
    return struct.unpack("<Q", struct.pack("<d", value))[0]


def run_program(program: Program, *, limit: int = FunctionalMachine.DEFAULT_LIMIT):
    """Convenience: execute ``program`` and return its dynamic trace."""
    return FunctionalMachine(program, limit=limit).run()
