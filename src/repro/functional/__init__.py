"""Functional (architectural) execution and dynamic traces."""

from repro.functional.checkpoint import (
    load_checkpoint,
    restore,
    save_checkpoint,
    snapshot,
)
from repro.functional.machine import (
    ArchState,
    ExecutionLimitExceeded,
    FunctionalMachine,
    run_program,
)
from repro.functional.memory_image import SparseMemory
from repro.functional.trace import DynInstr, Trace

__all__ = [
    "load_checkpoint",
    "restore",
    "save_checkpoint",
    "snapshot",
    "ArchState",
    "ExecutionLimitExceeded",
    "FunctionalMachine",
    "run_program",
    "SparseMemory",
    "DynInstr",
    "Trace",
]
