"""Dynamic instruction records.

Every timing simulator in this package is trace driven: the functional
machine executes a program once and emits a list of :class:`DynInstr`
records that the pipeline models replay.  Mispredicted speculation is
charged as redirect/refill penalties by the timing models (standard
trace-driven practice); the records carry the architectural truth
(branch outcomes, effective addresses) the predictors train on.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.isa.instructions import InstrClass, Opcode

__all__ = ["DynInstr", "Trace"]


class DynInstr:
    """One dynamically executed instruction.

    Uses ``__slots__``: macrobenchmark traces run to hundreds of
    thousands of records and every timing model iterates them.
    """

    __slots__ = (
        "seq",
        "index",
        "pc",
        "opcode",
        "klass",
        "dest",
        "srcs",
        "latency",
        "taken",
        "next_pc",
        "eaddr",
        "size",
        "is_load",
        "is_store",
        "is_control",
        "is_fp",
        "slot",
    )

    def __init__(
        self,
        seq: int,
        index: int,
        pc: int,
        opcode: Opcode,
        dest: Optional[str],
        srcs: Tuple[str, ...],
        taken: bool,
        next_pc: int,
        eaddr: Optional[int],
        size: int,
        slot: int,
    ):
        self.seq = seq
        self.index = index
        self.pc = pc
        self.opcode = opcode
        self.klass = opcode.klass
        self.dest = dest
        self.srcs = srcs
        self.latency = opcode.latency
        self.taken = taken
        self.next_pc = next_pc
        self.eaddr = eaddr
        self.size = size
        self.is_load = self.klass.is_load
        self.is_store = self.klass.is_store
        self.is_control = self.klass.is_control
        self.is_fp = self.klass.is_fp
        self.slot = slot

    @property
    def is_memory(self) -> bool:
        return self.is_load or self.is_store

    @property
    def is_nop(self) -> bool:
        return self.klass is InstrClass.NOP

    @property
    def fallthrough_pc(self) -> int:
        return self.pc + 4

    def __repr__(self) -> str:
        extra = ""
        if self.is_control:
            extra = f" taken={self.taken} next={self.next_pc:#x}"
        elif self.eaddr is not None:
            extra = f" ea={self.eaddr:#x}"
        return (
            f"<DynInstr #{self.seq} pc={self.pc:#x} "
            f"{self.opcode.mnemonic}{extra}>"
        )


#: A trace is simply a list of dynamic instruction records, in program
#: (commit) order.
Trace = list
