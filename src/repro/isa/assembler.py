"""A small text assembler for the Alpha-like ISA.

The microbenchmark and workload builders normally construct programs
with :class:`repro.isa.program.ProgramBuilder`, but a text syntax is
convenient for examples, tests, and quick experiments::

    ; increment r1 one thousand times
        lda   r1, #0
        lda   r2, #1000
    loop:
        addq  r1, r1, #1
        cmplt r3, r1, r2
        bne   r3, loop
        halt

Syntax summary:

* ``label:`` defines a label (may share a line with an instruction).
* Comments start with ``;`` or ``#`` at a token boundary.
* Operand order is ``dest, src1, src2`` with immediates written
  ``#value`` (decimal or ``0x`` hex).
* Memory operands are written ``disp(base)``, e.g. ``ldq r1, 8(r2)``.
* Indirect jumps are written ``jmp (r5)``; ``ret`` takes no operands.
* Directives: ``.align N`` pads with unops to octaword slot ``N``;
  ``.word name v1, v2, ...`` allocates and initialises 64-bit data
  words whose base address can be loaded with ``lda rX, =name``.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.isa.instructions import InstrClass, Opcode, opcode_for_mnemonic
from repro.isa.program import Program, ProgramBuilder
from repro.isa.registers import ALL_REGS

__all__ = ["assemble", "AssemblerError"]


class AssemblerError(ValueError):
    """Raised for malformed assembly input, with the offending line."""

    def __init__(self, lineno: int, line: str, message: str):
        super().__init__(f"line {lineno}: {message}: {line.strip()!r}")
        self.lineno = lineno
        self.line = line


_MEM_RE = re.compile(r"^(-?\d+|0x[0-9a-fA-F]+)?\(([rf]\d+)\)$")
_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*):")


def _parse_int(text: str) -> int:
    return int(text, 0)


def _strip_comment(line: str) -> str:
    for marker in (";", "//"):
        pos = line.find(marker)
        if pos >= 0:
            line = line[:pos]
    return line.strip()


def assemble(source: str, *, name: str = "asm") -> Program:
    """Assemble ``source`` text into a linked :class:`Program`."""
    builder = ProgramBuilder(name)
    symbol_uses: List[Tuple[int, str]] = []  # (instruction index, data symbol)
    data_symbols: Dict[str, int] = {}

    for lineno, raw in enumerate(source.splitlines(), start=1):
        line = _strip_comment(raw)
        if not line:
            continue
        # Peel off any leading labels.
        while True:
            match = _LABEL_RE.match(line)
            if not match:
                break
            builder.label(match.group(1))
            line = line[match.end():].strip()
        if not line:
            continue
        if line.startswith("."):
            _directive(builder, data_symbols, lineno, line)
            continue
        _instruction(builder, symbol_uses, lineno, line)

    program = builder.build()
    _patch_symbols(program, data_symbols, symbol_uses)
    return program


def _directive(
    builder: ProgramBuilder,
    data_symbols: Dict[str, int],
    lineno: int,
    line: str,
) -> None:
    parts = line.split(None, 2)
    directive = parts[0]
    if directive == ".align":
        if len(parts) < 2:
            raise AssemblerError(lineno, line, ".align needs a slot number")
        builder.align_octaword(offset=_parse_int(parts[1]))
    elif directive == ".word":
        if len(parts) < 3:
            raise AssemblerError(lineno, line, ".word needs a name and values")
        symbol = parts[1]
        values = [_parse_int(v.strip()) for v in parts[2].split(",")]
        data_symbols[symbol] = builder.alloc_words(values)
    elif directive == ".space":
        if len(parts) < 3:
            raise AssemblerError(lineno, line, ".space needs a name and size")
        symbol = parts[1]
        data_symbols[symbol] = builder.alloc(_parse_int(parts[2]))
    else:
        raise AssemblerError(lineno, line, f"unknown directive {directive}")


def _instruction(
    builder: ProgramBuilder,
    symbol_uses: List[Tuple[int, str]],
    lineno: int,
    line: str,
) -> None:
    parts = line.split(None, 1)
    mnemonic = parts[0]
    try:
        opcode = opcode_for_mnemonic(mnemonic)
    except KeyError as exc:
        raise AssemblerError(lineno, line, str(exc)) from None
    operands = (
        [tok.strip() for tok in parts[1].split(",")] if len(parts) > 1 else []
    )

    klass = opcode.klass
    try:
        if klass in (InstrClass.NOP, InstrClass.HALT):
            builder.emit(opcode)
        elif klass is InstrClass.RETURN:
            builder.ret()
        elif klass is InstrClass.JUMP:
            reg = operands[0].strip("()")
            builder.emit(opcode, srcs=(reg,))
        elif klass is InstrClass.CALL:
            if operands[0].startswith("("):
                builder.emit(opcode, dest="r26", srcs=(operands[0].strip("()"),))
            else:
                builder.emit(opcode, dest="r26", target=operands[0])
        elif klass is InstrClass.UNCOND_BRANCH:
            builder.emit(opcode, target=operands[0])
        elif klass is InstrClass.COND_BRANCH:
            builder.emit(opcode, srcs=(operands[0],), target=operands[1])
        elif klass.is_load:
            dest, mem = operands
            disp, base = _parse_mem(lineno, line, mem)
            builder.emit(opcode, dest=dest, base=base, disp=disp)
        elif klass.is_store:
            src, mem = operands
            disp, base = _parse_mem(lineno, line, mem)
            builder.emit(opcode, srcs=(src,), base=base, disp=disp)
        else:
            _alu(builder, symbol_uses, opcode, operands)
    except (IndexError, ValueError) as exc:
        if isinstance(exc, AssemblerError):
            raise
        raise AssemblerError(lineno, line, f"bad operands ({exc})") from None


def _parse_mem(lineno: int, line: str, text: str) -> Tuple[int, str]:
    match = _MEM_RE.match(text)
    if not match:
        raise AssemblerError(lineno, line, f"bad memory operand {text!r}")
    disp = _parse_int(match.group(1)) if match.group(1) else 0
    return disp, match.group(2)


def _alu(
    builder: ProgramBuilder,
    symbol_uses: List[Tuple[int, str]],
    opcode: Opcode,
    operands: List[str],
) -> None:
    dest = operands[0]
    srcs: List[str] = []
    imm: Optional[int] = None
    symbol: Optional[str] = None
    for operand in operands[1:]:
        if operand.startswith("#"):
            imm = _parse_int(operand[1:])
        elif operand.startswith("="):
            symbol = operand[1:]
            imm = 0  # patched after data layout is known
        elif operand in ALL_REGS:
            srcs.append(operand)
        else:
            raise ValueError(f"unknown operand {operand!r}")
    if not srcs:
        srcs = ["r31"]  # immediate-only forms read the zero register
    index = builder.emit(opcode, dest=dest, srcs=tuple(srcs), imm=imm)
    if symbol is not None:
        symbol_uses.append((index, symbol))


def _patch_symbols(
    program: Program,
    data_symbols: Dict[str, int],
    symbol_uses: List[Tuple[int, str]],
) -> None:
    from dataclasses import replace

    for index, symbol in symbol_uses:
        if symbol not in data_symbols:
            raise ValueError(f"undefined data symbol {symbol!r}")
        old = program.instructions[index]
        program.instructions[index] = replace(old, imm=data_symbols[symbol])
