"""Program representation: linked instruction sequences plus a data image.

A :class:`Program` is an ordered list of static instructions with
resolved branch targets, a starting PC, and an initial data-memory
image.  Programs are normally produced via :class:`ProgramBuilder`
(labels, alignment directives, data allocation) or the text assembler
in :mod:`repro.isa.assembler`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

from repro.isa.instructions import (
    INSTRUCTION_BYTES,
    INSTRUCTIONS_PER_OCTAWORD,
    OCTAWORD_BYTES,
    Instruction,
    Opcode,
)

__all__ = ["Program", "ProgramBuilder", "CODE_BASE", "DATA_BASE", "STACK_BASE"]

#: Default virtual-address layout.  Code is low, data in the middle,
#: stack high and growing down.  All are octaword aligned.
CODE_BASE = 0x0001_0000
DATA_BASE = 0x1000_0000
STACK_BASE = 0x7FFF_0000


@dataclass
class Program:
    """A fully linked program.

    Attributes:
        instructions: static instruction list; instruction ``i`` lives
            at ``code_base + i * INSTRUCTION_BYTES``.
        labels: label name -> instruction index.
        data: initial data-memory image, address -> 64-bit value.
        entry: index of the first instruction to execute.
        code_base: virtual address of instruction 0.
        name: human-readable workload name.
    """

    instructions: List[Instruction]
    labels: Dict[str, int] = field(default_factory=dict)
    data: Dict[int, int] = field(default_factory=dict)
    entry: int = 0
    code_base: int = CODE_BASE
    name: str = ""

    def __post_init__(self) -> None:
        if self.code_base % OCTAWORD_BYTES != 0:
            raise ValueError("code base must be octaword aligned")
        self._target_index: Dict[int, int] = {}
        for i, instr in enumerate(self.instructions):
            if instr.target is not None:
                if instr.target not in self.labels:
                    raise ValueError(
                        f"instruction {i} ({instr}) references undefined "
                        f"label {instr.target!r}"
                    )
                self._target_index[i] = self.labels[instr.target]

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def pc_of(self, index: int) -> int:
        """Virtual address of the instruction at ``index``."""
        return self.code_base + index * INSTRUCTION_BYTES

    def index_of(self, pc: int) -> int:
        """Instruction index of the given PC."""
        offset = pc - self.code_base
        if offset % INSTRUCTION_BYTES != 0:
            raise ValueError(f"misaligned pc {pc:#x}")
        index = offset // INSTRUCTION_BYTES
        if not 0 <= index < len(self.instructions):
            raise ValueError(f"pc {pc:#x} outside program")
        return index

    def target_index(self, index: int) -> int:
        """Resolved target instruction index for a control instruction."""
        return self._target_index[index]

    def octaword_of(self, index: int) -> int:
        """Aligned octaword address containing instruction ``index``."""
        pc = self.pc_of(index)
        return pc - (pc % OCTAWORD_BYTES)

    def slot_in_octaword(self, index: int) -> int:
        """Position (0-3) of instruction ``index`` within its octaword."""
        return (self.pc_of(index) % OCTAWORD_BYTES) // INSTRUCTION_BYTES

    @property
    def label_at(self) -> Dict[int, str]:
        """Reverse label map (index -> one of its labels)."""
        return {idx: name for name, idx in self.labels.items()}

    def disassemble(self) -> str:
        """Human-readable listing with addresses and labels."""
        label_at: Dict[int, List[str]] = {}
        for name, idx in self.labels.items():
            label_at.setdefault(idx, []).append(name)
        lines = []
        for i, instr in enumerate(self.instructions):
            for name in sorted(label_at.get(i, [])):
                lines.append(f"{name}:")
            lines.append(f"  {self.pc_of(i):#010x}  {instr}")
        return "\n".join(lines)


class ProgramBuilder:
    """Incremental program construction with labels and data allocation.

    Example::

        b = ProgramBuilder("demo")
        b.label("loop")
        b.emit(Opcode.ADDQ, dest="r1", srcs=("r1",), imm=1)
        b.emit(Opcode.CMPLT, dest="r2", srcs=("r1", "r3"))
        b.branch(Opcode.BNE, "r2", "loop")
        b.emit(Opcode.HALT)
        program = b.build()
    """

    def __init__(self, name: str = "", code_base: int = CODE_BASE):
        self.name = name
        self.code_base = code_base
        self._instructions: List[Instruction] = []
        self._labels: Dict[str, int] = {}
        self._data: Dict[int, int] = {}
        self._data_cursor = DATA_BASE
        self._label_counter = 0

    # ------------------------------------------------------------------
    # Code emission
    # ------------------------------------------------------------------

    def emit(self, opcode: Opcode, **kwargs) -> int:
        """Append an instruction; returns its index."""
        self._instructions.append(Instruction(opcode, **kwargs))
        return len(self._instructions) - 1

    def append(self, instr: Instruction) -> int:
        """Append a pre-built instruction; returns its index."""
        self._instructions.append(instr)
        return len(self._instructions) - 1

    def extend(self, instrs: Sequence[Instruction]) -> None:
        self._instructions.extend(instrs)

    def branch(self, opcode: Opcode, src: str, target: str) -> int:
        """Append a conditional branch on ``src`` to label ``target``."""
        if opcode.klass.is_control and opcode.klass.value == "cond_branch":
            return self.emit(opcode, srcs=(src,), target=target)
        raise ValueError(f"{opcode} is not a conditional branch")

    def jump(self, target: str) -> int:
        """Append an unconditional PC-relative branch."""
        return self.emit(Opcode.BR, target=target)

    def call(self, target: str) -> int:
        """Append a ``bsr`` to ``target`` (return address in RA)."""
        return self.emit(Opcode.BSR, dest="r26", target=target)

    def ret(self) -> int:
        """Append a ``ret`` through RA."""
        return self.emit(Opcode.RET, srcs=("r26",))

    def jmp_indirect(self, reg: str) -> int:
        """Append an indirect ``jmp`` through ``reg``."""
        return self.emit(Opcode.JMP, srcs=(reg,))

    def load_imm(self, dest: str, value: int) -> int:
        """Load a (possibly large) immediate into ``dest``.

        Uses ``lda`` from the zero register; our functional machine
        supports full-width immediates so one instruction suffices.
        """
        return self.emit(Opcode.LDA, dest=dest, srcs=("r31",), imm=value)

    def unop(self, count: int = 1) -> None:
        """Append ``count`` universal no-ops (Alpha ``unop`` padding)."""
        for _ in range(count):
            self.emit(Opcode.UNOP)

    def halt(self) -> int:
        return self.emit(Opcode.HALT)

    # ------------------------------------------------------------------
    # Labels and alignment
    # ------------------------------------------------------------------

    def label(self, name: str) -> str:
        """Define ``name`` at the current position; returns the name."""
        if name in self._labels:
            raise ValueError(f"duplicate label {name!r}")
        self._labels[name] = len(self._instructions)
        return name

    def fresh_label(self, stem: str = "L") -> str:
        """Generate a unique label name (not yet bound)."""
        self._label_counter += 1
        return f".{stem}{self._label_counter}"

    @property
    def here(self) -> int:
        """Index the next emitted instruction will occupy."""
        return len(self._instructions)

    def align_octaword(self, *, offset: int = 0) -> None:
        """Pad with unops so the next instruction sits at octaword slot
        ``offset`` (0-3).

        The paper's C-Ca and C-Cb variants differ only in how the two
        compilers padded with unops, which trains the line predictor on
        different branches; builders use this to reproduce both layouts.
        """
        if not 0 <= offset < INSTRUCTIONS_PER_OCTAWORD:
            raise ValueError(f"octaword slot offset out of range: {offset}")
        base_slot = (self.code_base % OCTAWORD_BYTES) // INSTRUCTION_BYTES
        current = (base_slot + len(self._instructions)) % INSTRUCTIONS_PER_OCTAWORD
        pad = (offset - current) % INSTRUCTIONS_PER_OCTAWORD
        self.unop(pad)

    # ------------------------------------------------------------------
    # Data allocation
    # ------------------------------------------------------------------

    def alloc(self, size_bytes: int, *, align: int = 8, name: str = "") -> int:
        """Reserve ``size_bytes`` of zero-initialised data; returns the
        base virtual address."""
        if align <= 0 or align & (align - 1):
            raise ValueError(f"alignment must be a power of two: {align}")
        cursor = (self._data_cursor + align - 1) & ~(align - 1)
        self._data_cursor = cursor + size_bytes
        return cursor

    def alloc_words(self, values: Sequence[int], *, align: int = 8) -> int:
        """Reserve and initialise 64-bit words; returns the base address."""
        base = self.alloc(8 * len(values), align=align)
        for i, value in enumerate(values):
            self._data[base + 8 * i] = value
        return base

    def poke(self, address: int, value: int) -> None:
        """Set an initial 64-bit data value at ``address``."""
        self._data[address] = value

    # ------------------------------------------------------------------

    def build(self, entry_label: Optional[str] = None) -> Program:
        """Finalise into an immutable :class:`Program`."""
        entry = self._labels[entry_label] if entry_label else 0
        return Program(
            instructions=list(self._instructions),
            labels=dict(self._labels),
            data=dict(self._data),
            entry=entry,
            code_base=self.code_base,
            name=self.name,
        )
