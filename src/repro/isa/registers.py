"""Architectural register file naming and conventions.

The Alpha has 32 integer registers (``r0``-``r31``, with ``r31``
hard-wired to zero) and 32 floating-point registers (``f0``-``f31``,
``f31`` reading as zero).  The 21264 maps these onto 80 physical
registers (40 integer + 40 floating point); the physical-register
bookkeeping lives in the pipeline models, not here.
"""

from __future__ import annotations

from typing import Iterable, List

__all__ = [
    "INT_REGS",
    "FP_REGS",
    "ZERO_INT",
    "ZERO_FP",
    "RA",
    "SP",
    "ALL_REGS",
    "is_int_reg",
    "is_fp_reg",
    "is_zero_reg",
    "validate_reg",
    "int_reg",
    "fp_reg",
    "scratch_int_regs",
    "scratch_fp_regs",
]

NUM_ARCH_REGS = 32

INT_REGS: List[str] = [f"r{i}" for i in range(NUM_ARCH_REGS)]
FP_REGS: List[str] = [f"f{i}" for i in range(NUM_ARCH_REGS)]
ALL_REGS = frozenset(INT_REGS) | frozenset(FP_REGS)

#: Hard-wired zero registers.
ZERO_INT = "r31"
ZERO_FP = "f31"

#: Return-address register (Alpha calling convention).
RA = "r26"

#: Stack pointer.
SP = "r30"

#: Registers reserved by convention and not handed out as scratch.
_RESERVED = {ZERO_INT, ZERO_FP, RA, SP}


def is_int_reg(name: str) -> bool:
    """Whether ``name`` names an integer architectural register."""
    return name.startswith("r") and name in ALL_REGS


def is_fp_reg(name: str) -> bool:
    """Whether ``name`` names a floating-point architectural register."""
    return name.startswith("f") and name in ALL_REGS


def is_zero_reg(name: str) -> bool:
    """Whether ``name`` is one of the hard-wired zero registers."""
    return name in (ZERO_INT, ZERO_FP)


def validate_reg(name: str) -> str:
    """Return ``name`` if it is a valid register, else raise ValueError."""
    if name not in ALL_REGS:
        raise ValueError(f"not a register: {name!r}")
    return name


def int_reg(index: int) -> str:
    """The integer register with the given architectural index."""
    if not 0 <= index < NUM_ARCH_REGS:
        raise ValueError(f"integer register index out of range: {index}")
    return f"r{index}"


def fp_reg(index: int) -> str:
    """The floating-point register with the given architectural index."""
    if not 0 <= index < NUM_ARCH_REGS:
        raise ValueError(f"fp register index out of range: {index}")
    return f"f{index}"


def scratch_int_regs(count: int, *, exclude: Iterable[str] = ()) -> List[str]:
    """Allocate ``count`` general-purpose integer scratch registers.

    Skips the zero register, RA, SP, and anything in ``exclude``.
    Workload builders use this to avoid clobbering loop-carried state.
    """
    excluded = _RESERVED | set(exclude)
    regs = [r for r in INT_REGS if r not in excluded]
    if count > len(regs):
        raise ValueError(
            f"requested {count} scratch integer registers, "
            f"only {len(regs)} available"
        )
    return regs[:count]


def scratch_fp_regs(count: int, *, exclude: Iterable[str] = ()) -> List[str]:
    """Allocate ``count`` floating-point scratch registers."""
    excluded = _RESERVED | set(exclude)
    regs = [f for f in FP_REGS if f not in excluded]
    if count > len(regs):
        raise ValueError(
            f"requested {count} scratch fp registers, "
            f"only {len(regs)} available"
        )
    return regs[:count]
