"""Program image loader.

sim-alpha borrowed SimpleScalar's loader; ours reads and writes the
binary image format of :mod:`repro.isa.encoding`, so workloads can be
generated once, shipped as files, and replayed bit-exactly — one of
the paper's reproducibility recommendations ("making the simulator
code available" extends naturally to making the *workloads*
available).
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Union

from repro.isa.encoding import decode_program, encode_program
from repro.isa.program import Program

__all__ = ["save_program", "load_program", "program_digest"]

PathLike = Union[str, Path]


def save_program(program: Program, path: PathLike) -> str:
    """Write ``program`` to ``path``; returns its content digest.

    The digest covers code, data, and entry point — two programs with
    the same digest replay identically on every simulator here.
    """
    blob = encode_program(program)
    Path(path).write_bytes(blob)
    return hashlib.sha256(blob).hexdigest()


def load_program(path: PathLike) -> Program:
    """Read a program image written by :func:`save_program`."""
    return decode_program(Path(path).read_bytes())


def program_digest(program: Program) -> str:
    """Content digest without writing a file."""
    return hashlib.sha256(encode_program(program)).hexdigest()
