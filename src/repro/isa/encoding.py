"""Binary instruction encoding (32-bit, Alpha-format-inspired).

The paper's sim-alpha reused SimpleScalar's "Alpha ISA definition
file" and loader; our equivalent is a compact binary format so
programs can be stored, hashed, and reloaded byte-exactly.  The layout
follows the Alpha's three main formats in spirit:

* operate:   ``op[31:26] ra[25:21] rb[20:16] lit-flag[15] func/lit``
* memory:    ``op[31:26] ra[25:21] rb[20:16] disp[15:0]``
* branch:    ``op[31:26] ra[25:21] disp[20:0]``

Large immediates (beyond the 13-bit literal field) spill into a
constant pool that trails the code in the image — the price of a
fixed-width encoding, handled transparently by encode/decode.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Tuple

from repro.isa.instructions import Instruction, InstrClass, Opcode
from repro.isa.program import Program
from repro.isa.registers import ALL_REGS

__all__ = [
    "encode_instruction",
    "decode_instruction",
    "encode_program",
    "decode_program",
    "EncodingError",
]


class EncodingError(ValueError):
    """Raised when an instruction cannot be encoded or decoded."""


_OPCODE_NUMBERS: Dict[Opcode, int] = {
    op: index for index, op in enumerate(Opcode)
}
_NUMBER_OPCODES: Dict[int, Opcode] = {
    index: op for op, index in _OPCODE_NUMBERS.items()
}

_REG_NUMBERS: Dict[str, int] = {}
for _name in ALL_REGS:
    _REG_NUMBERS[_name] = int(_name[1:]) + (32 if _name[0] == "f" else 0)
_NUMBER_REGS = {number: name for name, number in _REG_NUMBERS.items()}

_LIT_BITS = 13
_LIT_MAX = (1 << (_LIT_BITS - 1)) - 1
_LIT_MIN = -(1 << (_LIT_BITS - 1))
_DISP_BITS = 16
_DISP_MAX = (1 << (_DISP_BITS - 1)) - 1
_DISP_MIN = -(1 << (_DISP_BITS - 1))
_BDISP_BITS = 21


def _reg_number(name: str | None) -> int:
    if name is None:
        return 31  # encodes as the zero register
    try:
        return _REG_NUMBERS[name]
    except KeyError:
        raise EncodingError(f"not an encodable register: {name!r}") from None


def encode_instruction(
    instr: Instruction,
    target_index: int | None = None,
    *,
    pool: List[int] | None = None,
) -> int:
    """Encode one instruction to a 32-bit word.

    Control instructions need their resolved ``target_index``.
    Immediates outside the 13-bit literal range are appended to
    ``pool`` and referenced by index (bit 14 set).
    """
    op_number = _OPCODE_NUMBERS[instr.opcode]
    klass = instr.klass
    word = op_number << 26

    if klass.is_memory:
        if not _DISP_MIN <= instr.disp <= _DISP_MAX:
            raise EncodingError(
                f"displacement {instr.disp} exceeds {_DISP_BITS} bits"
            )
        ra = _reg_number(instr.dest if klass.is_load else instr.srcs[0])
        rb = _reg_number(instr.base)
        return word | (ra << 21) | ((rb & 31) << 16) | (
            instr.disp & ((1 << _DISP_BITS) - 1)
        )

    if klass.is_control:
        if klass in (InstrClass.JUMP, InstrClass.RETURN) or (
            klass is InstrClass.CALL and instr.target is None
        ):
            ra = _reg_number(instr.dest)
            rb = _reg_number(instr.srcs[0] if instr.srcs else None)
            return word | (ra << 21) | ((rb & 31) << 16)
        if target_index is None:
            raise EncodingError(
                f"{instr} needs a resolved target index to encode"
            )
        if target_index >= (1 << _BDISP_BITS):
            raise EncodingError("branch target index exceeds 21 bits")
        ra = _reg_number(
            instr.srcs[0] if instr.srcs else instr.dest
        )
        return word | (ra << 21) | target_index

    if klass in (InstrClass.NOP, InstrClass.HALT):
        return word

    # Operate format.
    ra = _reg_number(instr.dest)
    word |= ra << 21
    if instr.imm is not None:
        if len(instr.srcs) > 1:
            raise EncodingError(
                f"{instr}: operate takes registers or a literal, not both"
            )
        rb = _reg_number(instr.srcs[0] if instr.srcs else None)
        word |= (rb & 31) << 16
        word |= 1 << 15  # literal flag
        if _LIT_MIN <= instr.imm <= _LIT_MAX:
            return word | (instr.imm & ((1 << _LIT_BITS) - 1))
        if pool is None:
            raise EncodingError(
                f"immediate {instr.imm} needs a constant pool"
            )
        pool.append(instr.imm)
        index = len(pool) - 1
        if index >= (1 << (_LIT_BITS - 1)):
            raise EncodingError("constant pool overflow")
        return word | (1 << 14) | index
    rb = _reg_number(instr.srcs[0] if instr.srcs else None)
    rc = _reg_number(instr.srcs[1] if len(instr.srcs) > 1 else None)
    return word | ((rb & 31) << 16) | ((rc & 31) << 8)


def decode_instruction(
    word: int, *, pool: List[int] | None = None, fp_hint: bool = False
) -> Tuple[Instruction, int | None]:
    """Decode a 32-bit word back to (Instruction, target_index|None)."""
    op_number = (word >> 26) & 63
    try:
        opcode = _NUMBER_OPCODES[op_number]
    except KeyError:
        raise EncodingError(f"unknown opcode number {op_number}") from None
    klass = opcode.klass

    def reg(number: int, fp: bool) -> str:
        return _NUMBER_REGS[number + (32 if fp and number < 32 else 0)]

    ra_num = (word >> 21) & 31
    rb_num = (word >> 16) & 31

    if klass.is_memory:
        disp = word & 0xFFFF
        if disp >= 1 << 15:
            disp -= 1 << 16
        fp = klass.is_fp
        ra = _NUMBER_REGS[ra_num + (32 if fp else 0)]
        base = _NUMBER_REGS[rb_num]
        if klass.is_load:
            return Instruction(opcode, dest=ra, base=base, disp=disp), None
        return Instruction(opcode, srcs=(ra,), base=base, disp=disp), None

    if klass.is_control:
        if klass in (InstrClass.JUMP, InstrClass.RETURN):
            return Instruction(
                opcode,
                dest=None if klass is InstrClass.RETURN else None,
                srcs=(_NUMBER_REGS[rb_num],),
            ), None
        if klass is InstrClass.CALL and opcode is Opcode.JSR:
            return Instruction(
                opcode, dest=_NUMBER_REGS[ra_num],
                srcs=(_NUMBER_REGS[rb_num],),
            ), None
        target_index = word & ((1 << _BDISP_BITS) - 1)
        if klass is InstrClass.COND_BRANCH:
            return Instruction(
                opcode, srcs=(_NUMBER_REGS[ra_num],), target="?"
            ), target_index
        if klass is InstrClass.CALL:
            return Instruction(
                opcode, dest=_NUMBER_REGS[ra_num], target="?"
            ), target_index
        return Instruction(opcode, target="?"), target_index

    if klass in (InstrClass.NOP, InstrClass.HALT):
        return Instruction(opcode), None

    fp = klass.is_fp
    dest = _NUMBER_REGS[ra_num + (32 if fp else 0)]
    rb = _NUMBER_REGS[rb_num + (32 if fp else 0)]
    if word & (1 << 15):
        if word & (1 << 14):
            if pool is None:
                raise EncodingError("pooled literal without a pool")
            imm = pool[word & ((1 << (_LIT_BITS - 1)) - 1)]
        else:
            imm = word & ((1 << _LIT_BITS) - 1)
            if imm > _LIT_MAX:
                imm -= 1 << _LIT_BITS
        return Instruction(opcode, dest=dest, srcs=(rb,), imm=imm), None
    rc_num = (word >> 8) & 31
    rc = _NUMBER_REGS[rc_num + (32 if fp else 0)]
    if rc_num == 31 and not fp:
        return Instruction(opcode, dest=dest, srcs=(rb,)), None
    return Instruction(opcode, dest=dest, srcs=(rb, rc)), None


_MAGIC = b"RPRO"
_VERSION = 2


def encode_program(program: Program) -> bytes:
    """Serialise a program (code, labels for targets, data image)."""
    pool: List[int] = []
    words = []
    for index, instr in enumerate(program.instructions):
        target = None
        if instr.target is not None:
            target = program.target_index(index)
        words.append(encode_instruction(instr, target, pool=pool))

    out = bytearray()
    out += _MAGIC
    out += struct.pack(
        "<HIQII", _VERSION, program.entry, program.code_base,
        len(words), len(pool),
    )
    name_bytes = program.name.encode()
    out += struct.pack("<I", len(name_bytes)) + name_bytes
    for word in words:
        out += struct.pack("<I", word)
    for value in pool:
        out += struct.pack("<q", value)
    data_items = sorted(program.data.items())
    out += struct.pack("<I", len(data_items))
    for address, value in data_items:
        out += struct.pack("<QQ", address, value & ((1 << 64) - 1))
    return bytes(out)


def decode_program(blob: bytes) -> Program:
    """Reload a program serialised with :func:`encode_program`.

    Labels are regenerated as ``L<index>`` at every branch target.
    """
    if blob[:4] != _MAGIC:
        raise EncodingError("bad magic; not an encoded program")
    offset = 4
    version, entry, code_base, word_count, pool_count = struct.unpack_from(
        "<HIQII", blob, offset
    )
    if version != _VERSION:
        raise EncodingError(f"unsupported version {version}")
    offset += struct.calcsize("<HIQII")
    (name_length,) = struct.unpack_from("<I", blob, offset)
    offset += 4
    name = blob[offset:offset + name_length].decode()
    offset += name_length
    words = list(struct.unpack_from(f"<{word_count}I", blob, offset))
    offset += 4 * word_count
    pool = list(struct.unpack_from(f"<{pool_count}q", blob, offset))
    offset += 8 * pool_count
    (data_count,) = struct.unpack_from("<I", blob, offset)
    offset += 4
    data = {}
    for _ in range(data_count):
        address, value = struct.unpack_from("<QQ", blob, offset)
        offset += 16
        data[address] = value

    decoded: List[Tuple[Instruction, int | None]] = [
        decode_instruction(word, pool=pool) for word in words
    ]
    labels = {}
    for _, target in decoded:
        if target is not None and target not in labels.values():
            labels[f"L{target}"] = target
    label_at = {index: name_ for name_, index in labels.items()}

    instructions: List[Instruction] = []
    for instr, target in decoded:
        if target is not None:
            from dataclasses import replace as dc_replace

            instr = dc_replace(instr, target=label_at[target])
        instructions.append(instr)
    return Program(
        instructions=instructions,
        labels=labels,
        data=data,
        entry=entry,
        code_base=code_base,
        name=name,
    )
