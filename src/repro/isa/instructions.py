"""Instruction set definition for the Alpha-like target ISA.

The 21264 validation study exercises a small number of *instruction
classes* (paper Table 1); this module defines a compact Alpha-like ISA
that covers every class the paper's microbenchmarks and macrobenchmark
proxies need: integer ALU ops, integer multiply, integer/FP loads and
stores, FP add/multiply/divide/sqrt (single and double precision),
conditional and unconditional branches, subroutine calls and returns,
indirect jumps, conditional moves, and the Alpha universal no-op
(``unop``).

Each static instruction is an :class:`Instruction`; the opcode carries
its :class:`InstrClass`, which in turn determines the execution latency
(paper Table 1) and which functional-unit kinds may execute it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple

__all__ = [
    "InstrClass",
    "Opcode",
    "Instruction",
    "LATENCY",
    "INSTRUCTION_BYTES",
    "OCTAWORD_BYTES",
    "INSTRUCTIONS_PER_OCTAWORD",
]

#: Every instruction occupies four bytes, as in the Alpha ISA.
INSTRUCTION_BYTES = 4

#: The 21264 fetches an aligned 128-bit packet of four instructions
#: ("octaword" in the Compaq literature) every cycle.
OCTAWORD_BYTES = 16
INSTRUCTIONS_PER_OCTAWORD = OCTAWORD_BYTES // INSTRUCTION_BYTES


class InstrClass(enum.Enum):
    """Timing class of an instruction (paper Table 1 rows)."""

    INT_ALU = "int_alu"
    INT_MUL = "int_mul"
    INT_LOAD = "int_load"
    INT_STORE = "int_store"
    FP_ADD = "fp_add"
    FP_MUL = "fp_mul"
    FP_DIV_S = "fp_div_s"
    FP_DIV_D = "fp_div_d"
    FP_SQRT_S = "fp_sqrt_s"
    FP_SQRT_D = "fp_sqrt_d"
    FP_LOAD = "fp_load"
    FP_STORE = "fp_store"
    COND_BRANCH = "cond_branch"
    UNCOND_BRANCH = "uncond_branch"
    CALL = "call"
    RETURN = "return"
    JUMP = "jump"
    NOP = "nop"
    HALT = "halt"

    @property
    def is_load(self) -> bool:
        return self in (InstrClass.INT_LOAD, InstrClass.FP_LOAD)

    @property
    def is_store(self) -> bool:
        return self in (InstrClass.INT_STORE, InstrClass.FP_STORE)

    @property
    def is_memory(self) -> bool:
        return self.is_load or self.is_store

    @property
    def is_control(self) -> bool:
        return self in (
            InstrClass.COND_BRANCH,
            InstrClass.UNCOND_BRANCH,
            InstrClass.CALL,
            InstrClass.RETURN,
            InstrClass.JUMP,
        )

    @property
    def is_fp(self) -> bool:
        return self in (
            InstrClass.FP_ADD,
            InstrClass.FP_MUL,
            InstrClass.FP_DIV_S,
            InstrClass.FP_DIV_D,
            InstrClass.FP_SQRT_S,
            InstrClass.FP_SQRT_D,
            InstrClass.FP_LOAD,
            InstrClass.FP_STORE,
        )

    @property
    def is_indirect_control(self) -> bool:
        """Control whose target cannot be computed by the slot-stage adder.

        The paper notes that ``jmp`` targets cannot be computed early and
        each mispredicted ``jmp`` costs a 10-cycle pipeline flush.
        Returns also use an indirect target but are predicted by the
        return address stack.
        """
        return self in (InstrClass.RETURN, InstrClass.JUMP)


#: Execution latency per class, in cycles (paper Table 1).  Loads list
#: the cache-hit load-to-use latency.  Unconditional jumps take three
#: cycles per Table 1; we apply that to calls/returns/jumps alike.
LATENCY = {
    InstrClass.INT_ALU: 1,
    InstrClass.INT_MUL: 7,
    InstrClass.INT_LOAD: 3,
    InstrClass.INT_STORE: 1,
    InstrClass.FP_ADD: 4,
    InstrClass.FP_MUL: 4,
    InstrClass.FP_DIV_S: 12,
    InstrClass.FP_DIV_D: 15,
    InstrClass.FP_SQRT_S: 18,
    InstrClass.FP_SQRT_D: 33,
    InstrClass.FP_LOAD: 4,
    InstrClass.FP_STORE: 1,
    InstrClass.COND_BRANCH: 1,
    InstrClass.UNCOND_BRANCH: 3,
    InstrClass.CALL: 3,
    InstrClass.RETURN: 3,
    InstrClass.JUMP: 3,
    InstrClass.NOP: 1,
    InstrClass.HALT: 1,
}


class Opcode(enum.Enum):
    """Concrete opcodes.  Each maps onto one :class:`InstrClass`."""

    # Integer ALU.
    ADDQ = ("addq", InstrClass.INT_ALU)
    SUBQ = ("subq", InstrClass.INT_ALU)
    AND = ("and", InstrClass.INT_ALU)
    OR = ("bis", InstrClass.INT_ALU)
    XOR = ("xor", InstrClass.INT_ALU)
    SLL = ("sll", InstrClass.INT_ALU)
    SRL = ("srl", InstrClass.INT_ALU)
    CMPEQ = ("cmpeq", InstrClass.INT_ALU)
    CMPLT = ("cmplt", InstrClass.INT_ALU)
    CMPLE = ("cmple", InstrClass.INT_ALU)
    LDA = ("lda", InstrClass.INT_ALU)
    CMOVEQ = ("cmoveq", InstrClass.INT_ALU)
    CMOVNE = ("cmovne", InstrClass.INT_ALU)
    # Integer multiply.
    MULQ = ("mulq", InstrClass.INT_MUL)
    # Integer memory.
    LDQ = ("ldq", InstrClass.INT_LOAD)
    STQ = ("stq", InstrClass.INT_STORE)
    LDBU = ("ldbu", InstrClass.INT_LOAD)
    STB = ("stb", InstrClass.INT_STORE)
    # Floating point.
    ADDT = ("addt", InstrClass.FP_ADD)
    SUBT = ("subt", InstrClass.FP_ADD)
    MULT = ("mult", InstrClass.FP_MUL)
    DIVS = ("divs", InstrClass.FP_DIV_S)
    DIVT = ("divt", InstrClass.FP_DIV_D)
    SQRTS = ("sqrts", InstrClass.FP_SQRT_S)
    SQRTT = ("sqrtt", InstrClass.FP_SQRT_D)
    LDT = ("ldt", InstrClass.FP_LOAD)
    STT = ("stt", InstrClass.FP_STORE)
    # Control.
    BEQ = ("beq", InstrClass.COND_BRANCH)
    BNE = ("bne", InstrClass.COND_BRANCH)
    BLT = ("blt", InstrClass.COND_BRANCH)
    BGE = ("bge", InstrClass.COND_BRANCH)
    BLE = ("ble", InstrClass.COND_BRANCH)
    BGT = ("bgt", InstrClass.COND_BRANCH)
    BR = ("br", InstrClass.UNCOND_BRANCH)
    BSR = ("bsr", InstrClass.CALL)
    JSR = ("jsr", InstrClass.CALL)
    JMP = ("jmp", InstrClass.JUMP)
    RET = ("ret", InstrClass.RETURN)
    # Misc.
    UNOP = ("unop", InstrClass.NOP)
    HALT = ("halt", InstrClass.HALT)

    def __init__(self, mnemonic: str, klass: InstrClass):
        self.mnemonic = mnemonic
        self.klass = klass

    @property
    def latency(self) -> int:
        return LATENCY[self.klass]


_BY_MNEMONIC = {op.mnemonic: op for op in Opcode}


def opcode_for_mnemonic(mnemonic: str) -> Opcode:
    """Look up an opcode by assembler mnemonic.

    Raises :class:`KeyError` with a helpful message for unknown
    mnemonics.
    """
    try:
        return _BY_MNEMONIC[mnemonic.lower()]
    except KeyError:
        raise KeyError(
            f"unknown mnemonic {mnemonic!r}; known: "
            f"{sorted(_BY_MNEMONIC)}"
        ) from None


@dataclass(frozen=True)
class Instruction:
    """One static instruction.

    ``dest`` and ``srcs`` name architectural registers ("r0".."r31",
    "f0".."f31"); register semantics live in :mod:`repro.isa.registers`.
    Memory instructions use ``base`` + ``disp`` addressing.  Control
    instructions carry a ``target`` label resolved at link time by
    :class:`repro.isa.program.Program`.
    """

    opcode: Opcode
    dest: Optional[str] = None
    srcs: Tuple[str, ...] = ()
    imm: Optional[int] = None
    base: Optional[str] = None
    disp: int = 0
    target: Optional[str] = None
    comment: str = ""

    @property
    def klass(self) -> InstrClass:
        return self.opcode.klass

    @property
    def latency(self) -> int:
        return self.opcode.latency

    def __str__(self) -> str:
        parts = [self.opcode.mnemonic]
        operands = []
        if self.dest is not None:
            operands.append(self.dest)
        operands.extend(self.srcs)
        if self.imm is not None:
            operands.append(f"#{self.imm}")
        if self.base is not None:
            operands.append(f"{self.disp}({self.base})")
        if self.target is not None:
            operands.append(self.target)
        if operands:
            parts.append(", ".join(operands))
        return " ".join(parts)
