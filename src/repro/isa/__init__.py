"""Alpha-like instruction set: opcodes, registers, programs, assembler."""

from repro.isa.instructions import (
    INSTRUCTION_BYTES,
    INSTRUCTIONS_PER_OCTAWORD,
    LATENCY,
    OCTAWORD_BYTES,
    InstrClass,
    Instruction,
    Opcode,
    opcode_for_mnemonic,
)
from repro.isa.program import (
    CODE_BASE,
    DATA_BASE,
    STACK_BASE,
    Program,
    ProgramBuilder,
)
from repro.isa.assembler import AssemblerError, assemble
from repro.isa.encoding import (
    EncodingError,
    decode_instruction,
    decode_program,
    encode_instruction,
    encode_program,
)
from repro.isa.loader import load_program, program_digest, save_program

__all__ = [
    "INSTRUCTION_BYTES",
    "INSTRUCTIONS_PER_OCTAWORD",
    "LATENCY",
    "OCTAWORD_BYTES",
    "InstrClass",
    "Instruction",
    "Opcode",
    "opcode_for_mnemonic",
    "CODE_BASE",
    "DATA_BASE",
    "STACK_BASE",
    "Program",
    "ProgramBuilder",
    "AssemblerError",
    "assemble",
    "EncodingError",
    "decode_instruction",
    "decode_program",
    "encode_instruction",
    "encode_program",
    "load_program",
    "program_digest",
    "save_program",
]
