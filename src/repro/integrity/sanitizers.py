"""Invariant sanitizers: runtime checks that the timing models are
internally consistent.

The observability layer (PR 1) made runs *inspectable*; this layer
makes them *self-checking*.  A :class:`RunSanitizer` rides the same
per-instruction observer hook the CPI-stack accountant uses and
verifies, per window of instructions, the invariants every healthy run
satisfies by construction:

``cycle_monotonicity``
    retirement is in order, so retire times never decrease;
``stage_order``
    fetch <= map <= issue and complete <= retire, all finite and
    non-negative;
``finite_latency``
    memory/fetch readiness times are finite and non-negative (a NaN
    DRAM latency is caught at the access that produced it, before it
    poisons the whole run) — violations of this invariant are *fatal*
    because the engine cannot meaningfully continue past a NaN;
``maf_occupancy``
    every miss address file tracks at most ``entries`` concurrently
    active fills at any probed time (the invariant whose violation was
    the PR 2 ``present_miss`` oversubscription bug);
``ipc_bound``
    IPC lies in (0, retire-width];
``cpi_stack_sum``
    an attached CPI stack sums exactly to the CPI it decomposes;
``cache_conservation``
    the pipeline's architectural miss counters agree with the cache
    hierarchy's own access statistics (hit + miss bookkeeping cannot
    silently diverge between layers);
``instruction_conservation``
    the run retired exactly as many instructions as the trace supplied;
``finite_stats``
    cycle and event counters are finite and non-negative;
``dram_row_accounting``
    every DRAM access is exactly one of a row-buffer hit or a row miss,
    so the counters partition the access mix and the hit rate lies in
    [0, 1];
``dram_bank_conservation``
    bank-conflict stalls are bounded by the accesses that could have
    collided (0 <= conflicts <= accesses) and never negative;
``dram_page_policy``
    the row-buffer counters obey the configured page policy: a
    closed-page bank precharges after every access and can never score
    a row hit, an open-page bank precharges only on a row miss that
    found another row active.

Violations are *recorded*, not raised (strict mode raises
:class:`IntegrityError` on the first one); the harness and execution
engine quarantine a violating result as a ``CellFailure`` on the grid
rather than aborting the run.  Like the metrics registry, the
user-facing :class:`Sanitizers` bundle has a disabled null mode whose
per-run factory returns ``None`` — the engine then pays one identity
check per instruction, nothing more.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = [
    "INVARIANTS",
    "InvariantViolation",
    "IntegrityError",
    "RunSanitizer",
    "Sanitizers",
]

#: Every invariant a sanitizer can report, in documentation order.
INVARIANTS: Tuple[str, ...] = (
    "cycle_monotonicity",
    "stage_order",
    "finite_latency",
    "maf_occupancy",
    "ipc_bound",
    "cpi_stack_sum",
    "cache_conservation",
    "instruction_conservation",
    "finite_stats",
    "dram_row_accounting",
    "dram_bank_conservation",
    "dram_page_policy",
    "blockcache_divergence",
)

#: IPC ceiling used when no machine configuration was attached (the
#: simulator did not take the observer hook); generous enough that no
#: real model trips it, tight enough to catch a slashed cycle count.
DEFAULT_IPC_BOUND = 16.0

#: Relative tolerance for the CPI-stack exact-sum identity (the stack
#: is exact by construction; measurement scaling may round).
_STACK_TOLERANCE = 1e-6


@dataclass(frozen=True)
class InvariantViolation:
    """One violated invariant, with enough state to diagnose it."""

    invariant: str
    message: str
    simulator: str = ""
    workload: str = ""
    #: JSON-ready state captured at the point of violation (times,
    #: counters, occupancies — whatever the check saw).
    snapshot: Dict = field(default_factory=dict)

    def to_dict(self) -> Dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict) -> "InvariantViolation":
        names = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in payload.items() if k in names})

    def __str__(self) -> str:
        where = (
            f" [{self.simulator} on {self.workload}]"
            if self.simulator or self.workload else ""
        )
        return f"{self.invariant}{where}: {self.message}"


class IntegrityError(RuntimeError):
    """Raised for fatal violations, or for any violation under strict
    mode."""

    def __init__(self, violation: InvariantViolation):
        super().__init__(str(violation))
        self.violation = violation


def _finite(value: float) -> bool:
    try:
        return math.isfinite(value)
    except TypeError:
        return False


class RunSanitizer:
    """Per-run invariant checker (one per (simulator, workload) cell).

    The pipeline calls :meth:`attach` once at the top of a run (handing
    over its config and memory hierarchy), :meth:`check_time` on the
    memory/fetch readiness paths, and — through the observer —
    :meth:`on_commit` per retired instruction.  :meth:`audit_result`
    runs the post-hoc checks on the finished :class:`SimResult`.

    Only the first occurrence of each invariant is recorded in full;
    repeats bump ``counts`` so a corrupted run cannot flood memory
    with violation records.
    """

    __slots__ = (
        "strict", "window", "simulator", "workload",
        "violations", "counts",
        "_prev_retire", "_since_check", "_config", "_hier", "_mafs",
    )

    def __init__(
        self,
        *,
        strict: bool = False,
        window: int = 2048,
        simulator: str = "",
        workload: str = "",
    ):
        self.strict = strict
        self.window = max(1, int(window))
        self.simulator = simulator
        self.workload = workload
        self.violations: List[InvariantViolation] = []
        self.counts: Dict[str, int] = {}
        self._prev_retire = 0.0
        self._since_check = 0
        self._config = None
        self._hier = None
        self._mafs: Tuple = ()

    # -- recording ---------------------------------------------------------

    def _violate(
        self,
        invariant: str,
        message: str,
        snapshot: Optional[Dict] = None,
        *,
        fatal: bool = False,
    ) -> None:
        count = self.counts.get(invariant, 0)
        self.counts[invariant] = count + 1
        if count == 0:
            violation = InvariantViolation(
                invariant=invariant,
                message=message,
                simulator=self.simulator,
                workload=self.workload,
                snapshot=snapshot or {},
            )
            self.violations.append(violation)
            if fatal or self.strict:
                raise IntegrityError(violation)

    # -- engine-side hooks -------------------------------------------------

    def attach(self, config, hierarchy) -> None:
        """Called by the pipeline at run start with its live state."""
        self._config = config
        self._hier = hierarchy
        mafs = []
        for maf in (hierarchy.maf_i, hierarchy.maf_d, hierarchy.maf_l2):
            # A shared MAF is one object behind three names.
            if all(maf is not other for other in mafs):
                mafs.append(maf)
        self._mafs = tuple(mafs)

    def check_time(self, stage: str, value: float, *, pc: int = 0) -> None:
        """Validate a readiness time the moment it is produced.

        Fatal: a NaN or infinite time poisons every later comparison
        (and would crash the engine's cycle arithmetic anyway), so the
        run cannot continue past it.
        """
        if not (_finite(value) and value >= 0.0):
            self._violate(
                "finite_latency",
                f"{stage} readiness time is {value!r} at pc={pc:#x}",
                {"stage": stage, "value": repr(value), "pc": pc},
                fatal=True,
            )

    def on_commit(
        self,
        fetch: float,
        map_time: float,
        issue: float,
        complete: float,
        retire: float,
        pc: int = 0,
    ) -> None:
        """Per-instruction hook (called by the observer's commit)."""
        prev = self._prev_retire
        # The negated form catches NaN (every comparison with NaN is
        # false) as well as plain regressions.
        if not retire >= prev:
            self._violate(
                "cycle_monotonicity",
                f"retire time went backwards: {retire!r} after {prev!r} "
                f"at pc={pc:#x}",
                {"retire": repr(retire), "previous": repr(prev), "pc": pc},
            )
        else:
            self._prev_retire = retire
        self._since_check += 1
        if self._since_check >= self.window:
            self._since_check = 0
            self._window_checks(fetch, map_time, issue, complete, retire, pc)

    def _window_checks(
        self,
        fetch: float,
        map_time: float,
        issue: float,
        complete: float,
        retire: float,
        pc: int,
    ) -> None:
        times = (fetch, map_time, issue, complete, retire)
        if not all(_finite(t) and t >= 0.0 for t in times):
            self._violate(
                "finite_latency",
                f"non-finite stage time at pc={pc:#x}: {times!r}",
                {"times": [repr(t) for t in times], "pc": pc},
                fatal=True,
            )
        elif not (fetch <= map_time <= issue and complete <= retire):
            self._violate(
                "stage_order",
                f"pipeline stages out of order at pc={pc:#x}: "
                f"fetch={fetch:g} map={map_time:g} issue={issue:g} "
                f"complete={complete:g} retire={retire:g}",
                {"fetch": fetch, "map": map_time, "issue": issue,
                 "complete": complete, "retire": retire, "pc": pc},
            )
        for maf in self._mafs:
            occupancy = maf.occupancy_at(retire)
            entries = maf.config.entries
            if occupancy > entries:
                self._violate(
                    "maf_occupancy",
                    f"MAF tracks {occupancy} concurrently active fills "
                    f"at t={retire:g} but has only {entries} entries",
                    {"occupancy": occupancy, "entries": entries,
                     "time": retire},
                )

    # -- post-run audit ----------------------------------------------------

    def audit_result(
        self,
        result,
        *,
        expected_instructions: Optional[int] = None,
    ) -> List[InvariantViolation]:
        """Run the whole-result checks; returns violations so far."""
        self._audit_finite_stats(result)
        if (
            expected_instructions is not None
            and result.instructions != expected_instructions
        ):
            self._violate(
                "instruction_conservation",
                f"run retired {result.instructions} instructions but the "
                f"trace supplied {expected_instructions}",
                {"retired": result.instructions,
                 "expected": expected_instructions},
            )
        self._audit_ipc(result)
        self._audit_stack(result)
        self._audit_conservation(result)
        self._audit_maf_peak()
        self._audit_dram()
        return list(self.violations)

    def _audit_finite_stats(self, result) -> None:
        bad: Dict[str, str] = {}
        if not (_finite(result.cycles) and result.cycles > 0.0):
            bad["cycles"] = repr(result.cycles)
        if result.instructions < 0:
            bad["instructions"] = repr(result.instructions)
        for fld in dataclasses.fields(result.stats):
            if fld.name == "extra":
                continue
            value = getattr(result.stats, fld.name)
            if not (_finite(value) and value >= 0):
                bad[fld.name] = repr(value)
        if bad:
            self._violate(
                "finite_stats",
                "negative or non-finite counters: "
                + ", ".join(f"{k}={v}" for k, v in sorted(bad.items())),
                {"counters": bad},
            )

    def _audit_ipc(self, result) -> None:
        if result.instructions <= 0 or not _finite(result.cycles) \
                or result.cycles <= 0.0:
            return  # finite_stats already covers the degenerate cases
        bound = (
            float(self._config.retire_width)
            if self._config is not None else DEFAULT_IPC_BOUND
        )
        ipc = result.ipc
        if not 0.0 < ipc <= bound:
            self._violate(
                "ipc_bound",
                f"IPC {ipc:g} outside (0, {bound:g}]",
                {"ipc": ipc, "bound": bound, "cycles": result.cycles,
                 "instructions": result.instructions},
            )

    def _audit_stack(self, result) -> None:
        stack = result.cpi_stack
        if not stack or result.instructions <= 0:
            return
        total = sum(stack.values())
        cpi = result.cpi
        if not all(_finite(v) for v in stack.values()) or abs(
            total - cpi
        ) > _STACK_TOLERANCE * max(1.0, abs(cpi)):
            self._violate(
                "cpi_stack_sum",
                f"CPI stack sums to {total:.9g} but the run's CPI is "
                f"{cpi:.9g}",
                {"stack": {k: repr(v) for k, v in stack.items()},
                 "sum": repr(total), "cpi": cpi},
            )

    def _audit_maf_peak(self) -> None:
        """Peak concurrent occupancy vs. capacity, post-run.

        In-order retirement means every fill from retired instructions
        has completed by the retire frontier, so the live window probe
        can never see oversubscription — but the MAF records its peak
        occupancy at each allocation instant, and that peak exceeds
        ``entries`` exactly when ``present_miss`` admitted a miss it
        should have stalled (the PR 2 bug).
        """
        for maf in self._mafs:
            peak = getattr(maf, "peak_occupancy", 0)
            entries = maf.config.entries
            if peak > entries:
                self._violate(
                    "maf_occupancy",
                    f"MAF peak occupancy {peak} exceeds its "
                    f"{entries} entries — misses were admitted while "
                    f"the file was full",
                    {"peak": peak, "entries": entries,
                     "full_stalls": maf.stats.full_stalls,
                     "allocations": maf.stats.allocations},
                )

    def _audit_dram(self) -> None:
        """The SDRAM model's own counters against its invariants.

        Uses the attached hierarchy's DRAM (the one the run actually
        drove), so a fault that corrupts the counters — or a model
        change that breaks hit/miss partitioning — is caught on any
        workload whose traffic reaches main memory at all.
        """
        hier = self._hier
        if hier is None:
            return
        dram = getattr(hier, "dram", None)
        if dram is None:
            return
        stats = dram.stats
        counters = {
            "accesses": stats.accesses,
            "row_hits": stats.row_hits,
            "row_misses": stats.row_misses,
            "bank_conflicts": stats.bank_conflicts,
            "precharges": stats.precharges,
        }
        if (
            any(c < 0 for c in counters.values())
            or stats.row_hits + stats.row_misses != stats.accesses
            or not 0.0 <= stats.row_hit_rate <= 1.0
        ):
            self._violate(
                "dram_row_accounting",
                f"row counters do not partition the access mix: "
                f"{stats.row_hits} hits + {stats.row_misses} misses != "
                f"{stats.accesses} accesses "
                f"(hit rate {stats.row_hit_rate:g})",
                dict(counters, row_hit_rate=stats.row_hit_rate),
            )
            return  # dependent checks below would only echo the damage
        if stats.bank_conflicts > stats.accesses:
            self._violate(
                "dram_bank_conservation",
                f"{stats.bank_conflicts} bank conflicts from only "
                f"{stats.accesses} accesses — at most one conflict can "
                f"be charged per access",
                counters,
            )
        policy = dram.config.page_policy
        if policy == "closed":
            ok = (
                stats.row_hits == 0
                and stats.precharges == stats.accesses
            )
        else:  # open page: precharge exactly when a conflicting row was open
            ok = stats.precharges <= stats.row_misses
        if not ok:
            self._violate(
                "dram_page_policy",
                f"counters inconsistent with {policy}-page policy: "
                f"{stats.row_hits} row hits, {stats.precharges} "
                f"precharges over {stats.accesses} accesses "
                f"({stats.row_misses} row misses)",
                dict(counters, page_policy=policy),
            )

    def _audit_conservation(self, result) -> None:
        """Architectural counters vs. the hierarchy's own bookkeeping.

        Requires the attached hierarchy, and holds exactly: the
        pipeline bumps ``dcache_misses``/``icache_misses`` once per
        L1 access that missed, and the caches count the same events
        from the other side.
        """
        hier = self._hier
        if hier is None:
            return
        stats = result.stats
        pairs = (
            ("dcache_misses", stats.dcache_misses, hier.l1d.stats.misses),
            ("icache_misses", stats.icache_misses, hier.l1i.stats.misses),
        )
        for name, counted, ground_truth in pairs:
            if counted != ground_truth:
                self._violate(
                    "cache_conservation",
                    f"pipeline counted {counted} {name} but the cache "
                    f"recorded {ground_truth} misses",
                    {"counter": name, "pipeline": counted,
                     "cache": ground_truth},
                )


class Sanitizers:
    """User-facing bundle: policy + the per-run sanitizers it built.

    Mirrors :class:`repro.obs.Instrumentation`: ``enabled=False`` makes
    :meth:`run_sanitizer` return ``None``, which every integration
    point treats as "no sanitization" — the zero-cost mode and the
    default.  ``strict=True`` escalates the first violation of any run
    to an :class:`IntegrityError` instead of quarantining.
    """

    def __init__(
        self,
        *,
        enabled: bool = True,
        strict: bool = False,
        window: int = 2048,
    ):
        self.enabled = enabled
        self.strict = strict
        self.window = window
        #: Per-run sanitizers handed out so far, in run order.
        self.runs: List[RunSanitizer] = []

    @classmethod
    def disabled(cls) -> "Sanitizers":
        return cls(enabled=False)

    def run_sanitizer(
        self, *, simulator: str = "", workload: str = ""
    ) -> Optional[RunSanitizer]:
        """A fresh per-run sanitizer, or ``None`` when disabled."""
        if not self.enabled:
            return None
        sanitizer = RunSanitizer(
            strict=self.strict,
            window=self.window,
            simulator=simulator,
            workload=workload,
        )
        self.runs.append(sanitizer)
        return sanitizer

    def take_violations(self) -> List[InvariantViolation]:
        """Drain every violation collected since the last call."""
        violations = [v for run in self.runs for v in run.violations]
        self.runs.clear()
        return violations
