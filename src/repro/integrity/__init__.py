"""Simulation integrity: invariant sanitizers, fault injection,
watchdogs, and grid checkpointing.

The paper treats simulator *error* as a measurable quantity; this
package defends against the error class the paper cannot measure —
silent state corruption inside the simulators themselves.  Four
layers:

* :mod:`repro.integrity.sanitizers` — runtime invariant checkers
  riding the observability hook (cycle monotonicity, MAF occupancy,
  CPI-stack exact-sum, IPC bounds, event-count conservation, finite
  latencies), with a null-object disabled mode;
* :mod:`repro.integrity.watchdog` — livelock detection inside the
  timing engine and a wall-clock heartbeat for worker processes,
  raising a diagnosable :class:`SimulationStuck`;
* :mod:`repro.integrity.checkpoint` — atomic persistence of partial
  grids so interrupted runs resume instead of recomputing;
* :mod:`repro.integrity.faultinject` — deliberate perturbations of
  running simulators that *prove* the layers above actually detect
  each corruption class (the detection matrix);
* :mod:`repro.integrity.chaos` — the same adversarial discipline one
  level up: kill shard runners and coordinators, drop/duplicate/delay
  their messages, corrupt their journals, and *prove* the sharded
  execution fabric still produces byte-identical grids.
"""

from repro.integrity.checkpoint import CheckpointConflict, GridCheckpoint
from repro.integrity.sanitizers import (
    IntegrityError,
    InvariantViolation,
    RunSanitizer,
    Sanitizers,
)
from repro.integrity.watchdog import PORT_SCAN_LIMIT, SimulationStuck, Watchdog

__all__ = [
    "CheckpointConflict",
    "GridCheckpoint",
    "IntegrityError",
    "InvariantViolation",
    "RunSanitizer",
    "Sanitizers",
    "SimulationStuck",
    "Watchdog",
    "PORT_SCAN_LIMIT",
]
