"""Grid checkpointing: atomic persistence of partially completed grids.

A long parallel grid run that dies at cell 900 of 1000 currently
recomputes everything.  :class:`GridCheckpoint` is a merge-journal the
execution engine writes as cells complete: each completed cell is
recorded under its content-addressed cache-key digest, and the whole
journal is rewritten atomically (temp file + ``os.replace``) every
``every`` completions, so the file on disk is always a valid snapshot
— a kill at any instant loses at most the last ``every - 1`` cells.

On the next run, ``resume=True`` loads the journal and satisfies any
cell whose digest matches a recorded entry, so only the missing cells
execute.  Because entries are keyed by the same digest the result
cache uses (configuration hash + trace fingerprint + package version),
a checkpoint can never resurrect a stale result for a changed
configuration: the digest simply will not match.

The journal always *merges* on flush — existing entries on disk are
loaded first even when not resuming — so two interleaved runs over
different cells of the same grid extend one journal instead of
clobbering each other.

Merge-on-flush has a cost: a journal shared across reconfigurations
grows monotonically, accumulating entries whose digests no grid will
ever ask for again.  :meth:`GridCheckpoint.gc` prunes by entry age
and/or a live-digest set; the v2 journal format stamps each entry with
its record time to make the age pass possible.  v1 journals still
load (their entries are treated as recorded at load time, so an age
pass never silently destroys pre-timestamp work) and are upgraded to
v2 on the next flush.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from typing import Dict, Iterable, List, Optional

from repro.result import SimResult

__all__ = ["CheckpointConflict", "GridCheckpoint"]


class CheckpointConflict(ValueError):
    """Two journal entries under the same digest hold *different*
    measurements.

    The digest binds configuration hash, trace fingerprint and package
    version, so any two honest recomputations of the same digest must
    agree canonically (volatile provenance/telemetry aside).  A
    mismatch means one of the journals is corrupt or the determinism
    invariant broke — silently keeping either payload would launder the
    corruption into downstream grids, so merges raise instead of
    last-write-wins."""


class GridCheckpoint:
    """Append-ish journal of completed grid cells, keyed by cache-key
    digest, rewritten atomically.

    Parameters
    ----------
    path:
        Journal file location (created on first flush; parent
        directory is created if missing).
    every:
        Flush after this many newly recorded cells.  ``1`` (the
        default) flushes on every completion — the safest setting and
        cheap next to a timing run; raise it for very fast cells.
    """

    FORMAT = "repro-grid-checkpoint/2"
    #: The pre-GC format: plain digest -> result cells, no timestamps.
    FORMAT_V1 = "repro-grid-checkpoint/1"

    def __init__(self, path, *, every: int = 1):
        self.path = os.fspath(path)
        self.every = max(1, int(every))
        self._entries: Dict[str, SimResult] = {}
        #: Unix timestamp each digest was recorded (or first seen, for
        #: entries loaded from a v1 journal).
        self._recorded: Dict[str, float] = {}
        self._dirty = 0
        self._loaded = False

    # -- reading -----------------------------------------------------------

    def load(self) -> Dict[str, SimResult]:
        """Read the journal from disk (merging into memory) and return
        a digest -> :class:`SimResult` mapping.

        Missing file means an empty journal; a corrupt or
        wrong-format file raises ``ValueError`` rather than silently
        discarding completed work.
        """
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            self._loaded = True
            return dict(self._entries)
        except json.JSONDecodeError as exc:
            raise ValueError(
                f"corrupt grid checkpoint {self.path!r}: {exc}"
            ) from exc
        fmt = payload.get("format")
        if fmt not in (self.FORMAT, self.FORMAT_V1):
            raise ValueError(
                f"not a grid checkpoint: {self.path!r} has format="
                f"{fmt!r} (expected {self.FORMAT!r})"
            )
        now = time.time()
        for digest, entry in payload.get("cells", {}).items():
            if fmt == self.FORMAT_V1:
                result, recorded = entry, now
            else:
                result = entry["result"]
                recorded = float(entry.get("recorded", now))
            incoming = SimResult.from_dict(result)
            # In-memory entries are newer than what was on disk — but
            # a same-digest entry must *agree* with ours canonically;
            # a disagreement is corruption, never a dedup.
            existing = self._entries.get(digest)
            if existing is not None:
                if existing.canonical_dict() != incoming.canonical_dict():
                    raise CheckpointConflict(
                        f"checkpoint {self.path!r} holds a conflicting "
                        f"result for digest {digest}: same cell digest, "
                        f"different measurement (refusing to merge)"
                    )
                continue
            self._entries[digest] = incoming
            self._recorded[digest] = recorded
        self._loaded = True
        return dict(self._entries)

    def get(self, digest: str) -> Optional[SimResult]:
        if not self._loaded:
            self.load()
        return self._entries.get(digest)

    def __len__(self) -> int:
        return len(self._entries)

    # -- writing -----------------------------------------------------------

    def record(self, digest: str, result: SimResult) -> None:
        """Journal one completed cell; flushes every ``every`` records.

        A flush is *durable* (fsync, not just atomic-rename) before
        this returns, so acknowledging the cell to a coordinator that
        then stops re-leasing it can never be rolled back by a host
        power loss."""
        self._entries[digest] = result
        self._recorded[digest] = time.time()
        self._dirty += 1
        if self._dirty >= self.every:
            self.flush()

    def merge_from(self, path) -> int:
        """Merge another journal's entries into this one (the shard-
        journal merge) and return how many were new.

        Entries whose digest we already hold are deduplicated when the
        payloads agree canonically (byte-identical measurement; the
        volatile provenance/telemetry fields are ignored) and raise
        :class:`CheckpointConflict` when they do not — a silent
        last-write-wins would launder a corrupted shard into the merged
        grid.  The merge only updates memory; call :meth:`flush` to
        persist it."""
        other = GridCheckpoint(path)
        loaded = other.load()
        added = 0
        for digest, incoming in loaded.items():
            existing = self._entries.get(digest)
            if existing is None:
                self._entries[digest] = incoming
                self._recorded[digest] = other._recorded.get(
                    digest, time.time()
                )
                self._dirty += 1
                added += 1
            elif existing.canonical_dict() != incoming.canonical_dict():
                raise CheckpointConflict(
                    f"shard journal {other.path!r} conflicts with "
                    f"{self.path!r} on digest {digest}: same cell "
                    f"digest, different measurement (refusing to merge)"
                )
        return added

    def flush(self) -> None:
        """Atomically and durably rewrite the journal with every known
        entry.

        Merges with whatever is on disk first (another run may have
        extended the journal since we last read it), then writes to a
        temp file in the same directory, fsyncs it, and
        ``os.replace``s it over the journal (followed by a directory
        fsync where the platform allows), so readers never observe a
        torn file and a completed flush survives power loss.
        """
        if not self._loaded:
            try:
                self.load()
            except CheckpointConflict:
                raise
            except ValueError:
                # A corrupt journal must not block writing a good one.
                self._loaded = True
        payload = {
            "format": self.FORMAT,
            "cells": {
                digest: {
                    "recorded": self._recorded.get(digest, 0.0),
                    "result": result.to_dict(),
                }
                for digest, result in sorted(self._entries.items())
            },
        }
        directory = os.path.dirname(self.path) or "."
        os.makedirs(directory, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(
            dir=directory, prefix=".checkpoint-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, sort_keys=True)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, self.path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        try:
            # Persist the rename itself: without the directory fsync a
            # power loss can roll the journal back to its previous
            # (complete but stale) snapshot even though record()
            # already acknowledged the newest cells.
            dir_fd = os.open(directory, os.O_RDONLY)
            try:
                os.fsync(dir_fd)
            finally:
                os.close(dir_fd)
        except OSError:  # pragma: no cover - platform without dir fsync
            pass

        self._dirty = 0

    # -- garbage collection ------------------------------------------------

    def gc(
        self,
        *,
        max_age_s: Optional[float] = None,
        live: Optional[Iterable[str]] = None,
        now: Optional[float] = None,
    ) -> List[str]:
        """Prune journal entries and rewrite the file; returns the
        pruned digests (sorted).

        ``max_age_s`` drops entries recorded longer ago than that
        (v1-era entries count as recorded when first loaded, so an
        age pass cannot destroy work that predates timestamps);
        ``live`` drops entries whose digest is not in the given set —
        pass the digests of the grid you still care about to shed
        every stale reconfiguration at once (an explicitly *empty*
        live set prunes every entry).  Passing neither is a no-op
        beyond a (possibly upgrading) rewrite of the journal.
        """
        # Re-merge from disk *before* pruning: another run may have
        # extended the journal since our last read, and the rewrite
        # below must not clobber its cells.  (Flushing the stale
        # in-memory view here used to drop concurrent work silently.)
        # The prune criteria then apply uniformly to merged and
        # in-memory entries, so pruned digests still leave the file —
        # they are judged dead, not merely skipped during the merge.
        self._loaded = False
        try:
            self.load()
        except CheckpointConflict:
            raise
        except ValueError:
            # A corrupt journal must not block writing a good one.
            self._loaded = True
        cutoff = None
        if max_age_s is not None:
            cutoff = (time.time() if now is None else now) - max_age_s
        keep = set(live) if live is not None else None

        pruned = []
        for digest in list(self._entries):
            recorded = self._recorded.get(digest, 0.0)
            stale = cutoff is not None and recorded < cutoff
            dead = keep is not None and digest not in keep
            if stale or dead:
                del self._entries[digest]
                self._recorded.pop(digest, None)
                pruned.append(digest)
        self.flush()
        return sorted(pruned)
