"""Livelock detection: a diagnosable alternative to hanging a worker.

Two mechanisms, both cheap enough to be always-on or nearly so:

* **scan bounds** — the pipeline's issue-port and retire-port
  arbitration loops scan forward for a free cycle.  A corrupted width
  (or a NaN-poisoned cycle) turns that scan into an infinite loop; the
  engine bounds it at :data:`PORT_SCAN_LIMIT` cycles and raises
  :class:`SimulationStuck` with the instruction index and the stuck
  resource instead of spinning forever;
* **heartbeat** — a :class:`Watchdog` object, beaten every few
  thousand instructions by :meth:`AlphaPipeline.run_trace`, that
  raises once the retire frontier has stopped advancing for a
  configured wall-clock budget.  The execution engine threads one into
  every worker process (``stuck_after=``), so a livelocked cell dies
  with a diagnosis *inside* the worker rather than being opaquely
  terminated by the parent's timeout.

A third mechanism covers the gap between the two: a worker whose
watchdog never fires (too generous a budget, or a hang outside the
timed loop) is eventually killed by the parent's wall-clock timeout,
losing every clue about where it was.  :func:`install_escalation_handler`
arms SIGUSR1 in the worker so the parent can *ask* for a diagnosis
first: the handler raises :class:`SimulationStuck` carrying the last
heartbeat the process saw, the worker's normal stuck-reporting path
ships the snapshot home, and only then does the parent terminate it.
"""

from __future__ import annotations

import signal
import time
from typing import Callable, Dict, Optional

__all__ = [
    "SimulationStuck",
    "Watchdog",
    "PORT_SCAN_LIMIT",
    "install_escalation_handler",
    "record_heartbeat",
]

#: Cycles a port-arbitration scan may advance past its start before the
#: engine declares livelock.  Three orders of magnitude above anything
#: a congested-but-correct model produces.
PORT_SCAN_LIMIT = 1_000_000


class SimulationStuck(RuntimeError):
    """A timing run stopped making forward progress.

    Carries enough state to diagnose the hang without re-running:
    how many instructions had been timed, where the retire frontier
    froze, and which mechanism detected the stall.
    """

    def __init__(
        self,
        detail: str,
        *,
        instructions: int = 0,
        retire: float = 0.0,
        state: Optional[Dict] = None,
    ):
        super().__init__(
            f"simulation stuck: {detail} "
            f"(after {instructions} instructions, "
            f"retire frontier {retire:g})"
        )
        self.detail = detail
        self.instructions = instructions
        self.retire = retire
        #: Pipeline stage/port state at detection time (see
        #: :func:`record_heartbeat`): where in the loop the engine was,
        #: plus window/queue/port occupancies — what localises a hang
        #: on a remote shard where no debugger can reach.
        self.state = state


class Watchdog:
    """Raises :class:`SimulationStuck` when retirement stops advancing.

    ``beat(instructions, retire)`` is called periodically by the timing
    engine; any advance of the retire frontier resets the stall clock.
    A beat arriving with no progress after ``stall_s`` wall-clock
    seconds raises.  ``clock`` is injectable for tests.
    """

    __slots__ = ("stall_s", "_clock", "_last_retire", "_last_progress_at")

    def __init__(
        self,
        stall_s: float = 60.0,
        *,
        clock: Callable[[], float] = time.perf_counter,
    ):
        if stall_s <= 0:
            raise ValueError(f"stall_s must be positive (got {stall_s})")
        self.stall_s = stall_s
        self._clock = clock
        self._last_retire: Optional[float] = None
        self._last_progress_at = 0.0

    def beat(
        self,
        instructions: int,
        retire: float,
        state: Optional[Dict] = None,
    ) -> None:
        """Report progress; raises if the frontier has been stuck."""
        record_heartbeat(instructions, retire, state)
        now = self._clock()
        if self._last_retire is None or retire > self._last_retire:
            self._last_retire = retire
            self._last_progress_at = now
            return
        stalled = now - self._last_progress_at
        if stalled >= self.stall_s:
            raise SimulationStuck(
                f"retire frontier has not advanced in {stalled:.1f}s "
                f"(watchdog budget {self.stall_s:g}s)",
                instructions=instructions,
                retire=retire,
                state=state,
            )


#: The most recent heartbeat any :class:`Watchdog` in this process
#: received — what the escalation handler reports when the parent asks
#: a wall-clock-expired worker where it got stuck.  Workers are
#: single-cell processes, so one record suffices.
_last_beat = {"instructions": 0, "retire": 0.0, "state": None}


def record_heartbeat(
    instructions: int,
    retire: float,
    state: Optional[Dict] = None,
) -> None:
    """Update the process-wide heartbeat the escalation handler reports.

    The timing engine calls this on its heartbeat stride even when no
    :class:`Watchdog` is armed, passing a small pipeline-state dict
    (current stage, window/queue occupancies, port frontiers).  A
    SIGUSR1 escalation then dumps *where in the pipeline* the run was,
    not just how far it had got.
    """
    _last_beat["instructions"] = instructions
    _last_beat["retire"] = retire
    if state is not None:
        _last_beat["state"] = state


def _escalate(signum, frame):
    raise SimulationStuck(
        "parent escalated a wall-clock timeout (SIGUSR1)",
        instructions=_last_beat["instructions"],
        retire=_last_beat["retire"],
        state=_last_beat["state"],
    )


def install_escalation_handler() -> bool:
    """Arm SIGUSR1 to raise :class:`SimulationStuck` in this process.

    Called by pool workers on startup.  When the parent's per-cell
    timeout expires it sends SIGUSR1 before terminating; the raise
    interrupts whatever the worker is doing (Python signal handlers run
    between bytecodes, and interrupt ``time.sleep``-style waits), so
    the worker's existing stuck-reporting path ships a diagnosis —
    last heartbeat, detail — over the pipe before the kill lands.

    Returns ``False`` on platforms without SIGUSR1 (no handler armed).
    """
    if not hasattr(signal, "SIGUSR1"):  # pragma: no cover - non-POSIX
        return False
    signal.signal(signal.SIGUSR1, _escalate)
    return True
