"""Livelock detection: a diagnosable alternative to hanging a worker.

Two mechanisms, both cheap enough to be always-on or nearly so:

* **scan bounds** — the pipeline's issue-port and retire-port
  arbitration loops scan forward for a free cycle.  A corrupted width
  (or a NaN-poisoned cycle) turns that scan into an infinite loop; the
  engine bounds it at :data:`PORT_SCAN_LIMIT` cycles and raises
  :class:`SimulationStuck` with the instruction index and the stuck
  resource instead of spinning forever;
* **heartbeat** — a :class:`Watchdog` object, beaten every few
  thousand instructions by :meth:`AlphaPipeline.run_trace`, that
  raises once the retire frontier has stopped advancing for a
  configured wall-clock budget.  The execution engine threads one into
  every worker process (``stuck_after=``), so a livelocked cell dies
  with a diagnosis *inside* the worker rather than being opaquely
  terminated by the parent's timeout.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

__all__ = ["SimulationStuck", "Watchdog", "PORT_SCAN_LIMIT"]

#: Cycles a port-arbitration scan may advance past its start before the
#: engine declares livelock.  Three orders of magnitude above anything
#: a congested-but-correct model produces.
PORT_SCAN_LIMIT = 1_000_000


class SimulationStuck(RuntimeError):
    """A timing run stopped making forward progress.

    Carries enough state to diagnose the hang without re-running:
    how many instructions had been timed, where the retire frontier
    froze, and which mechanism detected the stall.
    """

    def __init__(
        self,
        detail: str,
        *,
        instructions: int = 0,
        retire: float = 0.0,
    ):
        super().__init__(
            f"simulation stuck: {detail} "
            f"(after {instructions} instructions, "
            f"retire frontier {retire:g})"
        )
        self.detail = detail
        self.instructions = instructions
        self.retire = retire


class Watchdog:
    """Raises :class:`SimulationStuck` when retirement stops advancing.

    ``beat(instructions, retire)`` is called periodically by the timing
    engine; any advance of the retire frontier resets the stall clock.
    A beat arriving with no progress after ``stall_s`` wall-clock
    seconds raises.  ``clock`` is injectable for tests.
    """

    __slots__ = ("stall_s", "_clock", "_last_retire", "_last_progress_at")

    def __init__(
        self,
        stall_s: float = 60.0,
        *,
        clock: Callable[[], float] = time.perf_counter,
    ):
        if stall_s <= 0:
            raise ValueError(f"stall_s must be positive (got {stall_s})")
        self.stall_s = stall_s
        self._clock = clock
        self._last_retire: Optional[float] = None
        self._last_progress_at = 0.0

    def beat(self, instructions: int, retire: float) -> None:
        """Report progress; raises if the frontier has been stuck."""
        now = self._clock()
        if self._last_retire is None or retire > self._last_retire:
            self._last_retire = retire
            self._last_progress_at = now
            return
        stalled = now - self._last_progress_at
        if stalled >= self.stall_s:
            raise SimulationStuck(
                f"retire frontier has not advanced in {stalled:.1f}s "
                f"(watchdog budget {self.stall_s:g}s)",
                instructions=instructions,
                retire=retire,
            )
