"""Chaos harness: prove the shard coordinator survives real crashes.

:mod:`repro.integrity.faultinject` corrupts *simulators* and demands
the sanitizers catch them; this module corrupts the **execution
fabric** one level up — the shard coordinator, its runners, their
messages, and their journals — and demands the distributed invariants
hold:

==========================  ===========================================
scenario                    what it proves
==========================  ===========================================
``clean_control``           an undisturbed sharded run is byte-identical
                            to the serial run (the yardstick every other
                            scenario is measured against)
``runner_sigkill``          SIGKILL a runner mid-grid with the respawn
                            budget at zero: survivors steal its cells,
                            its journaled work is recovered not redone
``message_drop``            every Nth coordinator-side message silently
                            vanishes (grants, acks, heartbeats): ready
                            resend + lease regrant + journal replay
                            converge anyway
``message_duplicate``       every Nth message arrives twice: at-most-once
                            commit dedups by digest (``shard.cells.
                            deduped`` must move)
``message_delay``           every Nth message stalls: nothing expires
                            spuriously, nothing is lost
``journal_corruption``      a runner's shard journal is garbage when the
                            runner dies: the journal is quarantined and
                            counted, its cells recompute
``coordinator_kill``        SIGKILL the *coordinator* mid-grid, then
                            resume: every journaled cell is recovered
                            (zero recompute of completed work), the
                            merged grid is byte-identical
==========================  ===========================================

Every scenario must end **complete and byte-identical**
(``ResultGrid.to_json(canonical=True)`` against the serial baseline)
or with a diagnosable :class:`CellFailure` — never a hang and never a
silently missing or doubled cell.  :attr:`ChaosReport.all_passed` is
the CI gate (the ``chaos-smoke`` job runs the kill scenarios under a
hard wall-clock timeout precisely so a hang fails loudly).

The injection seam is :class:`ChaosTransport`, a wrapper over the
coordinator-side :class:`~repro.exec.shard.Transport` installed via
``ShardCoordinator(transport_wrapper=...)`` — production code paths
only, no test doubles inside the coordinator.
"""

from __future__ import annotations

import dataclasses
import json
import os
import shutil
import signal
import tempfile
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.exec.coordinator import ShardCoordinator, shard_status
from repro.exec.shard import Transport, shard_journal_path
from repro.exec.spec import RunOptions
from repro.obs.registry import MetricsRegistry
from repro.result import RunStats, SimResult
from repro.validation.harness import Harness
from repro.workloads.suite import WorkloadSet

__all__ = [
    "CHAOS_SCENARIOS",
    "ChaosOutcome",
    "ChaosReport",
    "ChaosTransport",
    "run_chaos_scenario",
    "run_chaos_suite",
]

#: Workloads every scenario runs (small but two-family, so lease
#: stealing has real work to move around).
CHAOS_WORKLOADS = ("C-R", "E-I")
#: Simulator columns per scenario grid.
CHAOS_SIMS = 4


# -- the perturbed transport -----------------------------------------------


class ChaosTransport(Transport):
    """Deterministically hostile :class:`Transport` wrapper.

    Counts messages in each direction and, on every ``*_every``-th one,
    drops it (a send vanishes; a recv looks like a timeout), duplicates
    it (recv only: the copy is queued and surfaced through
    :meth:`pending`, exactly the buffered-message case the coordinator
    must poll for), or delays it by ``delay_s``.  Counter-based rather
    than random, so every chaos run is reproducible.
    """

    def __init__(
        self,
        inner: Transport,
        *,
        drop_every: int = 0,
        duplicate_every: int = 0,
        delay_every: int = 0,
        delay_s: float = 0.05,
    ):
        self.inner = inner
        self.drop_every = int(drop_every)
        self.duplicate_every = int(duplicate_every)
        self.delay_every = int(delay_every)
        self.delay_s = float(delay_s)
        self.sent = 0
        self.received = 0
        self.dropped = 0
        self.duplicated = 0
        self.delayed = 0
        self._queued: deque = deque()

    @property
    def connection(self):
        return self.inner.connection

    def _hit(self, every: int, count: int) -> bool:
        return every > 0 and count % every == 0

    def send(self, message) -> None:
        self.sent += 1
        if self._hit(self.drop_every, self.sent):
            self.dropped += 1
            return
        if self._hit(self.delay_every, self.sent):
            self.delayed += 1
            time.sleep(self.delay_s)
        self.inner.send(message)

    def recv(self, timeout: Optional[float] = None):
        if self._queued:
            return self._queued.popleft()
        message = self.inner.recv(timeout)
        if message is None:
            return None
        self.received += 1
        if self._hit(self.drop_every, self.received):
            self.dropped += 1
            return None
        if self._hit(self.delay_every, self.received):
            self.delayed += 1
            time.sleep(self.delay_s)
        if self._hit(self.duplicate_every, self.received):
            self.duplicated += 1
            self._queued.append(message)
        return message

    def poll(self, timeout: float = 0.0) -> bool:
        return bool(self._queued) or self.inner.poll(timeout)

    def pending(self) -> bool:
        return bool(self._queued)

    def close(self) -> None:
        self.inner.close()


# -- the workload under chaos ----------------------------------------------


@dataclass(frozen=True)
class _ChaosConfig:
    name: str
    cycles_per_instr: float = 2.0
    #: Per-cell wall-clock padding, widening the window in which a
    #: kill scenario can land mid-grid.
    delay_s: float = 0.0


class _ChaosSim:
    """Deterministic, nearly-free simulator for fabric chaos runs
    (the faults live in the fabric here, never in the simulator)."""

    def __init__(self, config: _ChaosConfig):
        self.config = config

    @property
    def name(self) -> str:
        return self.config.name

    def run_trace(self, trace, workload: str) -> SimResult:
        if self.config.delay_s:
            time.sleep(self.config.delay_s)
        instructions = len(trace)
        stats = RunStats()
        stats.extra["chaos_marker"] = float(instructions)
        return SimResult(
            simulator=self.name,
            workload=workload,
            cycles=instructions * self.config.cycles_per_instr,
            instructions=instructions,
            stats=stats,
        )


def _chaos_factory(name: str, *, cpi: float, delay_s: float = 0.0):
    config = _ChaosConfig(
        name=name, cycles_per_instr=cpi, delay_s=delay_s
    )
    return lambda: _ChaosSim(config)


def _factories(delay_s: float = 0.0):
    return [
        _chaos_factory(f"chaos-{i}", cpi=1.0 + 0.5 * i, delay_s=delay_s)
        for i in range(CHAOS_SIMS)
    ]


def _baseline(workloads: WorkloadSet, names, delay_s: float = 0.0) -> str:
    """Canonical serialisation of the undisturbed serial run — the
    byte-identity yardstick.  Must use the *same* factories as the
    chaos run (``delay_s`` is part of the frozen config and therefore
    of the provenance hash, so the baseline cannot substitute faster
    ones)."""
    grid = Harness(workloads=workloads).run_grid(
        _factories(delay_s), list(names)
    )
    return grid.to_json(canonical=True)


def _counters(metrics: MetricsRegistry) -> Dict[str, int]:
    return {
        name: counter.value
        for name, counter in sorted(metrics._counters.items())
        if name.startswith(("shard.", "exec."))
    }


# -- outcomes ---------------------------------------------------------------


@dataclass
class ChaosOutcome:
    """Verdict of one chaos scenario."""

    scenario: str
    description: str
    passed: bool
    #: Final grid matched the serial baseline byte-for-byte under
    #: canonical serialisation.
    byte_identical: bool
    detail: str = ""
    elapsed_s: float = 0.0
    #: ``shard.*`` / ``exec.*`` counters after the run — the recovery
    #: machinery's own account of what happened.
    counters: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> Dict:
        return dataclasses.asdict(self)


@dataclass
class ChaosReport:
    """The full chaos verdict across scenarios."""

    outcomes: List[ChaosOutcome] = field(default_factory=list)

    @property
    def all_passed(self) -> bool:
        return bool(self.outcomes) and all(
            outcome.passed for outcome in self.outcomes
        )

    def to_json(self) -> str:
        payload = {"outcomes": [o.to_dict() for o in self.outcomes]}
        return json.dumps(payload, sort_keys=True, indent=2) + "\n"

    def render(self) -> str:
        header = (
            f"{'scenario':<22} {'passed':<7} {'identical':<10} detail"
        )
        lines = [header, "-" * len(header)]
        for outcome in self.outcomes:
            lines.append(
                f"{outcome.scenario:<22} "
                f"{'yes' if outcome.passed else 'FAIL':<7} "
                f"{'yes' if outcome.byte_identical else 'NO':<10} "
                f"{outcome.detail}"
            )
        return "\n".join(lines)


# -- scenarios --------------------------------------------------------------


def _run_scenario(
    name: str,
    description: str,
    workloads: WorkloadSet,
    *,
    delay_s: float = 0.0,
    transport_wrapper=None,
    on_event=None,
    max_respawns: Optional[int] = None,
    lease_timeout_s: float = 15.0,
    checks: Optional[
        Callable[[Dict[str, int]], Optional[str]]
    ] = None,
) -> ChaosOutcome:
    """Common body: shard the grid under the given perturbation, then
    demand byte-identity plus scenario-specific counter evidence."""
    names = list(CHAOS_WORKLOADS)
    baseline = _baseline(workloads, names, delay_s)
    metrics = MetricsRegistry()
    started = time.perf_counter()
    coordinator = ShardCoordinator(
        workloads,
        RunOptions(shards=3),
        lease_timeout_s=lease_timeout_s,
        max_respawns=max_respawns,
        metrics=metrics,
        transport_wrapper=transport_wrapper,
        on_event=on_event,
    )
    grid = coordinator.run_grid(_factories(delay_s), names)
    elapsed = time.perf_counter() - started
    counters = _counters(metrics)
    identical = grid.to_json(canonical=True) == baseline
    detail = ""
    if not identical:
        missing = len(names) * CHAOS_SIMS - sum(
            len(row) for row in grid.results.values()
        )
        detail = (
            f"grid diverged from serial baseline "
            f"({missing} cells missing, "
            f"{len(grid.failures)} failures)"
        )
    elif checks is not None:
        detail = checks(counters) or ""
    passed = identical and not detail
    if passed:
        detail = _summarise(counters)
    return ChaosOutcome(
        scenario=name, description=description, passed=passed,
        byte_identical=identical, detail=detail,
        elapsed_s=round(elapsed, 3), counters=counters,
    )


def _summarise(counters: Dict[str, int]) -> str:
    interesting = (
        "shard.cells.computed", "shard.cells.recovered",
        "shard.cells.deduped", "shard.leases.regranted",
        "shard.runners.lost", "shard.journals.corrupt",
    )
    parts = [
        f"{key.split('.', 1)[1]}={counters[key]}"
        for key in interesting
        if counters.get(key)
    ]
    return ", ".join(parts) or "clean"


def _scenario_clean_control(workloads: WorkloadSet) -> ChaosOutcome:
    def checks(counters):
        if counters.get("shard.cells.deduped"):
            return "control run should commit nothing twice"
        if counters.get("shard.runners.lost"):
            return "control run should lose no runners"
        return None

    return _run_scenario(
        "clean_control",
        "undisturbed sharded run matches the serial run",
        workloads, checks=checks,
    )


def _scenario_runner_sigkill(workloads: WorkloadSet) -> ChaosOutcome:
    pids: Dict[int, int] = {}
    killed: List[int] = []

    def on_event(event: str, payload: Dict) -> None:
        if event == "runner_started":
            pids[payload["runner_id"]] = payload["pid"]
        elif (event == "cell_committed" and not killed
                and payload.get("runner_id") is not None):
            # Kill a runner that is *not* the one that just committed:
            # it is mid-lease (or about to be), so its loss exercises
            # the steal path, not just a clean exit.
            victims = [
                rid for rid in pids
                if rid != payload["runner_id"]
            ]
            if victims:
                os.kill(pids[victims[0]], signal.SIGKILL)
                killed.append(victims[0])

    def checks(counters):
        if not killed:
            return "no runner was killed (grid too fast?)"
        if not counters.get("shard.runners.lost"):
            return "kill was not observed as a lost runner"
        return None

    return _run_scenario(
        "runner_sigkill",
        "SIGKILL one runner mid-grid; survivors steal its cells",
        workloads, delay_s=0.1, max_respawns=0,
        lease_timeout_s=6.0, on_event=on_event, checks=checks,
    )


def _scenario_message_drop(workloads: WorkloadSet) -> ChaosOutcome:
    chaotic: List[ChaosTransport] = []

    def wrapper(transport, runner_id):
        if runner_id % 2 == 0:
            transport = ChaosTransport(transport, drop_every=3)
            chaotic.append(transport)
        return transport

    def checks(counters):
        if not any(t.dropped for t in chaotic):
            return "no message was actually dropped"
        return None

    return _run_scenario(
        "message_drop",
        "every 3rd coordinator-side message vanishes",
        workloads, transport_wrapper=wrapper,
        lease_timeout_s=6.0, checks=checks,
    )


def _scenario_message_duplicate(workloads: WorkloadSet) -> ChaosOutcome:
    chaotic: List[ChaosTransport] = []

    def wrapper(transport, runner_id):
        transport = ChaosTransport(transport, duplicate_every=2)
        chaotic.append(transport)
        return transport

    def checks(counters):
        if not any(t.duplicated for t in chaotic):
            return "no message was actually duplicated"
        return None

    return _run_scenario(
        "message_duplicate",
        "every 2nd received message arrives twice; commits dedup",
        workloads, transport_wrapper=wrapper, checks=checks,
    )


def _scenario_message_delay(workloads: WorkloadSet) -> ChaosOutcome:
    def wrapper(transport, runner_id):
        return ChaosTransport(transport, delay_every=2, delay_s=0.05)

    return _run_scenario(
        "message_delay",
        "every 2nd message stalls 50ms; nothing expires spuriously",
        workloads, transport_wrapper=wrapper,
    )


def _scenario_journal_corruption(workloads: WorkloadSet) -> ChaosOutcome:
    pids: Dict[int, int] = {}
    journals: Dict[int, str] = {}
    corrupted: List[int] = []

    def on_event(event: str, payload: Dict) -> None:
        if event == "runner_started":
            pids[payload["runner_id"]] = payload["pid"]
        elif (event == "cell_committed" and not corrupted
                and payload.get("runner_id") is not None):
            rid = payload["runner_id"]
            path = journals.get(rid)
            if path and os.path.exists(path):
                # Smash the journal the committing runner just fsynced,
                # then kill the runner: recovery must quarantine the
                # garbage and recompute, never crash or trust it.
                with open(path, "w", encoding="utf-8") as handle:
                    handle.write("{corrupt! this is not a journal")
                os.kill(pids[rid], signal.SIGKILL)
                corrupted.append(rid)

    def wrapper(transport, runner_id):
        return transport  # no message chaos; just note journal paths

    def checks(counters):
        if not corrupted:
            return "no journal was corrupted (grid too fast?)"
        if not counters.get("shard.journals.corrupt"):
            return "corrupt journal was not detected"
        return None

    names = list(CHAOS_WORKLOADS)
    baseline = _baseline(workloads, names, 0.1)
    metrics = MetricsRegistry()
    tmp = tempfile.mkdtemp(prefix="repro-chaos-journal-")
    base = os.path.join(tmp, "grid.journal")
    for rid in range(3):
        journals[rid] = shard_journal_path(base, rid)
    try:
        started = time.perf_counter()
        coordinator = ShardCoordinator(
            workloads, RunOptions(shards=3, checkpoint=base),
            lease_timeout_s=6.0, metrics=metrics, on_event=on_event,
            transport_wrapper=wrapper,
        )
        grid = coordinator.run_grid(_factories(0.1), names)
        elapsed = time.perf_counter() - started
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    counters = _counters(metrics)
    identical = grid.to_json(canonical=True) == baseline
    detail = "" if identical else "grid diverged from serial baseline"
    if identical:
        detail = checks(counters) or ""
    passed = identical and not detail
    if passed:
        detail = _summarise(counters)
    return ChaosOutcome(
        scenario="journal_corruption",
        description=(
            "a dead runner's shard journal is garbage; it is "
            "quarantined and its cells recompute"
        ),
        passed=passed, byte_identical=identical, detail=detail,
        elapsed_s=round(elapsed, 3), counters=counters,
    )


def _coordinator_child(base: str, names: Sequence[str]) -> None:
    """Body of the victim coordinator process (killed by the parent)."""
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    coordinator = ShardCoordinator(
        WorkloadSet(), RunOptions(shards=2, checkpoint=base),
        lease_timeout_s=15.0,
    )
    coordinator.run_grid(_factories(0.25), list(names))
    os._exit(0)


def _scenario_coordinator_kill(workloads: WorkloadSet) -> ChaosOutcome:
    """SIGKILL the whole coordinator mid-grid; a fresh coordinator
    with ``resume=True`` must finish from the journals without
    recomputing any journaled cell."""
    import multiprocessing

    names = list(CHAOS_WORKLOADS)
    baseline = _baseline(workloads, names, 0.25)
    tmp = tempfile.mkdtemp(prefix="repro-chaos-coord-")
    base = os.path.join(tmp, "grid.journal")
    ctx = multiprocessing.get_context("fork")
    started = time.perf_counter()
    child = ctx.Process(
        target=_coordinator_child, args=(base, names), daemon=False,
    )
    child.start()
    try:
        # Wait until at least one cell is durably journaled, then pull
        # the plug on the whole coordinator process tree.
        journaled = 0
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline and child.is_alive():
            status = shard_status(base)
            journaled = sum(
                record["entries"] for record in status["journals"]
            )
            if journaled >= 1:
                break
            time.sleep(0.05)
        if child.is_alive():
            os.kill(child.pid, signal.SIGKILL)
        child.join(timeout=10.0)

        total = len(names) * CHAOS_SIMS
        if journaled < 1:
            return ChaosOutcome(
                scenario="coordinator_kill",
                description="kill and resume the coordinator itself",
                passed=False, byte_identical=False,
                detail="coordinator finished before it could be killed",
                counters={},
            )

        metrics = MetricsRegistry()
        coordinator = ShardCoordinator(
            workloads,
            RunOptions(shards=2, checkpoint=base, resume=True),
            lease_timeout_s=15.0, metrics=metrics,
        )
        # Same factories (and thus digests) as the killed coordinator.
        grid = coordinator.run_grid(_factories(0.25), names)
        elapsed = time.perf_counter() - started
        counters = _counters(metrics)
        identical = grid.to_json(canonical=True) == baseline
        recovered = counters.get("shard.cells.recovered", 0)
        computed = counters.get("shard.cells.computed", 0)
        detail = ""
        if not identical:
            detail = "resumed grid diverged from serial baseline"
        elif recovered < journaled:
            detail = (
                f"only {recovered} of {journaled} journaled cells "
                f"were recovered — completed work was recomputed"
            )
        elif recovered + computed != total:
            detail = (
                f"recovered ({recovered}) + computed ({computed}) "
                f"!= total cells ({total})"
            )
        passed = identical and not detail
        if passed:
            detail = (
                f"killed with {journaled} journaled, recovered="
                f"{recovered}, computed={computed}"
            )
        return ChaosOutcome(
            scenario="coordinator_kill",
            description="kill and resume the coordinator itself",
            passed=passed, byte_identical=identical, detail=detail,
            elapsed_s=round(elapsed, 3), counters=counters,
        )
    finally:
        if child.is_alive():  # pragma: no cover - cleanup race
            child.kill()
            child.join(timeout=5.0)
        shutil.rmtree(tmp, ignore_errors=True)


#: scenario name -> (description, implementation).
CHAOS_SCENARIOS: Dict[str, tuple] = {
    "clean-control": (
        "undisturbed sharded run, byte-identical to serial",
        _scenario_clean_control,
    ),
    "runner-sigkill": (
        "SIGKILL a runner mid-grid; survivors steal its cells",
        _scenario_runner_sigkill,
    ),
    "message-drop": (
        "drop every 3rd coordinator-side message",
        _scenario_message_drop,
    ),
    "message-duplicate": (
        "duplicate every 2nd received message",
        _scenario_message_duplicate,
    ),
    "message-delay": (
        "delay every 2nd message by 50ms",
        _scenario_message_delay,
    ),
    "journal-corruption": (
        "corrupt a dead runner's shard journal",
        _scenario_journal_corruption,
    ),
    "coordinator-kill": (
        "SIGKILL the coordinator, then resume from journals",
        _scenario_coordinator_kill,
    ),
}


def run_chaos_scenario(
    name: str, workloads: Optional[WorkloadSet] = None,
) -> ChaosOutcome:
    """Run one scenario by registry name."""
    try:
        _, implementation = CHAOS_SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown chaos scenario {name!r}; known: "
            f"{', '.join(sorted(CHAOS_SCENARIOS))}"
        ) from None
    return implementation(workloads or WorkloadSet())


def run_chaos_suite(
    scenarios: Optional[Sequence[str]] = None,
    workloads: Optional[WorkloadSet] = None,
) -> ChaosReport:
    """Run the named scenarios (default: all, registry order)."""
    workloads = workloads or WorkloadSet()
    report = ChaosReport()
    for name in scenarios or list(CHAOS_SCENARIOS):
        report.outcomes.append(run_chaos_scenario(name, workloads))
    return report
