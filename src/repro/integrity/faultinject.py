"""Fault injection: prove the integrity layers actually detect faults.

Sanitizers that have never seen a corrupted run are unfalsifiable.
This module deliberately perturbs running simulators — one fault class
at a time — and records how (and whether) each fault was caught,
producing a **detection matrix**:

==============================  ==========================================
fault class                     expected detection channel
==============================  ==========================================
``maf_oversubscribe``           ``invariant:maf_occupancy`` (the PR 2 bug)
``shared_maf_oversubscribe``    ``invariant:maf_occupancy`` (native
                                machine's single MAF: three names, one
                                object, combined i/d/L2 traffic)
``cycle_skew``                  ``invariant:cycle_monotonicity``
``nan_dram_latency``            MAF fill guard / ``finite_latency``
``trace_truncation``            ``invariant:instruction_conservation``
``ipc_overflow``                ``invariant:ipc_bound``
``cpi_stack_leak``              ``invariant:cpi_stack_sum``
``event_count_corruption``      ``invariant:cache_conservation``
``blockcache_corruption``       ``invariant:blockcache_divergence`` (the
                                fast path's verify sampler re-times a
                                replayed block in the detailed loop)
``dram_row_overcount``          ``invariant:dram_row_accounting``
``dram_conflict_overflow``      ``invariant:dram_bank_conservation``
``dram_phantom_row_hit``        ``invariant:dram_page_policy``
``retire_livelock``             ``stuck`` (bounded retirement port scan)
``worker_crash``                ``crash`` (engine fault isolation)
``worker_hang``                 ``timeout`` (engine per-cell budget)
==============================  ==========================================

Every fault runs through the *production* cell path — the
:class:`~repro.exec.engine.ExperimentEngine` with sanitizers armed —
so the matrix exercises exactly the code a real grid runs.  A clean
``control`` row (unfaulted sim-alpha, same path) proves the checkers
do not cry wolf.  A fault whose result lands in the grid as a normal
cell is a **silent corruption** — the failure mode this whole
subsystem exists to rule out; :attr:`DetectionMatrix.all_caught`
asserts there are none.

Single-workload detection (:func:`run_detection_matrix`) proves each
checker *can* fire; it says nothing about whether the workload was the
one built to stress the faulted subsystem.  The **workload sweep**
(:func:`run_detection_sweep`) pairs every fault class with the
microbenchmark families from :data:`repro.workloads.suite.
WORKLOAD_FAMILIES` that stress its subsystem — control faults against
branch-heavy micros, memory faults against pointer chases, DRAM faults
against the row-locality kernels — and demands detection on **every**
(fault, stressing-workload) cell, so an invariant that only happens to
fire on one lucky workload cannot masquerade as coverage.
"""

from __future__ import annotations

import dataclasses
import json
import math
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import MachineConfig
from repro.core.pipeline import AlphaPipeline
from repro.integrity.sanitizers import Sanitizers
from repro.obs.observer import Instrumentation
from repro.workloads.suite import WORKLOAD_FAMILIES, WorkloadSet

__all__ = [
    "FAULTS",
    "FaultSpec",
    "FaultedAlpha",
    "Detection",
    "DetectionMatrix",
    "run_detection_matrix",
    "run_detection_sweep",
]


@dataclass(frozen=True)
class FaultSpec:
    """One injectable fault class and where it should be caught."""

    name: str
    description: str
    #: Detection channels that count as the *designed* catch for this
    #: fault (``invariant:<name>``, ``exception``, ``stuck``,
    #: ``crash``, ``timeout``).  Any quarantine/failure counts as
    #: detected; matching one of these additionally counts as caught
    #: by the intended mechanism.
    expected: Tuple[str, ...]
    #: Workload families (keys of :data:`WORKLOAD_FAMILIES`) built to
    #: stress the faulted subsystem; the sweep runs the fault on every
    #: member of every listed family and requires detection on each.
    families: Tuple[str, ...] = ("memory",)
    #: Pinned workloads: when non-empty, the matrix and the sweep run
    #: this fault on exactly these workloads instead of the default /
    #: family members.  For faults that only manifest on a particular
    #: execution shape (the blockcache corruption needs a kernel whose
    #: steady loop actually gets memoized and replayed).
    workloads: Tuple[str, ...] = ()
    #: Fault only manifests under the process pool (crash/hang).
    needs_pool: bool = False


FAULTS: Dict[str, FaultSpec] = {
    spec.name: spec
    for spec in (
        FaultSpec(
            "maf_oversubscribe",
            "make the L2 MAF admit misses while full so more fills are "
            "concurrently active than it has entries (the PR 2 "
            "present_miss bug)",
            ("invariant:maf_occupancy",),
            families=("memory",),
        ),
        FaultSpec(
            "shared_maf_oversubscribe",
            "same admission bug on the native machine's single shared "
            "MAF (maf_i, maf_d and maf_l2: three names, one object) "
            "under combined i-stream/d-stream/L2 traffic",
            ("invariant:maf_occupancy",),
            families=("memory", "dram"),
        ),
        FaultSpec(
            "cycle_skew",
            "skew every 997th reported retire time backwards by 10k "
            "cycles (a corrupted cycle counter)",
            ("invariant:cycle_monotonicity",),
            families=("control",),
        ),
        FaultSpec(
            "nan_dram_latency",
            "make the SDRAM model return NaN access times",
            ("exception", "invariant:finite_latency"),
            families=("memory", "dram"),
        ),
        FaultSpec(
            "trace_truncation",
            "silently drop the second half of the input trace",
            ("invariant:instruction_conservation",),
            families=("control", "execute"),
        ),
        FaultSpec(
            "ipc_overflow",
            "divide the measured cycle count by 1000 (IPC far above "
            "the retire width)",
            ("invariant:ipc_bound",),
            families=("execute",),
        ),
        FaultSpec(
            "cpi_stack_leak",
            "leak 0.5 CPI into one stack component so the stack no "
            "longer sums to the CPI",
            ("invariant:cpi_stack_sum",),
            families=("control", "execute"),
        ),
        FaultSpec(
            "event_count_corruption",
            "inflate the architectural D-cache miss counter past what "
            "the cache itself recorded",
            ("invariant:cache_conservation",),
            families=("memory",),
        ),
        FaultSpec(
            "blockcache_corruption",
            "corrupt one memoized comparison record of every steady "
            "block as it is captured, so the trace-compiled fast path "
            "replays from a stale template",
            ("invariant:blockcache_divergence",),
            families=("execute",),
            # Needs a kernel the blockcache actually compiles: E-I's
            # all-hit independent-op loop goes steady within a few
            # occurrences; miss-dominated kernels never memoize (the
            # fault would be vacuously "undetected" on them).
            workloads=("E-I",),
        ),
        FaultSpec(
            "dram_row_overcount",
            "double-count SDRAM row-buffer hits so hits + misses no "
            "longer partition the accesses",
            ("invariant:dram_row_accounting",),
            families=("dram",),
        ),
        FaultSpec(
            "dram_conflict_overflow",
            "charge two phantom bank conflicts per SDRAM access, "
            "pushing the conflict count past the access count",
            ("invariant:dram_bank_conservation",),
            families=("dram",),
        ),
        FaultSpec(
            "dram_phantom_row_hit",
            "score row-buffer hits under a closed-page policy (whose "
            "banks auto-precharge and can never hit)",
            ("invariant:dram_page_policy",),
            families=("dram",),
        ),
        FaultSpec(
            "retire_livelock",
            "zero the retire width so retirement can never find a "
            "free port (no-retirement livelock)",
            ("stuck",),
            families=("control",),
        ),
        FaultSpec(
            "worker_crash",
            "hard-kill the worker process (os._exit) mid-trace",
            ("crash",),
            families=("execute",),
            needs_pool=True,
        ),
        FaultSpec(
            "worker_hang",
            "stop consuming the trace and sleep forever mid-cell",
            ("timeout",),
            families=("execute",),
            needs_pool=True,
        ),
    )
}


class _SkewObserver:
    """Observer shim that corrupts reported retire times in flight."""

    def __init__(self, inner, every: int = 997, skew: float = 10_000.0):
        self._inner = inner
        self._every = every
        self._skew = skew
        self._count = 0
        # The pipeline reads these straight off whatever observer it
        # was handed, so the shim must mirror them.
        self.metrics = getattr(inner, "metrics", None)
        self.sanitizer = getattr(inner, "sanitizer", None)

    def begin(self, stats) -> None:
        self._inner.begin(stats)

    def commit(self, dyn, fetch, map_time, issue, complete, retire,
               stats) -> None:
        self._count += 1
        if not self._count % self._every:
            complete = complete - self._skew
            retire = retire - self._skew
        self._inner.commit(
            dyn, fetch, map_time, issue, complete, retire, stats
        )

    def commit_short(self, dyn, fetch, retire, stats) -> None:
        self.commit(dyn, fetch, retire, retire, retire, retire, stats)

    def finalize(self, result) -> None:
        self._inner.finalize(result)


class _SabotagedTrace:
    """Trace wrapper that misbehaves mid-iteration (crash or hang)."""

    def __init__(self, trace: Sequence, mode: str, after: int = 64):
        self._trace = trace
        self._mode = mode
        self._after = after

    def __len__(self) -> int:
        return len(self._trace)

    def __iter__(self):
        for index, dyn in enumerate(self._trace):
            if index >= self._after:
                if self._mode == "crash":
                    os._exit(42)
                while True:  # hang: stop making progress, stay alive
                    time.sleep(3600)
            yield dyn


class FaultedAlpha:
    """sim-alpha with one deliberate corruption injected.

    Drop-in simulator (``name``, ``config``, ``run_trace``) whose runs
    carry the fault named at construction; built exclusively by
    :func:`run_detection_matrix`/:func:`run_detection_sweep` and the
    integrity tests.
    """

    def __init__(self, fault: str, config: Optional[MachineConfig] = None):
        if fault not in FAULTS:
            raise ValueError(
                f"unknown fault {fault!r}; known: {sorted(FAULTS)}"
            )
        self.fault = fault
        config = config or MachineConfig(name=f"faulted-{fault}")
        if fault == "retire_livelock":
            config = dataclasses.replace(config, retire_width=0)
        elif fault == "shared_maf_oversubscribe":
            # The native machine's single MAF: resolved() propagates
            # the flag so maf_i, maf_d and maf_l2 become one object.
            config = dataclasses.replace(
                config,
                native=dataclasses.replace(config.native, shared_maf=True),
            )
        elif fault == "dram_phantom_row_hit":
            config = dataclasses.replace(
                config,
                memory=dataclasses.replace(
                    config.memory,
                    dram=config.memory.dram.with_policy("closed"),
                ),
            )
        self.config = config

    @property
    def name(self) -> str:
        return self.config.name

    def run_trace(self, trace, workload: str = "", *,
                  observer=None, watchdog=None):
        fault = self.fault
        if fault == "trace_truncation":
            trace = list(trace)[: max(1, len(trace) // 2)]
        elif fault in ("worker_crash", "worker_hang"):
            trace = _SabotagedTrace(
                trace, "crash" if fault == "worker_crash" else "hang"
            )
        pipeline = AlphaPipeline(self.config)
        blockcache = None
        if fault == "blockcache_corruption":
            from repro.core.blockcache import BlockCacheConfig

            def _corrupt_memo(memo):
                # Nudge one float field of the block's first memoized
                # comparison record by a cycle.  Replay proceeds from
                # the stale template; the next *strict* verify probe
                # re-times the block through the detailed loop and
                # must see the record mismatch.
                cmps = list(memo.cmps)
                record = list(cmps[0])
                for i in range(len(record) - 1, -1, -1):
                    if isinstance(record[i], float):
                        record[i] += 1.0
                        break
                cmps[0] = tuple(record)
                memo.cmps = tuple(cmps)

            # A tight verify interval so the sampler fires within the
            # short fault-injection traces.
            blockcache = BlockCacheConfig(
                verify_interval=2, debug_corrupt=_corrupt_memo
            )
        if fault in ("maf_oversubscribe", "shared_maf_oversubscribe"):
            # Re-introduce the PR 2 present_miss bug: the file admits
            # every miss immediately, never stalling when full, so
            # under miss pressure more fills are concurrently active
            # than the file has entries.  The L2 MAF is the target
            # (only DRAM-latency fills overlap enough to oversubscribe)
            # and is shrunk to two entries because the pipeline's own
            # issue limits keep the micros below eight concurrent
            # misses.  Under the shared-MAF native config maf_l2 *is*
            # maf_i and maf_d, so the bug corrupts the one file the
            # whole hierarchy shares.
            from repro.memory.mshr import MafConfig, MafOutcome

            maf = pipeline.hierarchy.maf_l2
            maf.config = MafConfig(entries=2)

            def _never_stall(now, block, _maf=maf):
                fill = _maf._inflight.get(block)
                if fill is not None and fill > now:
                    _maf.stats.combines += 1
                    return MafOutcome(now, fill, False)
                return MafOutcome(now, None, False)

            maf.present_miss = _never_stall
        elif fault == "nan_dram_latency":
            pipeline.hierarchy.dram.access = (
                lambda time, paddr: math.nan
            )
        elif fault in (
            "dram_row_overcount",
            "dram_conflict_overflow",
            "dram_phantom_row_hit",
        ):
            dram = pipeline.hierarchy.dram
            real_access = dram.access

            def _corrupting_access(
                now, paddr, _dram=dram, _real=real_access, _fault=fault
            ):
                ready = _real(now, paddr)
                stats = _dram.stats
                if _fault == "dram_row_overcount":
                    stats.row_hits += 1
                elif _fault == "dram_conflict_overflow":
                    stats.bank_conflicts += 2
                else:  # phantom hit: rebook this miss, partition intact
                    stats.row_hits += 1
                    stats.row_misses -= 1
                return ready

            dram.access = _corrupting_access
        elif fault == "cycle_skew" and observer is not None:
            observer = _SkewObserver(observer)
        result = pipeline.run_trace(
            trace, workload, observer=observer, watchdog=watchdog,
            blockcache=blockcache,
        )
        if fault == "ipc_overflow":
            result.cycles = result.cycles / 1000.0
        elif fault == "cpi_stack_leak" and result.cpi_stack:
            component = next(iter(result.cpi_stack))
            result.cpi_stack[component] += 0.5
        elif fault == "event_count_corruption":
            result.stats.dcache_misses += 1_000_003
        return result


@dataclass
class Detection:
    """One matrix cell: how a fault class fared on one workload."""

    fault: str
    description: str
    #: The fault did not produce a clean grid cell (control inverts
    #: this: clean is the pass condition).
    detected: bool
    #: Channels that fired, e.g. ``["invariant:maf_occupancy"]``.
    channels: List[str] = field(default_factory=list)
    #: A fired channel is one the fault's spec designed for.
    expected_channel: bool = False
    detail: str = ""
    skipped: str = ""
    #: The workload this cell ran, and the family that paired it with
    #: the fault (empty for control rows and skipped faults).
    workload: str = ""
    family: str = ""

    def to_dict(self) -> Dict:
        return dataclasses.asdict(self)


@dataclass
class DetectionMatrix:
    """The full fault-injection verdict (one or many workloads)."""

    workload: str
    rows: List[Detection] = field(default_factory=list)

    @property
    def all_caught(self) -> bool:
        """True iff every (fault, workload) cell detected its fault,
        every fault was caught through its designed channel on at
        least one cell, and every control cell stayed clean — i.e.
        zero silent corruptions and zero false alarms."""
        via_design: Dict[str, bool] = {}
        for row in self.rows:
            if row.skipped:
                continue
            if row.fault == "control":
                if row.detected:  # a false alarm
                    return False
                continue
            if not row.detected:
                return False
            via_design[row.fault] = (
                via_design.get(row.fault, False) or row.expected_channel
            )
        return all(via_design.values())

    def silent_corruptions(self) -> List[str]:
        """Cells whose fault produced a clean-looking grid result
        (``fault`` alone, or ``fault@workload`` in a sweep)."""
        return [
            row.fault + (f"@{row.workload}" if row.workload else "")
            for row in self.rows
            if row.fault != "control" and not row.skipped
            and not row.detected
        ]

    def to_json(self) -> str:
        """Canonical JSON — byte-identical for identical sweeps."""
        payload = {
            "workload": self.workload,
            "rows": [row.to_dict() for row in self.rows],
        }
        return json.dumps(payload, sort_keys=True, indent=2) + "\n"

    def render(self) -> str:
        """Fixed-width table for reports and the CLI."""
        swept = any(row.workload for row in self.rows)
        if swept:
            header = (
                f"{'fault':<26} {'workload':<9} {'family':<8} "
                f"{'detected':<9} via"
            )
        else:
            header = f"{'fault':<26} {'detected':<9} {'via':<34} note"
        lines = [header, "-" * len(header)]
        for row in self.rows:
            if row.skipped:
                status, via = "skip", row.skipped
            elif row.fault == "control":
                status = "clean" if not row.detected else "FALSE-ALARM"
                via = ", ".join(row.channels) or "-"
            else:
                status = "yes" if row.detected else "MISSED"
                via = ", ".join(row.channels) or "-"
                if row.detected and not row.expected_channel:
                    status = "yes*"  # caught, but not by design channel
            if swept:
                lines.append(
                    f"{row.fault:<26} {row.workload or '-':<9} "
                    f"{row.family or '-':<8} {status:<9} {via}"
                )
            else:
                lines.append(
                    f"{row.fault:<26} {status:<9} {via:<34} "
                    f"{row.description}"
                )
        return "\n".join(lines)


def _channels_of(failure) -> List[str]:
    if failure.kind == "invariant" and failure.snapshot:
        return [
            f"invariant:{violation.get('invariant', '?')}"
            for violation in failure.snapshot.get("violations", ())
        ]
    return [failure.kind]


def _run_cells(
    matrix: DetectionMatrix,
    fault_cells: "Dict[str, List[Tuple[str, str]]]",
    control_workloads: Sequence[str],
    *,
    workloads: WorkloadSet,
    include_pool_faults: bool,
    pool_timeout_s: float,
    window: int,
    watchdog_s: float,
    label_cells: bool,
) -> DetectionMatrix:
    """Run control cells plus every ``fault -> [(workload, family)]``
    cell through the production engine, appending matrix rows."""
    from repro.core.simalpha import SimAlpha
    from repro.exec.engine import ExperimentEngine, RetryBackoff
    from repro.exec.spec import RunOptions

    def engine_for(pool: bool) -> ExperimentEngine:
        return ExperimentEngine(
            workloads,
            RunOptions(
                jobs=2 if pool else 1,
                timeout=pool_timeout_s if pool else None,
                retries=0,
                watchdog_s=watchdog_s,
            ),
            backoff=RetryBackoff(base_s=0.0, cap_s=0.0, jitter=0.0),
            sanitizers=Sanitizers(window=window),
        )

    # Controls: the unfaulted simulator through the identical path,
    # once per workload any fault will run on.
    control_grid = engine_for(False).run_grid(
        [SimAlpha], list(control_workloads),
        instrumentation=Instrumentation(),
    )
    control_failures: Dict[str, List] = {}
    for failure in control_grid.failures:
        control_failures.setdefault(failure.workload, []).append(failure)
    for name in control_workloads:
        failures = control_failures.get(name, [])
        matrix.rows.append(Detection(
            fault="control",
            description="unfaulted sim-alpha (must stay clean)",
            detected=bool(failures),
            channels=[
                channel
                for failure in failures
                for channel in _channels_of(failure)
            ],
            expected_channel=False,
            detail=failures[0].message if failures else "",
            workload=name if label_cells else "",
        ))

    for name, cells in fault_cells.items():
        spec = FAULTS[name]
        engine = engine_for(spec.needs_pool)
        if spec.needs_pool and (
            not include_pool_faults or engine._ctx is None
        ):
            matrix.rows.append(Detection(
                fault=name, description=spec.description,
                detected=False,
                skipped=(
                    "pool faults disabled" if not include_pool_faults
                    else "no fork start method"
                ),
            ))
            continue
        grid = engine.run_grid(
            [lambda name=name: FaultedAlpha(name)],
            [workload for workload, _ in cells],
            instrumentation=Instrumentation(),
        )
        by_workload = {f.workload: f for f in grid.failures}
        for workload, family in cells:
            failure = by_workload.get(workload)
            channels = _channels_of(failure) if failure is not None else []
            matrix.rows.append(Detection(
                fault=name,
                description=spec.description,
                detected=failure is not None,
                channels=channels,
                expected_channel=any(
                    channel in spec.expected for channel in channels
                ),
                detail=failure.message.strip().splitlines()[-1]
                if failure is not None and failure.message else "",
                workload=workload if label_cells else "",
                family=family if label_cells else "",
            ))
    return matrix


def run_detection_matrix(
    workload: str = "M-M",
    *,
    workloads: Optional[WorkloadSet] = None,
    faults: Optional[Sequence[str]] = None,
    include_pool_faults: bool = True,
    pool_timeout_s: float = 10.0,
    window: int = 128,
    watchdog_s: float = 30.0,
) -> DetectionMatrix:
    """Inject every fault class (plus a clean control) into sim-alpha
    on the single ``workload`` and report how each was caught.

    Every run goes through the execution engine with sanitizers armed
    (non-strict, window ``window``) and instrumentation on, exactly as
    a production grid would; pool faults (crash/hang) run under a
    two-worker pool with a ``pool_timeout_s`` cell budget and are
    skipped (not failed) where fork is unavailable.
    """
    names = list(faults) if faults is not None else list(FAULTS)
    fault_cells: Dict[str, List[Tuple[str, str]]] = {}
    control_workloads = [workload]
    for name in names:
        spec = FAULTS[name]
        pinned = spec.workloads or (workload,)
        fault_cells[name] = [(w, spec.families[0]) for w in pinned]
        for w in pinned:
            if w not in control_workloads:
                control_workloads.append(w)
    return _run_cells(
        DetectionMatrix(workload=workload),
        fault_cells,
        control_workloads,
        workloads=workloads or WorkloadSet(),
        include_pool_faults=include_pool_faults,
        pool_timeout_s=pool_timeout_s,
        window=window,
        watchdog_s=watchdog_s,
        label_cells=False,
    )


def run_detection_sweep(
    *,
    families: Optional[Sequence[str]] = None,
    faults: Optional[Sequence[str]] = None,
    family_members: Optional[Dict[str, Sequence[str]]] = None,
    workloads: Optional[WorkloadSet] = None,
    include_pool_faults: bool = True,
    pool_timeout_s: float = 10.0,
    window: int = 128,
    watchdog_s: float = 30.0,
) -> DetectionMatrix:
    """The workload-swept matrix: every fault class on every member of
    every workload family built to stress its subsystem.

    ``families`` restricts the sweep (faults none of whose families
    are selected are left out entirely); ``family_members`` overrides
    the members of individual families (the tests use one-workload
    families to keep tier-1 cheap).  Each workload appears at most
    once per fault even when two of its families are paired, and every
    distinct workload gets its own clean control cell.
    """
    selected = list(families) if families is not None else list(
        WORKLOAD_FAMILIES
    )
    for family in selected:
        if family not in WORKLOAD_FAMILIES:
            raise KeyError(
                f"unknown workload family {family!r}; known: "
                f"{list(WORKLOAD_FAMILIES)}"
            )
    members: Dict[str, Sequence[str]] = dict(WORKLOAD_FAMILIES)
    if family_members:
        members.update(family_members)
    names = list(faults) if faults is not None else list(FAULTS)

    fault_cells: Dict[str, List[Tuple[str, str]]] = {}
    control_workloads: List[str] = []
    for name in names:
        spec = FAULTS[name]
        cells: List[Tuple[str, str]] = []
        if spec.workloads:
            # Pinned faults sweep their pinned workloads (if any of
            # their stressing families is selected at all).
            if any(family in selected for family in spec.families):
                cells = [
                    (workload, spec.families[0])
                    for workload in spec.workloads
                ]
        else:
            for family in spec.families:
                if family not in selected:
                    continue
                for workload in members[family]:
                    if all(workload != seen for seen, _ in cells):
                        cells.append((workload, family))
        if not cells:
            continue  # fault's subsystem is outside the selected sweep
        fault_cells[name] = cells
        for workload, _ in cells:
            if workload not in control_workloads:
                control_workloads.append(workload)

    return _run_cells(
        DetectionMatrix(workload="sweep"),
        fault_cells,
        control_workloads,
        workloads=workloads or WorkloadSet(),
        include_pool_faults=include_pool_faults,
        pool_timeout_s=pool_timeout_s,
        window=window,
        watchdog_s=watchdog_s,
        label_cells=True,
    )
