"""Fault injection: prove the integrity layers actually detect faults.

Sanitizers that have never seen a corrupted run are unfalsifiable.
This module deliberately perturbs running simulators — one fault class
at a time — and records how (and whether) each fault was caught,
producing a **detection matrix**:

========================  ==========================================
fault class               expected detection channel
========================  ==========================================
``maf_oversubscribe``     ``invariant:maf_occupancy`` (the PR 2 bug)
``cycle_skew``            ``invariant:cycle_monotonicity``
``nan_dram_latency``      MAF fill guard / ``finite_latency``
``trace_truncation``      ``invariant:instruction_conservation``
``ipc_overflow``          ``invariant:ipc_bound``
``cpi_stack_leak``        ``invariant:cpi_stack_sum``
``event_count_corruption``  ``invariant:cache_conservation``
``retire_livelock``       ``stuck`` (bounded retirement port scan)
``worker_crash``          ``crash`` (engine fault isolation)
``worker_hang``           ``timeout`` (engine per-cell budget)
========================  ==========================================

Every fault runs through the *production* cell path — the
:class:`~repro.exec.engine.ExperimentEngine` with sanitizers armed —
so the matrix exercises exactly the code a real grid runs.  A clean
``control`` row (unfaulted sim-alpha, same path) proves the checkers
do not cry wolf.  A fault whose result lands in the grid as a normal
cell is a **silent corruption** — the failure mode this whole
subsystem exists to rule out; :attr:`DetectionMatrix.all_caught`
asserts there are none.
"""

from __future__ import annotations

import math
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import MachineConfig
from repro.core.pipeline import AlphaPipeline
from repro.integrity.sanitizers import Sanitizers
from repro.obs.observer import Instrumentation
from repro.workloads.suite import WorkloadSet

__all__ = [
    "FAULTS",
    "FaultSpec",
    "FaultedAlpha",
    "Detection",
    "DetectionMatrix",
    "run_detection_matrix",
]


@dataclass(frozen=True)
class FaultSpec:
    """One injectable fault class and where it should be caught."""

    name: str
    description: str
    #: Detection channels that count as the *designed* catch for this
    #: fault (``invariant:<name>``, ``exception``, ``stuck``,
    #: ``crash``, ``timeout``).  Any quarantine/failure counts as
    #: detected; matching one of these additionally counts as caught
    #: by the intended mechanism.
    expected: Tuple[str, ...]
    #: Fault only manifests under the process pool (crash/hang).
    needs_pool: bool = False


FAULTS: Dict[str, FaultSpec] = {
    spec.name: spec
    for spec in (
        FaultSpec(
            "maf_oversubscribe",
            "make the L2 MAF admit misses while full so more fills are "
            "concurrently active than it has entries (the PR 2 "
            "present_miss bug)",
            ("invariant:maf_occupancy",),
        ),
        FaultSpec(
            "cycle_skew",
            "skew every 997th reported retire time backwards by 10k "
            "cycles (a corrupted cycle counter)",
            ("invariant:cycle_monotonicity",),
        ),
        FaultSpec(
            "nan_dram_latency",
            "make the SDRAM model return NaN access times",
            ("exception", "invariant:finite_latency"),
        ),
        FaultSpec(
            "trace_truncation",
            "silently drop the second half of the input trace",
            ("invariant:instruction_conservation",),
        ),
        FaultSpec(
            "ipc_overflow",
            "divide the measured cycle count by 1000 (IPC far above "
            "the retire width)",
            ("invariant:ipc_bound",),
        ),
        FaultSpec(
            "cpi_stack_leak",
            "leak 0.5 CPI into one stack component so the stack no "
            "longer sums to the CPI",
            ("invariant:cpi_stack_sum",),
        ),
        FaultSpec(
            "event_count_corruption",
            "inflate the architectural D-cache miss counter past what "
            "the cache itself recorded",
            ("invariant:cache_conservation",),
        ),
        FaultSpec(
            "retire_livelock",
            "zero the retire width so retirement can never find a "
            "free port (no-retirement livelock)",
            ("stuck",),
        ),
        FaultSpec(
            "worker_crash",
            "hard-kill the worker process (os._exit) mid-trace",
            ("crash",),
            needs_pool=True,
        ),
        FaultSpec(
            "worker_hang",
            "stop consuming the trace and sleep forever mid-cell",
            ("timeout",),
            needs_pool=True,
        ),
    )
}


class _SkewObserver:
    """Observer shim that corrupts reported retire times in flight."""

    def __init__(self, inner, every: int = 997, skew: float = 10_000.0):
        self._inner = inner
        self._every = every
        self._skew = skew
        self._count = 0
        # The pipeline reads these straight off whatever observer it
        # was handed, so the shim must mirror them.
        self.metrics = getattr(inner, "metrics", None)
        self.sanitizer = getattr(inner, "sanitizer", None)

    def begin(self, stats) -> None:
        self._inner.begin(stats)

    def commit(self, dyn, fetch, map_time, issue, complete, retire,
               stats) -> None:
        self._count += 1
        if not self._count % self._every:
            complete = complete - self._skew
            retire = retire - self._skew
        self._inner.commit(
            dyn, fetch, map_time, issue, complete, retire, stats
        )

    def commit_short(self, dyn, fetch, retire, stats) -> None:
        self.commit(dyn, fetch, retire, retire, retire, retire, stats)

    def finalize(self, result) -> None:
        self._inner.finalize(result)


class _SabotagedTrace:
    """Trace wrapper that misbehaves mid-iteration (crash or hang)."""

    def __init__(self, trace: Sequence, mode: str, after: int = 64):
        self._trace = trace
        self._mode = mode
        self._after = after

    def __len__(self) -> int:
        return len(self._trace)

    def __iter__(self):
        for index, dyn in enumerate(self._trace):
            if index >= self._after:
                if self._mode == "crash":
                    os._exit(42)
                while True:  # hang: stop making progress, stay alive
                    time.sleep(3600)
            yield dyn


class FaultedAlpha:
    """sim-alpha with one deliberate corruption injected.

    Drop-in simulator (``name``, ``config``, ``run_trace``) whose runs
    carry the fault named at construction; built exclusively by
    :func:`run_detection_matrix` and the integrity tests.
    """

    def __init__(self, fault: str, config: Optional[MachineConfig] = None):
        if fault not in FAULTS:
            raise ValueError(
                f"unknown fault {fault!r}; known: {sorted(FAULTS)}"
            )
        self.fault = fault
        config = config or MachineConfig(name=f"faulted-{fault}")
        if fault == "retire_livelock":
            import dataclasses

            config = dataclasses.replace(config, retire_width=0)
        self.config = config

    @property
    def name(self) -> str:
        return self.config.name

    def run_trace(self, trace, workload: str = "", *,
                  observer=None, watchdog=None):
        fault = self.fault
        if fault == "trace_truncation":
            trace = list(trace)[: max(1, len(trace) // 2)]
        elif fault in ("worker_crash", "worker_hang"):
            trace = _SabotagedTrace(
                trace, "crash" if fault == "worker_crash" else "hang"
            )
        pipeline = AlphaPipeline(self.config)
        if fault == "maf_oversubscribe":
            # Re-introduce the PR 2 present_miss bug: the file admits
            # every miss immediately, never stalling when full, so
            # under miss pressure more fills are concurrently active
            # than the file has entries.  The L2 MAF is the target
            # (only DRAM-latency fills overlap enough to oversubscribe)
            # and is shrunk to two entries because the pipeline's own
            # issue limits keep M-M below eight concurrent misses.
            from repro.memory.mshr import MafConfig, MafOutcome

            maf = pipeline.hierarchy.maf_l2
            maf.config = MafConfig(entries=2)

            def _never_stall(now, block, _maf=maf):
                fill = _maf._inflight.get(block)
                if fill is not None and fill > now:
                    _maf.stats.combines += 1
                    return MafOutcome(now, fill, False)
                return MafOutcome(now, None, False)

            maf.present_miss = _never_stall
        elif fault == "nan_dram_latency":
            pipeline.hierarchy.dram.access = (
                lambda time, paddr: math.nan
            )
        elif fault == "cycle_skew" and observer is not None:
            observer = _SkewObserver(observer)
        result = pipeline.run_trace(
            trace, workload, observer=observer, watchdog=watchdog
        )
        if fault == "ipc_overflow":
            result.cycles = result.cycles / 1000.0
        elif fault == "cpi_stack_leak" and result.cpi_stack:
            component = next(iter(result.cpi_stack))
            result.cpi_stack[component] += 0.5
        elif fault == "event_count_corruption":
            result.stats.dcache_misses += 1_000_003
        return result


@dataclass
class Detection:
    """One matrix row: how a fault class fared."""

    fault: str
    description: str
    #: The fault did not produce a clean grid cell (control inverts
    #: this: clean is the pass condition).
    detected: bool
    #: Channels that fired, e.g. ``["invariant:maf_occupancy"]``.
    channels: List[str] = field(default_factory=list)
    #: A fired channel is one the fault's spec designed for.
    expected_channel: bool = False
    detail: str = ""
    skipped: str = ""

    def to_dict(self) -> Dict:
        import dataclasses

        return dataclasses.asdict(self)


@dataclass
class DetectionMatrix:
    """The full fault-injection verdict."""

    workload: str
    rows: List[Detection] = field(default_factory=list)

    @property
    def all_caught(self) -> bool:
        """True iff every (non-skipped) fault was detected through its
        designed channel and the control run stayed clean — i.e. zero
        silent corruptions and zero false alarms."""
        for row in self.rows:
            if row.skipped:
                continue
            if row.fault == "control":
                if row.detected:  # a false alarm
                    return False
            elif not (row.detected and row.expected_channel):
                return False
        return True

    def silent_corruptions(self) -> List[str]:
        """Fault classes that produced a clean-looking grid cell."""
        return [
            row.fault
            for row in self.rows
            if row.fault != "control" and not row.skipped
            and not row.detected
        ]

    def render(self) -> str:
        """Fixed-width table for reports and the CLI."""
        header = f"{'fault':<24} {'detected':<9} {'via':<34} note"
        lines = [header, "-" * len(header)]
        for row in self.rows:
            if row.skipped:
                status, via = "skip", row.skipped
            elif row.fault == "control":
                status = "clean" if not row.detected else "FALSE-ALARM"
                via = ", ".join(row.channels) or "-"
            else:
                status = "yes" if row.detected else "MISSED"
                via = ", ".join(row.channels) or "-"
                if row.detected and not row.expected_channel:
                    status = "yes*"  # caught, but not by design channel
            lines.append(
                f"{row.fault:<24} {status:<9} {via:<34} "
                f"{row.description}"
            )
        return "\n".join(lines)


def _channels_of(failure) -> List[str]:
    if failure.kind == "invariant" and failure.snapshot:
        return [
            f"invariant:{violation.get('invariant', '?')}"
            for violation in failure.snapshot.get("violations", ())
        ]
    return [failure.kind]


def run_detection_matrix(
    workload: str = "M-M",
    *,
    workloads: Optional[WorkloadSet] = None,
    faults: Optional[Sequence[str]] = None,
    include_pool_faults: bool = True,
    pool_timeout_s: float = 10.0,
    window: int = 128,
    watchdog_s: float = 30.0,
) -> DetectionMatrix:
    """Inject every fault class (plus a clean control) into sim-alpha
    on ``workload`` and report how each was caught.

    Every run goes through the execution engine with sanitizers armed
    (non-strict, window ``window``) and instrumentation on, exactly as
    a production grid would; pool faults (crash/hang) run under a
    two-worker pool with a ``pool_timeout_s`` cell budget and are
    skipped (not failed) where fork is unavailable.
    """
    from repro.core.simalpha import SimAlpha
    from repro.exec.engine import ExperimentEngine, RetryBackoff

    workloads = workloads or WorkloadSet()
    names = list(faults) if faults is not None else list(FAULTS)
    matrix = DetectionMatrix(workload=workload)

    def engine_for(spec: Optional[FaultSpec]) -> ExperimentEngine:
        pool = spec is not None and spec.needs_pool
        return ExperimentEngine(
            workloads,
            jobs=2 if pool else 1,
            timeout=pool_timeout_s if pool else None,
            retries=0,
            backoff=RetryBackoff(base_s=0.0, cap_s=0.0, jitter=0.0),
            sanitizers=Sanitizers(window=window),
            watchdog_s=watchdog_s,
        )

    # Control: the unfaulted simulator through the identical path.
    control_engine = engine_for(None)
    control_grid = control_engine.run_grid(
        [SimAlpha], [workload], instrumentation=Instrumentation()
    )
    matrix.rows.append(Detection(
        fault="control",
        description="unfaulted sim-alpha (must stay clean)",
        detected=bool(control_grid.failures),
        channels=[
            channel
            for failure in control_grid.failures
            for channel in _channels_of(failure)
        ],
        expected_channel=False,
        detail=(
            control_grid.failures[0].message if control_grid.failures
            else ""
        ),
    ))

    for name in names:
        spec = FAULTS[name]
        engine = engine_for(spec)
        if spec.needs_pool and (
            not include_pool_faults or engine._ctx is None
        ):
            matrix.rows.append(Detection(
                fault=name, description=spec.description,
                detected=False,
                skipped=(
                    "pool faults disabled" if not include_pool_faults
                    else "no fork start method"
                ),
            ))
            continue
        grid = engine.run_grid(
            [lambda name=name: FaultedAlpha(name)], [workload],
            instrumentation=Instrumentation(),
        )
        failure = grid.failures[0] if grid.failures else None
        channels = _channels_of(failure) if failure is not None else []
        matrix.rows.append(Detection(
            fault=name,
            description=spec.description,
            detected=failure is not None,
            channels=channels,
            expected_channel=any(
                channel in spec.expected for channel in channels
            ),
            detail=failure.message.strip().splitlines()[-1]
            if failure is not None and failure.message else "",
        ))
    return matrix
