"""Simulation result records and the simulator protocol.

Every timing model (sim-alpha and its variants, sim-outorder, the
8-way study simulator, the NativeMachine) consumes a dynamic trace and
produces a :class:`SimResult`.  The validation harness compares
results purely through this record.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields as dc_fields
from typing import Dict, Optional, Protocol, Sequence

from repro.functional.trace import DynInstr
from repro.obs.provenance import RunProvenance
from repro.obs.telemetry import CellTelemetry

__all__ = [
    "RunStats",
    "SimResult",
    "Simulator",
    "VOLATILE_PROVENANCE_FIELDS",
]

#: Provenance fields that vary run-to-run on identical measurements
#: (blanked by :meth:`SimResult.canonical_dict` and
#: ``ResultGrid.to_json(canonical=True)``).
VOLATILE_PROVENANCE_FIELDS = ("created", "host", "platform", "python")


@dataclass
class RunStats:
    """Event counts accumulated during one timing run."""

    branch_lookups: int = 0
    branch_mispredicts: int = 0
    line_mispredicts: int = 0
    way_mispredicts: int = 0
    ras_mispredicts: int = 0
    jmp_mispredicts: int = 0
    loaduse_mispredicts: int = 0
    store_replay_traps: int = 0
    load_order_traps: int = 0
    mbox_traps: int = 0
    store_wait_holds: int = 0
    icache_misses: int = 0
    dcache_misses: int = 0
    l2_misses: int = 0
    victim_hits: int = 0
    itlb_misses: int = 0
    dtlb_misses: int = 0
    maf_stalls: int = 0
    maps_stalls: int = 0
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def replay_traps(self) -> int:
        """All pipeline-flushing replay traps."""
        return self.store_replay_traps + self.load_order_traps + self.mbox_traps

    def to_dict(self) -> Dict:
        """All counters plus ``extra`` as plain JSON-ready data."""
        payload = {
            f.name: getattr(self, f.name)
            for f in dc_fields(self)
            if f.name != "extra"
        }
        payload["extra"] = dict(self.extra)
        return payload

    @classmethod
    def from_dict(cls, payload: Dict) -> "RunStats":
        names = {f.name for f in dc_fields(cls)}
        known = {k: v for k, v in payload.items() if k in names}
        extra = known.pop("extra", {}) or {}
        stats = cls(**known)
        stats.extra = dict(extra)
        return stats


@dataclass
class SimResult:
    """Outcome of timing one workload on one simulator configuration."""

    simulator: str
    workload: str
    cycles: float
    instructions: int
    stats: RunStats = field(default_factory=RunStats)
    #: CPI decomposition (component -> cycles/instr), attached when the
    #: run was instrumented (see :mod:`repro.obs.cpistack`).
    cpi_stack: Optional[Dict[str, float]] = None
    #: Reproducibility fingerprint (see :mod:`repro.obs.provenance`).
    provenance: Optional[RunProvenance] = None
    #: Resource cost of producing this result (wall/CPU/RSS/KIPS),
    #: attached by the harness or a pool worker; volatile by nature and
    #: blanked under ``ResultGrid.to_json(canonical=True)``.
    telemetry: Optional[CellTelemetry] = None

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0

    def __str__(self) -> str:
        return (
            f"{self.simulator} on {self.workload}: "
            f"{self.instructions} instructions in {self.cycles:.0f} cycles "
            f"(IPC {self.ipc:.2f})"
        )

    def to_dict(self) -> Dict:
        """JSON-ready form (inverse of :meth:`from_dict`)."""
        return {
            "simulator": self.simulator,
            "workload": self.workload,
            "cycles": self.cycles,
            "instructions": self.instructions,
            "stats": self.stats.to_dict(),
            "cpi_stack": dict(self.cpi_stack) if self.cpi_stack else None,
            "provenance": (
                self.provenance.to_dict() if self.provenance else None
            ),
            "telemetry": (
                self.telemetry.to_dict() if self.telemetry else None
            ),
        }

    def canonical_dict(self) -> Dict:
        """:meth:`to_dict` with the run-to-run volatile fields blanked
        (wall-clock provenance, resource telemetry — including the
        ``telemetry.source`` execution-path tag such as
        ``"shard-<k>"``), so two results
        compare equal iff they measured the same thing.  This is the
        payload form ``ResultGrid.to_json(canonical=True)`` serialises
        and the one checkpoint merges compare when deciding whether two
        entries under the same digest agree or conflict."""
        entry = self.to_dict()
        if entry.get("provenance"):
            entry["provenance"] = {
                k: ("" if k in VOLATILE_PROVENANCE_FIELDS else v)
                for k, v in entry["provenance"].items()
            }
        entry["telemetry"] = None
        return entry

    @classmethod
    def from_dict(cls, payload: Dict) -> "SimResult":
        provenance = payload.get("provenance")
        telemetry = payload.get("telemetry")
        return cls(
            simulator=payload["simulator"],
            workload=payload["workload"],
            cycles=payload["cycles"],
            instructions=payload["instructions"],
            stats=RunStats.from_dict(payload.get("stats") or {}),
            cpi_stack=payload.get("cpi_stack") or None,
            provenance=(
                RunProvenance.from_dict(provenance) if provenance else None
            ),
            telemetry=(
                CellTelemetry.from_dict(telemetry) if telemetry else None
            ),
        )


class Simulator(Protocol):
    """The interface the validation harness drives."""

    name: str

    def run_trace(self, trace: Sequence[DynInstr], workload: str) -> SimResult:
        """Time a pre-computed dynamic trace."""
        ...
