"""Simulation result records and the simulator protocol.

Every timing model (sim-alpha and its variants, sim-outorder, the
8-way study simulator, the NativeMachine) consumes a dynamic trace and
produces a :class:`SimResult`.  The validation harness compares
results purely through this record.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Protocol, Sequence

from repro.functional.trace import DynInstr

__all__ = ["RunStats", "SimResult", "Simulator"]


@dataclass
class RunStats:
    """Event counts accumulated during one timing run."""

    branch_lookups: int = 0
    branch_mispredicts: int = 0
    line_mispredicts: int = 0
    way_mispredicts: int = 0
    ras_mispredicts: int = 0
    jmp_mispredicts: int = 0
    loaduse_mispredicts: int = 0
    store_replay_traps: int = 0
    load_order_traps: int = 0
    mbox_traps: int = 0
    store_wait_holds: int = 0
    icache_misses: int = 0
    dcache_misses: int = 0
    l2_misses: int = 0
    victim_hits: int = 0
    itlb_misses: int = 0
    dtlb_misses: int = 0
    maf_stalls: int = 0
    maps_stalls: int = 0
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def replay_traps(self) -> int:
        """All pipeline-flushing replay traps."""
        return self.store_replay_traps + self.load_order_traps + self.mbox_traps


@dataclass
class SimResult:
    """Outcome of timing one workload on one simulator configuration."""

    simulator: str
    workload: str
    cycles: float
    instructions: int
    stats: RunStats = field(default_factory=RunStats)

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0

    def __str__(self) -> str:
        return (
            f"{self.simulator} on {self.workload}: "
            f"{self.instructions} instructions in {self.cycles:.0f} cycles "
            f"(IPC {self.ipc:.2f})"
        )


class Simulator(Protocol):
    """The interface the validation harness drives."""

    name: str

    def run_trace(self, trace: Sequence[DynInstr], workload: str) -> SimResult:
        """Time a pre-computed dynamic trace."""
        ...
