"""sim-alpha: the validated Alpha 21264 / DS-10L simulator.

This is the paper's primary artifact — "written using the SimpleScalar
environment [with] nearly all of the timing simulation code written
from scratch", validated to a 2% arithmetic-mean CPI error on the
microbenchmark suite.  Here it is a :class:`MachineConfig` with all ten
features on, no bugs, and no native-only effects, driving the shared
pipeline engine.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Sequence

from repro.core.config import MachineConfig
from repro.core.pipeline import AlphaPipeline
from repro.functional.machine import run_program
from repro.functional.trace import DynInstr
from repro.isa.program import Program
from repro.obs.provenance import capture_provenance
from repro.result import SimResult

__all__ = ["SimAlpha"]


class SimAlpha:
    """Runs workloads under a (configurable) sim-alpha machine model.

    The default configuration is the validated simulator; experiments
    pass altered configs (features removed, bugs injected, parameters
    swept) produced with :func:`dataclasses.replace`.
    """

    def __init__(self, config: Optional[MachineConfig] = None):
        self.config = config or MachineConfig(name="sim-alpha")

    @property
    def name(self) -> str:
        return self.config.name

    def run_trace(
        self,
        trace: Sequence[DynInstr],
        workload: str = "",
        *,
        window_size: Optional[int] = None,
        observer=None,
        watchdog=None,
        blockcache=None,
    ) -> SimResult:
        """Time a pre-computed dynamic trace (fresh pipeline state).

        ``window_size`` enables windowed retire-time recording for
        warm-up analysis (see :mod:`repro.validation.warmup`);
        ``observer`` (a :class:`repro.obs.RunObserver`) enables the
        instrumentation layer for this run; ``watchdog`` (a
        :class:`repro.integrity.Watchdog`) arms livelock detection;
        ``blockcache`` controls the trace-compiled fast path
        (``None``/``True`` = on with defaults, ``False`` = pure
        detailed loop, or a ``BlockCacheConfig``).
        """
        pipeline = AlphaPipeline(self.config)
        result = pipeline.run_trace(
            trace, workload, window_size=window_size, observer=observer,
            watchdog=watchdog, blockcache=blockcache,
        )
        result.provenance = capture_provenance(self.config)
        return result

    def run_program(self, program: Program) -> SimResult:
        """Functionally execute ``program``, then time its trace."""
        trace = run_program(program)
        return self.run_trace(trace, program.name)

    def with_config(self, **changes) -> "SimAlpha":
        """A copy with top-level config fields replaced."""
        return SimAlpha(replace(self.config, **changes))
