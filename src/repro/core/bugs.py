"""The sim-initial bug list (paper Section 3.4).

Each flag reproduces one of the modeling/specification/abstraction
errors the authors discovered and fixed while validating sim-alpha
against the DS-10L.  ``BugSet()`` (all False) is the validated
simulator; :func:`BugSet.sim_initial` is the pre-validation version
whose microbenchmark error averaged 74.7%.

The flags, and the paper passages they encode:

``late_branch_recovery``
    "sim-initial waited until after the execute stage to discover a
    line misprediction and initiate a full rollback" — the undocumented
    slot-stage adder (feature ``addr``) had not been discovered yet.
``no_speculative_update``
    "We did not initially update any of our predictors speculatively"
    (branch history, RAS, line predictor).
``extra_way_predictor_cycle``
    "we had been charging an extra cycle to access the way predictor."
``octaword_squash_penalty``
    "no penalty is applied for squashing instructions in a fetched
    octaword that follow a taken branch ... We had been modeling a
    one-cycle penalty."
``jmp_undercharge``
    "the C-S benchmarks were performing too well because we were
    undercharging for indirect jumps" (the real penalty is 10 cycles).
``wrong_fu_mix``
    "We had inadvertently used two multipliers and two adders as the
    four execution pipes, rather than the one adder/multiplier and
    three adders resident in the 21264."
``no_unop_removal``
    "sim-initial did not remove unops ... but instead allowed them to
    proceed until the retire stage and consume real issue slots."
``aggressive_cluster_scheduler``
    "we originally designed sim-alpha with an aggressive scheduler that
    minimized cross cluster delays ... That policy increased E-Dn
    performance beyond that of the 21264."
``masked_load_trap_addresses``
    "the simulator ... masked out the lower three bits of the addresses
    before comparing them in the load-trap identification logic"
    (causing spurious load-load replay traps).
``l2_extra_cycle``
    "the L2 latency shown in M-L2 was a cycle longer than ... the
    Compiler Writer's Guide ... a modeling error in which the simulator
    charged too many cycles for the register read stage on loads that
    missed in the cache."
``short_luse_recovery``
    "We were also charging one cycle too few for recovery upon load-use
    mis-speculation."

Note: the store-wait table is a *feature* (``stwt``), not a bug flag;
the paper's Table 2 sim-initial numbers already include it ("The
results in Table 2 for sim-initial include the store-wait table").
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace

__all__ = ["BugSet", "ALL_BUGS"]


@dataclass(frozen=True)
class BugSet:
    """Which sim-initial bugs are present in a configuration."""

    late_branch_recovery: bool = False
    no_speculative_update: bool = False
    extra_way_predictor_cycle: bool = False
    octaword_squash_penalty: bool = False
    jmp_undercharge: bool = False
    wrong_fu_mix: bool = False
    no_unop_removal: bool = False
    aggressive_cluster_scheduler: bool = False
    masked_load_trap_addresses: bool = False
    l2_extra_cycle: bool = False
    short_luse_recovery: bool = False

    @classmethod
    def sim_initial(cls) -> "BugSet":
        """Every Section 3.4 bug present (the pre-validation simulator)."""
        return cls(**{f.name: True for f in fields(cls)})

    def with_only(self, *names: str) -> "BugSet":
        """A BugSet with exactly the named bugs present.

        Used by the per-bug error-attribution study (an extension the
        paper describes qualitatively; we quantify it).
        """
        valid = {f.name for f in fields(self)}
        for name in names:
            if name not in valid:
                raise ValueError(f"unknown bug {name!r}")
        return BugSet(**{name: (name in names) for name in valid})

    def without(self, name: str) -> "BugSet":
        """A copy with bug ``name`` fixed."""
        valid = {f.name for f in fields(self)}
        if name not in valid:
            raise ValueError(f"unknown bug {name!r}")
        return replace(self, **{name: False})

    def present(self) -> tuple:
        return tuple(f.name for f in fields(self) if getattr(self, f.name))


ALL_BUGS = tuple(f.name for f in fields(BugSet))
