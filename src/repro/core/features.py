"""The ten low-level 21264 features the paper ablates (Section 5.1).

Seven *performance-optimizing* features::

    addr  an extra adder for quick computation of jump targets in the
          front end (lets the branch predictor override the line
          predictor in the slot stage instead of waiting for execute)
    eret  early retirement of no-op instructions in the map stage
    luse  load-use speculation
    pref  instruction cache hardware prefetching
    spec  speculative update of the line and branch predictors
    stwt  the store-wait predictor
    vbuf  the level-one data cache victim buffer

Three *performance-constraining* features (necessary for high clock
rates, but reduce IPC)::

    maps  a three-cycle stall if the number of available physical
          registers drops below eight
    slot  slotting restrictions in the pipeline
    trap  mbox traps, which flush the pipeline on MSHR conflicts and
          concurrent references to two blocks that map to the same
          place in the cache

``sim-stripped`` is sim-alpha with all ten removed — "the level of
detail ... typically seen in simulators in the architecture community".
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace

__all__ = [
    "FeatureSet",
    "OPTIMIZING_FEATURES",
    "CONSTRAINING_FEATURES",
    "ALL_FEATURES",
]

OPTIMIZING_FEATURES = ("addr", "eret", "luse", "pref", "spec", "stwt", "vbuf")
CONSTRAINING_FEATURES = ("maps", "slot", "trap")
ALL_FEATURES = OPTIMIZING_FEATURES + CONSTRAINING_FEATURES


@dataclass(frozen=True)
class FeatureSet:
    """Which of the ten features a simulator configuration models."""

    addr: bool = True
    eret: bool = True
    luse: bool = True
    pref: bool = True
    spec: bool = True
    stwt: bool = True
    vbuf: bool = True
    maps: bool = True
    slot: bool = True
    trap: bool = True

    def without(self, name: str) -> "FeatureSet":
        """A copy with feature ``name`` disabled (Table 4 columns)."""
        if name not in ALL_FEATURES:
            raise ValueError(
                f"unknown feature {name!r}; expected one of {ALL_FEATURES}"
            )
        return replace(self, **{name: False})

    def with_only(self, *names: str) -> "FeatureSet":
        """A copy with exactly ``names`` enabled, everything else off."""
        for name in names:
            if name not in ALL_FEATURES:
                raise ValueError(f"unknown feature {name!r}")
        values = {name: (name in names) for name in ALL_FEATURES}
        return FeatureSet(**values)

    @classmethod
    def stripped(cls) -> "FeatureSet":
        """All ten features removed (the sim-stripped configuration)."""
        return cls(**{name: False for name in ALL_FEATURES})

    def enabled(self) -> tuple:
        """Names of enabled features, in canonical order."""
        return tuple(f.name for f in fields(self) if getattr(self, f.name))

    def describe(self) -> str:
        on = self.enabled()
        if len(on) == len(ALL_FEATURES):
            return "all features"
        if not on:
            return "stripped"
        off = [name for name in ALL_FEATURES if name not in on]
        return "minus " + "+".join(off)
