"""The 21264 pipeline timing engine.

A dependence-driven timing model of the seven-stage 21264 pipeline
(Figure 1 of the paper): fetch, slot, map, issue, register read,
execute, write-back/retire.  The engine replays a dynamic trace in
program order and computes, per instruction, the cycle of each pipeline
event subject to:

* fetch bandwidth (one aligned octaword per cycle) and I-cache timing;
* the five front-end predictors (line, way, local/global/choice) with
  the slot-stage override adder (feature ``addr``);
* the return address stack and the 10-cycle indirect-jump flush;
* register renaming against a bounded rename pool (``maps`` stall);
* reorder buffer, collapsible issue queue, and store-queue occupancy;
* issue-port and functional-unit structural limits with the 21264's
  restricted instruction-to-unit mappings and two-cluster organisation
  (``slot`` restrictions, one-cycle cross-cluster bypass);
* load-use speculation, the store-wait table, store/load replay traps,
  and mbox traps (``luse``, ``stwt``, ``trap``);
* the full memory hierarchy of :mod:`repro.memory.hierarchy`.

Wrong-path work is charged as redirect bubbles computed from the
mispredicting instruction's resolution time, which is how trace-driven
timing models conventionally account for speculation.

**Float exactness.**  Event times are ``float``, but the arithmetic is
exact, not approximate: every quantity ever added to a time is a dyadic
rational with denominator dividing 4 — integer latencies and penalties,
the aggressive scheduler's 0.25-cycle cluster bias, and the bus-cycle
ratios (2.5 and 4.0 CPU cycles per bus cycle).  Sums and maxima of such
values are themselves multiples of 1/4, and an IEEE-754 double holds
``k/4`` exactly for ``|k| < 2**53`` — i.e. for all times below ``2**51``
cycles (~2.3e15, about five orders of magnitude past the longest
conceivable run; a 10M-instruction trace retires around 1e7 cycles).
There is therefore **no accumulation drift**: replaying a trace twice
produces bit-identical times, the blockcache's memoized deltas replay
exactly, and cross-platform results differ only if the platform's
double arithmetic is non-conformant.  ``tests/core/
test_float_determinism.py`` holds the regression tests for this
argument.

Every sim-initial bug (:mod:`repro.core.bugs`) and native-machine
effect (:class:`repro.core.config.NativeEffects`) hooks into a specific
mechanism here, so one engine serves sim-alpha, sim-initial,
sim-stripped, and the NativeMachine.
"""

from __future__ import annotations

from collections import deque
from itertools import islice
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.blockcache import BlockCache, resolve_blockcache
from repro.core.config import MachineConfig
from repro.functional.trace import DynInstr
from repro.integrity.watchdog import (
    PORT_SCAN_LIMIT,
    SimulationStuck,
    record_heartbeat,
)
from repro.isa.instructions import InstrClass, Opcode
from repro.memory.hierarchy import MemoryHierarchy
from repro.predictors.line import LinePredictor
from repro.predictors.loaduse import LoadUsePredictor
from repro.predictors.ras import ReturnAddressStack
from repro.predictors.storewait import StoreWaitPredictor
from repro.predictors.tournament import TournamentPredictor
from repro.predictors.way import WayPredictor
from repro.result import RunStats, SimResult

__all__ = ["AlphaPipeline"]

_OCTA_MASK = ~15

# Functional-unit capability bits.
_ALU = 1
_MUL = 2
_MEM = 4
_BR = 8
_FADD = 16
_FMUL = 32
_FDIV = 64

_DIV_CLASSES = frozenset(
    (
        InstrClass.FP_DIV_S,
        InstrClass.FP_DIV_D,
        InstrClass.FP_SQRT_S,
        InstrClass.FP_SQRT_D,
    )
)

_CMOV_OPS = frozenset((Opcode.CMOVEQ, Opcode.CMOVNE))


def _unit_need(klass: InstrClass) -> int:
    """Capability bit an instruction class requires."""
    if klass is InstrClass.INT_MUL:
        return _MUL
    if klass.is_memory and not klass.is_fp:
        return _MEM
    if klass is InstrClass.FP_LOAD or klass is InstrClass.FP_STORE:
        return _MEM
    if klass.is_control:
        return _BR
    if klass is InstrClass.FP_ADD:
        return _FADD
    if klass is InstrClass.FP_MUL:
        return _FMUL
    if klass in _DIV_CLASSES:
        return _FDIV
    return _ALU


class AlphaPipeline:
    """Times dynamic traces under one :class:`MachineConfig`.

    A fresh instance is required per run: predictor and cache state is
    part of the measurement.
    """

    def __init__(self, config: MachineConfig | None = None):
        self.config = (config or MachineConfig()).resolved()
        cfg = self.config
        self.hierarchy = MemoryHierarchy(cfg.memory)
        self.branch_predictor = TournamentPredictor(cfg.tournament)
        self.line_predictor = LinePredictor(cfg.line_predictor)
        self.way_predictor = WayPredictor(cfg.way_predictor)
        self.ras = ReturnAddressStack(cfg.ras)
        self.load_use = LoadUsePredictor(cfg.load_use)
        self.store_wait = StoreWaitPredictor(cfg.store_wait)
        self._units = self._build_units()
        self._fp_units = self._build_fp_units()

    # ------------------------------------------------------------------
    # Functional-unit tables
    # ------------------------------------------------------------------

    def _build_units(self) -> List[List]:
        """Integer execution units: [capabilities, next_free, cluster].

        The validated mapping is the 21264's: one adder/multiplier and
        three adders, with memory ports on the lower subclusters and
        branch/shift resources on the uppers.  The ``wrong_fu_mix`` bug
        reproduces sim-initial's generic-resource trap (two mul-capable
        pipes, and multiply latency collapsing to the generic ALU's).
        """
        if self.config.bugs.wrong_fu_mix:
            return [
                [_ALU | _MUL | _BR, 0.0, 1],   # U1
                [_ALU | _MUL | _MEM, 0.0, 1],  # L1
                [_ALU | _BR, 0.0, 0],          # U0
                [_ALU | _MEM, 0.0, 0],         # L0
            ]
        return [
            [_ALU | _MUL | _BR, 0.0, 1],  # U1: the adder/multiplier
            [_ALU | _BR, 0.0, 0],         # U0
            [_ALU | _MEM, 0.0, 1],        # L1
            [_ALU | _MEM, 0.0, 0],        # L0
        ]

    def _build_fp_units(self) -> List[List]:
        """FP add pipe (with the non-pipelined divide/sqrt) and mul pipe."""
        return [
            [_FADD | _FDIV, 0.0, 0],
            [_FMUL, 0.0, 1],
        ]

    # ------------------------------------------------------------------

    def run_trace(
        self,
        trace: Sequence[DynInstr],
        workload: str = "",
        *,
        window_size: Optional[int] = None,
        observer=None,
        watchdog=None,
        blockcache=None,
    ) -> SimResult:
        """Time ``trace``.

        With ``window_size`` set, the cumulative retire time is
        recorded every that-many instructions into
        ``stats.extra["window_retire_times"]`` — the raw material for
        warm-up and steady-state analysis.

        ``observer`` is a :class:`repro.obs.RunObserver` (or ``None``):
        when set, the engine reports per-instruction stage times and
        event deltas to it, feeding the pipeline tracer and the
        CPI-stack accountant.  The disabled path costs one identity
        check per instruction.  An observer carrying an integrity
        ``sanitizer`` additionally gets latency checks at the memory
        interfaces and periodic invariant windows.

        ``watchdog`` is a :class:`repro.integrity.Watchdog` (or
        ``None``): beaten every few thousand instructions with the
        retire frontier, it raises :class:`SimulationStuck` when
        retirement stops advancing instead of spinning silently.

        ``blockcache`` controls the trace-compilation fast path
        (:mod:`repro.core.blockcache`): ``None``/``True`` enable it
        with defaults, ``False`` preserves the pure detailed loop, and
        a :class:`repro.core.blockcache.BlockCacheConfig` tunes it.
        The fast path engages only for random-access traces run
        without windowing, and is stat- and artefact-equivalent to the
        detailed path by construction (verified by sampling).
        """
        cfg = self.config
        features = cfg.features
        bugs = cfg.bugs
        stats = RunStats()
        hier = self.hierarchy
        bpred = self.branch_predictor
        line_pred = self.line_predictor
        way_pred = self.way_predictor
        ras = self.ras
        load_use = self.load_use
        store_wait = self.store_wait
        int_units = self._units
        fp_units = self._fp_units

        front_depth = cfg.front_end_depth
        regread = cfg.regread_depth + (cfg.regfile.access_cycles - 1)
        full_bypass = cfg.regfile.full_bypass
        # Partial bypass removes all but the last forwarding level:
        # dependents of register-file-read results see (access - 1)
        # bubble cycles (Cruz et al.'s configuration).
        bypass_penalty = (
            0 if full_bypass else max(0, cfg.regfile.access_cycles - 1)
        )
        luse_cfg = cfg.load_use
        # Waiting for the tag check before waking consumers costs up to
        # conservative_cycles, but never more than the tag check itself
        # takes: a 1-cycle D-cache leaves no load-use window at all
        # (which is why the paper's Table 5 marks the 1-cycle-L1
        # optimization n/a under the no-luse configuration, and why
        # sim-stripped gains *more* from the faster cache).
        conservative = min(
            luse_cfg.conservative_cycles,
            max(0, cfg.memory.l1d_load_to_use - 1),
        )
        trap_penalty = cfg.replay_trap_penalty
        jmp_penalty = (
            6 if bugs.jmp_undercharge else cfg.jmp_flush_penalty
        )
        addr_feature = features.addr and not bugs.late_branch_recovery
        eret = features.eret and not bugs.no_unop_removal
        mul_latency_override = 1 if bugs.wrong_fu_mix else None
        #: Penalty when a wrong line prediction on sequential flow is
        #: discovered late (no slot-stage adder to fix it).
        late_line_penalty = front_depth + regread + 3

        # Fetch state.
        fetch_free = 0.0           # next cycle a new octaword may fetch
        pending_fetch_at = 0.0     # earliest fetch due to redirect/flush
        current_octaword = -1
        group_ready = 0.0          # when the current octaword's data is up
        force_new_fetch = True
        prev_octaword = -1         # last fetched octaword (line-pred train)

        # Rename / window occupancy rings (times are retire times; they
        # are non-decreasing because retirement is in order).
        rob_ring: deque = deque()
        int_rename: deque = deque()
        fp_rename: deque = deque()
        storeq_ring: deque = deque()
        intq_ring: deque = deque()
        fpq_ring: deque = deque()
        rob_size = cfg.rob_size
        int_pool = cfg.int_rename_regs
        fp_pool = cfg.fp_rename_regs
        intq_size = cfg.int_queue_size
        fpq_size = cfg.fp_queue_size
        storeq_size = cfg.store_queue_size
        removal_delay = cfg.issue_queue_removal_delay
        maps_on = features.maps
        maps_m_int = int_pool - cfg.maps_stall_threshold + 1
        maps_m_fp = fp_pool - cfg.maps_stall_threshold + 1
        maps_stall = cfg.maps_stall_cycles
        # The rename table stalls when free registers drop below the
        # threshold; the three-cycle bubble is paid on *entering* that
        # state (a persistently full window pays once, since the map
        # stage is then retire-rate-bound anyway, not bubble-bound).
        maps_low = False

        # Register readiness: name -> (ready time, producing cluster).
        reg_ready: Dict[str, Tuple[float, int]] = {}

        # Issue-port accounting (per integer cycle).
        int_ports: Dict[int, int] = {}
        fp_ports: Dict[int, int] = {}
        int_width = cfg.int_issue_width
        fp_width = cfg.fp_issue_width

        # Retirement.
        retire_ports: Dict[int, int] = {}
        retire_width = cfg.retire_width
        last_retire = 0.0

        # Memory ordering.
        pending_stores: Dict[int, Tuple[int, float]] = {}
        last_loads: Dict[int, Tuple[int, float]] = {}
        store_frontier = 0.0  # latest store-resolve time seen so far
        load_key_shift = 4 if bugs.masked_load_trap_addresses else 3
        slot_on = features.slot
        aggressive = bugs.aggressive_cluster_scheduler
        cross_bypass = cfg.cross_cluster_bypass
        trap_on = features.trap
        unit_rotate = 0

        final_retire = 0.0
        instructions = 0
        window_marks: List[float] = []

        if observer is not None and observer.metrics is not None:
            hier.attach_metrics(observer.metrics)
        sanitizer = getattr(observer, "sanitizer", None)
        if sanitizer is not None:
            sanitizer.attach(cfg, hier)
        prof = getattr(observer, "profiler", None)
        lap = None
        if prof is not None:
            prof.run_begin()
            prof.instrument(self)
            lap = prof.lap
            lap("setup")

        # Trace-compilation fast path: engages only for random-access,
        # unwindowed traces long enough to plausibly contain hot loops.
        bc = None
        bc_cfg = resolve_blockcache(blockcache)
        if (
            bc_cfg is not None
            and window_size is None
            and hasattr(trace, "__getitem__")
            and hasattr(trace, "__len__")
            and len(trace) >= bc_cfg.min_trace_len
        ):
            bc = BlockCache(bc_cfg, self, workload)
            bc.attach(
                trace, stats, observer,
                int_ports, fp_ports, retire_ports,
                pending_stores, last_loads,
            )
        bc_head = -1
        bc_recording = False

        it = iter(trace)
        for dyn in it:
            instructions += 1
            if bc is not None and dyn.pc == bc_head:
                plan = bc.boundary(
                    bc_head,
                    instructions - 1,
                    (fetch_free, pending_fetch_at, current_octaword,
                     group_ready, force_new_fetch, prev_octaword,
                     maps_low, last_retire, store_frontier,
                     unit_rotate, final_retire),
                    (rob_ring, int_rename, fp_rename, storeq_ring,
                     intq_ring, fpq_ring),
                    reg_ready,
                )
                bc_recording = bc.recording
                if plan is not None:
                    (consumed, fetch_free, pending_fetch_at,
                     group_ready, store_frontier, last_retire,
                     final_retire, current_octaword, force_new_fetch,
                     prev_octaword, maps_low, unit_rotate,
                     rings_new) = plan
                    rob_ring = deque(rings_new[0])
                    int_rename = deque(rings_new[1])
                    fp_rename = deque(rings_new[2])
                    storeq_ring = deque(rings_new[3])
                    intq_ring = deque(rings_new[4])
                    fpq_ring = deque(rings_new[5])
                    instructions += consumed - 1
                    deque(islice(it, consumed - 1), maxlen=0)
                    beat_state = {
                        "stage": "blockcache",
                        "pc": dyn.pc,
                        "batch": consumed,
                    }
                    if watchdog is not None:
                        watchdog.beat(
                            instructions, last_retire, beat_state
                        )
                    else:
                        record_heartbeat(
                            instructions, last_retire, beat_state
                        )
                    if lap is not None:
                        lap("blockcache")
                    continue
            if observer is not None:
                observer.begin(stats)
            if window_size is not None and not instructions % window_size:
                window_marks.append(
                    final_retire if final_retire > last_retire
                    else last_retire
                )
            klass = dyn.klass
            pc = dyn.pc
            octaword = pc & _OCTA_MASK

            # ----------------------------------------------------------
            # Fetch
            # ----------------------------------------------------------
            if force_new_fetch or octaword != current_octaword:
                if prev_octaword >= 0 and not force_new_fetch:
                    # Sequential octaword transition: the line predictor
                    # must have steered fetch here.
                    predicted = line_pred.predict_and_train(
                        prev_octaword, octaword
                    )
                    if predicted != octaword:
                        stats.line_mispredicts += 1
                        if addr_feature:
                            # Fall-through is the cheapest override: the
                            # slot stage needs no target computation.
                            pending_fetch_at = max(
                                pending_fetch_at,
                                group_ready + cfg.slot_override_bubble,
                            )
                        else:
                            pending_fetch_at = max(
                                pending_fetch_at,
                                group_ready + late_line_penalty,
                            )
                fetch_start = max(fetch_free, pending_fetch_at)
                ifr = hier.ifetch(fetch_start, octaword)
                if sanitizer is not None:
                    sanitizer.check_time("ifetch", ifr.ready, pc=pc)
                if not ifr.l1_hit:
                    stats.icache_misses += 1
                ready = ifr.ready
                predicted_way = way_pred.predict_and_train(octaword, ifr.way)
                if predicted_way != ifr.way:
                    stats.way_mispredicts += 1
                    ready += cfg.way_mispredict_bubble
                if bugs.extra_way_predictor_cycle:
                    ready += 1
                fetch_free = fetch_start + 1
                group_ready = ready
                current_octaword = octaword
                prev_octaword = octaword
                force_new_fetch = False
            fetch_time = group_ready
            if lap is not None:
                lap("fetch")

            # ----------------------------------------------------------
            # Short paths: no-ops, halt
            # ----------------------------------------------------------
            if klass is InstrClass.NOP and eret:
                # Early retirement in the map stage.
                retire = max(fetch_time + 2, last_retire)
                last_retire = retire
                final_retire = retire if retire > final_retire else final_retire
                if observer is not None:
                    observer.commit_short(dyn, fetch_time, retire, stats)
                if bc_recording:
                    bc.rec_short(1, dyn, fetch_time, retire)
                    bc_recording = bc.recording
                if lap is not None:
                    lap("retire")
                continue
            if klass is InstrClass.HALT:
                retire = max(fetch_time + front_depth + 1, last_retire)
                last_retire = retire
                final_retire = retire if retire > final_retire else final_retire
                if observer is not None:
                    observer.commit_short(dyn, fetch_time, retire, stats)
                if bc_recording:
                    bc.rec_short(2, dyn, fetch_time, retire)
                    bc_recording = bc.recording
                if lap is not None:
                    lap("retire")
                continue

            # ----------------------------------------------------------
            # Map: rename + window occupancy
            # ----------------------------------------------------------
            map_time = fetch_time + 2
            if len(rob_ring) >= rob_size:
                oldest = rob_ring.popleft()
                if oldest > map_time:
                    map_time = oldest

            dest = dyn.dest
            is_fp_dest = dest is not None and dest[0] == "f"
            if dest is not None and dest not in ("r31", "f31"):
                ring = fp_rename if is_fp_dest else int_rename
                pool = fp_pool if is_fp_dest else int_pool
                if len(ring) >= pool:
                    oldest = ring.popleft()
                    if oldest > map_time:
                        map_time = oldest
                if maps_on:
                    m = maps_m_fp if is_fp_dest else maps_m_int
                    k = len(ring) - m
                    low = k >= 0 and ring[k] > map_time
                    if low and not maps_low:
                        stats.maps_stalls += 1
                        map_time += maps_stall
                    maps_low = low

            uses_fp_queue = dyn.is_fp and not klass.is_memory
            queue_ring = fpq_ring if uses_fp_queue else intq_ring
            queue_size = fpq_size if uses_fp_queue else intq_size
            if len(queue_ring) >= queue_size:
                oldest = queue_ring.popleft()
                if oldest > map_time:
                    map_time = oldest

            if dyn.is_store:
                if len(storeq_ring) >= storeq_size:
                    oldest = storeq_ring.popleft()
                    if oldest > map_time:
                        map_time = oldest
            if lap is not None:
                lap("map")

            # ----------------------------------------------------------
            # Operand readiness and cluster choice
            # ----------------------------------------------------------
            srcs = dyn.srcs
            if dyn.opcode in _CMOV_OPS and dest is not None:
                srcs = srcs + (dest,)
            data_ready = 0.0
            src_cluster = -1
            for src in srcs:
                entry = reg_ready.get(src)
                if entry is not None:
                    t, producer_cluster = entry
                    if t > data_ready:
                        data_ready = t
                        src_cluster = producer_cluster

            # Unit selection.
            if dyn.is_fp and not klass.is_memory:
                units = fp_units
            else:
                units = int_units
            need = _unit_need(klass)
            issue_base = map_time + 1
            lower_bound = issue_base if issue_base > data_ready else data_ready

            best = None
            best_time = None
            if not slot_on:
                # Without slotting restrictions the arbiter is an ideal
                # balancer: rotate the scan so ties spread across units
                # instead of piling onto a favourite.
                unit_rotate += 1
                scan = units[unit_rotate % len(units):] + \
                    units[:unit_rotate % len(units)]
            else:
                scan = units
            for unit in scan:
                if not unit[0] & need:
                    continue
                t = lower_bound if lower_bound > unit[1] else unit[1]
                if slot_on and not aggressive:
                    # The real arbiter: no source-aware steering; the
                    # cross-cluster bypass applies whenever the critical
                    # producer lives in the other cluster.
                    if src_cluster >= 0 and unit[2] != src_cluster:
                        if data_ready + cross_bypass > t:
                            t = data_ready + cross_bypass
                elif slot_on and aggressive:
                    # sim-initial's too-smart scheduler: prefers the
                    # producer's cluster, dodging the bypass penalty.
                    if src_cluster >= 0 and unit[2] != src_cluster:
                        # Mild bias away, rarely binding.  0.25 keeps
                        # every time a multiple of 1/4, which doubles
                        # represent exactly below 2**51 cycles — see
                        # the module docstring's float-exactness note.
                        t += 0.25
                # With `slot` off there are no slotting restrictions and
                # no cluster penalty: an abstract centralized core.
                if best_time is None or t < best_time:
                    best_time = t
                    best = unit
            if best is None:  # pragma: no cover - every class has a unit
                raise RuntimeError(f"no unit can execute {dyn.opcode}")
            issue_time = best_time
            my_cluster = best[2]

            # Store-wait: a load with its wait bit set holds until older
            # stores have resolved.
            waited_for_stores = False
            if dyn.is_load and features.stwt and store_wait.should_wait(pc):
                if store_frontier > issue_time:
                    issue_time = store_frontier
                stats.store_wait_holds += 1
                waited_for_stores = True

            # Issue-port arbitration.
            ports = fp_ports if dyn.is_fp and not klass.is_memory else int_ports
            width = fp_width if dyn.is_fp and not klass.is_memory else int_width
            cycle = int(issue_time)
            scan_stop = cycle + PORT_SCAN_LIMIT
            while ports.get(cycle, 0) >= width:
                cycle += 1
                if cycle > scan_stop:
                    raise SimulationStuck(
                        f"issue-port arbitration found no free cycle in "
                        f"{PORT_SCAN_LIMIT} cycles (width={width})",
                        instructions=instructions,
                        retire=last_retire,
                        state={
                            "stage": "issue-port-scan",
                            "pc": pc,
                            "cycle": cycle,
                            "width": width,
                            "issue_cycles_live": (
                                len(int_ports) + len(fp_ports)
                            ),
                        },
                    )
            ports[cycle] = ports.get(cycle, 0) + 1
            if cycle > issue_time:
                issue_time = float(cycle)

            # Occupy the unit (pipelined except divide/sqrt).
            latency = dyn.latency
            if mul_latency_override is not None and klass is InstrClass.INT_MUL:
                latency = mul_latency_override
            if klass in _DIV_CLASSES:
                best[1] = issue_time + latency
            else:
                best[1] = issue_time + 1

            queue_ring.append(issue_time + removal_delay)
            if lap is not None:
                lap("issue")

            # ----------------------------------------------------------
            # Execute / memory
            # ----------------------------------------------------------
            trap_redirect = 0.0
            if dyn.is_load:
                key = dyn.eaddr >> 3
                result = hier.load(issue_time, dyn.eaddr, fp=dyn.is_fp)
                if not result.l1_hit:
                    stats.dcache_misses += 1
                if not result.l1_hit and not result.l2_hit and \
                        not result.victim_hit:
                    stats.l2_misses += 1
                if result.victim_hit:
                    stats.victim_hits += 1
                if result.tlb_miss:
                    stats.dtlb_misses += 1
                if result.maf_stall:
                    stats.maf_stalls += 1
                if sanitizer is not None:
                    sanitizer.check_time("load", result.ready, pc=pc)
                ready = result.ready

                if features.luse:
                    predicted_hit = load_use.predict_and_train(result.l1_hit)
                    if predicted_hit and not result.l1_hit:
                        stats.loaduse_mispredicts += 1
                        ready += luse_cfg.squash_cycles
                    elif not predicted_hit and result.l1_hit:
                        ready += conservative
                else:
                    if result.l1_hit:
                        ready += conservative

                # Store replay trap: issued past an unresolved older
                # store to the same (word-granular) address.
                if not waited_for_stores:
                    entry = pending_stores.get(key)
                    if entry is not None and entry[1] > issue_time:
                        stats.store_replay_traps += 1
                        if features.stwt:
                            store_wait.record_trap(pc)
                        ready = entry[1] + trap_penalty
                        trap_redirect = ready

                # Load-load order trap: a younger load to the same
                # (possibly masked) address issuing before an older one.
                lentry = last_loads.get(key >> (load_key_shift - 3))
                if lentry is not None and lentry[1] > issue_time:
                    stats.load_order_traps += 1
                    replay_at = lentry[1] + trap_penalty
                    if replay_at > ready:
                        ready = replay_at
                    trap_redirect = max(trap_redirect, replay_at)
                last_loads[key >> (load_key_shift - 3)] = (dyn.seq, issue_time)

                # mbox traps (constraining feature).
                if trap_on and (
                    result.same_set_conflict
                    or result.maf_stall
                    or result.l2_set_conflict
                ):
                    stats.mbox_traps += 1
                    trap_redirect = max(trap_redirect, ready + trap_penalty)

                complete = ready + regread  # write-back depth
                consumer_ready = ready
            elif dyn.is_store:
                resolve = issue_time + regread + 1
                result = hier.store(resolve, dyn.eaddr)
                if sanitizer is not None:
                    sanitizer.check_time("store", result.ready, pc=pc)
                if not result.l1_hit:
                    stats.dcache_misses += 1
                if result.tlb_miss:
                    stats.dtlb_misses += 1
                pending_stores[dyn.eaddr >> 3] = (dyn.seq, resolve)
                if resolve > store_frontier:
                    store_frontier = resolve
                complete = result.ready if result.ready > resolve else resolve
                consumer_ready = resolve
                storeq_ring.append(complete)
            else:
                consumer_ready = issue_time + latency + bypass_penalty
                complete = issue_time + regread + latency
            if lap is not None:
                lap("mem" if (dyn.is_load or dyn.is_store) else "execute")

            # ----------------------------------------------------------
            # Control resolution
            # ----------------------------------------------------------
            if dyn.is_control:
                resolve = issue_time + regread + 1
                target_octa = dyn.next_pc & _OCTA_MASK
                if klass is InstrClass.COND_BRANCH:
                    stats.branch_lookups += 1
                    prediction = bpred.predict_and_train(pc, dyn.taken)
                    if prediction != dyn.taken:
                        stats.branch_mispredicts += 1
                        pending_fetch_at = max(
                            pending_fetch_at,
                            resolve + cfg.redirect_overhead,
                        )
                        force_new_fetch = True
                        if dyn.taken:
                            line_pred.predict_and_train(octaword, target_octa)
                    elif dyn.taken:
                        predicted_line = line_pred.predict_and_train(
                            octaword, target_octa
                        )
                        force_new_fetch = True
                        if predicted_line != target_octa:
                            stats.line_mispredicts += 1
                            if addr_feature:
                                pending_fetch_at = max(
                                    pending_fetch_at,
                                    fetch_time + 1 + cfg.slot_override_bubble,
                                )
                            else:
                                pending_fetch_at = max(
                                    pending_fetch_at,
                                    resolve + cfg.redirect_overhead,
                                )
                        if bugs.octaword_squash_penalty and dyn.slot < 3:
                            pending_fetch_at = max(
                                pending_fetch_at, fetch_time + 2
                            )
                elif klass is InstrClass.UNCOND_BRANCH or (
                    klass is InstrClass.CALL and dyn.opcode is Opcode.BSR
                ):
                    predicted_line = line_pred.predict_and_train(
                        octaword, target_octa
                    )
                    force_new_fetch = True
                    if predicted_line != target_octa:
                        stats.line_mispredicts += 1
                        if addr_feature:
                            pending_fetch_at = max(
                                pending_fetch_at,
                                fetch_time + 1 + cfg.slot_override_bubble,
                            )
                        else:
                            pending_fetch_at = max(
                                pending_fetch_at,
                                resolve + cfg.redirect_overhead,
                            )
                    if klass is InstrClass.CALL:
                        ras.push(dyn.fallthrough_pc)
                elif klass is InstrClass.RETURN:
                    correct = ras.predict_and_pop(dyn.next_pc)
                    force_new_fetch = True
                    if not correct:
                        stats.ras_mispredicts += 1
                        pending_fetch_at = max(
                            pending_fetch_at, fetch_time + jmp_penalty
                        )
                    line_pred.predict_and_train(octaword, target_octa)
                else:
                    # Indirect jump or jsr: the line predictor is the
                    # only target predictor, and its misses cost the
                    # full 10-cycle flush (the slot adder cannot help).
                    predicted_line = line_pred.predict_and_train(
                        octaword, target_octa
                    )
                    force_new_fetch = True
                    if predicted_line != target_octa:
                        stats.jmp_mispredicts += 1
                        pending_fetch_at = max(
                            pending_fetch_at, fetch_time + jmp_penalty
                        )
                    if klass is InstrClass.CALL:
                        ras.push(dyn.fallthrough_pc)
                if bc is not None and dyn.taken and dyn.next_pc <= pc:
                    # A taken backward branch nominates its target as
                    # the current hot-block head.
                    bc_head = dyn.next_pc

            if trap_redirect:
                pending_fetch_at = max(pending_fetch_at, trap_redirect)
                force_new_fetch = True
            if lap is not None:
                lap("control")

            # ----------------------------------------------------------
            # Write-back / retire
            # ----------------------------------------------------------
            if dest is not None and dest not in ("r31", "f31"):
                reg_ready[dest] = (consumer_ready, my_cluster)

            retire = complete + 1
            if retire < last_retire:
                retire = last_retire
            rcycle = int(retire)
            scan_stop = rcycle + PORT_SCAN_LIMIT
            while retire_ports.get(rcycle, 0) >= retire_width:
                rcycle += 1
                if rcycle > scan_stop:
                    raise SimulationStuck(
                        f"retirement found no free cycle in "
                        f"{PORT_SCAN_LIMIT} cycles "
                        f"(retire_width={retire_width})",
                        instructions=instructions,
                        retire=last_retire,
                        state={
                            "stage": "retire-port-scan",
                            "pc": pc,
                            "cycle": rcycle,
                            "retire_width": retire_width,
                            "rob": len(rob_ring),
                        },
                    )
            retire_ports[rcycle] = retire_ports.get(rcycle, 0) + 1
            if rcycle > retire:
                retire = float(rcycle)
            last_retire = retire
            if retire > final_retire:
                final_retire = retire

            rob_ring.append(retire)
            if dest is not None and dest not in ("r31", "f31"):
                (fp_rename if is_fp_dest else int_rename).append(retire)
            if features.stwt:
                store_wait.tick()

            if observer is not None:
                observer.commit(
                    dyn, fetch_time, map_time, issue_time, complete,
                    retire, stats,
                )
            if bc_recording:
                bc.rec_commit(
                    dyn, fetch_time, map_time, issue_time, complete,
                    retire, my_cluster, consumer_ready, best,
                )
                bc_recording = bc.recording

            # Periodic pruning of unbounded maps (and the livelock
            # heartbeat, which rides the same stride for zero cost on
            # the common path).
            if not instructions % 8192:
                # The heartbeat carries a pipeline-state snapshot so a
                # SIGUSR1 escalation (or watchdog trip) reports *where*
                # the run was — stage frontier, window and queue
                # occupancies, live port-table sizes — not just how far.
                beat_state = {
                    "stage": "retire",
                    "pc": pc,
                    "rob": len(rob_ring),
                    "int_rename": len(int_rename),
                    "fp_rename": len(fp_rename),
                    "intq": len(intq_ring),
                    "fpq": len(fpq_ring),
                    "storeq": len(storeq_ring),
                    "issue_cycles_live": len(int_ports) + len(fp_ports),
                    "retire_cycles_live": len(retire_ports),
                }
                if watchdog is not None:
                    watchdog.beat(instructions, last_retire, beat_state)
                else:
                    record_heartbeat(instructions, last_retire, beat_state)
                # Pruning mutates the dicts in place (rather than
                # rebinding the locals) so the blockcache's references
                # to them stay live.
                now = issue_time
                if len(pending_stores) > 4096:
                    kept = {
                        k: v for k, v in pending_stores.items() if v[1] > now
                    }
                    pending_stores.clear()
                    pending_stores.update(kept)
                if len(last_loads) > 8192:
                    kept = {
                        k: v
                        for k, v in last_loads.items()
                        if v[1] > now - 64
                    }
                    last_loads.clear()
                    last_loads.update(kept)
                if len(int_ports) > 65536:
                    horizon = int(now) - 128
                    kept = {
                        c: n for c, n in int_ports.items() if c > horizon
                    }
                    int_ports.clear()
                    int_ports.update(kept)
                    kept = {
                        c: n for c, n in fp_ports.items() if c > horizon
                    }
                    fp_ports.clear()
                    fp_ports.update(kept)
                    kept = {
                        c: n for c, n in retire_ports.items() if c > horizon
                    }
                    retire_ports.clear()
                    retire_ports.update(kept)
            if lap is not None:
                lap("retire")

        if bc is not None:
            bc.finish(observer, instructions)
        stats.itlb_misses = hier.itlb.stats.misses
        if window_size is not None:
            stats.extra["window_size"] = window_size
            stats.extra["window_retire_times"] = window_marks
        result = SimResult(
            simulator=self.config.name,
            workload=workload,
            cycles=max(final_retire, 1.0),
            instructions=instructions,
            stats=stats,
        )
        if observer is not None:
            observer.finalize(result)
        if prof is not None:
            prof.run_end()
        return result
