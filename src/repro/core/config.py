"""Machine configuration for the 21264 pipeline engine.

One :class:`MachineConfig` fully describes a simulator configuration:
pipeline geometry, predictor sizing, the ten feature flags, the
sim-initial bug flags, the native-machine (DS-10L) effects sim-alpha
does not model, and the memory hierarchy.  sim-alpha, sim-initial,
sim-stripped and the NativeMachine are all instances of this config
driving the same engine (DESIGN.md: "one engine, many configurations").
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.bugs import BugSet
from repro.core.features import FeatureSet
from repro.memory.hierarchy import MemoryHierarchyConfig
from repro.predictors.line import LinePredictorConfig
from repro.predictors.loaduse import LoadUseConfig
from repro.predictors.ras import RasConfig
from repro.predictors.storewait import StoreWaitConfig
from repro.predictors.tournament import TournamentConfig
from repro.predictors.way import WayPredictorConfig

__all__ = ["NativeEffects", "RegFileConfig", "MachineConfig"]


@dataclass(frozen=True)
class NativeEffects:
    """DS-10L behaviours the paper lists as *not* modelled by sim-alpha
    (Sections 4.1 and 5.1).

    Turning these on over the validated feature set yields our
    NativeMachine — the reference the error measurements are taken
    against.  Each flag names the corresponding paper passage in
    :mod:`repro.simulators.refmachine`.
    """

    page_coloring: bool = False
    controller_page_opt: bool = False
    shared_maf: bool = False
    store_port_contention: bool = False
    pal_tlb_misses: bool = False
    writeback_traffic: bool = False
    #: The real DS-10L memory path is split: a 64-bit processor bus
    #: into the C/D-chips, then a 128-bit 75MHz bus to the array.
    #: sim-alpha models a single conservative bus instead.
    split_memory_bus: bool = False
    #: The native machine takes replay traps sim-alpha does not
    #: reproduce (the `art` anomaly: 52M native traps vs 43M simulated).
    extra_replay_traps: bool = False

    @classmethod
    def none(cls) -> "NativeEffects":
        return cls()

    @classmethod
    def ds10l(cls) -> "NativeEffects":
        return cls(
            page_coloring=True,
            controller_page_opt=True,
            shared_maf=True,
            store_port_contention=True,
            pal_tlb_misses=True,
            writeback_traffic=True,
            split_memory_bus=True,
            extra_replay_traps=True,
        )


@dataclass(frozen=True)
class RegFileConfig:
    """Register-file access/bypass configuration (Figure 2 study).

    ``access_cycles`` extends the register-read stage; with
    ``full_bypass`` the bypass network still delivers results
    back-to-back, so only the pipeline fill (mispredict penalty)
    lengthens.  With partial bypass, results produced by loads and
    multi-cycle FP ops are not forwarded and dependents pay the extra
    access cycles.
    """

    access_cycles: int = 1
    full_bypass: bool = True


@dataclass(frozen=True)
class MachineConfig:
    """Everything the pipeline engine needs to time a trace."""

    name: str = "sim-alpha"

    # --- pipeline geometry (21264) -----------------------------------
    fetch_width: int = 4
    #: Stage offsets from fetch: slot=1, map=2, queue=3 (earliest issue).
    front_end_depth: int = 3
    #: Register read between issue and execute.
    regread_depth: int = 1
    int_issue_width: int = 4
    fp_issue_width: int = 2
    int_queue_size: int = 20
    fp_queue_size: int = 15
    rob_size: int = 80
    retire_width: int = 11
    #: Rename registers available beyond the architectural state.
    int_rename_regs: int = 40
    fp_rename_regs: int = 40
    #: Free-register threshold + stall length for the `maps` feature.
    maps_stall_threshold: int = 8
    maps_stall_cycles: int = 3
    #: Store queue entries (the 21264 splits 32/32 load and store queues).
    store_queue_size: int = 32
    load_queue_size: int = 32
    #: Issue-queue entries are removed two or more cycles after issue
    #: (the Compiler Writer's Guide variant the paper adopts).
    issue_queue_removal_delay: int = 2

    # --- penalties ----------------------------------------------------
    #: Redirect bubble when the slot-stage branch predictor overrides
    #: the line predictor (needs the `addr` feature).
    slot_override_bubble: int = 1
    #: Bubble on an I-cache way misprediction.
    way_mispredict_bubble: int = 2
    #: Cycles from branch-resolution to new fetch on a full mispredict.
    redirect_overhead: int = 1
    #: Flush/restart penalty for a mispredicted indirect jump (paper:
    #: "each mispredicted jmp incurs a 10 cycle penalty").
    jmp_flush_penalty: int = 10
    #: Pipeline flush for replay traps (store/load order, mbox).
    replay_trap_penalty: int = 14

    # --- cross-cluster execution ---------------------------------------
    clusters: int = 2
    cross_cluster_bypass: int = 1

    # --- register file (Figure 2 knob) ---------------------------------
    regfile: RegFileConfig = field(default_factory=RegFileConfig)

    # --- speculation behaviour -----------------------------------------
    features: FeatureSet = field(default_factory=FeatureSet)
    bugs: BugSet = field(default_factory=BugSet)
    native: NativeEffects = field(default_factory=NativeEffects.none)

    # --- predictor sizing ----------------------------------------------
    tournament: TournamentConfig = field(default_factory=TournamentConfig)
    line_predictor: LinePredictorConfig = field(default_factory=LinePredictorConfig)
    way_predictor: WayPredictorConfig = field(default_factory=WayPredictorConfig)
    ras: RasConfig = field(default_factory=RasConfig)
    load_use: LoadUseConfig = field(default_factory=LoadUseConfig)
    store_wait: StoreWaitConfig = field(default_factory=StoreWaitConfig)

    # --- memory hierarchy ------------------------------------------------
    memory: MemoryHierarchyConfig = field(default_factory=MemoryHierarchyConfig)

    # ------------------------------------------------------------------

    def describe(self) -> str:
        """A one-paragraph summary of what this configuration models."""
        parts = [f"{self.name}: {self.features.describe()}"]
        bugs = self.bugs.present()
        if bugs:
            parts.append(f"bugs: {'+'.join(bugs)}")
        native_flags = [
            field_name for field_name in (
                "page_coloring", "controller_page_opt", "shared_maf",
                "store_port_contention", "pal_tlb_misses",
                "writeback_traffic", "split_memory_bus",
                "extra_replay_traps",
            )
            if getattr(self.native, field_name)
        ]
        if native_flags:
            parts.append(f"native effects: {'+'.join(native_flags)}")
        parts.append(
            f"{self.int_issue_width}+{self.fp_issue_width}-wide, "
            f"ROB {self.rob_size}, IQ {self.int_queue_size}/"
            f"{self.fp_queue_size}, rename {self.int_rename_regs}/"
            f"{self.fp_rename_regs}"
        )
        if self.regfile.access_cycles != 1 or not self.regfile.full_bypass:
            parts.append(
                f"regfile {self.regfile.access_cycles}-cycle "
                f"{'full' if self.regfile.full_bypass else 'partial'} bypass"
            )
        return "; ".join(parts)

    def resolved(self) -> "MachineConfig":
        """Propagate feature/bug/native flags into subsystem configs.

        Returns a config whose predictor and memory configurations are
        consistent with the flags, ready to hand to the engine.
        """
        features = self.features
        bugs = self.bugs
        native = self.native

        speculative = features.spec and not bugs.no_speculative_update
        tournament = replace(self.tournament, speculative_update=speculative)
        line = replace(self.line_predictor, speculative_update=speculative)
        ras = replace(self.ras, speculative_update=speculative)

        load_use = self.load_use
        if bugs.short_luse_recovery:
            load_use = replace(
                load_use, squash_cycles=max(0, load_use.squash_cycles - 1)
            )

        from repro.memory.bus import BusConfig

        mem_bus = self.memory.mem_bus
        if native.split_memory_bus:
            # The C/D-chip path to the 128-bit 75MHz array bus moves
            # commands and data faster than sim-alpha's conservative
            # single-bus model.
            mem_bus = BusConfig(16, 3.0, name="mem_bus_split")
        memory = replace(
            self.memory,
            victim_buffer_enabled=features.vbuf,
            icache_prefetch=features.pref,
            shared_maf=native.shared_maf,
            store_port_contention=native.store_port_contention,
            controller_row_cache=48 if native.controller_page_opt else 0,
            writeback_traffic=native.writeback_traffic,
            l2_set_conflict_traps=native.extra_replay_traps,
            l2_extra_cycles=1 if bugs.l2_extra_cycle else 0,
            mem_bus=mem_bus,
            walk=replace(
                self.memory.walk, stalls_pipeline=native.pal_tlb_misses
            ),
            paging=replace(
                self.memory.paging,
                policy="colored" if native.page_coloring else
                self.memory.paging.policy,
            ),
        )
        return replace(
            self,
            tournament=tournament,
            line_predictor=line,
            ras=ras,
            load_use=load_use,
            memory=memory,
        )
