"""sim-initial: the pre-validation simulator (paper Section 3.4).

"The initial version of sim-alpha that had been run on simple tests but
not validated" — its microbenchmark error averaged 74.7%.  We construct
it by injecting every Section 3.4 bug into the validated configuration.
The bugs mostly *pessimise* the front end (C-Ca/C-Cb/C-R errors beyond
-100%) while a few *optimise* (jmp undercharging inflates C-S1 by 31%,
the generic-FU multiply latency inflates E-DM1 by 86%), matching the
paper's observation that errors come in both signs.
"""

from __future__ import annotations

from repro.core.bugs import BugSet
from repro.core.config import MachineConfig
from repro.core.simalpha import SimAlpha

__all__ = ["make_sim_initial", "make_sim_with_bugs"]


def make_sim_initial() -> SimAlpha:
    """The full pre-validation simulator (every bug present)."""
    config = MachineConfig(name="sim-initial", bugs=BugSet.sim_initial())
    return SimAlpha(config)


def make_sim_with_bugs(*bug_names: str, name: str | None = None) -> SimAlpha:
    """sim-alpha with only the named bugs injected.

    Supports the per-bug error-attribution study: the paper narrates
    which microbenchmark exposed which bug; this lets the benches
    measure each bug's isolated contribution.
    """
    bugs = BugSet().with_only(*bug_names)
    label = name or ("sim-alpha+" + "+".join(bug_names) if bug_names else "sim-alpha")
    return SimAlpha(MachineConfig(name=label, bugs=bugs))
