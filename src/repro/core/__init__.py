"""The paper's primary contribution: the validated 21264 simulator
family (sim-alpha, sim-initial, sim-stripped) over one pipeline engine.
"""

from repro.core.bugs import ALL_BUGS, BugSet
from repro.core.config import MachineConfig, NativeEffects, RegFileConfig
from repro.core.features import (
    ALL_FEATURES,
    CONSTRAINING_FEATURES,
    OPTIMIZING_FEATURES,
    FeatureSet,
)
from repro.core.pipeline import AlphaPipeline
from repro.core.simalpha import SimAlpha
from repro.core.siminitial import make_sim_initial, make_sim_with_bugs
from repro.core.simstripped import make_sim_minus_feature, make_sim_stripped

__all__ = [
    "ALL_BUGS",
    "BugSet",
    "MachineConfig",
    "NativeEffects",
    "RegFileConfig",
    "ALL_FEATURES",
    "CONSTRAINING_FEATURES",
    "OPTIMIZING_FEATURES",
    "FeatureSet",
    "AlphaPipeline",
    "SimAlpha",
    "make_sim_initial",
    "make_sim_with_bugs",
    "make_sim_minus_feature",
    "make_sim_stripped",
]
