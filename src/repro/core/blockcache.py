"""Trace compilation: memoized steady-state replay of hot basic blocks.

ROADMAP item 1: the per-instruction Python loop in
:mod:`repro.core.pipeline` dominates every planned direction, and the
loops our workload generators emit spend nearly all of their dynamic
instructions re-executing a short body whose pipeline timing has
reached a fixed point.  This module detects that fixed point *exactly*
and replays it, instead of re-deriving it one instruction at a time —
the dual fast/detailed simulator pattern from "Towards Accurate
Performance Modeling of RISC-V Designs" (PAPERS.md), with the detailed
path kept as the authority the fast path must keep proving itself
against.

Protocol (see ``docs/PERFORMANCE.md`` for the full soundness argument):

1. **Head detection** — a taken backward branch nominates its target
   as a block head.  Each arrival of the fetch stream at the current
   head is a *boundary*; the instructions between consecutive
   boundaries are one *occurrence* (one loop iteration).
2. **Three-capture steadiness** — occurrences are run through the
   detailed loop while their per-instruction stage times (as offsets
   from the boundary's retire frontier; *fetch* times as offsets from
   the boundary's front-end frontier — the two clocks drift apart, see
   :meth:`BlockCache._classify`), microarchitectural exit state, and
   stat deltas are recorded.  A block is *steady* only when two
   consecutive occurrence pairs agree on every record, the exit state
   classifies into the same covariant(+P)/affine(+d)/constant template
   twice running, the period ``P`` is a positive integer, and a digest
   over every piece of mutable state the all-hit path can read
   (predictor tables, cache and TLB LRU order, RAS, store-wait bits)
   is identical at consecutive boundaries.  Blocks that keep failing
   go *dead* and cost one dict probe per loop iteration thereafter;
   blocks that never pass the cheap record comparison never pay for a
   digest.
3. **Replay** — at a steady boundary, the upcoming trace is pre-scanned
   for ``m`` whole occurrences whose instructions are field-identical
   to the memo; the batch is applied in one step: covariant state
   advances by ``m * P``, front-end (affine) state by ``m * d``,
   constant state is untouched, stats and component counters advance
   by ``m`` aggregate deltas, and issue/retire port occupancy is
   written for the trailing iterations post-batch code could still
   scan.
4. **Safety** — replay happens only when the boundary state verifiably
   lies on the memoized orbit *and* the batch is contiguous with the
   previous one (so no foreign execution can have perturbed
   predictor/cache state in between).  Every ``verify_interval``-th
   batch is instead re-executed through the detailed path and diffed
   against the memo, digest included; any mismatch raises
   ``IntegrityError(InvariantViolation("blockcache_divergence"))`` and
   the run is quarantined through the standard sanitizer/CellFailure
   machinery.  Non-contiguous re-entries are re-verified benignly (a
   mismatch restarts capture; it does not quarantine).

Replay-unsafe behaviour — any cache/TLB miss, victim or MAF activity,
mbox trap, or (with the store-wait table enabled) any store-replay
trap, hold, or set wait bit — rejects steadiness for that window, so
the memoized path is exactly the all-hit, trap-free fast path and the
detailed loop keeps authority over everything else.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from operator import attrgetter
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = [
    "BLOCKCACHE_VERSION",
    "BlockCacheConfig",
    "BlockCache",
    "resolve_blockcache",
]

#: Bumped whenever memoization/replay semantics change; the experiment
#: engine mixes it into result-cache keys so cached results never span
#: blockcache versions.
BLOCKCACHE_VERSION = 1

# _Entry modes.
_IDLE = 0
_CAPTURING = 1
_STEADY = 2
_DEAD = 3

#: RunStats counter fields, in declaration order (the per-record
#: sparse-delta index space).
_STAT_FIELDS: Tuple[str, ...] = (
    "branch_lookups", "branch_mispredicts", "line_mispredicts",
    "way_mispredicts", "ras_mispredicts", "jmp_mispredicts",
    "loaduse_mispredicts", "store_replay_traps", "load_order_traps",
    "mbox_traps", "store_wait_holds", "icache_misses", "dcache_misses",
    "l2_misses", "victim_hits", "itlb_misses", "dtlb_misses",
    "maf_stalls", "maps_stalls",
)
_STAT_INDEX = {name: i for i, name in enumerate(_STAT_FIELDS)}

#: Per-occurrence stat deltas that make a window replay-unsafe: each
#: implies the occurrence touched machinery (miss paths, MAF, victim
#: buffer, mbox) whose state a replayed batch would not advance.
_UNSAFE_IDX = tuple(
    _STAT_INDEX[name] for name in (
        "icache_misses", "dcache_misses", "l2_misses", "victim_hits",
        "dtlb_misses", "maf_stalls", "mbox_traps",
    )
)
_STWT_UNSAFE_IDX = tuple(
    _STAT_INDEX[name] for name in ("store_replay_traps", "store_wait_holds")
)

#: Instruction identity for pre-scan and capture comparison: every
#: DynInstr field the timing engine reads.  ``size``/``seq``/``index``
#: are not timing-relevant (``repro.exec.cache.instr_signature`` is the
#: same judgement at whole-trace granularity).
_DYN_KEY = attrgetter(
    "pc", "opcode", "klass", "dest", "srcs", "latency", "taken",
    "next_pc", "eaddr", "slot", "is_load", "is_store", "is_fp",
    "is_control",
)

# Indices into the snapshot time vector (see _snapshot).
_T_LAST_RETIRE = 4
_T_DPORT0 = 6
_T_UNITS = 8
#: Snapshot time indices that belong to the *front-end* clock
#: (fetch_free, pending_fetch_at, group_ready) and so may legally
#: advance by their own per-iteration delta instead of the retire
#: period ``P`` (template tag ``_AFFINE``).
_T_FRONT = 3

# Template cell tags (_classify / _on_orbit / _replay).  _CONST and
# _COV are spelled False/True in templates for compactness; _AFFINE is
# the integer 2 (bool is an int subclass, so tuple equality is exact).
_AFFINE = 2


@dataclass(frozen=True)
class BlockCacheConfig:
    """Tuning knobs for the trace-compilation layer."""

    enabled: bool = True
    #: Re-execute every Nth replay batch through the detailed loop and
    #: diff against the memo.  0 disables verification sampling; 1
    #: means "always verify" — every batch is re-executed and nothing
    #: is ever replayed from the memo, the maximally paranoid mode the
    #: fault-injection suite uses.
    verify_interval: int = 32
    #: Iterations replayed per batch, at most.  Capping batches keeps
    #: the verify sampler engaged on long runs (an uncapped pre-scan
    #: would swallow a whole steady loop in one batch and sample
    #: nothing); the verified fraction of replayed iterations is
    #: ``1 / (verify_interval * max_batch)``.
    max_batch: int = 64
    #: Occurrences longer than this are never memoized (bounds capture
    #: cost for huge or irregular blocks).
    max_block_len: int = 192
    #: Capture failures before a head is declared dead.
    max_failures: int = 12
    #: Traces shorter than this never engage the blockcache.
    min_trace_len: int = 64
    #: Test hook: called with each freshly memoized block (fault
    #: injection corrupts memoized timings through this to prove the
    #: verify sampler quarantines the run).
    debug_corrupt: Optional[Callable[[Any], None]] = None


def resolve_blockcache(blockcache) -> Optional[BlockCacheConfig]:
    """Normalize a ``blockcache=`` argument to a config or ``None``.

    ``None``/``True`` select the default-enabled configuration,
    ``False`` disables the layer entirely, and a
    :class:`BlockCacheConfig` is used as given (respecting its own
    ``enabled`` flag).
    """
    if blockcache is None or blockcache is True:
        return BlockCacheConfig()
    if blockcache is False:
        return None
    if isinstance(blockcache, BlockCacheConfig):
        return blockcache if blockcache.enabled else None
    raise TypeError(
        f"blockcache must be None, a bool, or BlockCacheConfig, "
        f"not {type(blockcache).__name__}"
    )


class _Memo:
    """The compile product for one steady block head."""

    __slots__ = (
        "keys", "cmps", "records", "template", "counts_delta",
        "agg_stats", "sig", "n", "port_events", "retire_offs",
        "k_iters", "n_full", "n_loads", "n_stores", "n_ifetches",
        "store_writes", "load_writes",
    )


class _Entry:
    """Per-head finite state machine."""

    __slots__ = (
        "mode", "failures", "memo", "prev", "template", "pending_sig",
        "probing", "probe_strict", "expected_idx", "batches",
    )

    def __init__(self):
        self.mode = _IDLE
        self.failures = 0
        self.memo: Optional[_Memo] = None
        #: Last finished occurrence (capture-chain stage A), kept only
        #: when replay-safe and non-empty.
        self.prev = None
        #: Candidate template agreed by the last occurrence pair.
        self.template = None
        #: Digest taken when the candidate template was formed.
        self.pending_sig = None
        self.probing = False
        self.probe_strict = False
        #: Trace index the next contiguous boundary must land on
        #: (-1 = not contiguous; foreign code may have run since).
        self.expected_idx = -1
        self.batches = 0


class BlockCache:
    """One per :meth:`AlphaPipeline.run_trace` call (state is per-run).

    The pipeline drives it through three hooks: :meth:`attach` once at
    run start, :meth:`rec_commit`/:meth:`rec_short` per instruction
    while :attr:`recording` is set, and :meth:`boundary` whenever the
    fetch stream arrives at the current block head.  ``boundary``
    returns ``None`` (continue the detailed loop) or a replay plan
    tuple the pipeline applies to its loop locals::

        (consumed, fetch_free, pending_fetch_at, group_ready,
         store_frontier, last_retire, final_retire, current_octaword,
         force_new_fetch, prev_octaword, maps_low, unit_rotate,
         (rob, int_rename, fp_rename, storeq, intq, fpq))
    """

    def __init__(self, config: BlockCacheConfig, pipeline,
                 workload: str = ""):
        self.config = config
        self.pipeline = pipeline
        self.workload = workload
        self.entries: Dict[int, _Entry] = {}
        self.recording = False
        self._rec_head = -1
        self._rec: List[tuple] = []
        self._rec_base = 0.0
        self._rec_fbase = 0.0
        self._rec_counts: Tuple[int, ...] = ()
        self._rec_entry_snap = None
        self._rec_stats0: Tuple[int, ...] = ()
        self._prev_stats: Tuple[int, ...] = ()
        # Run-level telemetry (mirrored into blockcache.* metrics).
        self.batches = 0
        self.replayed_instructions = 0
        self.replayed_iterations = 0
        self.captures = 0
        self.failures = 0
        self.verify_probes = 0
        self.verify_matches = 0
        self.reentry_probes = 0
        self.steady_blocks = 0
        self.dead_blocks = 0

    # -- wiring --------------------------------------------------------

    def attach(self, trace, stats, observer,
               int_ports, fp_ports, retire_ports,
               pending_stores, last_loads) -> None:
        """Bind the per-run collaborators the pipeline loop owns.

        The port and memory-ordering dicts are bound by reference —
        the pipeline prunes them in place so these references stay
        live for the whole run.
        """
        self._trace = trace
        self._stats = stats
        self._observer = observer
        self._int_ports = int_ports
        self._fp_ports = fp_ports
        self._retire_ports = retire_ports
        self._pending_stores = pending_stores
        self._last_loads = last_loads
        p = self.pipeline
        self._hier = p.hierarchy
        self._int_units = p._units
        self._fp_units = p._fp_units
        self._stwt = p.config.features.stwt
        hier = self._hier
        # Every public component counter the detailed path advances:
        # replay applies the per-iteration delta times the batch size
        # so the fast path is externally indistinguishable.  (The
        # shared-MAF configuration aliases three names to one object;
        # identity-dedup so its counters advance once, not thrice.)
        pred = [
            p.branch_predictor.stats, p.line_predictor.stats,
            p.way_predictor.stats, p.ras.stats, p.load_use.stats,
            p.store_wait.stats,
        ]
        mafs: List[Any] = []
        for maf in (hier.maf_i, hier.maf_d, hier.maf_l2):
            if all(maf is not other for other in mafs):
                mafs.append(maf)
        self._count_slots: List[Tuple[Any, str]] = (
            [(s, "lookups") for s in pred]
            + [(s, "mispredictions") for s in pred]
            + [
                (c.stats, f)
                for c in (hier.l1i, hier.l1d, hier.l2)
                for f in ("accesses", "misses", "evictions", "writebacks")
            ]
            + [
                (t.stats, f)
                for t in (hier.itlb, hier.dtlb)
                for f in ("accesses", "misses")
            ]
            + [
                (m.stats, f)
                for m in mafs
                for f in ("allocations", "combines", "full_stalls")
            ]
        )
        # Index of l1i accesses in the counts vector (after the 6+6
        # predictor lookup/misprediction slots): the per-iteration
        # ifetch count for the memory.* metrics mirror.
        self._l1i_acc_idx = 12

    # -- per-instruction recording hooks -------------------------------

    def _stats_tuple(self) -> Tuple[int, ...]:
        s = self._stats
        return tuple(getattr(s, f) for f in _STAT_FIELDS)

    def _counts(self) -> Tuple[int, ...]:
        return tuple(getattr(o, f) for o, f in self._count_slots)

    def rec_commit(self, dyn, fetch, map_time, issue, complete, retire,
                   cluster, consumer, unit) -> None:
        """Record one fully timed instruction of the current occurrence."""
        if not self.recording:
            return
        if len(self._rec) >= self.config.max_block_len:
            self._abort_recording()
            return
        cur = self._stats_tuple()
        prev = self._prev_stats
        sparse = tuple(
            (i, cur[i] - prev[i])
            for i in range(len(cur)) if cur[i] != prev[i]
        )
        self._prev_stats = cur
        self._rec.append(
            (0, dyn, fetch, map_time, issue, complete, retire, cluster,
             consumer, unit, sparse)
        )

    def rec_short(self, kind, dyn, fetch, retire) -> None:
        """Record an early-retiring instruction (1 = nop, 2 = halt)."""
        if not self.recording:
            return
        if len(self._rec) >= self.config.max_block_len:
            self._abort_recording()
            return
        cur = self._stats_tuple()
        prev = self._prev_stats
        sparse = tuple(
            (i, cur[i] - prev[i])
            for i in range(len(cur)) if cur[i] != prev[i]
        )
        self._prev_stats = cur
        self._rec.append((kind, dyn, fetch, retire, sparse))

    def _abort_recording(self) -> None:
        ent = self.entries.get(self._rec_head)
        if ent is not None:
            self._fail(ent)
        self.recording = False
        self._rec = []
        self._rec_head = -1

    def _fail(self, ent: _Entry) -> None:
        self.failures += 1
        ent.failures += 1
        ent.prev = None
        ent.template = None
        ent.pending_sig = None
        ent.probing = False
        if ent.mode == _CAPTURING:
            ent.mode = _IDLE
        if ent.failures > self.config.max_failures:
            if ent.mode == _STEADY:
                self.steady_blocks -= 1
            ent.mode = _DEAD
            ent.memo = None
            self.dead_blocks += 1

    # -- state snapshot / classification -------------------------------

    def _snapshot(self, scalars, rings, reg_ready):
        (fetch_free, pending_fetch_at, current_octaword, group_ready,
         force_new_fetch, prev_octaword, maps_low, last_retire,
         store_frontier, unit_rotate, final_retire) = scalars
        hier = self._hier
        times = [
            fetch_free, pending_fetch_at, group_ready, store_frontier,
            last_retire, final_retire,
            hier._dport_free[0], hier._dport_free[1],
        ]
        for u in self._int_units:
            times.append(u[1])
        for u in self._fp_units:
            times.append(u[1])
        exact = (current_octaword, force_new_fetch, prev_octaword,
                 maps_low)
        return (
            tuple(times),
            exact,
            unit_rotate,
            tuple(tuple(r) for r in rings),
            tuple(sorted(reg_ready.items())),
        )

    @staticmethod
    def _classify(s1, s2):
        """Template from two consecutive boundary snapshots, or None.

        Every time-valued element must either advance by exactly the
        period ``P`` (covariant — replay shifts it by ``m * P``) or be
        exactly equal (constant — replay leaves it); anything else is
        not steady.  ``P`` must be a positive integer or the
        ``int(time)`` port-cycle arithmetic in the pipeline would not
        be shift-invariant.

        One exception: the three *front-end* clock elements
        (``fetch_free``, ``pending_fetch_at``, ``group_ready``) may
        advance by their own integer delta ``0 < d < P``.  The 21264
        model's fetch clock is throttled only at map (the ROB popleft
        bump), so in a loop whose retire rate is below the fetch
        bandwidth the front end runs ahead of retire by ``P - d``
        *more* cycles every iteration, without bound — those elements
        never repeat relative to the retire frontier.  Replaying them
        as affine (``value + m * d``) is sound because every coupling
        from the front-end clock into the retire clock in the hot loop
        has the form ``max(front_time + const, retire_time)``: had the
        front-end term dominated anywhere during the two captured
        occurrences, the downstream offsets would have drifted by
        ``P - d`` between them and the cheap record comparison would
        have failed; and with ``d < P`` the front-end term only falls
        further below the dominating retire term each replayed
        iteration, so the max never changes hands.  ``d > P`` (front
        end catching *up*) is rejected — slack would shrink during
        replay and the memo could silently go stale.
        """
        t1, e1, u1, r1, g1 = s1
        t2, e2, u2, r2, g2 = s2
        P = t2[_T_LAST_RETIRE] - t1[_T_LAST_RETIRE]
        if P <= 0 or not float(P).is_integer():
            return None
        if e1 != e2:
            return None
        base2 = t2[_T_LAST_RETIRE]
        times_tpl = []
        for i, (v1, v2) in enumerate(zip(t1, t2)):
            if v2 - v1 == P:
                times_tpl.append((True, v2 - base2))
            elif v2 == v1:
                times_tpl.append((False, v2))
            elif i < _T_FRONT:
                d = v2 - v1
                if 0 < d < P and float(d).is_integer():
                    times_tpl.append((_AFFINE, d))
                else:
                    return None
            else:
                return None
        rings_tpl = []
        for a, b in zip(r1, r2):
            if len(a) != len(b):
                return None
            row = []
            for v1, v2 in zip(a, b):
                if v2 - v1 == P:
                    row.append((True, v2 - base2))
                elif v2 == v1:
                    row.append((False, v2))
                else:
                    return None
            rings_tpl.append(tuple(row))
        if len(g1) != len(g2):
            return None
        reg_tpl = []
        for (k1, (v1, c1)), (k2, (v2, c2)) in zip(g1, g2):
            if k1 != k2 or c1 != c2:
                return None
            if v2 - v1 == P:
                reg_tpl.append((k1, True, v2 - base2, c1))
            elif v2 == v1:
                reg_tpl.append((k1, False, v2, c1))
            else:
                return None
        return (tuple(times_tpl), e2, u2 - u1, tuple(rings_tpl),
                tuple(reg_tpl), P)

    @staticmethod
    def _on_orbit(snap, template) -> bool:
        """Whether a boundary snapshot lies on the memoized orbit.

        Affine (front-end clock) cells are exempt: their absolute
        value drifts from the retire frontier without bound, so no
        fixed template can pin them.  That is safe — on a contiguous
        boundary they hold exactly the value the previous replay (or
        detailed probe occurrence) left, and a non-contiguous re-entry
        never reaches this check without a fresh detailed probe whose
        record comparison re-validates the front-end offsets.
        """
        times_tpl, exact, _du, rings_tpl, reg_tpl, _P = template
        t, e, _u, r, g = snap
        if e != exact:
            return False
        base = t[_T_LAST_RETIRE]
        for v, (cov, x) in zip(t, times_tpl):
            if cov == _AFFINE:
                continue
            if cov:
                if v - base != x:
                    return False
            elif v != x:
                return False
        for ring, row in zip(r, rings_tpl):
            if len(ring) != len(row):
                return False
            for v, (cov, x) in zip(ring, row):
                if cov:
                    if v - base != x:
                        return False
                elif v != x:
                    return False
        if len(g) != len(reg_tpl):
            return False
        for (k, (v, c)), (k2, cov, x, c2) in zip(g, reg_tpl):
            if k != k2 or c != c2:
                return False
            if cov:
                if v - base != x:
                    return False
            elif v != x:
                return False
        return True

    def _digest(self) -> bytes:
        """Hash every mutable structure the all-hit path can read.

        Explicit enumeration, not reflection: the set is an audit of
        the hit paths in ``pipeline.py`` and ``hierarchy.py``.
        Page-mapper state is append-only (a hit occurrence touches only
        already-mapped pages) and MAF entries cannot change on a
        missless occurrence (pending-fill interactions that *bind* show
        up as differing time offsets and fail the cheap comparison), so
        neither is hashed.  Dict tables hash as sorted items so
        insertion order cannot alias two equal states apart; cache and
        TLB entry lists hash in order because their order *is* the LRU
        state.
        """
        p = self.pipeline
        bp = p.branch_predictor
        lp = p.line_predictor
        wp = p.way_predictor
        ras = p.ras
        hier = self._hier
        parts = (
            bp._local_history, bp._local.table, bp._global.table,
            bp._choice.table, bp._ghist, bp._retired_ghist,
            tuple(bp._pending), tuple(bp._pending_local),
            sorted(lp._table.items()), tuple(lp._pending),
            sorted(wp._table.items()),
            ras._slots, ras._top, tuple(ras._pending),
            p.load_use._counter.value,
            bytes(p.store_wait._bits),
            hier.l1i._sets, hier.l1d._sets,
            hier.itlb._entries, hier.dtlb._entries,
        )
        return hashlib.blake2b(
            repr(parts).encode(), digest_size=16
        ).digest()

    # -- occurrence normalization --------------------------------------

    def _normalize(self, records, base, fbase):
        """(keys, cmp-records, replay-records) for one occurrence.

        ``cmp`` tuples carry no object references, so occurrences
        compare with ``==``; replay records keep the captured DynInstr
        for observer-mode commits (the pre-scan guarantees replayed
        iterations are field-identical to the captured one).

        Stage times are offsets from the boundary's retire frontier
        (``base``) — except *fetch* times, which are offsets from the
        boundary's front-end frontier (``fbase`` = ``fetch_free`` at
        occurrence entry).  The two clocks drift apart at a constant
        rate in a steady loop (see :meth:`_classify`), so only the
        fetch-rebased offsets are iteration-invariant.
        """
        keys = []
        cmps = []
        reps = []
        for rec in records:
            kind = rec[0]
            dyn = rec[1]
            key = _DYN_KEY(dyn)
            keys.append(key)
            if kind == 0:
                (_, _, fetch, map_time, issue, complete, retire,
                 cluster, consumer, unit, sparse) = rec
                uidx = self._unit_index(unit)
                cmps.append(
                    (0, key, fetch - fbase, map_time - base,
                     issue - base, complete - base, retire - base,
                     consumer - base, cluster, uidx, sparse)
                )
                reps.append(
                    (0, dyn, fetch - fbase, map_time - base,
                     issue - base, complete - base, retire - base,
                     consumer - base, cluster, sparse)
                )
            else:
                _, _, fetch, retire, sparse = rec
                cmps.append(
                    (kind, key, fetch - fbase, retire - base, sparse)
                )
                reps.append(
                    (kind, dyn, fetch - fbase, retire - base, sparse)
                )
        return tuple(keys), tuple(cmps), tuple(reps)

    def _unit_index(self, unit) -> Tuple[int, int]:
        for i, u in enumerate(self._int_units):
            if u is unit:
                return (0, i)
        for i, u in enumerate(self._fp_units):
            if u is unit:
                return (1, i)
        return (-1, -1)  # pragma: no cover - unit is always known

    # -- the boundary hook ---------------------------------------------

    def boundary(self, head: int, idx: int, scalars, rings, reg_ready):
        """Handle the fetch stream arriving at ``head`` (= trace[idx]).

        Returns ``None`` to continue the detailed loop, or a replay
        plan tuple (class docstring) the pipeline applies in place.
        """
        entries = self.entries
        ent = entries.get(head)
        if ent is None:
            ent = entries[head] = _Entry()
        if self.recording and self._rec_head != head:
            # A different head fired mid-occurrence: the recording
            # block contains an inner loop and can never satisfy the
            # head-to-head occurrence contract.
            self._abort_recording()
        if ent.mode == _DEAD:
            return None

        finished = None
        if self.recording and self._rec_head == head:
            finished = self._finish_occurrence(scalars, rings, reg_ready)

        if ent.mode == _STEADY:
            return self._steady_boundary(
                ent, head, idx, scalars, rings, reg_ready, finished
            )
        return self._capture_boundary(
            ent, head, idx, scalars, rings, reg_ready, finished
        )

    def _finish_occurrence(self, scalars, rings, reg_ready):
        """Close the in-flight recording at this boundary."""
        records = self._rec
        self.recording = False
        self._rec = []
        self._rec_head = -1
        exit_snap = self._snapshot(scalars, rings, reg_ready)
        counts_delta = tuple(
            b - a for a, b in zip(self._rec_counts, self._counts())
        )
        keys, cmps, reps = self._normalize(
            records, self._rec_base, self._rec_fbase
        )
        stats_now = self._stats_tuple()
        stats_delta = tuple(
            b - a for a, b in zip(self._rec_stats0, stats_now)
        )
        return (keys, cmps, reps, exit_snap, counts_delta, stats_delta,
                self._rec_entry_snap)

    def _start_recording(self, head, entry_snap) -> None:
        self.recording = True
        self._rec_head = head
        self._rec = []
        self._rec_base = entry_snap[0][_T_LAST_RETIRE]
        self._rec_fbase = entry_snap[0][0]
        self._rec_counts = self._counts()
        self._rec_entry_snap = entry_snap
        self._rec_stats0 = self._stats_tuple()
        self._prev_stats = self._rec_stats0

    def _replay_safe(self, stats_delta) -> bool:
        for i in _UNSAFE_IDX:
            if stats_delta[i]:
                return False
        if self._stwt:
            for i in _STWT_UNSAFE_IDX:
                if stats_delta[i]:
                    return False
            if any(self.pipeline.store_wait._bits):
                return False
        return True

    # -- capture chain -------------------------------------------------

    def _capture_boundary(self, ent, head, idx, scalars, rings,
                          reg_ready, finished):
        snap_now = (
            finished[3] if finished is not None
            else self._snapshot(scalars, rings, reg_ready)
        )
        if finished is not None:
            self.captures += 1
            (keys, cmps, reps, exit_snap, counts_delta, stats_delta,
             entry_snap) = finished
            if not cmps or not self._replay_safe(stats_delta):
                self._fail(ent)
            elif ent.prev is None:
                ent.prev = finished
            elif ent.prev[1] != cmps or ent.prev[4] != counts_delta:
                # Slide the capture window: the latest occurrence
                # becomes stage A and the chain restarts from it.
                self.failures += 1
                ent.failures += 1
                ent.template = None
                ent.pending_sig = None
                ent.prev = finished
                if ent.failures > self.config.max_failures:
                    ent.mode = _DEAD
                    ent.prev = None
                    self.dead_blocks += 1
                    return None
            else:
                template = self._classify(entry_snap, exit_snap)
                if template is None:
                    self._fail(ent)
                elif ent.template is None:
                    # First agreeing pair: remember the candidate and
                    # take the (expensive) digest only now that the
                    # cheap checks have passed.
                    ent.template = template
                    ent.pending_sig = self._digest()
                    ent.prev = finished
                elif template == ent.template \
                        and self._digest() == ent.pending_sig:
                    self._memoize(ent, finished, template)
                    # The block went steady at this very boundary:
                    # re-enter through the steady path so a replay can
                    # begin immediately.
                    ent.expected_idx = idx
                    return self._steady_boundary(
                        ent, head, idx, scalars, rings, reg_ready, None
                    )
                else:
                    self._fail(ent)
        if ent.mode != _DEAD and not self.recording:
            ent.mode = _CAPTURING
            self._start_recording(head, snap_now)
        return None

    def _memoize(self, ent, finished, template) -> None:
        keys, cmps, reps, exit_snap, counts_delta, stats_delta, _ = finished
        P = template[5]
        memo = _Memo()
        memo.keys = keys
        memo.cmps = cmps
        memo.records = reps
        memo.template = template
        memo.counts_delta = counts_delta
        memo.agg_stats = tuple(
            (i, d) for i, d in enumerate(stats_delta) if d
        )
        memo.sig = self._digest()
        memo.n = len(keys)
        port_events = []
        retire_offs = []
        n_full = n_loads = n_stores = 0
        offs = [0.0]
        shift = 4 if self.pipeline.config.bugs.masked_load_trap_addresses \
            else 3
        stores_seen: Dict[int, tuple] = {}
        loads_seen: Dict[int, tuple] = {}
        for rep in reps:
            if rep[0] != 0:
                # rep[2] is the fetch offset — front-end clock, not
                # part of the retire-clock port span.
                offs.append(rep[3])
                continue
            (_, dyn, _f_off, _m_off, i_off, _c_off, r_off, cons_off,
             _cl, _sp) = rep
            n_full += 1
            fp_port = dyn.is_fp and not dyn.klass.is_memory
            port_events.append((i_off, fp_port))
            retire_offs.append(r_off)
            offs.append(i_off)
            offs.append(r_off)
            if dyn.is_load:
                n_loads += 1
                loads_seen[(dyn.eaddr >> 3) >> (shift - 3)] = \
                    (dyn.seq, i_off)
            elif dyn.is_store:
                n_stores += 1
                # consumer_ready == the store's resolve time.
                stores_seen[dyn.eaddr >> 3] = (dyn.seq, cons_off)
        # Port occupancy must be correct at every cycle post-batch code
        # can still scan; covering span/P + slack trailing iterations
        # over-writes only counts the detailed path would also write.
        span = max(offs) - min(offs)
        memo.k_iters = int((span + 16) // P) + 3
        memo.port_events = tuple(port_events)
        memo.retire_offs = tuple(retire_offs)
        memo.n_full = n_full
        memo.n_loads = n_loads
        memo.n_stores = n_stores
        memo.n_ifetches = counts_delta[self._l1i_acc_idx]
        memo.store_writes = tuple(stores_seen.items())
        memo.load_writes = tuple(loads_seen.items())
        corrupt = self.config.debug_corrupt
        if corrupt is not None:
            corrupt(memo)
        ent.memo = memo
        ent.mode = _STEADY
        ent.prev = None
        ent.template = None
        ent.pending_sig = None
        ent.failures = 0
        ent.batches = 0
        self.steady_blocks += 1

    # -- steady path ---------------------------------------------------

    def _steady_boundary(self, ent, head, idx, scalars, rings,
                         reg_ready, finished):
        memo = ent.memo
        if finished is not None and ent.probing:
            ent.probing = False
            if self._probe_matches(memo, finished):
                self.verify_matches += 1
                ent.expected_idx = idx
            elif ent.probe_strict:
                self._raise_divergence(head, idx, memo)
            else:
                # Benign re-entry mismatch: the block's steady state
                # legitimately moved on — recapture from scratch.
                self.steady_blocks -= 1
                ent.mode = _CAPTURING
                ent.memo = None
                ent.failures = 0
                ent.expected_idx = -1
                if finished[1] and self._replay_safe(finished[5]):
                    ent.prev = finished
                self._start_recording(head, finished[3])
                return None

        snap = (
            finished[3] if finished is not None
            else self._snapshot(scalars, rings, reg_ready)
        )
        contiguous = (
            ent.expected_idx == idx
            and self._on_orbit(snap, memo.template)
        )
        if not contiguous:
            # Foreign execution may have perturbed predictor/cache
            # state since the last batch: re-verify before trusting
            # the memo again.
            if not self._prescan_one(memo, idx):
                ent.expected_idx = -1
                return None
            self.reentry_probes += 1
            ent.probing = True
            ent.probe_strict = False
            self._start_recording(head, snap)
            return None

        interval = self.config.verify_interval
        if interval > 0 and ent.batches % interval == interval - 1:
            if not self._prescan_one(memo, idx):
                ent.expected_idx = -1
                return None
            ent.batches += 1
            self.verify_probes += 1
            ent.probing = True
            ent.probe_strict = True
            self._start_recording(head, snap)
            return None

        m = self._prescan(memo, idx)
        if m < 1:
            ent.expected_idx = -1
            return None
        ent.batches += 1
        ent.expected_idx = idx + memo.n * m
        return self._replay(memo, snap, m, reg_ready)

    def _prescan_one(self, memo, idx) -> bool:
        """Whether one whole memo-identical occurrence starts at idx."""
        trace = self._trace
        n = memo.n
        if idx + n > len(trace):
            return False
        keys = memo.keys
        for r in range(n):
            if _DYN_KEY(trace[idx + r]) != keys[r]:
                return False
        return True

    def _prescan(self, memo, idx) -> int:
        """Count whole upcoming occurrences identical to the memo.

        Stops at ``max_batch`` — scanning further would be wasted work
        (the batch is clamped there anyway) and a single uncapped
        batch would starve the verify sampler.
        """
        trace = self._trace
        keys = memo.keys
        n = memo.n
        total = len(trace)
        limit = self.config.max_batch
        m = 0
        i = idx
        while m < limit and i + n <= total:
            for r in range(n):
                if _DYN_KEY(trace[i + r]) != keys[r]:
                    return m
            m += 1
            i += n
        return m

    def _probe_matches(self, memo, finished) -> bool:
        (keys, cmps, _reps, exit_snap, counts_delta, _stats_delta,
         entry_snap) = finished
        if keys != memo.keys or cmps != memo.cmps:
            return False
        if counts_delta != memo.counts_delta:
            return False
        if self._classify(entry_snap, exit_snap) != memo.template:
            return False
        return self._digest() == memo.sig

    def _raise_divergence(self, head, idx, memo) -> None:
        from repro.integrity.sanitizers import (
            IntegrityError,
            InvariantViolation,
        )
        self.recording = False
        raise IntegrityError(InvariantViolation(
            invariant="blockcache_divergence",
            message=(
                f"blockcache verify sample diverged from the memoized "
                f"steady state of block head {head:#x} at trace index "
                f"{idx} (block of {memo.n} instructions, period "
                f"{memo.template[5]:g} cycles)"
            ),
            simulator=self.pipeline.config.name,
            workload=self.workload,
            snapshot={
                "head": head,
                "index": idx,
                "block_len": memo.n,
                "period": memo.template[5],
                "batches": self.batches,
                "verify_probes": self.verify_probes,
            },
        ))

    # -- replay --------------------------------------------------------

    def _replay(self, memo, snap, m, reg_ready):
        """Apply ``m`` memoized occurrences; return the pipeline plan."""
        times_tpl, exact, du, rings_tpl, reg_tpl, P = memo.template
        base0 = snap[0][_T_LAST_RETIRE]
        base_f = base0 + m * P
        mat = self._mat

        # Front-end clock: the fetch base is the current fetch_free and
        # it advances by d per iteration (P when fetch_free is
        # retire-covariant, 0 when constant).
        fbase0 = snap[0][0]
        ftag, fx = times_tpl[0]
        if ftag == _AFFINE:
            d_f = fx
        elif ftag:
            d_f = P
        else:
            d_f = 0.0

        def front(i):
            tag, x = times_tpl[i]
            if tag == _AFFINE:
                return snap[0][i] + x * m
            return x + base_f if tag else x

        stats = self._stats
        observer = self._observer
        if observer is not None:
            self._replay_observed(
                memo, base0, P, m, stats, observer, fbase0, d_f
            )
        else:
            for i, d in memo.agg_stats:
                name = _STAT_FIELDS[i]
                setattr(stats, name, getattr(stats, name) + d * m)

        # Public component counters (predictors, caches, TLBs, MAFs).
        for (obj, fname), d in zip(self._count_slots, memo.counts_delta):
            if d:
                setattr(obj, fname, getattr(obj, fname) + d * m)
        hier = self._hier
        if hier._m_ifetches is not None:
            hier._m_ifetches.inc(memo.n_ifetches * m)
            hier._m_ifetch_hits.inc(memo.n_ifetches * m)
            hier._m_loads.inc(memo.n_loads * m)
            hier._m_load_hits.inc(memo.n_loads * m)
            hier._m_stores.inc(memo.n_stores * m)
            hier._m_store_hits.inc(memo.n_stores * m)

        # Issue/retire port occupancy for the trailing iterations whose
        # cycles post-batch instructions could still scan.
        first = m - memo.k_iters
        if first < 0:
            first = 0
        int_ports = self._int_ports
        fp_ports = self._fp_ports
        retire_ports = self._retire_ports
        for j in range(first, m):
            base_j = base0 + j * P
            for off, fp_port in memo.port_events:
                cyc = int(off + base_j)
                if fp_port:
                    fp_ports[cyc] = fp_ports.get(cyc, 0) + 1
                else:
                    int_ports[cyc] = int_ports.get(cyc, 0) + 1
            for off in memo.retire_offs:
                cyc = int(off + base_j)
                retire_ports[cyc] = retire_ports.get(cyc, 0) + 1

        # Memory-ordering state: keys repeat every iteration, so only
        # the final iteration's writes survive.
        base_last = base0 + (m - 1) * P
        pending_stores = self._pending_stores
        last_loads = self._last_loads
        for key, (seq, off) in memo.store_writes:
            pending_stores[key] = (seq, off + base_last)
        for key, (seq, off) in memo.load_writes:
            last_loads[key] = (seq, off + base_last)

        # Register readiness: covariant producers shift, constants are
        # already in place (the orbit check proved them equal).
        for name, cov, x, cluster in reg_tpl:
            if cov:
                reg_ready[name] = (x + base_f, cluster)

        # D-cache ports and functional units (in-place).
        hier._dport_free[0] = mat(times_tpl[_T_DPORT0], base_f)
        hier._dport_free[1] = mat(times_tpl[_T_DPORT0 + 1], base_f)
        k = _T_UNITS
        for u in self._int_units:
            u[1] = mat(times_tpl[k], base_f)
            k += 1
        for u in self._fp_units:
            u[1] = mat(times_tpl[k], base_f)
            k += 1

        # Store-wait clear timer: ticks advance by one per retired
        # (non-short) instruction and flash-clear exactly at the
        # interval, so the counter is plain modular arithmetic; the
        # wait bits are all zero in any steady window (checked by
        # _replay_safe), so a crossed clear boundary is a no-op.
        if self._stwt:
            sw = self.pipeline.store_wait
            interval = sw.config.clear_interval
            sw._since_clear = (sw._since_clear + memo.n_full * m) % interval

        consumed = memo.n * m
        self.batches += 1
        self.replayed_instructions += consumed
        self.replayed_iterations += m

        rings_new = tuple(
            tuple(mat(cell, base_f) for cell in row)
            for row in rings_tpl
        )
        return (
            consumed,
            front(0),                    # fetch_free
            front(1),                    # pending_fetch_at
            front(2),                    # group_ready
            mat(times_tpl[3], base_f),   # store_frontier
            mat(times_tpl[4], base_f),   # last_retire
            mat(times_tpl[5], base_f),   # final_retire
            exact[0], exact[1], exact[2], exact[3],
            snap[2] + du * m,            # unit_rotate
            rings_new,
        )

    @staticmethod
    def _mat(cell, base_f):
        cov, x = cell
        return x + base_f if cov else x

    def _replay_observed(self, memo, base0, P, m, stats, observer,
                         fbase0, d_f) -> None:
        """Per-instruction observer commits with translated times.

        The tracer, CPI-stack accountant, sanitizer windows, and
        instrumentation counters all ride ``observer.commit``;
        replaying through them keeps every instrumented artefact
        byte-identical to the detailed path (at per-record cost — the
        O(1)-per-batch aggregate mode is the observer-less one).
        Fetch times ride the front-end clock (``fbase0 + j * d_f``);
        every other stage time rides the retire clock.
        """
        begin = observer.begin
        commit = observer.commit
        commit_short = observer.commit_short
        fields = _STAT_FIELDS
        records = memo.records
        for j in range(m):
            shift = base0 + j * P
            fshift = fbase0 + j * d_f
            for rep in records:
                begin(stats)
                for i, d in rep[-1]:
                    name = fields[i]
                    setattr(stats, name, getattr(stats, name) + d)
                if rep[0] == 0:
                    commit(rep[1], rep[2] + fshift, rep[3] + shift,
                           rep[4] + shift, rep[5] + shift,
                           rep[6] + shift, stats)
                else:
                    commit_short(rep[1], rep[2] + fshift,
                                 rep[3] + shift, stats)

    # -- run-end reporting ---------------------------------------------

    def stats(self) -> Dict[str, int]:
        """Run-level blockcache telemetry."""
        return {
            "batches": self.batches,
            "replayed_instructions": self.replayed_instructions,
            "replayed_iterations": self.replayed_iterations,
            "captures": self.captures,
            "failures": self.failures,
            "verify_probes": self.verify_probes,
            "verify_matches": self.verify_matches,
            "reentry_probes": self.reentry_probes,
            "steady_blocks": self.steady_blocks,
            "dead_blocks": self.dead_blocks,
        }

    def finish(self, observer, instructions: int) -> None:
        """Mirror telemetry into ``blockcache.*`` metrics at run end."""
        self.recording = False
        metrics = getattr(observer, "metrics", None)
        if metrics is None:
            return
        for name, value in self.stats().items():
            if value:
                metrics.counter(f"blockcache.{name}").inc(value)
        if self.batches or self.captures:
            metrics.gauge("blockcache.hit_rate").set(
                self.batches / (self.batches + self.captures)
            )
        if instructions:
            metrics.gauge("blockcache.replayed_fraction").set(
                self.replayed_instructions / instructions
            )
