"""sim-stripped: sim-alpha with the low-level features removed.

Paper Section 5.1: "a version of sim-alpha with many of the low-level
features removed.  We chose the level of detail to match what is
typically seen in simulators in the architecture community: pipeline
organization, functional unit latencies, etc., but few low-level
limitations."  All seven performance-optimizing and all three
performance-constraining features are off; the paper found it
*under*-estimates the DS-10L by 40% on average, because losing the
optimizations outweighs shedding the constraints.
"""

from __future__ import annotations

from repro.core.config import MachineConfig
from repro.core.features import FeatureSet
from repro.core.simalpha import SimAlpha

__all__ = ["make_sim_stripped", "make_sim_minus_feature"]


def make_sim_stripped() -> SimAlpha:
    """The fully stripped configuration (all ten features removed)."""
    config = MachineConfig(name="sim-stripped", features=FeatureSet.stripped())
    return SimAlpha(config)


def make_sim_minus_feature(feature: str) -> SimAlpha:
    """sim-alpha minus a single feature (the Table 4 / Table 5 columns)."""
    config = MachineConfig(
        name=f"sim-alpha-no-{feature}",
        features=FeatureSet().without(feature),
    )
    return SimAlpha(config)
