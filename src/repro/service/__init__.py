"""Simulation-as-a-service: an async job API over the experiment engine.

The paper's whole methodology is sweeping (simulator x workload x
config) grids; this package turns the repo's batch tooling into a
standing service that accepts those grids as typed
:class:`~repro.exec.spec.ExperimentSpec` requests over HTTP, executes
each distinct spec exactly once, and replays results for everyone:

* :mod:`repro.service.jobs` — the durable on-disk job queue with
  dedup-by-canonical-spec-hash and long-poll event streams;
* :mod:`repro.service.quota` — per-tenant admission control (queued
  jobs, cells/day);
* :mod:`repro.service.worker` — the execution thread that drives jobs
  through :class:`~repro.validation.harness.Harness` /
  :class:`~repro.exec.engine.ExperimentEngine` with a per-job
  checkpoint journal (graceful shutdown re-queues, resume recovers);
* :mod:`repro.service.app` — the stdlib HTTP layer
  (``http.server.ThreadingHTTPServer``), no third-party deps;
* :mod:`repro.service.client` — a small blocking client the tests and
  scripts use;
* :mod:`repro.service.cli` — the ``repro-serve`` entry point.

See docs/SERVICE.md for the API reference.
"""

from __future__ import annotations

import importlib

_EXPORTS = {
    "JobStore": "repro.service.jobs",
    "JobNotFound": "repro.service.jobs",
    "QuotaExceeded": "repro.service.quota",
    "QuotaLedger": "repro.service.quota",
    "QuotaPolicy": "repro.service.quota",
    "JobWorker": "repro.service.worker",
    "ServiceShutdown": "repro.service.worker",
    "ServiceApp": "repro.service.app",
    "build_server": "repro.service.app",
    "ServiceClient": "repro.service.client",
    "ServiceError": "repro.service.client",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        )
    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
