"""The HTTP face of the job service (stdlib ``http.server`` only).

Routes (all JSON unless noted):

========  =============================  =====================================
Method    Path                           Meaning
========  =============================  =====================================
POST      ``/v1/jobs``                   Submit an ``ExperimentSpec``; dedups
                                         by canonical spec hash; enforces
                                         tenant quotas (429 + Retry-After).
GET       ``/v1/jobs``                   List job statuses.
GET       ``/v1/jobs/{id}``              One job's status.
GET       ``/v1/jobs/{id}/events``       Progress stream; ``?after=N`` resumes
                                         past events, ``?timeout=S`` long-polls.
GET       ``/v1/jobs/{id}/result``       The canonical ResultGrid JSON (409
                                         until the job is done).
GET       ``/v1/cells/{cache_key}``      One cell straight from the shared
                                         content-addressed ResultCache.
GET       ``/v1/healthz``                Liveness.
GET       ``/metrics``                   OpenMetrics text exposition.
========  =============================  =====================================

Tenancy is declared, not authenticated: the ``X-Repro-Tenant`` header
names the caller (default ``anonymous``); quota enforcement keys off
it.  Authentication belongs in a fronting proxy — this service is for
trusted lab networks (see docs/SERVICE.md).
"""

from __future__ import annotations

import json
import os
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.exec.cache import ResultCache
from repro.exec.spec import ExperimentSpec, SpecError
from repro.obs.registry import MetricsRegistry
from repro.service.jobs import JobNotFound, JobStore
from repro.service.quota import QuotaExceeded, QuotaLedger
from repro.service.worker import JobWorker

__all__ = ["ServiceApp", "build_server"]

#: Cap request bodies well above any sane spec, below any DoS payload.
_MAX_BODY = 1 << 20


class ServiceApp:
    """Wires store + quota + worker + metrics around one state root."""

    def __init__(
        self,
        root,
        *,
        workloads=None,
        quota: Optional[QuotaLedger] = None,
        metrics: Optional[MetricsRegistry] = None,
        clock=None,
    ):
        from repro.workloads.suite import WorkloadSet

        self.root = os.fspath(root)
        os.makedirs(self.root, exist_ok=True)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        store_kwargs = {} if clock is None else {"clock": clock}
        self.store = JobStore(self.root, **store_kwargs)
        quota_kwargs = {"path": os.path.join(self.root, "quota.json")}
        if clock is not None:
            quota_kwargs["clock"] = clock
        self.quota = (
            quota if quota is not None else QuotaLedger(**quota_kwargs)
        )
        self.workloads = (
            workloads if workloads is not None else WorkloadSet()
        )
        self.cache = ResultCache(
            os.path.join(self.root, "cache"), metrics=self.metrics
        )
        self.worker = JobWorker(
            self.store, self.workloads, self.cache, metrics=self.metrics
        )
        self._started = False

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        if not self._started:
            self.worker.start()
            self._started = True

    def shutdown(self, *, timeout: float = 30.0) -> None:
        """Drain gracefully: the in-flight grid checkpoints at the next
        cell boundary and its job re-queues for the next server."""
        self.worker.stop()
        if self._started:
            self.worker.join(timeout=timeout)

    # -- request handlers (transport-free, unit-testable) ------------------

    def submit(self, body: Dict, tenant: str) -> Tuple[int, Dict]:
        if not isinstance(body, dict):
            return 400, {"error": "request body must be a JSON object"}
        payload = body.get("spec", body)
        reuse = bool(body.get("reuse", True))
        try:
            spec = ExperimentSpec.from_dict(payload)
            spec.validate(workload_set=self.workloads)
        except SpecError as error:
            self.metrics.counter("service.jobs.rejected").inc()
            return 400, {"error": str(error)}
        cells = len(spec.simulators) * len(spec.workloads)
        key = spec.dedup_key()
        deduped_free = (
            reuse and self.store.active_job_for(key) is not None
        )
        if not deduped_free:
            try:
                self.quota.admit(
                    tenant, cells=cells,
                    queued_jobs=self.store.queued_jobs(tenant),
                )
            except QuotaExceeded as error:
                self.metrics.counter("service.jobs.throttled").inc()
                return 429, {
                    "error": str(error),
                    "retry_after_s": error.retry_after_s,
                }
        job, deduped = self.store.submit(spec, tenant, reuse=reuse)
        self.metrics.counter(
            "service.jobs.deduped" if deduped
            else "service.jobs.submitted"
        ).inc()
        status = dict(job.status)
        status["deduped"] = deduped
        return (200 if deduped else 201), status

    def job_status(self, job_id: str) -> Tuple[int, Dict]:
        try:
            return 200, self.store.status(job_id)
        except JobNotFound:
            return 404, {"error": f"no such job: {job_id}"}

    def job_events(self, job_id: str, after: int,
                   timeout: float) -> Tuple[int, Dict]:
        try:
            events, state = self.store.events_since(
                job_id, after, timeout=min(timeout, 30.0)
            )
        except JobNotFound:
            return 404, {"error": f"no such job: {job_id}"}
        return 200, {
            "events": events,
            "next": after + len(events),
            "state": state,
        }

    def job_result(self, job_id: str) -> Tuple[int, Optional[str], Dict]:
        """(status, raw-json-text or None, fallback payload)."""
        try:
            status = self.store.status(job_id)
            text = self.store.result_text(job_id)
        except JobNotFound:
            return 404, None, {"error": f"no such job: {job_id}"}
        if text is None:
            return 409, None, {
                "error": f"job {job_id} is {status['state']}, not done",
                "state": status["state"],
                "job": status,
            }
        return 200, text, {}

    def cell(self, digest: str) -> Tuple[int, Dict]:
        payload = self.cache.get_digest(digest)
        if payload is None:
            return 404, {"error": f"no cached cell {digest!r}"}
        return 200, payload


class _Handler(BaseHTTPRequestHandler):
    """Thin JSON shim over :class:`ServiceApp`."""

    app: ServiceApp = None  # injected by build_server
    quiet = True
    protocol_version = "HTTP/1.1"
    server_version = "repro-serve/1"

    # -- plumbing ----------------------------------------------------------

    def log_message(self, fmt, *args):  # pragma: no cover - noise
        if not self.quiet:
            super().log_message(fmt, *args)

    def _send(self, code: int, payload: Dict,
              *, extra_headers: Dict[str, str] = ()) -> None:
        body = json.dumps(payload, sort_keys=True).encode()
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in dict(extra_headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, code: int, text: str,
                   content_type: str = "application/json") -> None:
        body = text.encode()
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _tenant(self) -> str:
        return self.headers.get("X-Repro-Tenant", "anonymous").strip() \
            or "anonymous"

    # -- routes ------------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 - stdlib casing
        url = urlparse(self.path)
        if url.path != "/v1/jobs":
            self._send(404, {"error": f"no route: POST {url.path}"})
            return
        length = int(self.headers.get("Content-Length") or 0)
        if length > _MAX_BODY:
            self._send(413, {"error": "request body too large"})
            return
        try:
            body = json.loads(self.rfile.read(length) or b"{}")
        except ValueError:
            self._send(400, {"error": "request body is not valid JSON"})
            return
        code, payload = self.app.submit(body, self._tenant())
        headers = {}
        if code == 429:
            headers["Retry-After"] = str(
                max(1, int(payload.get("retry_after_s") or 1))
            )
        self._send(code, payload, extra_headers=headers)

    def do_GET(self) -> None:  # noqa: N802 - stdlib casing
        url = urlparse(self.path)
        query = parse_qs(url.query)
        parts = [p for p in url.path.split("/") if p]

        if url.path == "/v1/healthz":
            self._send(200, {"ok": True})
            return
        if url.path == "/metrics":
            self._send_text(
                200,
                self.app.metrics.render_openmetrics(),
                "application/openmetrics-text; version=1.0.0; "
                "charset=utf-8",
            )
            return
        if url.path == "/v1/jobs":
            self._send(200, {"jobs": self.app.store.jobs()})
            return
        if len(parts) >= 3 and parts[:2] == ["v1", "jobs"]:
            job_id = parts[2]
            if len(parts) == 3:
                self._send(*self.app.job_status(job_id))
                return
            if len(parts) == 4 and parts[3] == "events":
                try:
                    after = int(query.get("after", ["0"])[0])
                    timeout = float(query.get("timeout", ["0"])[0])
                except ValueError:
                    self._send(
                        400,
                        {"error": "after/timeout must be numeric"},
                    )
                    return
                self._send(*self.app.job_events(job_id, after, timeout))
                return
            if len(parts) == 4 and parts[3] == "result":
                code, text, fallback = self.app.job_result(job_id)
                if text is not None:
                    self._send_text(code, text)
                else:
                    self._send(code, fallback)
                return
        if len(parts) == 3 and parts[:2] == ["v1", "cells"]:
            self._send(*self.app.cell(parts[2]))
            return
        self._send(404, {"error": f"no route: GET {url.path}"})


def build_server(
    app: ServiceApp,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    quiet: bool = True,
) -> ThreadingHTTPServer:
    """A ready-to-``serve_forever`` HTTP server bound to the app.

    ``port=0`` binds an ephemeral port (tests); read it back from
    ``server.server_address``.  Starts the app's worker thread.
    """
    handler = type(
        "_BoundHandler", (_Handler,), {"app": app, "quiet": quiet}
    )
    server = ThreadingHTTPServer((host, port), handler)
    server.daemon_threads = True
    app.start()
    return server


def serve_until_shutdown(server: ThreadingHTTPServer,
                         app: ServiceApp,
                         stop_event: threading.Event) -> None:
    """Run ``server`` until ``stop_event`` fires, then drain: stop
    accepting, checkpoint the in-flight grid, re-queue its job."""
    thread = threading.Thread(
        target=server.serve_forever, kwargs={"poll_interval": 0.2},
        name="repro-serve-http", daemon=True,
    )
    thread.start()
    try:
        stop_event.wait()
    finally:
        server.shutdown()
        thread.join(timeout=10.0)
        server.server_close()
        app.shutdown()
