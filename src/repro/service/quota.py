"""Per-tenant admission control for the job service.

Two budgets, both enforced at submission time (attached duplicate
submissions are free — the whole point of dedup is that N identical
specs cost one simulation):

* ``max_queued_jobs`` — live (queued + running) jobs a tenant may hold;
  protects the queue from one tenant monopolising the worker;
* ``max_cells_per_day`` — grid cells a tenant may *enqueue* per rolling
  24h window; the service's unit of work is the cell, so this is the
  token budget.

Spend is tracked per tenant as ``(timestamp, cells)`` entries, pruned
as the window rolls, and persisted to ``<root>/quota.json`` so a
restart cannot reset anyone's budget.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

__all__ = ["QuotaExceeded", "QuotaLedger", "QuotaPolicy"]

_DAY_S = 86400.0


class QuotaExceeded(Exception):
    """Submission rejected; ``retry_after_s`` hints when to come back."""

    def __init__(self, message: str, *, retry_after_s: float = 0.0):
        super().__init__(message)
        self.retry_after_s = retry_after_s


@dataclass(frozen=True)
class QuotaPolicy:
    """Budget for one tenant (or the default for unlisted tenants)."""

    max_queued_jobs: int = 4
    max_cells_per_day: int = 100_000


class QuotaLedger:
    """Tracks and enforces per-tenant spend."""

    def __init__(
        self,
        default: Optional[QuotaPolicy] = None,
        *,
        tenants: Optional[Dict[str, QuotaPolicy]] = None,
        path: Optional[str] = None,
        clock=time.time,
    ):
        self.default = default or QuotaPolicy()
        self.tenants = dict(tenants or {})
        self.path = os.fspath(path) if path is not None else None
        self._clock = clock
        self._lock = threading.Lock()
        self._spent: Dict[str, List[Tuple[float, int]]] = {}
        self._load()

    def policy(self, tenant: str) -> QuotaPolicy:
        return self.tenants.get(tenant, self.default)

    # -- persistence -------------------------------------------------------

    def _load(self) -> None:
        if self.path is None or not os.path.exists(self.path):
            return
        try:
            with open(self.path, encoding="utf-8") as handle:
                payload = json.load(handle)
            for tenant, entries in payload.get("spent", {}).items():
                self._spent[tenant] = [
                    (float(ts), int(cells)) for ts, cells in entries
                ]
        except (OSError, ValueError, TypeError):
            # A corrupt quota file must not brick the service; the
            # worst case is a reset window.
            self._spent = {}

    def _save(self) -> None:
        if self.path is None:
            return
        tmp = self.path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump({"spent": self._spent}, handle)
        os.replace(tmp, self.path)

    # -- enforcement -------------------------------------------------------

    def _prune(self, tenant: str, now: float) -> List[Tuple[float, int]]:
        entries = [
            (ts, cells)
            for ts, cells in self._spent.get(tenant, [])
            if now - ts < _DAY_S
        ]
        if entries:
            self._spent[tenant] = entries
        else:
            self._spent.pop(tenant, None)
        return entries

    def spent_cells(self, tenant: str) -> int:
        with self._lock:
            now = self._clock()
            return sum(c for _, c in self._prune(tenant, now))

    def admit(self, tenant: str, *, cells: int, queued_jobs: int) -> None:
        """Admit a submission of ``cells`` grid cells, or raise
        :class:`QuotaExceeded`.  ``queued_jobs`` is the tenant's
        current live-job count (the store knows; the ledger doesn't).
        Charges the cell budget on success."""
        policy = self.policy(tenant)
        with self._lock:
            now = self._clock()
            if queued_jobs >= policy.max_queued_jobs:
                raise QuotaExceeded(
                    f"tenant {tenant!r} has {queued_jobs} live jobs "
                    f"(limit {policy.max_queued_jobs}); wait for one "
                    f"to finish",
                    retry_after_s=5.0,
                )
            entries = self._prune(tenant, now)
            spent = sum(c for _, c in entries)
            if spent + cells > policy.max_cells_per_day:
                oldest = min((ts for ts, _ in entries), default=now)
                raise QuotaExceeded(
                    f"tenant {tenant!r} would exceed its daily cell "
                    f"budget: {spent} spent + {cells} requested > "
                    f"{policy.max_cells_per_day}/day",
                    retry_after_s=max(1.0, oldest + _DAY_S - now),
                )
            self._spent.setdefault(tenant, []).append((now, cells))
            self._save()
