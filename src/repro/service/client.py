"""A small blocking client for the job service (stdlib ``http.client``).

Used by the test suite and handy from scripts::

    from repro.exec.spec import ExperimentSpec
    from repro.service.client import ServiceClient

    client = ServiceClient("127.0.0.1", 8321, tenant="alice")
    job = client.submit(ExperimentSpec(("sim-outorder",), ("gcc",)))
    final = client.wait(job["id"])
    grid_json = client.result_text(job["id"])

Every non-2xx response raises :class:`ServiceError` carrying the HTTP
status and the decoded error payload, so quota rejections are a
``try/except ServiceError as e: e.status == 429`` away.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Dict, List, Optional, Tuple
from urllib.parse import quote

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(Exception):
    """A non-2xx response from the service."""

    def __init__(self, status: int, payload: Dict):
        message = (
            payload.get("error") if isinstance(payload, dict) else None
        )
        super().__init__(message or f"HTTP {status}")
        self.status = status
        self.payload = payload


class ServiceClient:
    """One tenant's view of a running ``repro-serve`` instance.

    A fresh connection per request keeps the client trivially
    thread-safe (the e2e tests hammer one server from several threads).
    """

    def __init__(self, host: str, port: int, *,
                 tenant: str = "anonymous", timeout: float = 60.0):
        self.host = host
        self.port = port
        self.tenant = tenant
        self.timeout = timeout

    # -- transport ---------------------------------------------------------

    def _request(self, method: str, path: str,
                 body: Optional[Dict] = None) -> Tuple[int, str]:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            headers = {"X-Repro-Tenant": self.tenant}
            encoded = None
            if body is not None:
                encoded = json.dumps(body).encode()
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=encoded, headers=headers)
            response = conn.getresponse()
            return response.status, response.read().decode()
        finally:
            conn.close()

    def _json(self, method: str, path: str,
              body: Optional[Dict] = None) -> Dict:
        status, text = self._request(method, path, body)
        try:
            payload = json.loads(text) if text else {}
        except ValueError:
            payload = {"error": text}
        if status >= 400:
            raise ServiceError(status, payload)
        return payload

    # -- API ---------------------------------------------------------------

    def healthz(self) -> Dict:
        return self._json("GET", "/v1/healthz")

    def submit(self, spec, *, reuse: bool = True) -> Dict:
        """Submit an :class:`~repro.exec.spec.ExperimentSpec` (or an
        equivalent dict); returns the job status (``deduped`` marks an
        attach to an existing job)."""
        payload = spec if isinstance(spec, dict) else spec.to_dict()
        return self._json(
            "POST", "/v1/jobs", {"spec": payload, "reuse": reuse}
        )

    def jobs(self) -> List[Dict]:
        return self._json("GET", "/v1/jobs")["jobs"]

    def status(self, job_id: str) -> Dict:
        return self._json("GET", f"/v1/jobs/{quote(job_id)}")

    def events(self, job_id: str, *, after: int = 0,
               timeout: float = 0.0) -> Dict:
        return self._json(
            "GET",
            f"/v1/jobs/{quote(job_id)}/events"
            f"?after={after}&timeout={timeout}",
        )

    def wait(self, job_id: str, *, timeout: float = 120.0,
             poll_s: float = 5.0) -> Dict:
        """Block (via the long-poll event stream) until the job reaches
        a terminal state; returns its final status."""
        deadline = time.monotonic() + timeout
        after = 0
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(
                    f"job {job_id} still not done after {timeout}s"
                )
            page = self.events(
                job_id, after=after,
                timeout=min(poll_s, max(0.1, remaining)),
            )
            after = page["next"]
            if page["state"] in ("done", "failed"):
                return self.status(job_id)

    def result_text(self, job_id: str) -> str:
        """The job's canonical ResultGrid JSON, byte-for-byte as the
        server stored it (409 -> ServiceError while still running)."""
        status, text = self._request(
            "GET", f"/v1/jobs/{quote(job_id)}/result"
        )
        if status >= 400:
            try:
                payload = json.loads(text)
            except ValueError:
                payload = {"error": text}
            raise ServiceError(status, payload)
        return text

    def result(self, job_id: str) -> Dict:
        return json.loads(self.result_text(job_id))

    def cell(self, digest: str) -> Dict:
        return self._json("GET", f"/v1/cells/{quote(digest)}")

    def metrics_text(self) -> str:
        status, text = self._request("GET", "/metrics")
        if status >= 400:
            raise ServiceError(status, {"error": text})
        return text
