"""The durable job store: on-disk queue, dedup index, event streams.

One job = one directory under ``<root>/jobs/<job_id>/``:

* ``spec.json`` — the canonical :class:`~repro.exec.spec.ExperimentSpec`
  payload, written once at submission;
* ``status.json`` — the job's mutable face (state, counts, error),
  rewritten atomically on every transition;
* ``events.jsonl`` — append-only progress stream the long-poll endpoint
  serves (``submitted``, ``started``, ``cell``, ``checkpointed``,
  ``done``, ``failed``);
* ``checkpoint.journal`` — the engine's grid checkpoint; a job killed
  mid-grid (crash or graceful shutdown) resumes from it without
  recomputing settled cells;
* ``result.json`` — the canonical ``ResultGrid`` serialisation, written
  when the job completes.

Dedup: a job's identity is its spec's :meth:`ExperimentSpec.dedup_key`
— the sha256 of the measurement-relevant canonical JSON.  Submitting a
spec whose key matches a live (queued/running) or completed job
*attaches* to that job instead of enqueueing new work: N identical
submissions cost one simulation.  Failed jobs do not dedup, so a
resubmission retries.

Durability: the store is rebuilt from the job directories at startup —
``queued`` jobs re-enter the queue, ``running`` jobs (a crashed
server's in-flight work) are re-queued and resume from their
checkpoint journal.  All waiting (long-poll, worker claim) is one
``threading.Condition``; every mutation notifies it.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Dict, List, Optional, Tuple

from repro.exec.spec import ExperimentSpec

__all__ = ["Job", "JobNotFound", "JobStore"]

#: Job lifecycle states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"

_TERMINAL = (DONE, FAILED)


class JobNotFound(KeyError):
    """No job with that id (or its directory is gone)."""


def _atomic_write(path: str, text: str) -> None:
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(text)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


class Job:
    """In-memory mirror of one job directory."""

    def __init__(self, job_id: str, root: str, status: Dict,
                 events: Optional[List[Dict]] = None):
        self.job_id = job_id
        self.root = root
        self.status = status
        self.events: List[Dict] = list(events or [])

    @property
    def state(self) -> str:
        return self.status["state"]

    def path(self, name: str) -> str:
        return os.path.join(self.root, name)


class JobStore:
    """Thread-safe durable queue of experiment jobs."""

    def __init__(self, root, *, clock=time.time):
        self.root = os.fspath(root)
        self.jobs_dir = os.path.join(self.root, "jobs")
        os.makedirs(self.jobs_dir, exist_ok=True)
        self._clock = clock
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._jobs: Dict[str, Job] = {}
        self._queue: List[str] = []
        self._dedup: Dict[str, str] = {}
        self._seq = 0
        self._recover()

    # -- startup recovery --------------------------------------------------

    def _recover(self) -> None:
        """Rebuild queue and dedup index from the job directories."""
        for job_id in sorted(os.listdir(self.jobs_dir)):
            job_root = os.path.join(self.jobs_dir, job_id)
            try:
                with open(os.path.join(job_root, "status.json"),
                          encoding="utf-8") as handle:
                    status = json.load(handle)
            except (OSError, ValueError):
                continue  # half-written dir; harmless orphan
            events: List[Dict] = []
            try:
                with open(os.path.join(job_root, "events.jsonl"),
                          encoding="utf-8") as handle:
                    for line in handle:
                        if line.strip():
                            events.append(json.loads(line))
            except (OSError, ValueError):
                pass
            job = Job(job_id, job_root, status, events)
            if job.state == RUNNING:
                # The previous server died mid-grid; the checkpoint
                # journal holds its settled cells.
                job.status["state"] = QUEUED
                self._write_status(job)
                self._append_event(job, {"kind": "requeued"})
            self._jobs[job_id] = job
            if job.state == QUEUED:
                self._queue.append(job_id)
            if job.state != FAILED:
                self._dedup[status["dedup_key"]] = job_id
            self._seq = max(self._seq, int(status.get("seq", 0)))

    # -- persistence -------------------------------------------------------

    def _write_status(self, job: Job) -> None:
        _atomic_write(
            job.path("status.json"),
            json.dumps(job.status, sort_keys=True),
        )

    def _append_event(self, job: Job, event: Dict) -> None:
        event = dict(event)
        event["index"] = len(job.events)
        event["ts"] = round(self._clock(), 3)
        job.events.append(event)
        with open(job.path("events.jsonl"), "a",
                  encoding="utf-8") as handle:
            handle.write(json.dumps(event, sort_keys=True) + "\n")

    # -- submission --------------------------------------------------------

    def submit(self, spec: ExperimentSpec, tenant: str,
               *, reuse: bool = True) -> Tuple[Job, bool]:
        """Enqueue ``spec`` for ``tenant``.

        Returns ``(job, deduped)``: with ``reuse`` (the default) a spec
        whose dedup key matches a non-failed job attaches to it and
        ``deduped`` is True — the attach costs no new simulation.
        ``reuse=False`` forces a fresh job (it still shares the result
        cache, so a warm re-run recomputes nothing).
        """
        key = spec.dedup_key()
        with self._cond:
            if reuse:
                existing_id = self._dedup.get(key)
                if existing_id is not None:
                    existing = self._jobs.get(existing_id)
                    if existing is not None and existing.state != FAILED:
                        if tenant not in existing.status["tenants"]:
                            existing.status["tenants"].append(tenant)
                            self._write_status(existing)
                        self._append_event(
                            existing, {"kind": "attached", "tenant": tenant}
                        )
                        self._cond.notify_all()
                        return existing, True
            self._seq += 1
            job_id = f"j{self._seq:06d}-{key[:12]}"
            job_root = os.path.join(self.jobs_dir, job_id)
            os.makedirs(job_root, exist_ok=True)
            status = {
                "id": job_id,
                "seq": self._seq,
                "state": QUEUED,
                "dedup_key": key,
                "tenant": tenant,
                "tenants": [tenant],
                "cells": len(spec.simulators) * len(spec.workloads),
                "cells_done": 0,
                "created": round(self._clock(), 3),
                "error": None,
            }
            job = Job(job_id, job_root, status)
            _atomic_write(
                job.path("spec.json"), spec.canonical_json()
            )
            self._write_status(job)
            self._append_event(job, {"kind": "submitted", "tenant": tenant})
            self._jobs[job_id] = job
            self._queue.append(job_id)
            self._dedup[key] = job_id
            self._cond.notify_all()
            return job, False

    # -- worker side -------------------------------------------------------

    def claim(self, timeout: Optional[float] = None) -> Optional[str]:
        """Pop the oldest queued job and mark it running; None on
        timeout with an empty queue."""
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        with self._cond:
            while not self._queue:
                remaining = (
                    None if deadline is None
                    else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    return None
                self._cond.wait(remaining)
            job_id = self._queue.pop(0)
            job = self._jobs[job_id]
            job.status["state"] = RUNNING
            # A resumed job re-counts from its checkpoint (recovered
            # cells re-announce with source="checkpoint").
            job.status["cells_done"] = 0
            self._write_status(job)
            self._append_event(job, {"kind": "started"})
            self._cond.notify_all()
            return job_id

    def requeue(self, job_id: str, *, reason: str = "shutdown") -> None:
        """Put a claimed job back on the queue (graceful shutdown after
        checkpointing its grid)."""
        with self._cond:
            job = self._require(job_id)
            job.status["state"] = QUEUED
            self._write_status(job)
            self._append_event(job, {"kind": "checkpointed",
                                     "reason": reason})
            if job_id not in self._queue:
                self._queue.insert(0, job_id)
            self._cond.notify_all()

    def record_progress(self, job_id: str, *, simulator: str,
                        workload: str, status: str, source: str) -> None:
        """One settled grid cell (the engine's ledger hook)."""
        with self._cond:
            job = self._require(job_id)
            job.status["cells_done"] += 1
            self._write_status(job)
            self._append_event(job, {
                "kind": "cell", "simulator": simulator,
                "workload": workload, "status": status, "source": source,
            })
            self._cond.notify_all()

    def finish(self, job_id: str, result_json: str,
               *, failures: int = 0) -> None:
        with self._cond:
            job = self._require(job_id)
            _atomic_write(job.path("result.json"), result_json)
            job.status["state"] = DONE
            job.status["failures"] = failures
            self._write_status(job)
            self._append_event(job, {"kind": "done",
                                     "failures": failures})
            self._cond.notify_all()

    def fail(self, job_id: str, error: str) -> None:
        with self._cond:
            job = self._require(job_id)
            job.status["state"] = FAILED
            job.status["error"] = error[:2000]
            self._write_status(job)
            self._append_event(job, {"kind": "failed"})
            # Failed jobs stop absorbing duplicate submissions.
            if self._dedup.get(job.status["dedup_key"]) == job_id:
                del self._dedup[job.status["dedup_key"]]
            self._cond.notify_all()

    # -- read side ---------------------------------------------------------

    def _require(self, job_id: str) -> Job:
        job = self._jobs.get(job_id)
        if job is None:
            raise JobNotFound(job_id)
        return job

    def active_job_for(self, dedup_key: str) -> Optional[str]:
        """The job id a duplicate submission would attach to (live or
        done, never failed), or None."""
        with self._lock:
            job_id = self._dedup.get(dedup_key)
            if job_id is None:
                return None
            job = self._jobs.get(job_id)
            if job is None or job.state == FAILED:
                return None
            return job_id

    def job_path(self, job_id: str, name: str) -> str:
        """Absolute path of a file inside the job's directory."""
        with self._lock:
            return self._require(job_id).path(name)

    def status(self, job_id: str) -> Dict:
        with self._lock:
            return dict(self._require(job_id).status)

    def spec(self, job_id: str) -> ExperimentSpec:
        with self._lock:
            path = self._require(job_id).path("spec.json")
        with open(path, encoding="utf-8") as handle:
            return ExperimentSpec.from_dict(json.load(handle))

    def result_text(self, job_id: str) -> Optional[str]:
        """The stored canonical result JSON, or None if not finished."""
        with self._lock:
            job = self._require(job_id)
            if job.state != DONE:
                return None
            path = job.path("result.json")
        with open(path, encoding="utf-8") as handle:
            return handle.read()

    def events_since(self, job_id: str, after: int = 0,
                     timeout: float = 0.0) -> Tuple[List[Dict], str]:
        """Events with index >= ``after`` plus the current state,
        long-polling up to ``timeout`` seconds when none are pending
        and the job is still live."""
        deadline = time.monotonic() + max(0.0, timeout)
        with self._cond:
            job = self._require(job_id)
            while (
                len(job.events) <= after
                and job.state not in _TERMINAL
            ):
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._cond.wait(remaining)
            return list(job.events[after:]), job.state

    def queued_jobs(self, tenant: Optional[str] = None) -> int:
        """Live (queued or running) jobs, optionally for one tenant."""
        with self._lock:
            return sum(
                1 for job in self._jobs.values()
                if job.state in (QUEUED, RUNNING)
                and (tenant is None or job.status["tenant"] == tenant)
            )

    def jobs(self) -> List[Dict]:
        with self._lock:
            return [
                dict(job.status) for _, job in sorted(self._jobs.items())
            ]
