"""The execution half of the service: one thread draining the queue.

Each claimed job is rebuilt into an :class:`ExperimentSpec`, its
options re-based onto the service's shared result cache and the job's
private checkpoint journal, and run through the ordinary
:class:`~repro.validation.harness.Harness` dispatch — the service adds
no execution semantics of its own, so a job's result is byte-identical
(canonically) to the same grid run from the CLI or the Python API.

Two hooks thread the service through the engine:

* the run-ledger seam (``options.ledger``) receives one record per
  settled cell — forwarded to the job's event stream, which is what
  the long-poll endpoint serves;
* the ``progress`` callback fires before each computed cell — the
  graceful-shutdown check raises :class:`ServiceShutdown` there, after
  the last finished cell was already fsynced into the checkpoint
  journal, so a drained job re-queues and later resumes with zero
  recompute.
"""

from __future__ import annotations

import threading
import traceback
from typing import Optional

from repro.exec.cache import ResultCache
from repro.obs.registry import MetricsRegistry
from repro.service.jobs import JobStore
from repro.validation.harness import Harness

__all__ = ["JobWorker", "ServiceShutdown"]


class ServiceShutdown(Exception):
    """Raised inside a grid to abandon it at a cell boundary."""


class _EventLedger:
    """Run-ledger adapter: engine cell records -> job event stream."""

    def __init__(self, store: JobStore, job_id: str):
        self.store = store
        self.job_id = job_id

    def record(self, *, simulator: str, workload: str, status: str,
               source: str = "run", attempts: int = 1,
               telemetry=None) -> None:
        self.store.record_progress(
            self.job_id, simulator=simulator, workload=workload,
            status=status, source=source,
        )

    def close(self) -> None:  # pragma: no cover - engine never owns us
        pass


class JobWorker(threading.Thread):
    """Drains the job queue until asked to stop."""

    def __init__(
        self,
        store: JobStore,
        workloads,
        cache: ResultCache,
        *,
        metrics: Optional[MetricsRegistry] = None,
        poll_s: float = 0.2,
    ):
        super().__init__(name="repro-service-worker", daemon=True)
        self.store = store
        self.workloads = workloads
        self.cache = cache
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.poll_s = poll_s
        self._stopping = threading.Event()

    def stop(self) -> None:
        """Ask the worker to drain: the in-flight job checkpoints at
        the next cell boundary and re-queues."""
        self._stopping.set()

    def run(self) -> None:
        while not self._stopping.is_set():
            job_id = self.store.claim(timeout=self.poll_s)
            if job_id is None:
                continue
            if self._stopping.is_set():
                self.store.requeue(job_id)
                return
            self._run_job(job_id)

    def _run_job(self, job_id: str) -> None:
        try:
            spec = self.store.spec(job_id)
            spec.validate(workload_set=self.workloads)
            options = spec.options.replace(
                cache=self.cache,
                checkpoint=self.store.job_path(
                    job_id, "checkpoint.journal"
                ),
                resume=True,
                ledger=_EventLedger(self.store, job_id),
                live_progress=False,
            )
            harness = Harness(
                self.workloads, options, metrics=self.metrics
            )

            def progress(simulator: str, workload: str) -> None:
                if self._stopping.is_set():
                    raise ServiceShutdown(job_id)

            self.metrics.counter("service.engine.runs").inc()
            with self.metrics.timer("service.job").time():
                grid = harness.run_grid(
                    spec.factories(), list(spec.workloads),
                    progress=progress,
                )
        except ServiceShutdown:
            self.store.requeue(job_id)
        except Exception:
            self.metrics.counter("service.jobs.failed").inc()
            self.store.fail(job_id, traceback.format_exc(limit=20))
        else:
            self.metrics.counter("service.jobs.completed").inc()
            self.store.finish(
                job_id,
                grid.to_json(canonical=True),
                failures=len(grid.failures),
            )
