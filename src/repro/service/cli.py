"""``repro-serve`` — run the simulation job service from the shell.

::

    repro-serve --root /var/lib/repro --port 8321 \\
        --max-queued 4 --max-cells-per-day 100000 \\
        --tenant-quota team-a=8:500000

Prints one readiness line (``repro-serve listening on HOST:PORT``) to
stdout once the socket is bound — CI scripts wait for it before
submitting.  SIGTERM / SIGINT (Ctrl-C) trigger a graceful drain: the
in-flight grid checkpoints at the next cell boundary, its job
re-queues, and the process exits 0; a second signal exits immediately.
"""

from __future__ import annotations

import argparse
import os
import signal
import sys
import threading
from typing import Dict, Optional, Sequence

from repro.service.app import ServiceApp, build_server, serve_until_shutdown
from repro.service.quota import QuotaLedger, QuotaPolicy
from repro.validation.exitcodes import ExitCode

__all__ = ["main"]


def _parse_tenant_quota(text: str) -> Dict[str, QuotaPolicy]:
    """``name=JOBS:CELLS`` -> {name: QuotaPolicy(JOBS, CELLS)}."""
    try:
        name, budgets = text.split("=", 1)
        jobs_s, cells_s = budgets.split(":", 1)
        return {name: QuotaPolicy(int(jobs_s), int(cells_s))}
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected NAME=MAX_JOBS:MAX_CELLS_PER_DAY, got {text!r}"
        )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description=(
            "Async job API over the experiment engine: POST "
            "ExperimentSpecs, poll events, fetch canonical results."
        ),
    )
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8321,
                        help="bind port; 0 picks an ephemeral one")
    parser.add_argument("--root", default="repro-service",
                        help="state directory: jobs/, cache/, quota.json")
    parser.add_argument("--max-queued", type=int, default=4,
                        help="default per-tenant live-job limit")
    parser.add_argument("--max-cells-per-day", type=int, default=100_000,
                        help="default per-tenant daily cell budget")
    parser.add_argument(
        "--tenant-quota", type=_parse_tenant_quota, action="append",
        default=[], metavar="NAME=JOBS:CELLS",
        help="override the quota for one tenant (repeatable)",
    )
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-request access logging")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    tenants: Dict[str, QuotaPolicy] = {}
    for override in args.tenant_quota:
        tenants.update(override)
    os.makedirs(args.root, exist_ok=True)
    quota = QuotaLedger(
        QuotaPolicy(args.max_queued, args.max_cells_per_day),
        tenants=tenants,
        path=os.path.join(args.root, "quota.json"),
    )
    app = ServiceApp(args.root, quota=quota)
    try:
        server = build_server(
            app, host=args.host, port=args.port, quiet=args.quiet
        )
    except OSError as error:
        print(f"repro-serve: cannot bind {args.host}:{args.port}: "
              f"{error}", file=sys.stderr)
        return ExitCode.SERVICE

    stop = threading.Event()

    def request_stop(signum, frame):
        if stop.is_set():  # second signal: give up on draining
            raise SystemExit(ExitCode.SERVICE)
        print("repro-serve: draining (checkpointing in-flight grid)",
              file=sys.stderr, flush=True)
        stop.set()

    signal.signal(signal.SIGINT, request_stop)
    signal.signal(signal.SIGTERM, request_stop)

    host, port = server.server_address[:2]
    print(f"repro-serve listening on {host}:{port}", flush=True)
    serve_until_shutdown(server, app, stop)
    print("repro-serve: drained cleanly", file=sys.stderr, flush=True)
    return ExitCode.OK


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
