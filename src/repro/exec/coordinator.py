"""Work-stealing shard coordinator: crash-safe grid execution.

:class:`ShardCoordinator` turns one (simulator x workload) grid into a
fault-tolerant execution fabric:

* the grid's cells are partitioned into bounded **leases** pulled by
  :class:`~repro.exec.shard.ShardRunner` subprocesses (idle runners ask
  for work, so fast shards naturally steal the slow tail);
* **liveness** is heartbeat-based: a lease that stops heartbeating (or
  exhausts its bounded renewal budget) expires, its runner is killed,
  and its unfinished cells are re-leased to survivors;
* **completed work survives everything**: each runner journals cells
  into a private fsynced :class:`~repro.integrity.GridCheckpoint`
  before acknowledging them, so the coordinator recovers a dead
  runner's results from its journal instead of recomputing, and a
  killed coordinator resumes from the merged journals;
* **at-most-once commit**: results are deduplicated by the cell's
  cache-key digest, so a stolen-and-recomputed cell never
  double-counts — and two *different* payloads under one digest raise
  (a determinism violation must never be silently averaged away).

Failure handling is budgeted, never unbounded: lease renewals, runner
respawns, and retry backoff ceilings are all capped, so every run ends
in a complete grid, a diagnosable :class:`CellFailure` (including
``kind="lost"`` when every runner slot is exhausted), or a raised
integrity error — never a hang.

Observability: ``shard.*`` counters in the :class:`MetricsRegistry`
(leases granted/renewed/regranted/expired/stolen, cells
computed/recovered/deduped/lost, runners lost/respawned, corrupt
journals) plus per-cell :class:`RunLedger` records tagged with the
committing shard.
"""

from __future__ import annotations

import glob
import multiprocessing
import os
import shutil
import tempfile
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _connection_wait
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set

from repro.exec.cache import ResultCache
from repro.exec.engine import RetryBackoff, grid_cells
from repro.exec.spec import RunOptions, fold_legacy_kwargs
from repro.exec.shard import PipeTransport, shard_journal_path, shard_runner_main
from repro.integrity.checkpoint import CheckpointConflict, GridCheckpoint
from repro.integrity.sanitizers import (
    IntegrityError,
    InvariantViolation,
    Sanitizers,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.telemetry import GridProgress, RunLedger, mirror_to_metrics
from repro.result import SimResult
from repro.validation.harness import CellFailure, ResultGrid, SimulatorFactory
from repro.workloads.suite import WorkloadSet

__all__ = ["ShardCoordinator", "shard_status"]


@dataclass
class _LeaseState:
    """Coordinator-side view of one outstanding lease."""

    lease_id: int
    runner_id: int
    indices: tuple
    remaining: Set[int]
    deadline: float
    renewals: int = 0


@dataclass
class _RunnerState:
    """Coordinator-side view of one shard runner."""

    runner_id: int
    process: object
    transport: object
    journal_path: str
    lease: Optional[_LeaseState] = None
    alive: bool = True
    #: Set by a ``ready`` message; granting is pull-based, so a lease
    #: is only sent to a runner that announced itself (otherwise the
    #: grant races the runner's startup ``ready`` and every lease is
    #: spuriously re-granted once).
    idle: bool = False
    #: Cells this runner's journal may hold beyond its live lease
    #: (regrants); only used for diagnostics.
    committed: int = 0


class ShardCoordinator:
    """Runs (simulator x workload) grids over work-stealing shard
    runners with crash-safe journals.

    Parameters
    ----------
    workloads:
        The shared :class:`WorkloadSet` (traces built once here, in
        the coordinator, inherited by runners through fork).
    options:
        A :class:`repro.exec.spec.RunOptions` carrying the execution
        envelope: ``shards`` (runner subprocesses to keep alive — the
        lease pull pool), ``cache``, ``retries``,
        ``checkpoint``/``resume``, ``watchdog_s``, ``blockcache``,
        ``ledger``, ``live_progress``.  The historical keyword
        arguments still fold in through a deprecation shim.  The
        fabric-tuning knobs below stay first-class keywords — they
        describe the coordinator, not the experiment.
    lease_size:
        Cells per lease.  Small leases steal better; large leases
        amortise message traffic.
    lease_timeout_s:
        Seconds a lease may go without a heartbeat before it expires
        and its runner is presumed lost.  Must comfortably exceed the
        slowest single cell.
    max_renewals:
        Bound on deadline extensions one lease may earn through
        heartbeats (default scales with ``lease_size``); an exhausted
        lease expires even if its runner is still heartbeating, so a
        livelocked runner cannot hold work forever.
    max_respawns:
        Total replacement runners the coordinator may spawn across the
        run (default ``2 * shards``).  With the budget exhausted and no
        survivors, remaining cells settle as ``kind="lost"`` failures
        instead of hanging.
    checkpoint:
        Base journal path (or a :class:`GridCheckpoint`, whose path is
        used).  Runner ``k`` journals to ``<base>.shard-<k>``; on
        completion the shard journals are merged into ``<base>``.
        ``None`` uses a private temporary directory (still crash-safe
        against runner loss, but not resumable across coordinator
        restarts).
    resume:
        Load ``<base>`` plus any surviving ``<base>.shard-*`` journals
        and commit their cells before leasing anything — the
        coordinator-restart recovery path.
    transport_wrapper:
        Seam for tests and the chaos harness: called with
        ``(transport, runner_id)`` for each spawned runner and may
        return a wrapped transport (drop/duplicate/delay injection).
    on_event:
        Optional callback ``(event: str, payload: dict)`` observing
        lifecycle events (``runner_started``, ``lease_granted``,
        ``cell_committed``, ``runner_lost``, ``journal_corrupt``, ...).
        Exceptions from the callback propagate (tests rely on it).
    """

    #: The pre-RunOptions keyword surface, folded in with a warning.
    _LEGACY_INIT = (
        "shards", "cache", "retries", "checkpoint", "resume",
        "watchdog_s", "blockcache",
    )

    def __init__(
        self,
        workloads: Optional[WorkloadSet] = None,
        options: Optional[RunOptions] = None,
        *,
        lease_size: int = 1,
        lease_timeout_s: float = 30.0,
        max_renewals: Optional[int] = None,
        max_respawns: Optional[int] = None,
        heartbeat_poll_s: float = 0.2,
        ready_resend_s: float = 1.0,
        metrics: Optional[MetricsRegistry] = None,
        sanitizers: Optional[Sanitizers] = None,
        backoff: Optional[RetryBackoff] = None,
        transport_wrapper: Optional[Callable] = None,
        on_event: Optional[Callable[[str, Dict], None]] = None,
        **legacy,
    ):
        opts = fold_legacy_kwargs(
            options, legacy, allowed=self._LEGACY_INIT,
            owner="ShardCoordinator()",
        )
        if options is None and "shards" not in legacy:
            # The coordinator's historical default fleet is two
            # runners; RunOptions defaults to the serial shards=1.
            opts = opts.replace(shards=2)
        self.options = opts
        self.workloads = workloads or WorkloadSet()
        self.shards = max(1, int(opts.shards))
        self.lease_size = max(1, int(lease_size))
        self.lease_timeout_s = float(lease_timeout_s)
        if self.lease_timeout_s <= 0:
            raise ValueError(
                f"lease_timeout_s must be positive (got {lease_timeout_s})"
            )
        self.max_renewals = (
            int(max_renewals) if max_renewals is not None
            else 4 * self.lease_size + 4
        )
        self.max_respawns = (
            int(max_respawns) if max_respawns is not None
            else 2 * self.shards
        )
        self.heartbeat_poll_s = max(0.02, float(heartbeat_poll_s))
        self.ready_resend_s = max(0.05, float(ready_resend_s))
        self.metrics = metrics if metrics is not None else (
            MetricsRegistry.disabled()
        )
        cache = opts.cache
        if isinstance(cache, (str, os.PathLike)):
            cache = ResultCache(cache, metrics=self.metrics)
        self.cache: Optional[ResultCache] = cache
        self.sanitizers = sanitizers if sanitizers is not None else (
            opts.sanitizer_bundle() or Sanitizers.disabled()
        )
        self.watchdog_s = opts.watchdog_s
        self.retries = max(0, int(opts.retries))
        self.backoff = backoff if backoff is not None else RetryBackoff()
        checkpoint = opts.checkpoint
        if isinstance(checkpoint, GridCheckpoint):
            checkpoint = checkpoint.path
        self.checkpoint_path = (
            os.fspath(checkpoint) if checkpoint is not None else None
        )
        self.resume = opts.resume
        self.blockcache = opts.blockcache
        self.transport_wrapper = transport_wrapper
        self.on_event = on_event
        self._ctx = (
            multiprocessing.get_context("fork")
            if "fork" in multiprocessing.get_all_start_methods()
            else None
        )
        if self._ctx is None:  # pragma: no cover - non-fork platform
            raise RuntimeError(
                "sharded execution requires the fork start method; "
                "use ExperimentEngine(jobs=...) instead"
            )

    # -- small helpers -----------------------------------------------------

    def _event(self, event: str, **payload) -> None:
        if self.on_event is not None:
            self.on_event(event, payload)

    def _counter(self, name: str):
        return self.metrics.counter(name)

    # -- the grid ----------------------------------------------------------

    def run_grid(
        self,
        factories: Sequence[SimulatorFactory],
        workload_names: Iterable[str],
        *,
        instrumentation=None,
        progress: Optional[Callable[[str, str], None]] = None,
        ledger=None,
        live_progress: bool = False,
    ) -> ResultGrid:
        """Run every factory over every workload across the shard
        fleet; same contract as :meth:`ExperimentEngine.run_grid` (a
        result or a :class:`CellFailure` for every cell, serial order,
        canonical serialisation byte-identical to a serial run)."""
        if ledger is None:
            ledger = self.options.ledger
        live_progress = live_progress or self.options.live_progress
        names = list(workload_names)
        cells = grid_cells(
            self.workloads, factories, names, blockcache=self.blockcache,
        )
        digest_of = {
            cell.index: cell.key.digest() for cell in cells
        }
        index_of = {digest: index for index, digest in digest_of.items()}
        self.metrics.gauge("shard.cells").set(len(cells))
        self.metrics.gauge("shard.runners").set(self.shards)

        tempdir = None
        base = self.checkpoint_path
        if base is None:
            tempdir = tempfile.mkdtemp(prefix="repro-shards-")
            base = os.path.join(tempdir, "grid.journal")

        owns_ledger = isinstance(ledger, (str, os.PathLike))
        if owns_ledger:
            ledger = RunLedger(ledger)
        progress_line = GridProgress(len(cells)) if live_progress else None

        results: Dict[int, SimResult] = {}
        failures: Dict[int, CellFailure] = {}
        state = {
            "results": results,
            "failures": failures,
            "ledger": ledger,
            "progress_line": progress_line,
            "cells": cells,
            "digest_of": digest_of,
            "index_of": index_of,
        }

        if self.resume:
            self._recover_resume(base, state)
        else:
            # A fresh (non-resuming) run must not consume leftovers
            # from an abandoned one: quarantine stale shard journals.
            for path in sorted(glob.glob(shard_journal_path(base, "*"))):
                if path.endswith(".corrupt"):
                    continue
                os.replace(path, path + ".stale")

        # Serve result-cache hits in the coordinator before leasing.
        if self.cache is not None:
            for cell in cells:
                if cell.index in results or cell.index in failures:
                    continue
                hit = self.cache.get(cell.key)
                if hit is not None:
                    self._commit(cell.index, hit, "cache", state)

        pending = deque(
            cell.index for cell in cells
            if cell.index not in results and cell.index not in failures
        )
        strict_violation: List[Dict] = []
        runners: Dict[int, _RunnerState] = {}
        try:
            if pending:
                self._run_fleet(
                    base, factories, names, cells, pending, state,
                    runners, strict_violation, instrumentation, progress,
                )
        finally:
            self._shutdown(runners)
            if progress_line is not None:
                progress_line.close()
            if owns_ledger:
                ledger.close()

        if strict_violation:
            raise IntegrityError(
                InvariantViolation.from_dict(strict_violation[0])
            )

        self._merge_journals(base)
        if tempdir is not None:
            shutil.rmtree(tempdir, ignore_errors=True)

        grid = ResultGrid()
        for cell in cells:
            result = results.get(cell.index)
            if result is not None:
                grid.add(result)
        grid.failures.extend(failures[index] for index in sorted(failures))
        return grid

    # -- recovery ----------------------------------------------------------

    def _commit(self, index: int, result: SimResult, source: str,
                state: Dict, runner_id: Optional[int] = None) -> None:
        """At-most-once commit of one cell result, deduplicated by the
        cell's digest: a duplicate identical payload is counted and
        dropped; a duplicate *different* payload raises."""
        results = state["results"]
        failures = state["failures"]
        existing = results.get(index)
        if existing is not None:
            if existing.canonical_dict() != result.canonical_dict():
                digest = state["digest_of"][index]
                raise CheckpointConflict(
                    f"cell {index} (digest {digest}) was committed "
                    f"twice with different measurements — determinism "
                    f"violation, refusing to keep either silently"
                )
            self._counter("shard.cells.deduped").inc()
            return
        if index in failures:
            # A late success for a cell already settled as a failure
            # (e.g. a revoked runner reporting after its replacement
            # failed): first settlement wins.
            self._counter("shard.cells.deduped").inc()
            return
        results[index] = result
        if result.telemetry is not None:
            # Operational provenance for ledgers and raw dumps; blanked
            # (with the whole telemetry record) under canonical
            # serialisation so sharded and serial grids stay
            # byte-identical.
            result.telemetry.source = (
                source if runner_id is None else f"shard-{runner_id}"
            )
        if source == "run":
            self._counter("shard.cells.computed").inc()
        else:
            self._counter(f"shard.cells.{source}").inc()
        cell = state["cells"][index]
        if result.telemetry is not None:
            mirror_to_metrics(
                self.metrics, cell.sim_name, cell.workload,
                result.telemetry,
            )
        self._note(state, cell, "ok", source, runner_id, result.telemetry)
        self._event(
            "cell_committed", index=index, source=source,
            runner_id=runner_id,
        )

    def _commit_failure(self, index: int, failure: CellFailure,
                        state: Dict,
                        runner_id: Optional[int] = None) -> None:
        if index in state["results"] or index in state["failures"]:
            self._counter("shard.cells.deduped").inc()
            return
        state["failures"][index] = failure
        self._counter("shard.cells.failed").inc()
        cell = state["cells"][index]
        self._note(state, cell, failure.kind, "run", runner_id, None)
        self._event(
            "cell_failed", index=index, kind=failure.kind,
            runner_id=runner_id,
        )

    def _note(self, state, cell, status, source, runner_id,
              telemetry) -> None:
        ledger = state["ledger"]
        if ledger is not None:
            tag = source if runner_id is None else f"shard-{runner_id}"
            ledger.record(
                simulator=cell.sim_name, workload=cell.workload,
                status=status, source=tag, telemetry=telemetry,
            )
        if state["progress_line"] is not None:
            state["progress_line"].update()

    def _recover_resume(self, base: str, state: Dict) -> None:
        """Coordinator-restart path: commit every cell the main and
        shard journals already hold, so nothing completed is ever
        recomputed."""
        sources = [base] + sorted(glob.glob(shard_journal_path(base, "*")))
        for path in sources:
            if path.endswith((".corrupt", ".stale")):
                continue
            self._recover_journal(path, state)

    def _recover_journal(self, path: str, state: Dict) -> int:
        """Commit any unsettled cells found in one journal; a corrupt
        journal is quarantined (renamed ``.corrupt``) and counted, not
        fatal — its cells simply recompute."""
        if not os.path.exists(path):
            return 0
        try:
            loaded = GridCheckpoint(path).load()
        except CheckpointConflict:
            raise
        except ValueError as exc:
            self._counter("shard.journals.corrupt").inc()
            self._event("journal_corrupt", path=path, error=str(exc))
            try:
                os.replace(path, path + ".corrupt")
            except OSError:  # pragma: no cover - racing cleanup
                pass
            return 0
        recovered = 0
        for digest, result in loaded.items():
            index = state["index_of"].get(digest)
            if index is None:
                continue  # stale digest from an earlier configuration
            if index in state["results"] or index in state["failures"]:
                continue
            self._commit(index, result, "recovered", state)
            recovered += 1
        return recovered

    def _merge_journals(self, base: str) -> None:
        """Merge every shard journal into the base journal (the
        resumable artifact) and drop the merged shards."""
        paths = [
            path
            for path in sorted(glob.glob(shard_journal_path(base, "*")))
            if not path.endswith((".corrupt", ".stale"))
        ]
        if not paths and not os.path.exists(base):
            return
        main = GridCheckpoint(base)
        try:
            main.load()
        except CheckpointConflict:
            raise
        except ValueError:
            pass  # corrupt base: rebuild it from the shard journals
        merged = []
        for path in paths:
            try:
                main.merge_from(path)
            except CheckpointConflict:
                raise
            except ValueError as exc:
                self._counter("shard.journals.corrupt").inc()
                self._event("journal_corrupt", path=path, error=str(exc))
                continue
            merged.append(path)
        main.flush()
        for path in merged:
            try:
                os.unlink(path)
            except OSError:  # pragma: no cover - racing cleanup
                pass

    # -- the fleet ---------------------------------------------------------

    def _spawn(self, runner_id: int, base: str, factories, names,
               runners: Dict[int, _RunnerState],
               instrumentation) -> _RunnerState:
        parent_end, child_end = self._ctx.Pipe(duplex=True)
        journal = shard_journal_path(base, runner_id)
        # The fork inherits copies of every live coordinator-side pipe
        # end (its own and the sibling runners'); the child closes them
        # first thing, so a dead peer actually produces EOF instead of
        # a pipe silently held open by unrelated runner processes.
        stray_ends = [
            r.transport.connection
            for r in runners.values()
            if r.alive and r.transport.connection is not None
        ] + [parent_end]
        process = self._ctx.Process(
            target=shard_runner_main,
            args=(child_end, runner_id, self.workloads, list(factories),
                  names, journal),
            kwargs=dict(
                options=self.options.replace(cache=self.cache),
                sanitizers=self.sanitizers,
                backoff=self.backoff,
                instrumentation=instrumentation,
                ready_resend_s=self.ready_resend_s,
                close_connections=stray_ends,
            ),
            daemon=True,
        )
        process.start()
        child_end.close()
        transport = PipeTransport(parent_end)
        if self.transport_wrapper is not None:
            transport = self.transport_wrapper(transport, runner_id)
        runner = _RunnerState(
            runner_id=runner_id, process=process, transport=transport,
            journal_path=journal,
        )
        runners[runner_id] = runner
        self._event("runner_started", runner_id=runner_id, pid=process.pid)
        return runner

    def _kill_runner(self, runner: _RunnerState) -> None:
        runner.alive = False
        process = runner.process
        try:
            if process.is_alive():
                process.terminate()
                process.join(timeout=1.0)
                if process.is_alive():  # pragma: no cover - stubborn
                    process.kill()
                    process.join(timeout=1.0)
            else:
                process.join(timeout=0.1)
        except OSError:  # pragma: no cover
            pass
        try:
            runner.transport.close()
        except OSError:  # pragma: no cover
            pass

    def _handle_lost(self, runner: _RunnerState, pending, state: Dict,
                     stolen_from: Dict[int, int], reason: str) -> None:
        """A runner died or its lease expired: kill it, recover its
        journal, return its unfinished cells to the steal queue."""
        self._counter("shard.runners.lost").inc()
        self._event(
            "runner_lost", runner_id=runner.runner_id, reason=reason,
        )
        self._kill_runner(runner)
        recovered = self._recover_journal(runner.journal_path, state)
        if recovered:
            self._counter("shard.cells.journal_recovered").inc(recovered)
        if runner.lease is not None:
            for index in sorted(runner.lease.remaining, reverse=True):
                if (index in state["results"]
                        or index in state["failures"]):
                    continue
                stolen_from[index] = runner.runner_id
                pending.appendleft(index)
            runner.lease = None

    def _run_fleet(self, base, factories, names, cells, pending,
                   state, runners, strict_violation, instrumentation,
                   progress) -> None:
        results = state["results"]
        failures = state["failures"]
        total = len(cells)
        next_lease_id = 0
        next_runner_id = self.shards
        respawns_left = self.max_respawns
        #: cell index -> runner that previously held (and lost) it.
        stolen_from: Dict[int, int] = {}
        leases: Dict[int, _LeaseState] = {}

        for runner_id in range(self.shards):
            self._spawn(
                runner_id, base, factories, names, runners,
                instrumentation,
            )

        def live() -> List[_RunnerState]:
            return [r for r in runners.values() if r.alive]

        def settled() -> int:
            return len(results) + len(failures)

        def grant(runner: _RunnerState) -> None:
            nonlocal next_lease_id
            indices = []
            while pending and len(indices) < self.lease_size:
                index = pending.popleft()
                if index in results or index in failures:
                    continue
                indices.append(index)
            if not indices:
                return
            runner.idle = False
            lease = _LeaseState(
                lease_id=next_lease_id,
                runner_id=runner.runner_id,
                indices=tuple(indices),
                remaining=set(indices),
                deadline=time.monotonic() + self.lease_timeout_s,
            )
            next_lease_id += 1
            try:
                runner.transport.send(("lease", lease.lease_id, indices))
            except (BrokenPipeError, EOFError, OSError):
                pending.extendleft(reversed(indices))
                self._handle_lost(
                    runner, pending, state, stolen_from, "send-failed"
                )
                return
            runner.lease = lease
            leases[lease.lease_id] = lease
            self._counter("shard.leases.granted").inc()
            stolen = [i for i in indices if i in stolen_from]
            if stolen:
                self._counter("shard.leases.stolen").inc()
                self._counter("shard.cells.stolen").inc(len(stolen))
            self._event(
                "lease_granted", lease_id=lease.lease_id,
                runner_id=runner.runner_id, indices=tuple(indices),
                stolen=tuple(stolen),
            )
            if progress is not None:
                for index in indices:
                    cell = cells[index]
                    progress(cell.sim_name, cell.workload)

        def handle(runner: _RunnerState, message) -> None:
            kind = message[0] if isinstance(message, tuple) else None
            if kind == "ready":
                lease = runner.lease
                if lease is not None and lease.remaining:
                    # The runner thinks it is done but we still miss
                    # cells: its grant or some results were dropped.
                    # Re-grant; journaled cells replay for free.
                    try:
                        runner.transport.send((
                            "lease", lease.lease_id,
                            sorted(lease.remaining),
                        ))
                        lease.deadline = (
                            time.monotonic() + self.lease_timeout_s
                        )
                        self._counter("shard.leases.regranted").inc()
                    except (BrokenPipeError, EOFError, OSError):
                        self._handle_lost(
                            runner, pending, state, stolen_from,
                            "send-failed",
                        )
                    return
                if lease is not None:
                    leases.pop(lease.lease_id, None)
                    runner.lease = None
                runner.idle = True
                grant(runner)
            elif kind == "heartbeat":
                self._counter("shard.heartbeats").inc()
                lease = runner.lease
                if (lease is not None and lease.lease_id == message[2]
                        and lease.renewals < self.max_renewals):
                    lease.renewals += 1
                    lease.deadline = (
                        time.monotonic() + self.lease_timeout_s
                    )
                    self._counter("shard.leases.renewed").inc()
            elif kind == "cell_ok":
                _, runner_id, lease_id, index, digest, result, source = (
                    message
                )
                expected = state["digest_of"].get(index)
                if expected is not None and digest and digest != expected:
                    raise CheckpointConflict(
                        f"runner {runner_id} reported cell {index} "
                        f"under digest {digest}, expected {expected}"
                    )
                self._commit(
                    index, result,
                    "run" if source != "cache" else "cache",
                    state, runner_id,
                )
                runner.committed += 1
                lease = runner.lease
                if lease is not None and lease.lease_id == lease_id:
                    lease.remaining.discard(index)
                    lease.deadline = (
                        time.monotonic() + self.lease_timeout_s
                    )
            elif kind == "cell_failed":
                _, runner_id, lease_id, index, payload = message
                self._commit_failure(
                    index, CellFailure.from_dict(payload), state,
                    runner_id,
                )
                lease = runner.lease
                if lease is not None and lease.lease_id == lease_id:
                    lease.remaining.discard(index)
                    lease.deadline = (
                        time.monotonic() + self.lease_timeout_s
                    )
            elif kind == "strict":
                strict_violation.append(message[2])
            elif kind == "error":
                self._event(
                    "runner_error", runner_id=runner.runner_id,
                    detail=message[2],
                )
                self._handle_lost(
                    runner, pending, state, stolen_from, "error"
                )

        while settled() < total and not strict_violation:
            now = time.monotonic()
            # 1. Reap runners whose process died (SIGKILL, OOM, ...).
            for runner in live():
                if not runner.process.is_alive():
                    self._handle_lost(
                        runner, pending, state, stolen_from, "died"
                    )
            # 2. Expire leases that stopped heartbeating or exhausted
            #    their renewal budget.
            for runner in live():
                lease = runner.lease
                if lease is not None and now > lease.deadline:
                    self._counter("shard.leases.expired").inc()
                    self._event(
                        "lease_expired", lease_id=lease.lease_id,
                        runner_id=runner.runner_id,
                        renewals=lease.renewals,
                    )
                    self._handle_lost(
                        runner, pending, state, stolen_from, "expired"
                    )
            if settled() >= total:
                break
            # 3. Keep the fleet at strength while budget remains.
            while len(live()) < self.shards and respawns_left > 0:
                respawns_left -= 1
                self._counter("shard.runners.respawned").inc()
                self._spawn(
                    next_runner_id, base, factories, names, runners,
                    instrumentation,
                )
                next_runner_id += 1
            if not live():
                # No survivors and no budget: settle what remains as
                # diagnosable losses rather than spinning forever.
                for cell in cells:
                    if (cell.index in results
                            or cell.index in failures):
                        continue
                    self._commit_failure(cell.index, CellFailure(
                        simulator=cell.sim_name,
                        workload=cell.workload,
                        kind="lost",
                        message=(
                            "no surviving shard runners and the "
                            f"respawn budget ({self.max_respawns}) is "
                            "exhausted"
                        ),
                    ), state)
                    self._counter("shard.cells.lost").inc()
                break
            # 4. Grant work to idle runners (the steal pull): only to
            #    runners that announced ``ready``, so grants never race
            #    a runner's startup.
            for runner in live():
                if runner.idle and runner.lease is None and pending:
                    grant(runner)
            # 5. Wait for traffic (bounded, so expiry always runs).
            alive = live()
            if any(r.transport.pending() for r in alive):
                timeout = 0.0
            else:
                timeout = self.heartbeat_poll_s
                for runner in alive:
                    if runner.lease is not None:
                        timeout = min(
                            timeout,
                            max(0.0, runner.lease.deadline - now),
                        )
            try:
                _connection_wait(
                    [r.transport.connection for r in alive],
                    timeout=timeout,
                )
            except OSError:  # pragma: no cover - closed mid-wait
                continue
            # 6. Drain every runner with traffic.
            for runner in alive:
                if not runner.alive:
                    continue
                while True:
                    try:
                        has = (runner.transport.pending()
                               or runner.transport.poll())
                    except (EOFError, OSError):
                        has = False
                        self._handle_lost(
                            runner, pending, state, stolen_from, "eof"
                        )
                    if not has or not runner.alive:
                        break
                    try:
                        message = runner.transport.recv(timeout=0.0)
                    except (EOFError, OSError):
                        self._handle_lost(
                            runner, pending, state, stolen_from, "eof"
                        )
                        break
                    if message is None:
                        continue
                    handle(runner, message)
                    if settled() >= total or strict_violation:
                        break
                if settled() >= total or strict_violation:
                    break

    def _shutdown(self, runners: Dict[int, _RunnerState]) -> None:
        for runner in runners.values():
            if runner.alive:
                try:
                    runner.transport.send(("shutdown",))
                except (BrokenPipeError, EOFError, OSError):
                    pass
        deadline = time.monotonic() + 2.0
        for runner in runners.values():
            if not runner.alive:
                continue
            runner.process.join(
                timeout=max(0.0, deadline - time.monotonic())
            )
            self._kill_runner(runner)


def shard_status(base: str) -> Dict:
    """Inspect the journals of a sharded run (the ``shard-status`` CLI
    verb): entry counts per journal, distinct digests, and corrupt or
    quarantined files."""
    journals = []
    digests: Set[str] = set()
    paths = []
    if os.path.exists(base):
        paths.append(base)
    paths.extend(sorted(glob.glob(shard_journal_path(base, "*"))))
    for path in paths:
        record = {"path": path, "entries": 0, "state": "ok"}
        if path.endswith(".corrupt"):
            record["state"] = "corrupt (quarantined)"
        elif path.endswith(".stale"):
            record["state"] = "stale (superseded)"
        else:
            try:
                loaded = GridCheckpoint(path).load()
            except ValueError as exc:
                record["state"] = f"corrupt: {exc}"
            else:
                record["entries"] = len(loaded)
                digests.update(loaded)
        journals.append(record)
    return {
        "base": base,
        "journals": journals,
        "distinct_digests": len(digests),
    }
