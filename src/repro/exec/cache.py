"""On-disk memoization of simulation results, content-addressed by
configuration.

A grid cell's outcome is a pure function of (simulator configuration,
workload trace, simulator code).  :class:`CacheKey` captures exactly
that function's inputs:

* ``simulator`` + ``config_hash`` — which timing model, resolved to the
  PR-1 provenance hash of its fully specified configuration;
* ``workload`` + ``trace_fingerprint`` — which dynamic trace, hashed
  over every replayed instruction so a changed workload generator
  invalidates stale entries;
* ``package_version`` — which release of the simulators produced it.

Entries live one-per-file under the cache root, named by the key's
digest and carrying the full key alongside the serialised
:class:`~repro.result.SimResult`; a stored key that does not match the
probe (digest collision, hand-edited file) or an unreadable entry is
*invalidated* — deleted and recomputed — rather than trusted.  Hits
return the stored result verbatim, provenance included, so a warm run
serialises byte-identically to the run that populated the cache.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
import time
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Sequence

from repro.obs.registry import MetricsRegistry
from repro.result import SimResult

__all__ = [
    "CacheKey", "ResultCache", "fingerprint_trace", "instr_signature",
]


def instr_signature(dyn) -> tuple:
    """The timing-relevant identity of one dynamic instruction.

    Exactly the :class:`~repro.functional.trace.DynInstr` content the
    timing models consume, and nothing else:

    * ``pc``/``opcode``/``dest``/``srcs``/``slot`` drive fetch, map,
      issue and functional-unit selection (``klass``, ``latency`` and
      the ``is_*`` flags are derived from ``opcode`` and so carry no
      extra information);
    * ``taken``/``next_pc`` train the predictors and charge redirects;
    * ``eaddr`` drives the cache hierarchy and store forwarding.

    ``seq``/``index`` are the instruction's *position*, already fixed
    by where it sits in the trace, and ``size`` is never read by any
    timing model — including any of them would split traces that every
    simulator times identically.  This is the same judgement as the
    blockcache's per-record comparison key
    (``repro.core.blockcache._DYN_KEY``), applied here at whole-trace
    granularity.
    """
    return (
        dyn.pc, dyn.opcode.name, dyn.dest, dyn.srcs, dyn.taken,
        dyn.next_pc, dyn.eaddr, dyn.slot,
    )


def fingerprint_trace(trace: Sequence) -> str:
    """A stable digest of a dynamic trace's replayed content.

    Hashes :func:`instr_signature` for every record (plus the length),
    so two traces fingerprint equal **iff** every simulator times them
    identically: content the models never read (``size``, and the
    position fields that restate the record index) cannot split the
    fingerprint, and every consumed field is separated unambiguously
    so no two distinct signatures can collide by concatenation.
    """
    digest = hashlib.blake2b(digest_size=16)
    digest.update(str(len(trace)).encode())
    for dyn in trace:
        digest.update(repr(instr_signature(dyn)).encode())
        digest.update(b"\n")
    return digest.hexdigest()


@dataclass(frozen=True)
class CacheKey:
    """The full set of inputs that determine one cell's result."""

    simulator: str
    config_hash: str
    workload: str
    trace_fingerprint: str
    package_version: str

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    def digest(self) -> str:
        canonical = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(canonical.encode()).hexdigest()[:32]


class ResultCache:
    """One-file-per-cell result store under ``root``.

    Counts its own traffic (``hits`` / ``misses`` / ``invalidations`` /
    ``stores``) and mirrors the counts into ``metrics`` (a
    :class:`~repro.obs.registry.MetricsRegistry`) under
    ``exec.cache.*`` when one is attached.
    """

    def __init__(self, root, *, metrics: Optional[MetricsRegistry] = None):
        self.root = os.fspath(root)
        os.makedirs(self.root, exist_ok=True)
        self.metrics = metrics
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.stores = 0

    def _count(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(f"exec.cache.{name}").inc()

    def _path(self, key: CacheKey) -> str:
        return os.path.join(self.root, key.digest() + ".json")

    def get(self, key: CacheKey) -> Optional[SimResult]:
        """The stored result for ``key``, or None on miss.

        A present-but-untrustworthy entry (unreadable, undecodable, or
        carrying a different key) is deleted and counted as an
        invalidation in addition to the miss.
        """
        path = self._path(key)
        payload = None
        try:
            with open(path, encoding="utf-8") as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            pass
        except (OSError, ValueError):
            self._drop(path)
        if payload is not None:
            if payload.get("key") == key.to_dict():
                try:
                    result = SimResult.from_dict(payload["result"])
                except (KeyError, TypeError, ValueError):
                    self._drop(path)
                else:
                    self.hits += 1
                    self._count("hits")
                    try:
                        # Refresh mtime: recency is the LRU eviction
                        # order :meth:`gc` uses, so a hit keeps an
                        # entry alive.
                        os.utime(path)
                    except OSError:  # pragma: no cover - races
                        pass
                    return result
            else:
                self._drop(path)
        self.misses += 1
        self._count("misses")
        return None

    def get_digest(self, digest: str) -> Optional[Dict]:
        """The raw stored payload (key + result dicts) for an entry
        addressed by its bare ``digest`` — the lookup the job service's
        ``GET /v1/cells/{cache_key}`` serves.  Unlike :meth:`get` there
        is no probe key to validate against, so the stored payload is
        only checked for shape; unreadable entries return None without
        being invalidated (the keyed path owns repair).  Not counted as
        cache traffic."""
        if not digest or not all(
            c in "0123456789abcdef" for c in digest
        ):
            return None
        path = os.path.join(self.root, digest + ".json")
        try:
            with open(path, encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("format") != "repro-result-cache/1"
            or "result" not in payload
        ):
            return None
        return payload

    def put(self, key: CacheKey, result: SimResult) -> None:
        """Store ``result`` under ``key`` (atomically; overwrites)."""
        payload = {
            "format": "repro-result-cache/1",
            "key": key.to_dict(),
            "result": result.to_dict(),
        }
        handle, tmp_path = tempfile.mkstemp(
            dir=self.root, suffix=".tmp", prefix=key.digest()
        )
        try:
            with os.fdopen(handle, "w", encoding="utf-8") as tmp:
                json.dump(payload, tmp, sort_keys=True)
            os.replace(tmp_path, self._path(key))
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        self.stores += 1
        self._count("stores")

    def invalidate(self, key: CacheKey) -> bool:
        """Explicitly drop ``key``'s entry (the refresh path)."""
        return self._drop(self._path(key))

    def _unlink(self, path: str) -> bool:
        try:
            os.unlink(path)
        except FileNotFoundError:
            return False
        except OSError:  # pragma: no cover - permission races
            return False
        return True

    def _unlink_if_unchanged(self, path: str, seen) -> bool:
        """Unlink ``path`` only if it is still the file the gc scan
        decided to evict.

        A concurrent writer lands entries with ``os.replace``; if the
        file has been replaced since the scan ``stat`` (fresh
        ``mtime_ns`` or size), evicting it would destroy a *new*
        result that was never examined — skip it instead.  The
        re-stat narrows the race to the instant between stat and
        unlink; the cache is single-host, so a same-nanosecond
        identical-size replacement is not a practical concern.
        """
        try:
            current = os.stat(path)
        except OSError:
            return False
        if (current.st_mtime_ns, current.st_size) != (
            seen.st_mtime_ns, seen.st_size
        ):
            return False
        return self._unlink(path)

    def _drop(self, path: str) -> bool:
        if not self._unlink(path):
            return False
        self.invalidations += 1
        self._count("invalidations")
        return True

    def gc(
        self,
        *,
        max_age_s: Optional[float] = None,
        live: Optional[Iterable] = None,
        max_bytes: Optional[int] = None,
        now: Optional[float] = None,
    ) -> Dict:
        """Prune the cache; returns a summary of what was reclaimed.

        Three independent criteria, applied in order:

        * ``live`` — an iterable of :class:`CacheKey` (or digest
          strings) that are *never* evicted, whatever their age or the
          size budget (the current experiment's working set); their
          bytes still count toward ``max_bytes`` — exactly once each,
          however many times (and in however many spellings) a member
          appears in ``live``;
        * ``max_age_s`` — entries not touched (stored or hit) within
          that many seconds of ``now`` are removed;
        * ``max_bytes`` — if the cache (live entries included) still
          exceeds this byte budget, least-recently-used evictable
          entries (oldest mtime first) are evicted until it fits.

        Orphaned ``.tmp`` files from interrupted writes are removed by
        the age pass as well.  Eviction re-stats each victim first, so
        gc racing a concurrent writer can never unlink an entry that
        was replaced after the scan.  ``now`` is injectable for tests.
        The summary — removed digests (sorted), bytes reclaimed,
        entries kept — is also mirrored into the attached metrics
        registry (``exec.cache.gc_removed`` /
        ``exec.cache.gc_bytes_reclaimed``).
        """
        if now is None:
            now = time.time()
        keep = set()
        for item in (live or ()):
            keep.add(item.digest() if isinstance(item, CacheKey) else item)

        entries = []   # (mtime, size, digest, path, stat)
        removed = []
        reclaimed = 0
        live_bytes = 0
        for name in sorted(os.listdir(self.root)):
            path = os.path.join(self.root, name)
            try:
                stat = os.stat(path)
            except OSError:  # pragma: no cover - deletion race
                continue
            if name.endswith(".tmp"):
                # Interrupted-write leftovers age out like entries.
                if max_age_s is not None and now - stat.st_mtime > max_age_s:
                    if self._unlink_if_unchanged(path, stat):
                        reclaimed += stat.st_size
                continue
            if not name.endswith(".json"):
                continue
            digest = name[:-len(".json")]
            if digest in keep:
                # Exempt from eviction, but the bytes are real: count
                # them toward the budget.  The ``keep`` *set* already
                # collapses a member passed both as a CacheKey and as
                # its raw digest, so each file is counted once.
                live_bytes += stat.st_size
                continue
            if max_age_s is not None and now - stat.st_mtime > max_age_s:
                if self._unlink_if_unchanged(path, stat):
                    removed.append(digest)
                    reclaimed += stat.st_size
                continue
            entries.append((stat.st_mtime, stat.st_size, digest, path, stat))

        if max_bytes is not None:
            total = live_bytes + sum(size for _, size, _, _, _ in entries)
            # Oldest mtime first = least recently used.  Only non-live
            # entries are evictable; a live set larger than the budget
            # empties everything else but is itself untouchable.
            entries.sort(key=lambda entry: entry[:3])
            for _, size, digest, path, stat in entries:
                if total <= max_bytes:
                    break
                if self._unlink_if_unchanged(path, stat):
                    removed.append(digest)
                    reclaimed += size
                    total -= size

        if self.metrics is not None:
            self.metrics.counter("exec.cache.gc_removed").inc(len(removed))
            self.metrics.counter("exec.cache.gc_bytes_reclaimed").inc(
                reclaimed
            )
        return {
            "removed": sorted(removed),
            "reclaimed_bytes": reclaimed,
            "kept": len(self),
        }

    def __len__(self) -> int:
        return sum(
            1 for name in os.listdir(self.root) if name.endswith(".json")
        )

    def stats(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "stores": self.stores,
            "entries": len(self),
        }
