"""On-disk memoization of simulation results, content-addressed by
configuration.

A grid cell's outcome is a pure function of (simulator configuration,
workload trace, simulator code).  :class:`CacheKey` captures exactly
that function's inputs:

* ``simulator`` + ``config_hash`` — which timing model, resolved to the
  PR-1 provenance hash of its fully specified configuration;
* ``workload`` + ``trace_fingerprint`` — which dynamic trace, hashed
  over every replayed instruction so a changed workload generator
  invalidates stale entries;
* ``package_version`` — which release of the simulators produced it.

Entries live one-per-file under the cache root, named by the key's
digest and carrying the full key alongside the serialised
:class:`~repro.result.SimResult`; a stored key that does not match the
probe (digest collision, hand-edited file) or an unreadable entry is
*invalidated* — deleted and recomputed — rather than trusted.  Hits
return the stored result verbatim, provenance included, so a warm run
serialises byte-identically to the run that populated the cache.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
import time
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Sequence

from repro.obs.registry import MetricsRegistry
from repro.result import SimResult

__all__ = ["CacheKey", "ResultCache", "fingerprint_trace"]


def fingerprint_trace(trace: Sequence) -> str:
    """A stable digest of a dynamic trace's replayed content.

    Hashes the fields the timing models actually consume (PCs, opcodes,
    operands, branch outcomes, effective addresses), so two traces
    fingerprint equal iff every simulator times them identically.
    """
    digest = hashlib.blake2b(digest_size=16)
    digest.update(str(len(trace)).encode())
    for dyn in trace:
        digest.update(
            (
                f"{dyn.pc:x}|{dyn.opcode.name}|{dyn.dest}|{dyn.srcs}|"
                f"{int(dyn.taken)}|{dyn.next_pc:x}|{dyn.eaddr}|"
                f"{dyn.size}|{dyn.slot}\n"
            ).encode()
        )
    return digest.hexdigest()


@dataclass(frozen=True)
class CacheKey:
    """The full set of inputs that determine one cell's result."""

    simulator: str
    config_hash: str
    workload: str
    trace_fingerprint: str
    package_version: str

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    def digest(self) -> str:
        canonical = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(canonical.encode()).hexdigest()[:32]


class ResultCache:
    """One-file-per-cell result store under ``root``.

    Counts its own traffic (``hits`` / ``misses`` / ``invalidations`` /
    ``stores``) and mirrors the counts into ``metrics`` (a
    :class:`~repro.obs.registry.MetricsRegistry`) under
    ``exec.cache.*`` when one is attached.
    """

    def __init__(self, root, *, metrics: Optional[MetricsRegistry] = None):
        self.root = os.fspath(root)
        os.makedirs(self.root, exist_ok=True)
        self.metrics = metrics
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.stores = 0

    def _count(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(f"exec.cache.{name}").inc()

    def _path(self, key: CacheKey) -> str:
        return os.path.join(self.root, key.digest() + ".json")

    def get(self, key: CacheKey) -> Optional[SimResult]:
        """The stored result for ``key``, or None on miss.

        A present-but-untrustworthy entry (unreadable, undecodable, or
        carrying a different key) is deleted and counted as an
        invalidation in addition to the miss.
        """
        path = self._path(key)
        payload = None
        try:
            with open(path, encoding="utf-8") as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            pass
        except (OSError, ValueError):
            self._drop(path)
        if payload is not None:
            if payload.get("key") == key.to_dict():
                try:
                    result = SimResult.from_dict(payload["result"])
                except (KeyError, TypeError, ValueError):
                    self._drop(path)
                else:
                    self.hits += 1
                    self._count("hits")
                    try:
                        # Refresh mtime: recency is the LRU eviction
                        # order :meth:`gc` uses, so a hit keeps an
                        # entry alive.
                        os.utime(path)
                    except OSError:  # pragma: no cover - races
                        pass
                    return result
            else:
                self._drop(path)
        self.misses += 1
        self._count("misses")
        return None

    def put(self, key: CacheKey, result: SimResult) -> None:
        """Store ``result`` under ``key`` (atomically; overwrites)."""
        payload = {
            "format": "repro-result-cache/1",
            "key": key.to_dict(),
            "result": result.to_dict(),
        }
        handle, tmp_path = tempfile.mkstemp(
            dir=self.root, suffix=".tmp", prefix=key.digest()
        )
        try:
            with os.fdopen(handle, "w", encoding="utf-8") as tmp:
                json.dump(payload, tmp, sort_keys=True)
            os.replace(tmp_path, self._path(key))
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        self.stores += 1
        self._count("stores")

    def invalidate(self, key: CacheKey) -> bool:
        """Explicitly drop ``key``'s entry (the refresh path)."""
        return self._drop(self._path(key))

    def _unlink(self, path: str) -> bool:
        try:
            os.unlink(path)
        except FileNotFoundError:
            return False
        except OSError:  # pragma: no cover - permission races
            return False
        return True

    def _drop(self, path: str) -> bool:
        if not self._unlink(path):
            return False
        self.invalidations += 1
        self._count("invalidations")
        return True

    def gc(
        self,
        *,
        max_age_s: Optional[float] = None,
        live: Optional[Iterable] = None,
        max_bytes: Optional[int] = None,
        now: Optional[float] = None,
    ) -> Dict:
        """Prune the cache; returns a summary of what was reclaimed.

        Three independent criteria, applied in order:

        * ``live`` — an iterable of :class:`CacheKey` (or digest
          strings) that are *never* evicted, whatever their age or the
          size budget (the current experiment's working set);
        * ``max_age_s`` — entries not touched (stored or hit) within
          that many seconds of ``now`` are removed;
        * ``max_bytes`` — if the surviving entries still exceed this
          byte budget, least-recently-used entries (oldest mtime
          first) are evicted until the cache fits.

        Orphaned ``.tmp`` files from interrupted writes are removed by
        the age pass as well.  ``now`` is injectable for tests.  The
        summary — removed digests (sorted), bytes reclaimed, entries
        kept — is also mirrored into the attached metrics registry
        (``exec.cache.gc_removed`` / ``exec.cache.gc_bytes_reclaimed``).
        """
        if now is None:
            now = time.time()
        keep = set()
        for item in (live or ()):
            keep.add(item.digest() if isinstance(item, CacheKey) else item)

        entries = []   # (mtime, size, digest, path)
        removed = []
        reclaimed = 0
        for name in sorted(os.listdir(self.root)):
            path = os.path.join(self.root, name)
            try:
                stat = os.stat(path)
            except OSError:  # pragma: no cover - deletion race
                continue
            if name.endswith(".tmp"):
                # Interrupted-write leftovers age out like entries.
                if max_age_s is not None and now - stat.st_mtime > max_age_s:
                    if self._unlink(path):
                        reclaimed += stat.st_size
                continue
            if not name.endswith(".json"):
                continue
            digest = name[:-len(".json")]
            if digest in keep:
                continue
            if max_age_s is not None and now - stat.st_mtime > max_age_s:
                if self._unlink(path):
                    removed.append(digest)
                    reclaimed += stat.st_size
                continue
            entries.append((stat.st_mtime, stat.st_size, digest, path))

        if max_bytes is not None:
            total = sum(size for _, size, _, _ in entries)
            entries.sort()  # oldest mtime first = least recently used
            for _, size, digest, path in entries:
                if total <= max_bytes:
                    break
                if self._unlink(path):
                    removed.append(digest)
                    reclaimed += size
                    total -= size

        if self.metrics is not None:
            self.metrics.counter("exec.cache.gc_removed").inc(len(removed))
            self.metrics.counter("exec.cache.gc_bytes_reclaimed").inc(
                reclaimed
            )
        return {
            "removed": sorted(removed),
            "reclaimed_bytes": reclaimed,
            "kept": len(self),
        }

    def __len__(self) -> int:
        return sum(
            1 for name in os.listdir(self.root) if name.endswith(".json")
        )

    def stats(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "stores": self.stores,
            "entries": len(self),
        }
