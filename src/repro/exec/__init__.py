"""Experiment execution: process-pool parallelism + on-disk memoization.

The entry point is :class:`ExperimentEngine` (or, more conveniently,
the ``jobs=`` / ``cache=`` keywords on
:meth:`repro.validation.harness.Harness.run_grid`, which delegate
here)::

    from repro.validation import Harness
    from repro.core.simalpha import SimAlpha
    from repro.simulators.simoutorder import SimOutOrder

    grid = Harness().run_grid(
        [SimAlpha, SimOutOrder], ["C-R", "M-D", "gzip"],
        jobs=4, cache=".repro-cache", timeout=120.0, retries=1,
    )
    for failure in grid.failures:      # fault-isolated, never raises
        print(failure.kind, failure.simulator, failure.workload)

Cells are content-addressed by :class:`CacheKey` — configuration hash,
workload, trace fingerprint, package version — so a second run over
unchanged inputs is pure cache hits and serialises byte-identically to
the run that populated the cache.
"""

from repro.exec.cache import (
    CacheKey,
    ResultCache,
    fingerprint_trace,
    instr_signature,
)
from repro.exec.engine import CellFailure, ExperimentEngine

__all__ = [
    "CacheKey",
    "CellFailure",
    "ExperimentEngine",
    "ResultCache",
    "fingerprint_trace",
    "instr_signature",
]
