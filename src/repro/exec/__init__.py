"""Experiment execution: process-pool parallelism + on-disk memoization.

The entry point is :class:`ExperimentEngine` (or, more conveniently,
the ``jobs=`` / ``cache=`` keywords on
:meth:`repro.validation.harness.Harness.run_grid`, which delegate
here)::

    from repro.validation import Harness
    from repro.core.simalpha import SimAlpha
    from repro.simulators.simoutorder import SimOutOrder

    grid = Harness().run_grid(
        [SimAlpha, SimOutOrder], ["C-R", "M-D", "gzip"],
        jobs=4, cache=".repro-cache", timeout=120.0, retries=1,
    )
    for failure in grid.failures:      # fault-isolated, never raises
        print(failure.kind, failure.simulator, failure.workload)

Cells are content-addressed by :class:`CacheKey` — configuration hash,
workload, trace fingerprint, package version — so a second run over
unchanged inputs is pure cache hits and serialises byte-identically to
the run that populated the cache.

For crash-safe distribution one level up, :class:`ShardCoordinator`
(``shards=`` on ``run_grid``) partitions the grid into work-stealing
leases over :class:`ShardRunner` subprocesses, each journaling to its
own fsynced :class:`~repro.integrity.GridCheckpoint`, so runner loss —
or coordinator loss, with a checkpoint — never loses completed cells.
"""

from repro.exec.cache import (
    CacheKey,
    ResultCache,
    fingerprint_trace,
    instr_signature,
)
from repro.exec.coordinator import ShardCoordinator, shard_status
from repro.exec.engine import CellFailure, ExperimentEngine, grid_cells
from repro.exec.shard import (
    Lease,
    PipeTransport,
    ShardRunner,
    Transport,
    shard_journal_path,
)

__all__ = [
    "CacheKey",
    "CellFailure",
    "ExperimentEngine",
    "Lease",
    "PipeTransport",
    "ResultCache",
    "ShardCoordinator",
    "ShardRunner",
    "Transport",
    "fingerprint_trace",
    "grid_cells",
    "instr_signature",
    "shard_journal_path",
    "shard_status",
]
