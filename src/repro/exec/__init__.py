"""Experiment execution: process-pool parallelism + on-disk memoization.

The entry point is :class:`ExperimentEngine` (or, more conveniently,
the ``jobs=`` / ``cache=`` keywords on
:meth:`repro.validation.harness.Harness.run_grid`, which delegate
here)::

    from repro.validation import Harness
    from repro.core.simalpha import SimAlpha
    from repro.simulators.simoutorder import SimOutOrder

    grid = Harness().run_grid(
        [SimAlpha, SimOutOrder], ["C-R", "M-D", "gzip"],
        jobs=4, cache=".repro-cache", timeout=120.0, retries=1,
    )
    for failure in grid.failures:      # fault-isolated, never raises
        print(failure.kind, failure.simulator, failure.workload)

Cells are content-addressed by :class:`CacheKey` — configuration hash,
workload, trace fingerprint, package version — so a second run over
unchanged inputs is pure cache hits and serialises byte-identically to
the run that populated the cache.

For crash-safe distribution one level up, :class:`ShardCoordinator`
(``shards=`` on ``run_grid``) partitions the grid into work-stealing
leases over :class:`ShardRunner` subprocesses, each journaling to its
own fsynced :class:`~repro.integrity.GridCheckpoint`, so runner loss —
or coordinator loss, with a checkpoint — never loses completed cells.
"""

# Exports resolve lazily (PEP 562): the spec module must be importable
# from repro.validation.harness without this package init dragging in
# engine/coordinator, which import harness right back.
_EXPORTS = {
    "CacheKey": "repro.exec.cache",
    "ResultCache": "repro.exec.cache",
    "fingerprint_trace": "repro.exec.cache",
    "instr_signature": "repro.exec.cache",
    "ShardCoordinator": "repro.exec.coordinator",
    "shard_status": "repro.exec.coordinator",
    "CellFailure": "repro.exec.engine",
    "ExperimentEngine": "repro.exec.engine",
    "grid_cells": "repro.exec.engine",
    "ExperimentSpec": "repro.exec.spec",
    "RunOptions": "repro.exec.spec",
    "SpecError": "repro.exec.spec",
    "register_simulator": "repro.exec.spec",
    "simulator_registry": "repro.exec.spec",
    "Lease": "repro.exec.shard",
    "PipeTransport": "repro.exec.shard",
    "ShardRunner": "repro.exec.shard",
    "Transport": "repro.exec.shard",
    "shard_journal_path": "repro.exec.shard",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name):
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
