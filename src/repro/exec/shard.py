"""Sharded grid execution: the runner half and the shard wire protocol.

A :class:`~repro.exec.coordinator.ShardCoordinator` partitions a
(simulator x workload) grid into *leases* and hands them to
:class:`ShardRunner` processes over a :class:`Transport`.  Each runner
drives its own :class:`~repro.exec.engine.ExperimentEngine` with a
private :class:`~repro.integrity.GridCheckpoint` shard journal, so a
cell it completed survives the runner, the coordinator, or the host
dying — the journal entry is fsynced before the cell is acknowledged.

Wire protocol (first tuple element; extends the pool worker protocol
of :func:`repro.exec.engine._worker_main` one level up, from cells to
leases):

runner -> coordinator
    * ``("ready", runner_id, last_lease_id)`` — idle and asking for
      work; re-sent every ``ready_resend_s`` while idle so a dropped
      message (either direction) never wedges the runner;
    * ``("heartbeat", runner_id, lease_id)`` — liveness signal at each
      cell boundary; renews the lease (bounded by the coordinator's
      ``max_renewals``);
    * ``("cell_ok", runner_id, lease_id, index, digest, result,
      source)`` — cell ``index`` settled with a result (already
      durable in the shard journal when ``source != "cache"``);
    * ``("cell_failed", runner_id, lease_id, index, failure_dict)`` —
      cell settled as a :class:`CellFailure` (not journaled: failures
      are re-attempted after a coordinator restart);
    * ``("strict", runner_id, violation_dict)`` — a strict sanitizer
      bundle aborted the lease; the coordinator re-raises
      :class:`IntegrityError`;
    * ``("error", runner_id, traceback)`` — runner-level fatal; the
      coordinator treats the runner as lost.

coordinator -> runner
    * ``("lease", lease_id, (cell_index, ...))`` — work grant.
      Re-granting a lease is idempotent: journaled cells are served
      from the runner's checkpoint without recompute;
    * ``("shutdown",)`` — grid complete, exit cleanly.

Messages may be dropped, duplicated, or delayed (the chaos harness
does all three): every message is therefore either idempotent
(heartbeats, ready), deduplicated by digest at commit (cell_ok), or
recovered out-of-band from the shard journal.

The transport seam is deliberately tiny — ``send`` / ``recv(timeout)``
/ ``poll`` over picklable tuples — so the pipe transport used for
local subprocesses can be swapped for a socket transport to place
runners on other hosts without touching the coordinator or runner
logic.
"""

from __future__ import annotations

import os
import signal
import traceback
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.exec.engine import ExperimentEngine, grid_cells
from repro.exec.spec import RunOptions
from repro.integrity.watchdog import install_escalation_handler

__all__ = ["Lease", "PipeTransport", "ShardRunner", "shard_journal_path"]


def shard_journal_path(base: str, runner_id: int) -> str:
    """The journal a given runner writes, derived from the grid's base
    checkpoint path (what ``shard-status`` and resume both scan)."""
    return f"{base}.shard-{runner_id}"


@dataclass(frozen=True)
class Lease:
    """One work grant: a batch of grid-cell indices."""

    lease_id: int
    indices: Tuple[int, ...]


class Transport:
    """Message transport seam between coordinator and runner.

    Implementations carry picklable tuples; ``recv`` returns ``None``
    on timeout and raises ``EOFError``/``OSError`` when the peer is
    gone.  ``connection`` exposes a waitable object for
    ``multiprocessing.connection.wait`` and ``pending()`` reports
    messages buffered inside the transport itself (a chaos wrapper's
    duplicates), which a selector cannot see.
    """

    connection = None

    def send(self, message) -> None:
        raise NotImplementedError

    def recv(self, timeout: Optional[float] = None):
        raise NotImplementedError

    def poll(self, timeout: float = 0.0) -> bool:
        raise NotImplementedError

    def pending(self) -> bool:
        return False

    def close(self) -> None:
        raise NotImplementedError


class PipeTransport(Transport):
    """:class:`Transport` over one end of a multiprocessing pipe."""

    def __init__(self, connection):
        self.connection = connection

    def send(self, message) -> None:
        self.connection.send(message)

    def recv(self, timeout: Optional[float] = None):
        if timeout is not None and not self.connection.poll(timeout):
            return None
        return self.connection.recv()

    def poll(self, timeout: float = 0.0) -> bool:
        return self.connection.poll(timeout)

    def close(self) -> None:
        self.connection.close()


class ShardRunner:
    """The runner half: executes leases against a private engine.

    ``engine`` must carry the shard journal as its checkpoint (with
    resume semantics), so a re-granted lease serves journaled cells
    without recompute and every fresh success is durable before the
    ``cell_ok`` acknowledgement leaves the runner.
    """

    def __init__(
        self,
        runner_id: int,
        transport: Transport,
        engine: ExperimentEngine,
        cells: Sequence,
        *,
        instrumentation=None,
        ready_resend_s: float = 1.0,
    ):
        self.runner_id = runner_id
        self.transport = transport
        self.engine = engine
        self.cells = list(cells)
        self.instrumentation = instrumentation
        self.ready_resend_s = max(0.05, float(ready_resend_s))
        self._last_lease_id: Optional[int] = None
        self._harness = engine._cell_harness()

    # -- plumbing ----------------------------------------------------------

    def _send(self, message) -> bool:
        """Ship one message; ``False`` means the coordinator is gone
        (the caller should exit, the journal already has the work)."""
        try:
            self.transport.send(message)
            return True
        except (BrokenPipeError, EOFError, OSError):
            return False

    # -- the loop ----------------------------------------------------------

    def run(self) -> None:
        """Serve leases until shutdown or coordinator loss."""
        # Forked siblings inherit copies of our pipe's coordinator end,
        # so a dead coordinator does NOT produce EOF on recv — the
        # socket stays open in the other runners.  The parent-pid check
        # below is therefore the authoritative coordinator-liveness
        # signal: orphaned runners (reparented to init) must exit, not
        # resend ``ready`` into a pipe nobody drains.
        parent = os.getppid()
        if not self._send(("ready", self.runner_id, None)):
            return
        while True:
            try:
                message = self.transport.recv(timeout=self.ready_resend_s)
            except (EOFError, OSError):
                return  # coordinator died; journal survives us
            if message is None:
                if os.getppid() != parent:
                    return  # orphaned: coordinator is gone
                # Idle timeout: our ready (or the coordinator's lease
                # grant) may have been dropped — announce again.
                if not self._send(
                    ("ready", self.runner_id, self._last_lease_id)
                ):
                    return
                continue
            kind = message[0]
            if kind == "shutdown":
                return
            if kind == "lease":
                lease = Lease(message[1], tuple(message[2]))
                if not self._run_lease(lease):
                    return
                if not self._send(
                    ("ready", self.runner_id, lease.lease_id)
                ):
                    return

    def _run_lease(self, lease: Lease) -> bool:
        """Execute every cell of one lease; ``False`` on peer loss."""
        self._last_lease_id = lease.lease_id
        for index in lease.indices:
            if not self._send(
                ("heartbeat", self.runner_id, lease.lease_id)
            ):
                return False
            cell = self.cells[index]
            try:
                status, payload, source = self.engine.run_cell(
                    cell, harness=self._harness,
                    instrumentation=self.instrumentation,
                )
            except Exception as exc:
                from repro.integrity.sanitizers import IntegrityError

                if isinstance(exc, IntegrityError):
                    self._send(
                        ("strict", self.runner_id,
                         exc.violation.to_dict())
                    )
                    return False
                self._send(
                    ("error", self.runner_id,
                     traceback.format_exc(limit=20))
                )
                return False
            if status == "ok":
                digest = cell.key.digest() if cell.key is not None else ""
                ok = self._send((
                    "cell_ok", self.runner_id, lease.lease_id, index,
                    digest, payload, source,
                ))
            else:
                ok = self._send((
                    "cell_failed", self.runner_id, lease.lease_id, index,
                    payload.to_dict(),
                ))
            if not ok:
                return False
        return True


def shard_runner_main(
    connection,
    runner_id: int,
    workloads,
    factories,
    workload_names,
    journal_path: str,
    *,
    options=None,
    sanitizers=None,
    backoff=None,
    instrumentation=None,
    ready_resend_s: float = 1.0,
    close_connections: Sequence = (),
) -> None:
    """Body of one forked shard-runner process.

    Rebuilds the same cell list the coordinator built (same factories
    and workload set, inherited through fork, through the shared
    :func:`grid_cells`), wires an engine around the runner's private
    shard journal, and serves leases until shutdown.

    ``close_connections`` holds the fork-inherited copies of the
    coordinator-side pipe ends (our own and the sibling runners'); they
    are closed immediately so a dead peer actually produces EOF instead
    of a pipe held open by unrelated runner processes.
    """
    # The coordinator owns Ctrl-C shutdown, exactly like the pool
    # workers: a runner must never stampede its own traceback.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    install_escalation_handler()
    for stray in close_connections:
        try:
            stray.close()
        except OSError:  # pragma: no cover - already closed
            pass
    transport = PipeTransport(connection)
    try:
        opts = (options if options is not None else RunOptions()).replace(
            jobs=1, checkpoint=journal_path, resume=True,
            ledger=None, live_progress=False, shards=1,
        )
        engine = ExperimentEngine(
            workloads, opts, sanitizers=sanitizers, backoff=backoff,
        )
        cells = grid_cells(
            workloads, factories, list(workload_names),
            blockcache=opts.blockcache,
        )
        ShardRunner(
            runner_id, transport, engine, cells,
            instrumentation=instrumentation,
            ready_resend_s=ready_resend_s,
        ).run()
    except (EOFError, OSError):  # pragma: no cover - peer loss races
        pass
    except BaseException:
        try:
            transport.send((
                "error", runner_id, traceback.format_exc(limit=20),
            ))
        except Exception:  # pragma: no cover - coordinator gone too
            pass
    finally:
        try:
            transport.close()
        except OSError:  # pragma: no cover
            pass
