"""The experiment execution engine: parallel, cached, fault-isolated.

The paper's evaluation is one large (simulator x workload) grid
re-visited by every table; the serial harness pays full price for
every cell on every run.  This engine executes the same cells

* **memoized** — each cell is content-addressed by its
  :class:`~repro.exec.cache.CacheKey` (configuration hash, workload
  trace fingerprint, package version) and recomputed only when an
  input changed;
* **in parallel** — cache misses fan out over a pool of forked worker
  processes (``jobs`` wide), each timing one cell and shipping the
  :class:`~repro.result.SimResult` back over a pipe.  Traces are built
  once in the parent and inherited by the workers through fork, so no
  worker ever rebuilds a workload;
* **fault-isolated** — a cell that raises, dies, or exceeds its
  per-cell ``timeout`` is retried up to ``retries`` times and then
  recorded as a :class:`~repro.validation.harness.CellFailure` on the
  returned grid; every other cell still completes.

Results are inserted into the :class:`ResultGrid` in the exact order
the serial harness would produce, so a parallel run serialises
identically to a serial one.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import signal
import time
import traceback
from collections import deque
from dataclasses import dataclass
from multiprocessing.connection import wait as _connection_wait
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.blockcache import BLOCKCACHE_VERSION
from repro.exec.cache import CacheKey, ResultCache, fingerprint_trace
from repro.exec.spec import RunOptions, fold_legacy_kwargs
from repro.integrity.checkpoint import GridCheckpoint
from repro.integrity.sanitizers import (
    IntegrityError,
    InvariantViolation,
    Sanitizers,
)
from repro.integrity.watchdog import (
    SimulationStuck,
    install_escalation_handler,
)
from repro.obs.observer import Instrumentation
from repro.obs.provenance import _package_version, config_hash
from repro.obs.registry import MetricsRegistry
from repro.obs.telemetry import GridProgress, RunLedger, mirror_to_metrics
from repro.result import SimResult
from repro.validation.harness import (
    CellFailure,
    Harness,
    ResultGrid,
    SimulatorFactory,
    quarantine_failure,
)
from repro.workloads.suite import WorkloadSet

__all__ = ["ExperimentEngine", "CellFailure", "RetryBackoff", "grid_cells"]


class RetryBackoff:
    """Bounded exponential backoff with *deterministic* jitter.

    Retrying a failed cell immediately hammers whatever transient
    condition (memory pressure, a busy disk) just killed it.  Delays
    double from ``base_s`` up to ``cap_s``; jitter de-synchronises
    cells retrying in lockstep, but is derived by hashing the cell key
    and attempt number rather than from a random source, so a given
    grid run schedules identically every time (determinism is a
    project invariant).

    ``max_delay_s`` is an explicit hard ceiling on any single returned
    delay, independent of how ``cap_s`` was (mis)configured: the retry
    budget caps the *number* of attempts, but a re-leased shard
    chaining backoffs through a pathological ``cap_s`` could otherwise
    sleep for minutes while its lease expires under it.
    """

    #: Hard ceiling on any single delay (seconds) unless overridden.
    MAX_DELAY_S = 30.0

    def __init__(
        self,
        base_s: float = 0.05,
        cap_s: float = 2.0,
        jitter: float = 0.25,
        max_delay_s: float = MAX_DELAY_S,
    ):
        if base_s < 0 or cap_s < 0 or not 0 <= jitter <= 1:
            raise ValueError(
                f"invalid backoff (base_s={base_s}, cap_s={cap_s}, "
                f"jitter={jitter})"
            )
        if max_delay_s < 0:
            raise ValueError(
                f"invalid backoff ceiling (max_delay_s={max_delay_s})"
            )
        self.base_s = base_s
        self.cap_s = cap_s
        self.jitter = jitter
        self.max_delay_s = max_delay_s

    def delay(self, key: str, attempt: int) -> float:
        """Seconds to wait before retry number ``attempt`` (1-based)
        of the cell identified by ``key``."""
        raw = min(self.cap_s, self.base_s * (2.0 ** max(0, attempt - 1)))
        digest = hashlib.sha256(f"{key}:{attempt}".encode()).digest()
        fraction = int.from_bytes(digest[:8], "big") / 2.0 ** 64
        return min(raw * (1.0 - self.jitter * fraction), self.max_delay_s)


@dataclass
class _Cell:
    """One (simulator, workload) unit of work, in serial grid order."""

    index: int
    sim_name: str
    factory: SimulatorFactory
    workload: str
    key: Optional[CacheKey]


@dataclass
class _Attempt:
    """A live worker process timing one cell."""

    cell: _Cell
    process: multiprocessing.Process
    conn: object
    started: float
    attempt: int


def _grid_cell_key(
    sim_name: str, cfg_hash: str, workload: str, trace_fp: str, blockcache
) -> CacheKey:
    version = _package_version()
    if blockcache is not False:
        # The fast path may engage for this cell: bind the entry to
        # the blockcache semantics version so a memoization change can
        # never serve stale cached results.
        version = f"{version}+bc{BLOCKCACHE_VERSION}"
    return CacheKey(
        simulator=sim_name,
        config_hash=cfg_hash,
        workload=workload,
        trace_fingerprint=trace_fp,
        package_version=version,
    )


def grid_cells(
    workloads: WorkloadSet,
    factories: Sequence[SimulatorFactory],
    workload_names: Sequence[str],
    *,
    blockcache=None,
    keyed: bool = True,
) -> List[_Cell]:
    """Build the (simulator x workload) cell list in serial grid order.

    Probes each factory once for its identity, builds every trace (the
    :class:`WorkloadSet` caches them for inheriting workers), and
    content-addresses each cell when ``keyed``.  Shared by the engine
    and the shard coordinator/runners: both sides derive their cell
    lists — and therefore their cache-key digests — from this one
    function, so a lease index refers to the same cell everywhere.
    """
    probes = []
    for factory in factories:
        simulator = factory()
        probes.append((
            simulator.name,
            config_hash(getattr(simulator, "config", None)),
        ))
    fingerprints: Dict[str, str] = {}
    for name in workload_names:
        trace = workloads.trace(name)
        if keyed:
            fingerprints[name] = fingerprint_trace(trace)
    cells: List[_Cell] = []
    for name in workload_names:
        for (sim_name, cfg_hash), factory in zip(probes, factories):
            key = (
                _grid_cell_key(
                    sim_name, cfg_hash, name, fingerprints[name],
                    blockcache,
                )
                if keyed else None
            )
            cells.append(_Cell(len(cells), sim_name, factory, name, key))
    return cells


def _worker_main(conn, factory, workload, workload_set, instrumentation,
                 sanitizers=None, options=None):
    """Body of one forked worker: time one cell, ship the result back.

    Runs through the same :class:`Harness` cell path as serial
    execution (observer wiring, sanitizer audit, provenance capture),
    so results are indistinguishable from serially produced ones.

    Wire protocol (first tuple element):

    * ``"ok"`` — clean result follows;
    * ``"quarantined"`` — the sanitizers flagged the run; a list of
      violation dicts follows and the result is withheld;
    * ``"strict"`` — a violation under a strict bundle; the parent
      re-raises :class:`IntegrityError` and aborts the grid;
    * ``"stuck"`` — the watchdog diagnosed a livelock inside the
      worker (or the parent escalated a wall-clock timeout over
      SIGUSR1); message + state snapshot follow;
    * ``"error"`` — any other exception; formatted traceback follows.
    """
    # A Ctrl-C in the parent delivers SIGINT to the whole foreground
    # process group.  The parent owns shutdown (it terminates and joins
    # the pool); workers ignoring SIGINT turn that into one clean
    # coordinator-side teardown instead of a KeyboardInterrupt
    # traceback stampede from every pool worker.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    install_escalation_handler()
    try:
        harness = Harness(
            workload_set, (options or RunOptions()).trimmed(),
            sanitizers=sanitizers,
        )
        try:
            result = harness.run_one(
                factory, workload, instrumentation=instrumentation
            )
        except IntegrityError as exc:
            if sanitizers is not None and sanitizers.strict:
                conn.send(("strict", exc.violation.to_dict()))
            else:
                conn.send(("quarantined", [exc.violation.to_dict()]))
        except SimulationStuck as exc:
            conn.send(("stuck", str(exc), {
                "detail": exc.detail,
                "instructions": exc.instructions, "retire": exc.retire,
                "state": exc.state,
            }))
        else:
            if harness.last_violations:
                conn.send(("quarantined", [
                    v.to_dict() for v in harness.last_violations
                ]))
            else:
                conn.send(("ok", result))
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc(limit=20)))
        except Exception:  # pragma: no cover - parent already gone
            pass
    finally:
        conn.close()


class ExperimentEngine:
    """Runs (simulator x workload) grids over a process pool with an
    on-disk result cache.

    Parameters
    ----------
    workloads:
        The shared :class:`WorkloadSet` (traces are built once here,
        in the parent, before any worker forks).
    options:
        A :class:`repro.exec.spec.RunOptions` carrying the execution
        envelope — ``jobs`` (pool width; ``1`` times cells in-process,
        still exercising cache and fault isolation), ``cache`` (a
        :class:`ResultCache` or directory path), ``timeout`` (per-cell
        wall-clock budget, pool mode; an expired worker is escalated
        over SIGUSR1 with ``escalation_grace_s`` to dump a
        :class:`SimulationStuck` diagnosis, then terminated),
        ``retries``, ``refresh`` (invalidate-and-recompute touched
        cache entries), ``checkpoint``/``resume`` (a
        :class:`repro.integrity.GridCheckpoint` or journal path;
        resume satisfies already-journaled cells), ``watchdog_s``
        (in-run livelock stall budget), and ``blockcache``
        (trace-compilation control, mixed into cache keys whenever the
        fast path may engage).  The historical keyword arguments still
        fold in through a deprecation shim.
    metrics:
        A :class:`MetricsRegistry`; receives ``exec.cache.*`` traffic
        counters, per-cell ``exec.cell.*`` timers, and pool counters.
    sanitizers:
        A :class:`repro.integrity.Sanitizers` bundle (otherwise built
        from the options' ``sanitize``/``strict`` flags; disabled by
        default).  Enabled, every cell is invariant-checked and a
        violating result is quarantined (``kind="invariant"``); a
        strict bundle aborts the grid with :class:`IntegrityError`.
    backoff:
        A :class:`RetryBackoff` governing the delay between attempts
        of a failing cell (the default backs off from 50ms, doubling
        to a 2s cap, with deterministic jitter).
    """

    #: The pre-RunOptions keyword surface, folded in with a warning.
    _LEGACY_INIT = (
        "jobs", "cache", "timeout", "retries", "refresh", "watchdog_s",
        "checkpoint", "resume", "escalation_grace_s", "blockcache",
    )

    def __init__(
        self,
        workloads: Optional[WorkloadSet] = None,
        options: Optional[RunOptions] = None,
        *,
        metrics: Optional[MetricsRegistry] = None,
        sanitizers: Optional[Sanitizers] = None,
        backoff: Optional[RetryBackoff] = None,
        **legacy,
    ):
        opts = fold_legacy_kwargs(
            options, legacy, allowed=self._LEGACY_INIT,
            owner="ExperimentEngine()",
        )
        self.options = opts
        self.workloads = workloads or WorkloadSet()
        self.blockcache = opts.blockcache
        self.jobs = max(1, int(opts.jobs))
        self.timeout = opts.timeout
        self.escalation_grace_s = max(0.0, float(opts.escalation_grace_s))
        self.retries = max(0, int(opts.retries))
        self.metrics = metrics if metrics is not None else (
            MetricsRegistry.disabled()
        )
        self.refresh = opts.refresh
        self.sanitizers = sanitizers if sanitizers is not None else (
            opts.sanitizer_bundle() or Sanitizers.disabled()
        )
        self.watchdog_s = opts.watchdog_s
        checkpoint = opts.checkpoint
        if isinstance(checkpoint, (str, os.PathLike)):
            checkpoint = GridCheckpoint(checkpoint)
        self.checkpoint: Optional[GridCheckpoint] = checkpoint
        self.resume = opts.resume
        self.backoff = backoff if backoff is not None else RetryBackoff()
        cache = opts.cache
        if isinstance(cache, (str, os.PathLike)):
            cache = ResultCache(cache, metrics=self.metrics)
        if cache is not None and cache.metrics is None:
            cache.metrics = self.metrics
        self.cache: Optional[ResultCache] = cache
        #: Live per-grid telemetry sinks (set for the duration of one
        #: :meth:`run_grid` call; ``None`` otherwise).
        self._ledger: Optional[RunLedger] = None
        self._progress_line: Optional[GridProgress] = None
        self._ctx = (
            multiprocessing.get_context("fork")
            if "fork" in multiprocessing.get_all_start_methods()
            else None
        )

    # -- keys --------------------------------------------------------------

    def _cell_key(
        self, sim_name: str, cfg_hash: str, workload: str, trace_fp: str
    ) -> CacheKey:
        return _grid_cell_key(
            sim_name, cfg_hash, workload, trace_fp, self.blockcache
        )

    # -- the grid ----------------------------------------------------------

    def run_grid(
        self,
        factories: Sequence[SimulatorFactory],
        workload_names: Iterable[str],
        *,
        instrumentation: Optional[Instrumentation] = None,
        progress: Optional[Callable[[str, str], None]] = None,
        ledger=None,
        live_progress: bool = False,
    ) -> ResultGrid:
        """Run every factory over every workload; see the module doc.

        The returned grid holds a result for every cell that completed
        and a :class:`CellFailure` for every cell that exhausted its
        attempts, in serial iteration order.

        ``ledger`` (a :class:`~repro.obs.telemetry.RunLedger` or a
        JSONL path) appends one telemetry record per settled cell;
        ``live_progress=True`` renders a live
        ``cells done/total, cells/s, ETA`` line on stderr.  Both
        default from the engine's :class:`RunOptions`.
        """
        if ledger is None:
            ledger = self.options.ledger
        live_progress = live_progress or self.options.live_progress
        names = list(workload_names)
        self.metrics.gauge("exec.jobs").set(self.jobs)

        # Build every trace in the parent: cached in the WorkloadSet,
        # inherited by workers via fork, fingerprinted once each.
        # Content-addressed keys serve both the result cache and the
        # checkpoint journal.
        keyed = self.cache is not None or self.checkpoint is not None
        cells = grid_cells(
            self.workloads, factories, names,
            blockcache=self.blockcache, keyed=keyed,
        )

        owns_ledger = isinstance(ledger, (str, os.PathLike))
        if owns_ledger:
            ledger = RunLedger(ledger)
        self._ledger = ledger
        self._progress_line = (
            GridProgress(len(cells)) if live_progress else None
        )

        # Resolve checkpointed cells (resuming) and cache hits (or,
        # refreshing, drop stale entries).
        checkpointed: Dict[str, SimResult] = {}
        if self.checkpoint is not None and self.resume:
            checkpointed = self.checkpoint.load()
            self.metrics.gauge("exec.checkpoint.entries").set(
                len(checkpointed)
            )
        results: Dict[int, SimResult] = {}
        to_run: List[_Cell] = []
        for cell in cells:
            if checkpointed:
                hit = checkpointed.get(cell.key.digest())
                if hit is not None:
                    results[cell.index] = hit
                    self.metrics.counter("exec.checkpoint.resumed").inc()
                    self._note_cell(
                        cell.sim_name, cell.workload, "ok",
                        source="checkpoint", telemetry=hit.telemetry,
                    )
                    continue
            if self.cache is not None and self.refresh:
                self.cache.invalidate(cell.key)
            elif self.cache is not None:
                hit = self.cache.get(cell.key)
                if hit is not None:
                    results[cell.index] = hit
                    self._note_cell(
                        cell.sim_name, cell.workload, "ok",
                        source="cache", telemetry=hit.telemetry,
                    )
                    continue
            to_run.append(cell)

        failures: Dict[int, CellFailure] = {}
        try:
            if to_run:
                if self.jobs > 1 and self._ctx is not None:
                    self._run_pool(
                        to_run, results, failures, instrumentation, progress
                    )
                else:
                    self._run_inprocess(
                        to_run, results, failures, instrumentation, progress
                    )
        finally:
            if self.checkpoint is not None:
                self.checkpoint.flush()
            if self._progress_line is not None:
                self._progress_line.close()
            self._progress_line = None
            self._ledger = None
            if owns_ledger:
                ledger.close()

        grid = ResultGrid()
        for cell in cells:
            result = results.get(cell.index)
            if result is not None:
                grid.add(result)
        grid.failures.extend(
            failures[index] for index in sorted(failures)
        )
        return grid

    def refresh_cell(
        self,
        grid: ResultGrid,
        factory: SimulatorFactory,
        workload: str,
        *,
        instrumentation: Optional[Instrumentation] = None,
    ) -> SimResult:
        """Recompute one cell, overwrite its cache entry, and replace
        it in ``grid`` (the ``ResultGrid.add(..., replace=True)``
        escape hatch)."""
        harness = Harness(
            self.workloads, RunOptions(blockcache=self.blockcache),
            metrics=self.metrics,
        )
        result = harness.run_one(
            factory, workload, instrumentation=instrumentation
        )
        if self.cache is not None:
            probe = factory()
            key = self._cell_key(
                probe.name,
                config_hash(getattr(probe, "config", None)),
                workload,
                fingerprint_trace(self.workloads.trace(workload)),
            )
            self.cache.put(key, result)
        grid.add(result, replace=True)
        return grid.get(result.simulator, result.workload)

    # -- execution backends ------------------------------------------------

    def _note_cell(self, simulator: str, workload: str, status: str,
                   *, source: str = "run", attempts: int = 1,
                   telemetry=None) -> None:
        """Report one settled cell to the run ledger and progress
        line, stamping the settling source onto its telemetry."""
        if telemetry is not None:
            telemetry.source = source
        if self._ledger is not None:
            self._ledger.record(
                simulator=simulator, workload=workload, status=status,
                source=source, attempts=attempts, telemetry=telemetry,
            )
        if self._progress_line is not None:
            self._progress_line.update()

    def _record_success(self, cell: _Cell, result: SimResult,
                        elapsed: float, attempts: int = 1) -> None:
        self.metrics.timer(
            f"exec.cell.{cell.sim_name}.{cell.workload}"
        ).observe(elapsed)
        self.metrics.counter("exec.cells.completed").inc()
        if self.cache is not None:
            self.cache.put(cell.key, result)
        if self.checkpoint is not None:
            self.checkpoint.record(cell.key.digest(), result)
        self._note_cell(
            cell.sim_name, cell.workload, "ok",
            attempts=attempts, telemetry=result.telemetry,
        )

    def _quarantine(self, cell: _Cell,
                    violations: List[InvariantViolation],
                    failures: Dict[int, CellFailure],
                    attempts: int, elapsed: float) -> None:
        """Record a sanitizer-flagged cell; quarantines are
        deterministic model defects, so they are never retried and
        never cached."""
        failures[cell.index] = quarantine_failure(
            violations,
            simulator=cell.sim_name, workload=cell.workload,
            attempts=attempts, elapsed_s=elapsed,
        )
        self.metrics.counter("exec.cells.quarantined").inc()
        self._note_cell(
            cell.sim_name, cell.workload, "invariant", attempts=attempts
        )

    def _stuck_failure(self, cell: _Cell, message: str,
                       snapshot: Optional[Dict],
                       failures: Dict[int, CellFailure],
                       attempts: int, elapsed: float) -> None:
        """Record a diagnosed livelock; deterministic, so no retry."""
        failures[cell.index] = CellFailure(
            simulator=cell.sim_name,
            workload=cell.workload,
            kind="stuck",
            message=message,
            attempts=attempts,
            elapsed_s=elapsed,
            snapshot=snapshot,
        )
        self.metrics.counter("exec.cells.failed").inc()
        self._note_cell(
            cell.sim_name, cell.workload, "stuck", attempts=attempts
        )

    def _cell_harness(self) -> Harness:
        """A fresh in-process harness wired with this engine's
        sanitizer/watchdog/blockcache settings."""
        return Harness(
            self.workloads, self.options.trimmed(),
            metrics=self.metrics, sanitizers=self.sanitizers,
        )

    def _execute_cell(self, harness, cell, instrumentation,
                      failures, progress=None) -> Optional[SimResult]:
        """Run one cell in-process through its full retry budget.

        Returns the result on success (recorded into cache/checkpoint/
        ledger); on failure records a :class:`CellFailure` under
        ``failures[cell.index]`` and returns ``None``.  Strict
        sanitizer violations raise :class:`IntegrityError`, exactly as
        the serial backend always has.
        """
        attempts = 1 + self.retries
        for attempt in range(1, attempts + 1):
            if progress is not None:
                progress(cell.sim_name, cell.workload)
            started = time.perf_counter()
            try:
                result = harness.run_one(
                    cell.factory, cell.workload,
                    instrumentation=instrumentation,
                )
            except IntegrityError as exc:
                if self.sanitizers.strict:
                    raise
                self._quarantine(
                    cell, [exc.violation], failures, attempt,
                    time.perf_counter() - started,
                )
                return None
            except SimulationStuck as exc:
                self._stuck_failure(
                    cell, str(exc),
                    {"instructions": exc.instructions,
                     "retire": exc.retire,
                     "state": exc.state},
                    failures, attempt, time.perf_counter() - started,
                )
                return None
            except Exception:
                elapsed = time.perf_counter() - started
                if attempt < attempts:
                    self.metrics.counter("exec.cells.retried").inc()
                    time.sleep(self.backoff.delay(
                        f"{cell.sim_name}:{cell.workload}", attempt
                    ))
                    continue
                failures[cell.index] = CellFailure(
                    simulator=cell.sim_name,
                    workload=cell.workload,
                    kind="exception",
                    message=traceback.format_exc(limit=20),
                    attempts=attempt,
                    elapsed_s=elapsed,
                )
                self.metrics.counter("exec.cells.failed").inc()
                self._note_cell(
                    cell.sim_name, cell.workload, "exception",
                    attempts=attempt,
                )
                return None
            else:
                if harness.last_violations:
                    self._quarantine(
                        cell, harness.last_violations, failures,
                        attempt, time.perf_counter() - started,
                    )
                    return None
                self._record_success(
                    cell, result, time.perf_counter() - started, attempt,
                )
                return result
        return None  # pragma: no cover - loop always settles

    def run_cell(self, cell: _Cell, *, harness=None, instrumentation=None):
        """Execute one prepared cell in-process and settle it.

        The shard runner's per-lease entry point (cells come from
        :func:`grid_cells`).  Checkpoint and cache hits are served
        without recompute — a re-granted lease over already-journaled
        cells costs nothing — and fresh successes are recorded into
        both before returning, so the caller may acknowledge the cell
        as durable.

        Returns ``(status, payload, source)`` where status is ``"ok"``
        (payload is the :class:`SimResult`; source is ``"checkpoint"``,
        ``"cache"`` or ``"run"``) or ``"failed"`` (payload is the
        :class:`CellFailure`).
        """
        if cell.key is not None:
            digest = cell.key.digest()
            if self.checkpoint is not None:
                hit = self.checkpoint.get(digest)
                if hit is not None:
                    self.metrics.counter("exec.checkpoint.resumed").inc()
                    return ("ok", hit, "checkpoint")
            if self.cache is not None and not self.refresh:
                hit = self.cache.get(cell.key)
                if hit is not None:
                    return ("ok", hit, "cache")
        failures: Dict[int, CellFailure] = {}
        result = self._execute_cell(
            harness if harness is not None else self._cell_harness(),
            cell, instrumentation, failures,
        )
        if result is not None:
            return ("ok", result, "run")
        return ("failed", failures[cell.index], "run")

    def _run_inprocess(self, to_run, results, failures,
                       instrumentation, progress) -> None:
        """Serial backend (``jobs=1``): same fault isolation, no fork.

        Per-cell timeouts are not enforced here — there is no process
        to terminate — but the in-run watchdog still catches livelocks.
        """
        harness = self._cell_harness()
        for cell in to_run:
            result = self._execute_cell(
                harness, cell, instrumentation, failures, progress
            )
            if result is not None:
                results[cell.index] = result

    def _escalate_timeout(
        self, attempt: _Attempt
    ) -> Optional[Tuple[str, str, Dict]]:
        """Ask a wall-clock-expired worker for a diagnosis before the
        kill: forward SIGUSR1 (the worker's escalation handler raises
        :class:`SimulationStuck` wherever it is hung) and grant
        ``escalation_grace_s`` for the resulting ``("stuck", ...)``
        dump to arrive on the pipe.  Returns that dump, or ``None`` if
        the worker could not be signalled or did not answer in time —
        either way the caller still terminates it."""
        if not hasattr(signal, "SIGUSR1"):  # pragma: no cover - non-POSIX
            return None
        try:
            os.kill(attempt.process.pid, signal.SIGUSR1)
        except (ProcessLookupError, OSError):
            return None
        try:
            if not attempt.conn.poll(self.escalation_grace_s):
                return None
            dumped = attempt.conn.recv()
        except (EOFError, OSError):
            return None
        if (isinstance(dumped, tuple) and len(dumped) == 3
                and dumped[0] == "stuck"):
            self.metrics.counter("exec.cells.escalated").inc()
            return dumped
        return None

    def _run_pool(self, to_run, results, failures,
                  instrumentation, progress) -> None:
        """Process-pool backend: up to ``jobs`` forked workers."""
        pending = deque(to_run)
        #: Cells awaiting their backoff delay: (ready_at, cell).
        delayed: List[Tuple[float, _Cell]] = []
        attempt_of: Dict[int, int] = {}
        live: Dict[object, _Attempt] = {}

        def launch(cell: _Cell) -> None:
            attempt = attempt_of.get(cell.index, 0) + 1
            attempt_of[cell.index] = attempt
            recv_end, send_end = self._ctx.Pipe(duplex=False)
            process = self._ctx.Process(
                target=_worker_main,
                args=(send_end, cell.factory, cell.workload,
                      self.workloads, instrumentation,
                      self.sanitizers, self.options),
                daemon=True,
            )
            process.start()
            send_end.close()  # keep only the child's copy writable
            live[recv_end] = _Attempt(
                cell, process, recv_end, time.perf_counter(), attempt
            )
            if progress is not None:
                progress(cell.sim_name, cell.workload)
            self.metrics.counter("exec.cells.launched").inc()

        def settle(attempt: _Attempt, kind: str, message: str,
                   elapsed: float,
                   snapshot: Optional[Dict] = None) -> None:
            cell = attempt.cell
            if attempt.attempt <= self.retries:
                self.metrics.counter("exec.cells.retried").inc()
                delay = self.backoff.delay(
                    f"{cell.sim_name}:{cell.workload}", attempt.attempt
                )
                delayed.append((time.perf_counter() + delay, cell))
                return
            failures[cell.index] = CellFailure(
                simulator=cell.sim_name,
                workload=cell.workload,
                kind=kind,
                message=message,
                attempts=attempt.attempt,
                elapsed_s=elapsed,
                snapshot=snapshot,
            )
            self.metrics.counter("exec.cells.failed").inc()
            self._note_cell(
                cell.sim_name, cell.workload, kind,
                attempts=attempt.attempt,
            )

        try:
            while pending or live or delayed:
                if delayed:
                    # Promote cells whose backoff delay has elapsed.
                    now = time.perf_counter()
                    still_waiting: List[Tuple[float, _Cell]] = []
                    for ready_at, cell in delayed:
                        if ready_at <= now:
                            pending.append(cell)
                        else:
                            still_waiting.append((ready_at, cell))
                    delayed[:] = still_waiting

                while pending and len(live) < self.jobs:
                    launch(pending.popleft())

                if not live:
                    if delayed:
                        now = time.perf_counter()
                        time.sleep(max(0.0, min(
                            ready_at for ready_at, _ in delayed
                        ) - now))
                    continue

                wait_for = None
                now = time.perf_counter()
                if self.timeout is not None:
                    wait_for = max(0.0, min(
                        attempt.started + self.timeout - now
                        for attempt in live.values()
                    ))
                if delayed:
                    next_retry = max(0.0, min(
                        ready_at for ready_at, _ in delayed
                    ) - now)
                    wait_for = (
                        next_retry if wait_for is None
                        else min(wait_for, next_retry)
                    )
                ready = _connection_wait(list(live), timeout=wait_for)

                for conn in ready:
                    attempt = live.pop(conn)
                    elapsed = time.perf_counter() - attempt.started
                    try:
                        message = conn.recv()
                    except (EOFError, OSError):
                        message = None
                    conn.close()
                    attempt.process.join()
                    kind = (
                        message[0]
                        if isinstance(message, tuple) and message else None
                    )
                    if kind == "ok":
                        results[attempt.cell.index] = message[1]
                        # The worker's registry died with the worker;
                        # mirror its telemetry into the parent's.
                        mirror_to_metrics(
                            self.metrics, attempt.cell.sim_name,
                            attempt.cell.workload, message[1].telemetry,
                        )
                        self._record_success(
                            attempt.cell, message[1], elapsed,
                            attempt.attempt,
                        )
                    elif kind == "quarantined":
                        self._quarantine(
                            attempt.cell,
                            [InvariantViolation.from_dict(v)
                             for v in message[1]],
                            failures, attempt.attempt, elapsed,
                        )
                    elif kind == "strict":
                        raise IntegrityError(
                            InvariantViolation.from_dict(message[1])
                        )
                    elif kind == "stuck":
                        self._stuck_failure(
                            attempt.cell, message[1], message[2],
                            failures, attempt.attempt, elapsed,
                        )
                    elif kind == "error":
                        settle(attempt, "exception", message[1], elapsed)
                    else:
                        settle(
                            attempt, "crash",
                            f"worker exited with code "
                            f"{attempt.process.exitcode} before "
                            f"reporting a result",
                            elapsed,
                        )

                if self.timeout is not None:
                    now = time.perf_counter()
                    for conn, attempt in list(live.items()):
                        if now - attempt.started < self.timeout:
                            continue
                        live.pop(conn)
                        dumped = self._escalate_timeout(attempt)
                        attempt.process.terminate()
                        attempt.process.join()
                        conn.close()
                        message = (
                            f"cell exceeded its {self.timeout:g}s "
                            f"timeout and was terminated"
                        )
                        snapshot = None
                        if dumped is not None:
                            message += (
                                f"; worker dumped a diagnosis on "
                                f"SIGUSR1: {dumped[1]}"
                            )
                            snapshot = dumped[2]
                        settle(
                            attempt, "timeout", message,
                            time.perf_counter() - attempt.started,
                            snapshot,
                        )
        finally:
            for attempt in live.values():
                attempt.process.terminate()
                attempt.process.join()
                attempt.conn.close()
