"""The typed experiment-request API: :class:`ExperimentSpec` and
:class:`RunOptions`.

Every way of running a grid — the Python API
(:meth:`~repro.validation.harness.Harness.run_grid`), the
``repro-experiments`` CLI, and the HTTP job service
(:mod:`repro.service`) — is a view over the same two frozen request
objects:

* :class:`RunOptions` collapses the execution knobs that used to be
  ~15 ad-hoc keyword arguments (jobs, cache, timeout, retries,
  checkpoint/resume, ledger, sanitizers, shards, blockcache, ...)
  into one value object with canonical JSON round-tripping;
* :class:`ExperimentSpec` adds *what* to run — simulator names,
  workload names, per-simulator configuration overrides — on top of a
  :class:`RunOptions`, and hashes canonically so identical requests
  deduplicate to one simulation (the service's dedup key).

Both serialise to canonical JSON (``to_dict`` / ``from_dict`` /
``canonical_json``) with unknown keys rejected, so an HTTP client, a
shell script, and a Python caller all speak the same schema and a
malformed request fails loudly at the boundary instead of deep inside
a worker.

The ``cache`` / ``checkpoint`` / ``ledger`` fields accept either a
path (the JSON form) or a live object (:class:`~repro.exec.cache.
ResultCache`, :class:`~repro.integrity.GridCheckpoint`,
:class:`~repro.obs.telemetry.RunLedger`) for in-process callers;
``to_dict`` coerces live objects back to their paths.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "RunOptions",
    "ExperimentSpec",
    "SpecError",
    "simulator_registry",
    "register_simulator",
    "fold_legacy_kwargs",
]


class SpecError(ValueError):
    """A request object failed validation (unknown key, unknown
    simulator or workload, out-of-range option).  The service maps
    this to HTTP 400; the CLI to a usage error."""


def _coerce_path(value):
    """A JSON-ready stand-in for a path-or-live-object field."""
    if value is None or isinstance(value, (str, bool, int, float)):
        return value
    for attribute in ("root", "path"):
        carried = getattr(value, attribute, None)
        if isinstance(carried, str):
            return carried
    raise SpecError(
        f"cannot serialise {type(value).__name__!r} into a spec; pass "
        f"a path instead of a live object"
    )


def _coerce_blockcache(value):
    """JSON form of a ``blockcache`` field (None/bool pass through, a
    BlockCacheConfig becomes its tuning dict)."""
    if value is None or isinstance(value, bool):
        return value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        payload = {
            k: v
            for k, v in dataclasses.asdict(value).items()
            if k != "debug_corrupt" and v is not None
        }
        payload.pop("debug_corrupt", None)
        return payload
    raise SpecError(
        f"blockcache must be None, a bool, or a BlockCacheConfig "
        f"(got {type(value).__name__})"
    )


@dataclass(frozen=True)
class RunOptions:
    """How to execute a grid: the complete, typed set of execution
    options shared by ``Harness.run_grid``, :class:`~repro.exec.
    engine.ExperimentEngine`, :class:`~repro.exec.coordinator.
    ShardCoordinator`, the CLI, and the job service.

    Every field has a serial-safe default, so ``RunOptions()`` is the
    plain in-process serial run.  Instances are frozen; derive
    variants with :meth:`replace`.
    """

    #: Worker processes for the parallel engine (1 = in-process).
    jobs: int = 1
    #: Result-cache directory (or a live ``ResultCache``).
    cache: Optional[object] = None
    #: Per-cell wall-clock budget in seconds (pool mode only).
    timeout: Optional[float] = None
    #: Extra attempts granted to a failing cell.
    retries: int = 0
    #: Invalidate and recompute every cached cell this run touches.
    refresh: bool = False
    #: Grid-checkpoint journal path (or a live ``GridCheckpoint``).
    checkpoint: Optional[object] = None
    #: Skip cells the checkpoint journal already holds.
    resume: bool = False
    #: Per-cell telemetry JSONL path (or a live ``RunLedger``).
    ledger: Optional[object] = None
    #: Render the live cells/s + ETA progress line.
    live_progress: bool = False
    #: Crash-safe work-stealing shard runners (1 = no sharding).
    shards: int = 1
    #: Arm the invariant sanitizers (quarantine violating cells).
    sanitize: bool = False
    #: With sanitize: abort on the first violation instead.
    strict: bool = False
    #: Livelock watchdog stall budget in seconds (None = disarmed).
    watchdog_s: Optional[float] = None
    #: Trace-compilation control: None = simulator default, False =
    #: detailed loop only, True = force on, or a ``BlockCacheConfig``.
    blockcache: Optional[object] = None
    #: Post-SIGUSR1 grace for a wall-clock-expired worker's diagnosis.
    escalation_grace_s: float = 1.0

    #: The run_one-relevant subset (see :meth:`trimmed`).
    _SINGLE_CELL_FIELDS = (
        "sanitize", "strict", "watchdog_s", "blockcache",
    )

    def __post_init__(self):
        if int(self.jobs) < 1:
            raise SpecError(f"jobs must be >= 1 (got {self.jobs})")
        if int(self.shards) < 1:
            raise SpecError(f"shards must be >= 1 (got {self.shards})")
        if int(self.retries) < 0:
            raise SpecError(f"retries must be >= 0 (got {self.retries})")
        if self.timeout is not None and self.timeout <= 0:
            raise SpecError(
                f"timeout must be positive (got {self.timeout})"
            )
        if self.watchdog_s is not None and self.watchdog_s <= 0:
            raise SpecError(
                f"watchdog_s must be positive (got {self.watchdog_s})"
            )
        if self.escalation_grace_s < 0:
            raise SpecError(
                f"escalation_grace_s must be >= 0 "
                f"(got {self.escalation_grace_s})"
            )

    # -- derivation --------------------------------------------------------

    def replace(self, **changes) -> "RunOptions":
        """A copy with ``changes`` applied (options are frozen)."""
        return dataclasses.replace(self, **changes)

    def merged_over(self, base: "RunOptions") -> "RunOptions":
        """Per-call options layered over harness-level defaults: every
        field still at its dataclass default inherits ``base``'s
        value, every explicitly set field wins."""
        changes = {}
        for spec_field in dataclasses.fields(self):
            value = getattr(self, spec_field.name)
            default = spec_field.default
            if value == default:
                changes[spec_field.name] = getattr(base, spec_field.name)
            else:
                changes[spec_field.name] = value
        return RunOptions(**changes)

    def trimmed(self) -> "RunOptions":
        """The :meth:`Harness.run_one` view: only the options that are
        meaningful for a single in-process cell (sanitize, strict,
        watchdog_s, blockcache); everything else reset to defaults."""
        return RunOptions(**{
            name: getattr(self, name)
            for name in self._SINGLE_CELL_FIELDS
        })

    # -- resolution --------------------------------------------------------

    def sanitizer_bundle(self):
        """The :class:`~repro.integrity.Sanitizers` these options ask
        for, or ``None`` when sanitizing is off."""
        if not (self.sanitize or self.strict):
            return None
        from repro.integrity.sanitizers import Sanitizers

        return Sanitizers(strict=self.strict)

    # -- canonical JSON ----------------------------------------------------

    def to_dict(self) -> Dict:
        """JSON-ready form; live cache/checkpoint/ledger objects are
        coerced back to their paths."""
        payload = {}
        for spec_field in dataclasses.fields(self):
            value = getattr(self, spec_field.name)
            if spec_field.name in ("cache", "checkpoint", "ledger"):
                value = _coerce_path(value)
            elif spec_field.name == "blockcache":
                value = _coerce_blockcache(value)
            payload[spec_field.name] = value
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping) -> "RunOptions":
        """Inverse of :meth:`to_dict`; unknown keys raise
        :class:`SpecError` (the API-boundary contract)."""
        names = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(payload) - names)
        if unknown:
            raise SpecError(
                f"unknown RunOptions key(s) {unknown}; known: "
                f"{sorted(names)}"
            )
        values = dict(payload)
        blockcache = values.get("blockcache")
        if isinstance(blockcache, Mapping):
            from repro.core.blockcache import BlockCacheConfig

            known = {
                f.name for f in dataclasses.fields(BlockCacheConfig)
            }
            bad = sorted(set(blockcache) - known)
            if bad:
                raise SpecError(
                    f"unknown blockcache key(s) {bad}; known: "
                    f"{sorted(known)}"
                )
            values["blockcache"] = BlockCacheConfig(**blockcache)
        try:
            return cls(**values)
        except TypeError as exc:
            raise SpecError(str(exc)) from None

    def canonical_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)


# ----------------------------------------------------------------------
# Simulator registry
# ----------------------------------------------------------------------

#: Extra factories registered at runtime (tests, plugins) — consulted
#: before the built-in registry, so a test can shadow a name.
_EXTRA_SIMULATORS: Dict[str, Callable[[], object]] = {}


def register_simulator(name: str, factory: Callable[[], object]) -> None:
    """Expose ``factory`` to specs under ``name`` (process-wide)."""
    _EXTRA_SIMULATORS[name] = factory


def simulator_registry() -> Dict[str, Callable[[], object]]:
    """Name -> zero-argument factory for every spec-addressable
    simulator (the built-in timing models plus anything registered via
    :func:`register_simulator`)."""
    from repro.core.simalpha import SimAlpha
    from repro.core.siminitial import make_sim_initial
    from repro.core.simstripped import make_sim_stripped
    from repro.simulators.eightway import EightWaySim
    from repro.simulators.refmachine import make_native_machine
    from repro.simulators.simoutorder import SimOutOrder

    registry: Dict[str, Callable[[], object]] = {
        "sim-alpha": SimAlpha,
        "sim-initial": make_sim_initial,
        "sim-stripped": make_sim_stripped,
        "sim-outorder": SimOutOrder,
        "8-way": EightWaySim,
        "native": make_native_machine,
    }
    registry.update(_EXTRA_SIMULATORS)
    return registry


def _overridden_factory(
    name: str,
    factory: Callable[[], object],
    overrides: Mapping,
) -> Callable[[], object]:
    """A factory producing ``name``'s simulator with configuration
    field ``overrides`` applied (fields must exist on the simulator's
    frozen config dataclass)."""
    probe = factory()
    config = getattr(probe, "config", None)
    if config is None or not dataclasses.is_dataclass(config):
        raise SpecError(
            f"simulator {name!r} has no overridable configuration"
        )
    known = {f.name for f in dataclasses.fields(config)}
    bad = sorted(set(overrides) - known)
    if bad:
        raise SpecError(
            f"unknown config field(s) {bad} for simulator {name!r}; "
            f"known: {sorted(known)}"
        )
    new_config = dataclasses.replace(config, **overrides)
    sim_class = type(probe)
    return lambda: sim_class(config=new_config)


@dataclass(frozen=True)
class ExperimentSpec:
    """What to run: a (simulator x workload) grid request.

    ``simulators`` and ``workloads`` are names resolved through
    :func:`simulator_registry` and the shared
    :class:`~repro.workloads.suite.WorkloadSet`;
    ``config_overrides`` maps a simulator name to configuration-field
    overrides applied on top of that simulator's default config.
    ``options`` is the :class:`RunOptions` execution envelope.
    """

    simulators: Tuple[str, ...]
    workloads: Tuple[str, ...]
    config_overrides: Mapping[str, Mapping] = field(default_factory=dict)
    options: RunOptions = field(default_factory=RunOptions)

    def __post_init__(self):
        object.__setattr__(self, "simulators", tuple(self.simulators))
        object.__setattr__(self, "workloads", tuple(self.workloads))
        object.__setattr__(
            self, "config_overrides",
            {
                str(sim): dict(overrides)
                for sim, overrides in dict(self.config_overrides).items()
            },
        )
        if not self.simulators:
            raise SpecError("spec needs at least one simulator")
        if not self.workloads:
            raise SpecError("spec needs at least one workload")
        stray = sorted(
            set(self.config_overrides) - set(self.simulators)
        )
        if stray:
            raise SpecError(
                f"config_overrides name simulator(s) {stray} that are "
                f"not in the spec's simulators {list(self.simulators)}"
            )

    @property
    def cells(self) -> int:
        """Grid size (the quota accountant's unit)."""
        return len(self.simulators) * len(self.workloads)

    # -- resolution --------------------------------------------------------

    def validate(self, *, workload_set=None, registry=None) -> None:
        """Raise :class:`SpecError` when a named simulator or workload
        does not exist (resolving config overrides as a side check)."""
        self.factories(registry=registry)
        if workload_set is None:
            from repro.workloads.suite import WorkloadSet

            workload_set = WorkloadSet()
        known = set(workload_set.names())
        missing = [w for w in self.workloads if w not in known]
        if missing:
            raise SpecError(
                f"unknown workload(s) {missing}; known: "
                f"{sorted(known)}"
            )

    def factories(self, *, registry=None) -> List[Callable[[], object]]:
        """Resolve the named simulators (with overrides applied) into
        the factory list ``Harness.run_grid`` consumes."""
        registry = registry if registry is not None else (
            simulator_registry()
        )
        factories = []
        for name in self.simulators:
            try:
                factory = registry[name]
            except KeyError:
                raise SpecError(
                    f"unknown simulator {name!r}; known: "
                    f"{sorted(registry)}"
                ) from None
            overrides = self.config_overrides.get(name)
            if overrides:
                factory = _overridden_factory(name, factory, overrides)
            factories.append(factory)
        return factories

    # -- canonical JSON ----------------------------------------------------

    def to_dict(self) -> Dict:
        return {
            "simulators": list(self.simulators),
            "workloads": list(self.workloads),
            "config_overrides": {
                sim: dict(overrides)
                for sim, overrides in sorted(
                    self.config_overrides.items()
                )
            },
            "options": self.options.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "ExperimentSpec":
        if not isinstance(payload, Mapping):
            raise SpecError(
                f"spec must be a JSON object (got "
                f"{type(payload).__name__})"
            )
        known = {"simulators", "workloads", "config_overrides", "options"}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise SpecError(
                f"unknown ExperimentSpec key(s) {unknown}; known: "
                f"{sorted(known)}"
            )
        options = payload.get("options") or {}
        if isinstance(options, RunOptions):
            run_options = options
        elif isinstance(options, Mapping):
            run_options = RunOptions.from_dict(options)
        else:
            raise SpecError(
                f"options must be a JSON object (got "
                f"{type(options).__name__})"
            )
        return cls(
            simulators=tuple(payload.get("simulators") or ()),
            workloads=tuple(payload.get("workloads") or ()),
            config_overrides=payload.get("config_overrides") or {},
            options=run_options,
        )

    def canonical_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    def dedup_key(self) -> str:
        """The canonical spec hash the service dedups requests by.

        Hashes the *measurement-relevant* subset — simulators,
        workloads, config overrides, and the options that change what
        a grid measures (blockcache, sanitize/strict, watchdog) — so
        two requests differing only operationally (jobs, cache paths,
        progress rendering) still cost one simulation.
        """
        options = self.options.to_dict()
        measured = {
            name: options[name]
            for name in ("blockcache", "sanitize", "strict", "watchdog_s")
        }
        payload = {
            "simulators": list(self.simulators),
            "workloads": list(self.workloads),
            "config_overrides": self.to_dict()["config_overrides"],
            "options": measured,
        }
        canonical = json.dumps(payload, sort_keys=True)
        return hashlib.sha256(canonical.encode()).hexdigest()[:32]


# ----------------------------------------------------------------------
# The legacy-kwarg shim
# ----------------------------------------------------------------------

def fold_legacy_kwargs(
    options: Optional[RunOptions],
    legacy: Dict,
    *,
    allowed: Sequence[str],
    owner: str,
    stacklevel: int = 3,
) -> RunOptions:
    """Fold deprecated keyword arguments into a :class:`RunOptions`.

    Emits one :class:`DeprecationWarning` per call naming every legacy
    keyword used and the replacement, then applies them over
    ``options`` (explicit legacy values win, matching the historical
    behaviour).  Unknown keywords raise ``TypeError`` exactly like a
    misspelled keyword argument always has.
    """
    base = options if options is not None else RunOptions()
    if not legacy:
        return base
    unknown = sorted(set(legacy) - set(allowed))
    if unknown:
        raise TypeError(
            f"{owner} got unexpected keyword argument(s) {unknown}"
        )
    warnings.warn(
        f"passing {sorted(legacy)} to {owner} as keyword arguments is "
        f"deprecated; pass options=RunOptions("
        + ", ".join(f"{k}=..." for k in sorted(legacy))
        + ") instead (from repro.exec.spec import RunOptions)",
        DeprecationWarning,
        stacklevel=stacklevel,
    )
    return base.replace(**legacy)
