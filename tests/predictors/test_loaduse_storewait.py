"""Tests for the load-use and store-wait predictors."""

from repro.predictors.loaduse import LoadUseConfig, LoadUsePredictor
from repro.predictors.storewait import StoreWaitConfig, StoreWaitPredictor


class TestLoadUse:
    def test_starts_predicting_hit(self):
        assert LoadUsePredictor().predicts_hit()

    def test_misses_decrement_by_two(self):
        predictor = LoadUsePredictor()
        start = predictor.value
        predictor.predict_and_train(False)
        assert predictor.value == start - 2

    def test_flips_to_miss_after_streak(self):
        predictor = LoadUsePredictor()
        for _ in range(5):
            predictor.predict_and_train(False)
        assert not predictor.predicts_hit()

    def test_recovers_on_hits(self):
        predictor = LoadUsePredictor()
        for _ in range(8):
            predictor.predict_and_train(False)
        for _ in range(12):
            predictor.predict_and_train(True)
        assert predictor.predicts_hit()

    def test_mispredict_counting(self):
        predictor = LoadUsePredictor()
        predictor.predict_and_train(False)  # predicted hit, missed
        assert predictor.stats.mispredictions == 1
        predictor.predict_and_train(True)
        assert predictor.stats.mispredictions == 1

    def test_config_penalties(self):
        config = LoadUseConfig()
        assert config.squash_cycles >= 0
        assert config.conservative_cycles == 2


class TestStoreWait:
    def test_initially_no_waits(self):
        predictor = StoreWaitPredictor()
        assert not predictor.should_wait(0x1000)

    def test_trap_sets_bit(self):
        predictor = StoreWaitPredictor()
        predictor.record_trap(0x1000)
        assert predictor.should_wait(0x1000)

    def test_bits_are_per_pc(self):
        predictor = StoreWaitPredictor()
        predictor.record_trap(0x1000)
        assert not predictor.should_wait(0x1004)

    def test_aliasing_at_table_size(self):
        predictor = StoreWaitPredictor(StoreWaitConfig(entries=16))
        predictor.record_trap(0x0)
        assert predictor.should_wait(16 * 4)  # same index mod 16 words

    def test_periodic_clear(self):
        predictor = StoreWaitPredictor(StoreWaitConfig(clear_interval=100))
        predictor.record_trap(0x1000)
        predictor.tick(99)
        assert predictor.should_wait(0x1000)
        predictor.tick(1)
        assert not predictor.should_wait(0x1000)

    def test_rejects_bad_entries(self):
        import pytest

        with pytest.raises(ValueError):
            StoreWaitPredictor(StoreWaitConfig(entries=100))
