"""Tests for saturating counters and counter tables."""

import pytest
from hypothesis import given, strategies as st

from repro.predictors.saturating import CounterTable, SaturatingCounter


class TestSaturatingCounter:
    def test_saturates_high(self):
        counter = SaturatingCounter(2)
        for _ in range(10):
            counter.increment()
        assert counter.value == 3

    def test_saturates_low(self):
        counter = SaturatingCounter(2, initial=3)
        for _ in range(10):
            counter.decrement()
        assert counter.value == 0

    def test_msb(self):
        counter = SaturatingCounter(2, initial=2)
        assert counter.msb
        counter.decrement()
        assert not counter.msb

    def test_asymmetric_steps(self):
        counter = SaturatingCounter(4, initial=15)
        counter.decrement(2)
        assert counter.value == 13

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            SaturatingCounter(0)
        with pytest.raises(ValueError):
            SaturatingCounter(2, initial=4)

    @given(st.integers(min_value=1, max_value=8),
           st.lists(st.booleans(), max_size=100))
    def test_always_in_range(self, bits, updates):
        counter = SaturatingCounter(bits)
        for up in updates:
            counter.increment() if up else counter.decrement()
            assert 0 <= counter.value <= counter.maximum


class TestCounterTable:
    def test_initial_value(self):
        table = CounterTable(16, 2, initial=2)
        assert all(table.read(i) == 2 for i in range(16))

    def test_training(self):
        table = CounterTable(16, 2, initial=2)
        for _ in range(3):
            table.update(5, False)
        assert not table.predict_taken(5)
        assert table.predict_taken(6)  # untouched neighbour

    def test_index_masking(self):
        table = CounterTable(16, 2)
        table.update(16 + 3, True)
        assert table.read(3) == table.read(16 + 3)

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            CounterTable(10, 2)

    @given(st.lists(st.tuples(st.integers(0, 1 << 20), st.booleans()),
                    max_size=200))
    def test_counters_bounded(self, updates):
        table = CounterTable(8, 3)
        for index, taken in updates:
            table.update(index, taken)
        assert all(0 <= v <= 7 for v in table.table)
