"""Tests for the line predictor and the I-cache way predictor."""

import pytest

from repro.predictors.line import LinePredictor, LinePredictorConfig
from repro.predictors.way import WayPredictor, WayPredictorConfig


class TestLinePredictor:
    def test_sequential_init_predicts_fall_through(self):
        predictor = LinePredictor(LinePredictorConfig(init_mode="sequential"))
        assert predictor.predict(0x1000) == 0x1010

    def test_zero_init_predicts_zero(self):
        predictor = LinePredictor(LinePredictorConfig(init_mode="zero"))
        assert predictor.predict(0x1000) == 0

    def test_trains_to_taken_target(self):
        predictor = LinePredictor()
        predictor.predict_and_train(0x1000, 0x8000)
        assert predictor.predict(0x1000) == 0x8000

    def test_loop_steady_state_has_no_mispredicts(self):
        predictor = LinePredictor()
        # A two-octaword loop: A -> B -> A -> B ...
        for _ in range(50):
            predictor.predict_and_train(0x1000, 0x1010)
            predictor.predict_and_train(0x1010, 0x1000)
        stats = predictor.stats
        assert stats.mispredictions <= 2  # cold starts only

    def test_alternating_target_always_misses(self):
        """A C-S1-style jump whose target changes every time."""
        predictor = LinePredictor()
        targets = [0x2000, 0x3000]
        misses = 0
        for i in range(100):
            predicted = predictor.predict_and_train(
                0x1000, targets[i % 2]
            )
            if predicted != targets[i % 2]:
                misses += 1
        assert misses >= 98

    def test_non_speculative_update_delays_training(self):
        config = LinePredictorConfig(speculative_update=False,
                                     update_delay=4)
        predictor = LinePredictor(config)
        predictor.predict_and_train(0x1000, 0x8000)
        # Training has not landed yet: still predicts sequential.
        assert predictor.predict(0x1000) == 0x1010

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            LinePredictor(LinePredictorConfig(init_mode="bogus"))
        with pytest.raises(ValueError):
            LinePredictor(LinePredictorConfig(entries=1000))

    def test_aliasing(self):
        """Entries alias at (octaword >> 4) mod entries (M-IP's cost)."""
        predictor = LinePredictor(LinePredictorConfig(entries=16))
        predictor.predict_and_train(0x0000, 0x9990)
        aliased = 16 * 16  # same index, different octaword
        assert predictor.predict(aliased) == 0x9990


class TestWayPredictor:
    def test_cold_predicts_way_zero(self):
        predictor = WayPredictor()
        assert predictor.predict(0x1000) == 0

    def test_trains(self):
        predictor = WayPredictor()
        predictor.predict_and_train(0x1000, 1)
        assert predictor.predict(0x1000) == 1

    def test_stable_way_never_mispredicts_after_training(self):
        predictor = WayPredictor()
        for _ in range(50):
            predictor.predict_and_train(0x1000, 1)
        assert predictor.stats.mispredictions == 1  # the cold one

    def test_thrash_mispredicts(self):
        """eon-style alternation between ways of one set."""
        predictor = WayPredictor()
        for i in range(100):
            predictor.predict_and_train(0x1000, i % 2)
        assert predictor.stats.mispredictions >= 99

    def test_rejects_out_of_range_way(self):
        predictor = WayPredictor(WayPredictorConfig(ways=2))
        with pytest.raises(ValueError):
            predictor.predict_and_train(0x1000, 2)

    def test_rejects_bad_entries(self):
        with pytest.raises(ValueError):
            WayPredictor(WayPredictorConfig(entries=100))
