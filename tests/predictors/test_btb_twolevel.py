"""Tests for the BTB and the two-level adaptive predictor."""

import random

import pytest

from repro.predictors.btb import BranchTargetBuffer, BtbConfig
from repro.predictors.twolevel import TwoLevelConfig, TwoLevelPredictor


class TestBtb:
    def test_cold_miss_then_hit(self):
        btb = BranchTargetBuffer()
        assert btb.lookup(0x1000) is None
        btb.install(0x1000, 0x2000)
        assert btb.lookup(0x1000) == 0x2000

    def test_lookup_and_train(self):
        btb = BranchTargetBuffer()
        assert btb.lookup_and_train(0x1000, 0x2000) is None
        assert btb.lookup_and_train(0x1000, 0x2000) == 0x2000
        assert btb.stats.mispredictions == 1

    def test_retargets(self):
        btb = BranchTargetBuffer()
        btb.install(0x1000, 0x2000)
        btb.install(0x1000, 0x3000)
        assert btb.lookup(0x1000) == 0x3000

    def test_lru_eviction_within_set(self):
        btb = BranchTargetBuffer(BtbConfig(sets=1, ways=2))
        btb.install(0x1000, 0xA)
        btb.install(0x2000, 0xB)
        btb.lookup(0x1000)          # refresh
        btb.install(0x3000, 0xC)    # evicts 0x2000
        assert btb.lookup(0x1000) == 0xA
        assert btb.lookup(0x2000) is None

    def test_rejects_bad_sets(self):
        with pytest.raises(ValueError):
            BranchTargetBuffer(BtbConfig(sets=100))


class TestTwoLevel:
    def test_learns_bias(self):
        predictor = TwoLevelPredictor()
        for _ in range(500):
            predictor.predict_and_train(0x1000, True)
        assert predictor.stats.accuracy > 0.95

    def test_learns_global_pattern(self):
        predictor = TwoLevelPredictor()
        pattern = [True, True, False, True, False, False]
        for i in range(6000):
            predictor.predict_and_train(0x1000, pattern[i % len(pattern)])
        late = predictor.stats
        assert late.accuracy > 0.8

    def test_random_near_chance(self):
        predictor = TwoLevelPredictor()
        rng = random.Random(5)
        for _ in range(4000):
            predictor.predict_and_train(0x2000, rng.random() < 0.5)
        assert 0.3 < predictor.stats.accuracy < 0.7

    def test_concatenated_index_variant(self):
        predictor = TwoLevelPredictor(TwoLevelConfig(xor_pc=False))
        for _ in range(200):
            predictor.predict_and_train(0x3000, True)
        assert predictor.stats.accuracy > 0.9
