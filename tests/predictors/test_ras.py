"""Tests for the circular return address stack."""

from repro.predictors.ras import RasConfig, ReturnAddressStack


def test_simple_call_return():
    ras = ReturnAddressStack()
    ras.push(0x1004)
    assert ras.predict_and_pop(0x1004)
    assert ras.stats.mispredictions == 0


def test_nested_calls():
    ras = ReturnAddressStack()
    ras.push(0x1004)
    ras.push(0x2004)
    assert ras.predict_and_pop(0x2004)
    assert ras.predict_and_pop(0x1004)


def test_wrong_target_counts_mispredict():
    ras = ReturnAddressStack()
    ras.push(0x1004)
    assert not ras.predict_and_pop(0xBAD)
    assert ras.stats.mispredictions == 1


def test_empty_stack_mispredicts():
    ras = ReturnAddressStack()
    assert not ras.predict_and_pop(0x1004)


def test_circular_overflow_keeps_self_recursion_correct():
    """C-R: a 1,000-deep self-recursion overflows the 32-entry stack,
    but every frame returns to the same site, so the stale wrapped
    entries still predict correctly."""
    ras = ReturnAddressStack(RasConfig(depth=32))
    return_pc = 0x5004
    for _ in range(1000):
        ras.push(return_pc)
    for _ in range(1000):
        assert ras.predict_and_pop(return_pc)
    assert ras.stats.mispredictions == 0


def test_circular_overflow_breaks_distinct_sites():
    """Distinct return addresses deeper than the stack DO mispredict."""
    ras = ReturnAddressStack(RasConfig(depth=4))
    addresses = [0x1000 + 4 * i for i in range(8)]
    for address in addresses:
        ras.push(address)
    # Unwinding: the four most recent are fine, the rest are stale.
    correct = sum(
        ras.predict_and_pop(address) for address in reversed(addresses)
    )
    assert correct == 4


def test_non_speculative_update_lags():
    """A return fetched right after its call's push (within the delay
    window) sees the old top: the sim-initial C-R failure mode."""
    ras = ReturnAddressStack(
        RasConfig(depth=32, speculative_update=False, update_delay=4)
    )
    ras.push(0x1004)
    # The push is still pending: prediction misses.
    assert not ras.predict_and_pop(0x1004)


def test_non_speculative_update_eventually_lands():
    ras = ReturnAddressStack(
        RasConfig(depth=32, speculative_update=False, update_delay=2)
    )
    ras.push(0xAAA4)
    ras.push(0xBBB4)
    ras.push(0xCCC4)  # first push has now settled
    assert ras.top_value == 0xAAA4
