"""Tests for the tournament (local/global/choice) branch predictor."""

import random

from repro.predictors.tournament import TournamentConfig, TournamentPredictor


def test_learns_always_taken():
    predictor = TournamentPredictor()
    for _ in range(200):
        predictor.predict_and_train(0x1000, True)
    assert predictor.stats.accuracy > 0.97


def test_learns_alternating_pattern():
    """The C-C microbenchmark's alternation: local history learns it."""
    predictor = TournamentPredictor()
    for i in range(2000):
        predictor.predict_and_train(0x2000, i % 2 == 0)
    # After warm-up the alternation is essentially perfect.
    late = TournamentPredictor()
    for i in range(200):
        late.predict_and_train(0x2000, i % 2 == 0)
    assert predictor.stats.accuracy > 0.9


def test_learns_period_four_pattern():
    predictor = TournamentPredictor()
    for i in range(4000):
        predictor.predict_and_train(0x3000, i % 4 != 0)
    assert predictor.stats.accuracy > 0.9


def test_random_branches_near_chance():
    predictor = TournamentPredictor()
    rng = random.Random(7)
    for _ in range(4000):
        predictor.predict_and_train(0x4000, rng.random() < 0.5)
    assert 0.35 < predictor.stats.accuracy < 0.65


def test_global_history_catches_correlation():
    """Two sites where the second repeats the first's outcome."""
    predictor = TournamentPredictor()
    rng = random.Random(3)
    first_outcomes = []
    misses_on_second = 0
    for i in range(4000):
        outcome = rng.random() < 0.5
        predictor.predict_and_train(0x5000, outcome)
        prediction = predictor.predict_and_train(0x6000, outcome)
        if i > 2000 and prediction != outcome:
            misses_on_second += 1
    # The correlated follow-up should be essentially perfect late on.
    assert misses_on_second < 100


def test_non_speculative_update_breaks_close_correlation():
    """The paper's `spec` feature: without speculative history update,
    a correlated branch only a few branches downstream sees a stale
    history and loses the correlation."""
    def run(speculative: bool) -> int:
        config = TournamentConfig(speculative_update=speculative,
                                  update_delay=6)
        predictor = TournamentPredictor(config)
        rng = random.Random(11)
        wrong = 0
        for i in range(4000):
            outcome = rng.random() < 0.5
            predictor.predict_and_train(0x5000, outcome)
            prediction = predictor.predict_and_train(0x6000, outcome)
            if i > 2000 and prediction != outcome:
                wrong += 1
        return wrong

    assert run(True) < 50
    assert run(False) > 400


def test_distant_recurrence_unharmed_by_non_speculative_update():
    """A branch revisited far apart is insensitive to update delay."""
    config = TournamentConfig(speculative_update=False, update_delay=6)
    predictor = TournamentPredictor(config)
    # 20 sites round-robin, each always-taken: delay 6 < 20 distance.
    for i in range(4000):
        predictor.predict_and_train(0x7000 + (i % 20) * 4, True)
    assert predictor.stats.accuracy > 0.95


def test_stats_reset():
    predictor = TournamentPredictor()
    predictor.predict_and_train(0x100, True)
    predictor.stats.reset()
    assert predictor.stats.lookups == 0


def test_predict_is_stateless():
    predictor = TournamentPredictor()
    for _ in range(50):
        predictor.predict_and_train(0x100, True)
    before = predictor.stats.lookups
    for _ in range(10):
        predictor.predict(0x100)
    assert predictor.stats.lookups == before
